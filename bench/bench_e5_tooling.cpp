// Experiment E5: "Emulation-as-a-Model fits the Network Operator tooling
// flow."
//
// The paper describes debugging a broken IS-IS config by SSHing into the
// emulated router and inspecting the IS-IS database and ip route tables.
// This bench reproduces the scenario — a config with wrong IS-IS syntax
// that the device rejects, verification reporting missing reachability,
// and the CLI localizing the cause — and times the operator-facing
// commands on a converged network.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "cli/show.hpp"
#include "config/dialect.hpp"
#include "emu/emulation.hpp"
#include "verify/queries.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace mfv;

void report() {
  // Break R2's IS-IS config the way the paper describes: wrong syntax that
  // the device CLI rejects, leaving the interface out of IS-IS.
  emu::Topology topology = workload::fig3_line_topology();
  for (emu::NodeSpec& node : topology.nodes) {
    if (node.name != "R2") continue;
    size_t pos;
    while ((pos = node.config_text.find("isis enable default")) != std::string::npos)
      node.config_text.replace(pos, 19, "isis router enable");  // invalid syntax
  }

  emu::Emulation emulation;
  if (!emulation.add_topology(topology).ok()) return;
  emulation.start_all();
  emulation.run_to_convergence();

  gnmi::Snapshot snapshot = gnmi::Snapshot::capture(emulation, "broken");
  verify::ForwardingGraph graph(snapshot);
  auto pairwise = verify::pairwise_reachability(graph);

  const auto& diagnostics = emulation.parse_diagnostics().at("R2");
  std::string isis_db = cli::show_isis_database(*emulation.router("R2"));
  std::string neighbors = cli::show_isis_neighbors(*emulation.router("R2"));

  std::printf("=== E5: Operator tooling flow on a mis-configured network ===\n");
  std::printf("%-52s %s\n", "step", "result");
  std::printf("%-52s %zu syntax errors rejected by device CLI\n",
              "1. apply config with wrong IS-IS syntax", diagnostics.error_count());
  std::printf("%-52s %zu/%zu reachable\n",
              "2. verification reports missing reachability", pairwise.reachable_pairs,
              pairwise.total_pairs);
  std::printf("%-52s %s\n", "3. 'show isis neighbors' on R2 shows",
              neighbors.find("UP") == std::string::npos ? "no adjacencies (culprit found)"
                                                        : "adjacencies up");
  std::printf("%-52s %zu LSPs (isolated)\n", "4. 'show isis database' on R2 shows",
              emulation.router("R2")->isis()->database().size());
  std::printf("%-52s %s\n", "5. fix the config, re-verify",
              [&] {
                emu::Topology fixed = workload::fig3_line_topology();
                const emu::NodeSpec* r2 = fixed.find_node("R2");
                emulation.apply_config_text("R2", r2->config_text, config::Vendor::kCeos);
                emulation.run_to_convergence();
                verify::ForwardingGraph healed(gnmi::Snapshot::capture(emulation, "fixed"));
                return verify::pairwise_reachability(healed).full_mesh()
                           ? "full mesh restored"
                           : "still broken";
              }());
  mfv::util::Json fields = mfv::util::Json::object();
  fields["syntax_errors"] = static_cast<uint64_t>(diagnostics.error_count());
  fields["broken_reachable_pairs"] = static_cast<uint64_t>(pairwise.reachable_pairs);
  fields["total_pairs"] = static_cast<uint64_t>(pairwise.total_pairs);
  mfvbench::timing("E5_RESULT", fields);
  std::printf("\n");
}

void BM_ShowIpRoute(benchmark::State& state) {
  emu::Emulation emulation;
  if (!emulation.add_topology(workload::fig2_topology(false)).ok()) return;
  emulation.start_all();
  emulation.run_to_convergence();
  auto* router = emulation.router("R2");
  for (auto _ : state) {
    std::string output = cli::show_ip_route(*router);
    benchmark::DoNotOptimize(output.size());
  }
}
BENCHMARK(BM_ShowIpRoute)->Unit(benchmark::kMicrosecond);

void BM_ShowIsisDatabase(benchmark::State& state) {
  emu::Emulation emulation;
  if (!emulation.add_topology(workload::fig2_topology(false)).ok()) return;
  emulation.start_all();
  emulation.run_to_convergence();
  auto* router = emulation.router("R3");
  for (auto _ : state) {
    std::string output = cli::show_isis_database(*router);
    benchmark::DoNotOptimize(output.size());
  }
}
BENCHMARK(BM_ShowIsisDatabase)->Unit(benchmark::kMicrosecond);

void BM_ApplyConfigReconverge(benchmark::State& state) {
  emu::Topology topology = workload::fig3_line_topology();
  emu::Emulation emulation;
  if (!emulation.add_topology(topology).ok()) return;
  emulation.start_all();
  emulation.run_to_convergence();
  const emu::NodeSpec* r2 = topology.find_node("R2");
  for (auto _ : state) {
    emulation.apply_config_text("R2", r2->config_text, config::Vendor::kCeos);
    emulation.run_to_convergence();
  }
}
BENCHMARK(BM_ApplyConfigReconverge)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_e5_tooling");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
