// Load generator for mfv::service over a real unix-domain socket: the
// full daemon path (framing, broker, snapshot store) measured end-to-end
// from the client side.
//
// Phases:
//   * cold       — snapshot builds of distinct topologies (each converges
//                  a fresh emulation; the store cannot help);
//   * store-hit  — repeated snapshot requests for an already-stored key
//                  (content addressing dedupes to a lease grab);
//   * fork-hit   — repeated identical fork_scenario requests (the first
//                  re-converges, the rest hit the store);
//   * closed-loop — K clients issuing pairwise queries back-to-back;
//   * open-loop   — paced arrivals at a fixed rate on one pipelined
//                  connection; latency includes queueing delay.
//   * tenant-*    — two tenants on one daemon: tenant A parks a large
//                  pipelined backlog, tenant B keeps issuing sequential
//                  queries. DRR admission keeps B's p95 near its unloaded
//                  baseline instead of behind A's whole backlog.
//   * ring        — two daemons behind a ClusterClient; answers must be
//                  byte-identical to a single instance serving the same
//                  requests.
//
// Reports QPS and p50/p95/p99 per phase (SERVICE_TIMING lines) and writes
// the same numbers to BENCH_service.json (override with --json PATH).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "scenario/scenario.hpp"
#include "service/client.hpp"
#include "service/cluster_client.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mfv;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

emu::Topology bench_topology(uint64_t seed) {
  workload::WanOptions options;
  // Distinct router counts guarantee distinct content hashes, so the cold
  // phase never silently turns into store hits.
  options.routers = 4 + static_cast<int>(seed);
  options.seed = seed;
  return workload::wan_topology(options);
}

struct Harness {
  explicit Harness(bool capture_verify_base = true, const char* tag = "",
                   const service::ServiceOptions* overrides = nullptr) {
    service::ServiceOptions options;
    if (overrides != nullptr) options = *overrides;
    options.broker.queue_capacity = 4096;  // the load phases outrun one worker
    options.capture_verify_base = capture_verify_base;
    service = std::make_unique<service::VerificationService>(options);
    service::ServerOptions server_options;
    server_options.unix_path =
        "/tmp/mfv_bench_" + std::to_string(getpid()) + tag + ".sock";
    server = std::make_unique<service::Server>(*service, server_options);
    if (!server->start().ok()) std::abort();
  }
  ~Harness() { server->stop(); }

  service::Client connect() const {
    service::Client client;
    if (!client.connect_unix(server->unix_path()).ok()) std::abort();
    return client;
  }

  std::unique_ptr<service::VerificationService> service;
  std::unique_ptr<service::Server> server;
};

service::Request make_request(uint64_t id, const std::string& verb) {
  service::Request request;
  request.id = id;
  request.verb = verb;
  request.params = util::Json::object();
  return request;
}

/// upload_configs + snapshot for one topology; returns the snapshot key.
std::string upload_and_snapshot(service::Client& client, const emu::Topology& topology,
                                double* build_ms = nullptr) {
  service::Request upload = make_request(1, "upload_configs");
  upload.params["topology"] = topology.to_json();
  auto uploaded = client.call(upload);
  if (!uploaded.ok() || !uploaded->ok()) std::abort();
  const std::string submission = uploaded->result.find("submission")->as_string();

  service::Request snapshot = make_request(2, "snapshot");
  snapshot.params["submission"] = submission;
  Clock::time_point start = Clock::now();
  auto built = client.call(snapshot);
  if (!built.ok() || !built->ok()) std::abort();
  if (build_ms != nullptr) *build_ms = ms_since(start);
  return submission;
}

service::Request fork_request(const std::string& base, const emu::Topology& topology) {
  service::Request request = make_request(3, "fork_scenario");
  request.params["base"] = base;
  util::Json perturbations = util::Json::array();
  perturbations.push_back(scenario::perturbation_to_json(
      scenario::LinkCut{topology.links[0].a, topology.links[0].b}));
  request.params["perturbations"] = perturbations;
  return request;
}

service::Request query_request(uint64_t id, const std::string& snapshot) {
  service::Request request = make_request(id, "query");
  request.params["snapshot"] = snapshot;
  request.params["kind"] = "pairwise";
  return request;
}

struct PhaseStats {
  size_t requests = 0;
  double wall_ms = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;

  double qps() const { return wall_ms > 0 ? 1000.0 * static_cast<double>(requests) / wall_ms : 0.0; }
};

PhaseStats summarize(const std::vector<double>& latencies, double wall_ms) {
  PhaseStats stats;
  stats.requests = latencies.size();
  stats.wall_ms = wall_ms;
  stats.p50 = percentile(latencies, 0.50);
  stats.p95 = percentile(latencies, 0.95);
  stats.p99 = percentile(latencies, 0.99);
  return stats;
}

void emit(const char* phase, const PhaseStats& stats, util::Json extra = {}) {
  util::Json fields = util::Json::object();
  fields["phase"] = phase;
  if (extra.is_object())
    for (const auto& [key, value] : extra.members()) fields[key] = value;
  fields["requests"] = static_cast<int64_t>(stats.requests);
  fields["qps"] = stats.qps();
  fields["p50_ms"] = stats.p50;
  fields["p95_ms"] = stats.p95;
  fields["p99_ms"] = stats.p99;
  mfvbench::timing("SERVICE_TIMING", fields);
}

void report() {
  Harness harness;
  service::Client client = harness.connect();

  std::printf("=== service: daemon load generation over a unix socket ===\n");

  // -- cold: distinct topologies, every snapshot converges an emulation --
  constexpr uint64_t kColdBuilds = 8;
  std::vector<double> cold_latencies;
  std::string first_snapshot;
  Clock::time_point phase_start = Clock::now();
  for (uint64_t seed = 1; seed <= kColdBuilds; ++seed) {
    double build_ms = 0.0;
    std::string key = upload_and_snapshot(client, bench_topology(seed), &build_ms);
    if (seed == 1) first_snapshot = key;
    cold_latencies.push_back(build_ms);
  }
  PhaseStats cold = summarize(cold_latencies, ms_since(phase_start));
  emit("cold", cold);

  // -- store-hit: the same snapshot over and over --
  constexpr int kHits = 200;
  std::vector<double> hit_latencies;
  service::Request rehit = make_request(10, "snapshot");
  rehit.params["submission"] = first_snapshot;
  phase_start = Clock::now();
  for (int i = 0; i < kHits; ++i) {
    Clock::time_point start = Clock::now();
    auto response = client.call(rehit);
    if (!response.ok() || !response->ok() || !response->result.find("hit")->as_bool())
      std::abort();
    hit_latencies.push_back(ms_since(start));
  }
  PhaseStats store_hit = summarize(hit_latencies, ms_since(phase_start));
  emit("store-hit", store_hit);

  // -- fork-hit: identical what-if, first request pays re-convergence --
  emu::Topology first_topology = bench_topology(1);
  service::Request fork = fork_request(first_snapshot, first_topology);
  Clock::time_point fork_start = Clock::now();
  auto forked = client.call(fork);
  if (!forked.ok() || !forked->ok()) std::abort();
  double fork_cold_ms = ms_since(fork_start);
  std::vector<double> fork_latencies;
  phase_start = Clock::now();
  for (int i = 0; i < kHits; ++i) {
    Clock::time_point start = Clock::now();
    auto response = client.call(fork);
    if (!response.ok() || !response->ok() || !response->result.find("hit")->as_bool())
      std::abort();
    fork_latencies.push_back(ms_since(start));
  }
  PhaseStats fork_hit = summarize(fork_latencies, ms_since(phase_start));
  {
    util::Json extra = util::Json::object();
    extra["first_ms"] = fork_cold_ms;
    emit("fork-hit", fork_hit, std::move(extra));
  }

  // -- incremental: first pairwise query on a freshly forked snapshot.
  //    With capture_verify_base on (the default) the query splices
  //    against the base's captured disposition matrix; a second service
  //    with capture disabled serves the identical fork cold. The first
  //    query per side is the headline — repeats hit the fork's own warm
  //    TraceCache on both sides --
  {
    const std::string forked_key = forked->result.find("snapshot")->as_string();
    auto query_phase = [&](service::Client& c, const std::string& key) {
      std::vector<double> latencies;
      for (int i = 0; i < 20; ++i) {
        Clock::time_point start = Clock::now();
        auto response = c.call(query_request(500 + static_cast<uint64_t>(i), key));
        if (!response.ok() || !response->ok()) std::abort();
        latencies.push_back(ms_since(start));
      }
      return latencies;
    };

    Clock::time_point phase = Clock::now();
    std::vector<double> spliced = query_phase(client, forked_key);
    double spliced_wall = ms_since(phase);

    Harness cold_harness(/*capture_verify_base=*/false, "_cold");
    service::Client cold_client = cold_harness.connect();
    std::string cold_base = upload_and_snapshot(cold_client, first_topology);
    auto cold_forked = cold_client.call(fork_request(cold_base, first_topology));
    if (!cold_forked.ok() || !cold_forked->ok()) std::abort();
    const std::string cold_key = cold_forked->result.find("snapshot")->as_string();
    phase = Clock::now();
    std::vector<double> cold_queries = query_phase(cold_client, cold_key);
    double cold_wall = ms_since(phase);

    util::Json extra = util::Json::object();
    extra["first_ms"] = spliced.front();
    emit("incremental", summarize(spliced, spliced_wall), std::move(extra));
    extra = util::Json::object();
    extra["first_ms"] = cold_queries.front();
    emit("incremental-cold", summarize(cold_queries, cold_wall), std::move(extra));
    util::Json fields = util::Json::object();
    fields["incremental_vs_cold_first"] =
        spliced.front() > 0 ? cold_queries.front() / spliced.front() : 0.0;
    mfvbench::timing("SERVICE_SPEEDUP", fields);
  }

  // -- closed-loop: K clients, back-to-back pairwise queries --
  constexpr int kClients = 4;
  constexpr int kPerClient = 100;
  std::vector<std::vector<double>> per_client(kClients);
  phase_start = Clock::now();
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c)
      threads.emplace_back([&, c] {
        service::Client worker = harness.connect();
        for (int i = 0; i < kPerClient; ++i) {
          Clock::time_point start = Clock::now();
          auto response =
              worker.call(query_request(static_cast<uint64_t>(i), first_snapshot));
          if (!response.ok() || !response->ok()) std::abort();
          per_client[c].push_back(ms_since(start));
        }
      });
    for (std::thread& thread : threads) thread.join();
  }
  double closed_wall = ms_since(phase_start);
  std::vector<double> closed_latencies;
  for (const auto& latencies : per_client)
    closed_latencies.insert(closed_latencies.end(), latencies.begin(), latencies.end());
  PhaseStats closed = summarize(closed_latencies, closed_wall);
  {
    util::Json extra = util::Json::object();
    extra["clients"] = kClients;
    emit("closed-loop", closed, std::move(extra));
  }

  // -- open-loop: paced arrivals on one pipelined connection; latency is
  //    measured from the *scheduled* send time, so it includes queueing
  //    delay when the service falls behind the offered rate --
  constexpr int kOpenRequests = 400;
  constexpr double kRatePerSec = 800.0;
  std::map<uint64_t, Clock::time_point> scheduled;
  std::vector<double> open_latencies;
  service::Client open_client = harness.connect();
  std::thread receiver([&] {
    for (int i = 0; i < kOpenRequests; ++i) {
      auto response = open_client.receive();
      if (!response.ok() || !response->ok()) std::abort();
      open_latencies.push_back(ms_since(scheduled.at(response->id)));
    }
  });
  Clock::time_point open_start = Clock::now();
  for (int i = 0; i < kOpenRequests; ++i) {
    Clock::time_point due =
        open_start + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(i / kRatePerSec));
    std::this_thread::sleep_until(due);
    uint64_t id = 1000 + static_cast<uint64_t>(i);
    scheduled.emplace(id, due);  // receiver only sees ids already sent
    if (!open_client.send(query_request(id, first_snapshot)).ok()) std::abort();
  }
  receiver.join();
  PhaseStats open = summarize(open_latencies, ms_since(open_start));
  {
    util::Json extra = util::Json::object();
    extra["offered_qps"] = kRatePerSec;
    emit("open-loop", open, std::move(extra));
  }

  // -- the headline: content addressing pays for itself --
  double speedup = store_hit.p50 > 0 ? cold.p50 / store_hit.p50 : 0.0;
  {
    util::Json fields = util::Json::object();
    fields["store_hit_vs_cold_p50"] = speedup;
    fields["fork_hit_vs_first_p50"] =
        fork_hit.p50 > 0 ? fork_cold_ms / fork_hit.p50 : 0.0;
    mfvbench::timing("SERVICE_SPEEDUP", fields);
  }
  if (speedup < 5.0)
    std::printf("  WARNING: store-hit p50 is less than 5x faster than cold\n");

  // -- per-request observability totals, straight from the stats verb --
  auto stats = client.call(make_request(90, "stats"));
  if (stats.ok() && stats->ok()) {
    const util::Json* store = stats->result.find("store");
    const util::Json* broker = stats->result.find("broker");
    util::Json fields = util::Json::object();
    fields["store_entries"] = store->find("entries")->as_int();
    fields["store_hits"] = store->find("hits")->as_int();
    fields["store_misses"] = store->find("misses")->as_int();
    fields["trace_hits"] = store->find("trace_hits")->as_int();
    fields["completed"] = broker->find("completed")->as_int();
    fields["rejected"] = broker->find("rejected")->as_int();
    mfvbench::timing("SERVICE_STATS", fields);
  }
  std::printf("\n");
}

// Two tenants, one daemon: A parks a pipelined backlog of kBacklog
// queries; B issues sequential queries the whole time. The row pair
// tenant-unloaded / tenant-isolated (and their p95 ratio) is the
// isolation claim in EXPERIMENTS.md S2 — under strict FIFO, B's p95
// would be the backlog drain time.
void report_tenant_isolation() {
  std::printf("=== service: two-tenant fair-share isolation ===\n");

  service::ServiceOptions overrides;
  overrides.broker.threads = 1;  // fixed so the backlog math is portable
  Harness harness(/*capture_verify_base=*/true, "_tenant", &overrides);

  auto tenant_request = [](uint64_t id, const std::string& verb,
                           const std::string& tenant) {
    service::Request request = make_request(id, verb);
    request.tenant = tenant;
    return request;
  };

  // Each tenant converges its own copy of the same network (namespaces
  // never share entries, so both builds are real).
  emu::Topology topology = bench_topology(2);
  auto build_for = [&](service::Client& client, const std::string& tenant) {
    service::Request upload = tenant_request(1, "upload_configs", tenant);
    upload.params["topology"] = topology.to_json();
    auto uploaded = client.call(upload);
    if (!uploaded.ok() || !uploaded->ok()) std::abort();
    const std::string submission = uploaded->result.find("submission")->as_string();
    service::Request snapshot = tenant_request(2, "snapshot", tenant);
    snapshot.params["submission"] = submission;
    if (!client.call(snapshot).ok()) std::abort();
    return submission;
  };
  service::Client client_a = harness.connect();
  service::Client client_b = harness.connect();
  const std::string snapshot_a = build_for(client_a, "tenant_a");
  const std::string snapshot_b = build_for(client_b, "tenant_b");

  auto b_query = [&](uint64_t id) {
    service::Request request = tenant_request(id, "query", "tenant_b");
    request.params["snapshot"] = snapshot_b;
    request.params["kind"] = "pairwise";
    return request;
  };

  // Broker queue wait (from the response's own timing block) is reported
  // alongside wall latency: wall time on an oversubscribed single-core
  // host includes kernel-scheduler wakeup delay the broker cannot
  // control, while queue_wait_us is exactly the share the DRR discipline
  // is responsible for.
  auto queue_wait_ms = [](const service::Response& response) {
    const util::Json* timing = response.result.find("timing");
    const util::Json* wait = timing ? timing->find("queue_wait_us") : nullptr;
    return wait ? static_cast<double>(wait->as_int()) / 1000.0 : 0.0;
  };

  // Unloaded baseline: B alone on the daemon.
  constexpr int kBQueries = 30;
  std::vector<double> unloaded;
  std::vector<double> unloaded_waits;
  Clock::time_point phase_start = Clock::now();
  for (int i = 0; i < kBQueries; ++i) {
    Clock::time_point start = Clock::now();
    auto response = client_b.call(b_query(100 + static_cast<uint64_t>(i)));
    if (!response.ok() || !response->ok()) std::abort();
    unloaded.push_back(ms_since(start));
    unloaded_waits.push_back(queue_wait_ms(*response));
  }
  PhaseStats unloaded_stats = summarize(unloaded, ms_since(phase_start));
  PhaseStats unloaded_wait_stats = summarize(unloaded_waits, 0.0);
  {
    util::Json extra = util::Json::object();
    extra["queue_wait_p95_ms"] = unloaded_wait_stats.p95;
    emit("tenant-unloaded", unloaded_stats, std::move(extra));
  }

  // A floods: one pipelined burst, admitted before B's first loaded query.
  constexpr int kBacklog = 400;
  for (int i = 0; i < kBacklog; ++i) {
    service::Request request = tenant_request(1000 + static_cast<uint64_t>(i),
                                              "query", "tenant_a");
    request.params["snapshot"] = snapshot_a;
    request.params["kind"] = "pairwise";
    if (!client_a.send(request).ok()) std::abort();
  }
  std::thread a_receiver([&] {
    for (int i = 0; i < kBacklog; ++i)
      if (!client_a.receive().ok()) std::abort();
  });

  std::vector<double> loaded;
  std::vector<double> loaded_waits;
  uint64_t b_rejected = 0;
  phase_start = Clock::now();
  for (int i = 0; i < kBQueries; ++i) {
    Clock::time_point start = Clock::now();
    auto response = client_b.call(b_query(2000 + static_cast<uint64_t>(i)));
    if (!response.ok()) std::abort();
    if (!response->ok()) ++b_rejected;
    else loaded_waits.push_back(queue_wait_ms(*response));
    loaded.push_back(ms_since(start));
  }
  PhaseStats loaded_stats = summarize(loaded, ms_since(phase_start));
  PhaseStats loaded_wait_stats = summarize(loaded_waits, 0.0);
  a_receiver.join();

  util::Json extra = util::Json::object();
  extra["a_backlog"] = kBacklog;
  extra["b_rejected"] = b_rejected;
  extra["p95_ratio"] = unloaded_stats.p95 > 0 ? loaded_stats.p95 / unloaded_stats.p95
                                              : 0.0;
  extra["queue_wait_p95_ms"] = loaded_wait_stats.p95;
  // The same bound the service_tenant isolation test enforces: 2x the
  // unloaded p95 plus a flat scheduling allowance for CI hosts where the
  // benchmark timeshares one core with the daemon it is measuring.
  extra["isolation_pass"] =
      loaded_stats.p95 <= 2.0 * unloaded_stats.p95 + 50.0;
  emit("tenant-isolated", loaded_stats, std::move(extra));
  if (b_rejected > 0)
    std::printf("  WARNING: tenant B saw %llu rejections under tenant A load\n",
                static_cast<unsigned long long>(b_rejected));

  // Per-tenant accounting as the daemon reports it.
  auto stats = client_b.call(make_request(90, "stats"));
  if (stats.ok() && stats->ok()) {
    if (const util::Json* tenants = stats->result.find("tenants")) {
      util::Json fields = util::Json::object();
      for (const char* tenant : {"tenant_a", "tenant_b"}) {
        const util::Json* slice = tenants->find(tenant);
        if (slice == nullptr) continue;
        fields[std::string(tenant) + "_completed"] = *slice->find("completed");
        fields[std::string(tenant) + "_rejected"] = *slice->find("rejected");
        fields[std::string(tenant) + "_store_bytes"] = *slice->find("store_bytes");
      }
      mfvbench::timing("SERVICE_TENANTS", fields);
    }
  }
  std::printf("\n");
}

// Two daemons behind the consistent-hash ring: the same uploads and
// queries must produce byte-identical answers to a single instance, with
// each key pinned to one owner.
void report_ring() {
  std::printf("=== service: consistent-hash ring, two instances ===\n");

  Harness instance0(true, "_ring0");
  Harness instance1(true, "_ring1");
  Harness single(true, "_ring_single");
  service::Client single_client = single.connect();

  service::ClusterClientOptions cluster_options;
  for (const Harness* instance : {&instance0, &instance1}) {
    service::ClusterEndpoint endpoint;
    endpoint.unix_path = instance->server->unix_path();
    cluster_options.endpoints.push_back(std::move(endpoint));
  }
  service::ClusterClient cluster(std::move(cluster_options));

  constexpr uint64_t kNetworks = 6;
  bool byte_identical = true;
  std::vector<double> latencies;
  Clock::time_point phase_start = Clock::now();
  for (uint64_t seed = 1; seed <= kNetworks; ++seed) {
    emu::Topology topology = bench_topology(seed);

    service::Request upload = make_request(1, "upload_configs");
    upload.params["topology"] = topology.to_json();
    auto uploaded = cluster.call(upload);
    if (!uploaded.ok() || !uploaded->ok()) std::abort();
    const std::string submission = uploaded->result.find("submission")->as_string();

    service::Request snapshot = make_request(2, "snapshot");
    snapshot.params["submission"] = submission;
    if (!cluster.call(snapshot).ok()) std::abort();

    Clock::time_point start = Clock::now();
    auto answer = cluster.call(query_request(3, submission));
    if (!answer.ok() || !answer->ok()) std::abort();
    latencies.push_back(ms_since(start));

    const std::string single_submission = upload_and_snapshot(single_client, topology);
    auto single_answer = single_client.call(query_request(3, single_submission));
    if (!single_answer.ok() || !single_answer->ok()) std::abort();
    if (submission != single_submission ||
        answer->result.find("answer")->dump() !=
            single_answer->result.find("answer")->dump())
      byte_identical = false;
  }
  PhaseStats ring = summarize(latencies, ms_since(phase_start));

  util::Json extra = util::Json::object();
  extra["instances"] = 2;
  extra["byte_identical"] = byte_identical;
  extra["calls_instance0"] = cluster.per_instance_calls()[0];
  extra["calls_instance1"] = cluster.per_instance_calls()[1];
  emit("ring", ring, std::move(extra));
  if (!byte_identical)
    std::printf("  WARNING: ring answers differ from the single instance\n");
  std::printf("\n");
}

void BM_WireStatsRoundTrip(benchmark::State& state) {
  // Floor of the wire path: framing + broker dispatch + a trivial verb.
  Harness harness;
  service::Client client = harness.connect();
  uint64_t id = 0;
  for (auto _ : state) {
    auto response = client.call(make_request(++id, "stats"));
    if (!response.ok() || !response->ok()) return;
    benchmark::DoNotOptimize(response->result);
  }
}
BENCHMARK(BM_WireStatsRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_StoreHitSnapshot(benchmark::State& state) {
  Harness harness;
  service::Client client = harness.connect();
  const std::string key = upload_and_snapshot(client, bench_topology(1));
  service::Request request = make_request(5, "snapshot");
  request.params["submission"] = key;
  for (auto _ : state) {
    auto response = client.call(request);
    if (!response.ok() || !response->ok()) return;
    benchmark::DoNotOptimize(response->result);
  }
}
BENCHMARK(BM_StoreHitSnapshot)->Unit(benchmark::kMicrosecond);

void BM_CachedPairwiseQuery(benchmark::State& state) {
  Harness harness;
  service::Client client = harness.connect();
  const std::string key = upload_and_snapshot(client, bench_topology(1));
  uint64_t id = 0;
  for (auto _ : state) {
    auto response = client.call(query_request(++id, key));
    if (!response.ok() || !response->ok()) return;
    benchmark::DoNotOptimize(response->result);
  }
}
BENCHMARK(BM_CachedPairwiseQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_service",
                                        "BENCH_service.json");
  report();
  report_tenant_isolation();
  report_ring();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
