// Experiment E3 (Fig. 3): "Model-based verification results can be wrong
// or misleading."
//
// Identical configurations through both backends. The paper reports: the
// model's dataplane "did not have reachability from R2 to R1, reporting
// packets to be dropped, whereas the dataplane from the actual router
// emulation was reported to have full pair-wise reachability" — caused by
// the switchport ordering assumption (issue #1) and the "isis enable"
// syntax gap (issue #2).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "api/session.hpp"
#include "model/ibdp.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace mfv;

void report() {
  emu::Topology topology = workload::fig3_line_topology();
  api::Session session;
  if (!session.init_snapshot(topology, "emulated", api::Backend::kModelFree).ok()) return;
  if (!session.init_snapshot(topology, "modeled", api::Backend::kModelBased).ok()) return;

  auto emu_pairwise = session.pairwise_reachability("emulated");
  auto model_pairwise = session.pairwise_reachability("modeled");
  auto model_r2_r1 =
      session.traceroute("modeled", "R2", *net::Ipv4Address::parse("2.2.2.1"));
  auto emu_r2_r1 =
      session.traceroute("emulated", "R2", *net::Ipv4Address::parse("2.2.2.1"));
  auto diff = session.differential_reachability("emulated", "modeled");

  // Issue #2 diagnostics from the model parser.
  size_t isis_syntax_flags = 0;
  for (const auto& [node, diagnostics] : session.info("modeled")->diagnostics)
    for (const auto& item : diagnostics.items)
      if (item.line.find("isis enable") != std::string::npos) ++isis_syntax_flags;

  std::printf("=== E3: Model-based vs model-free on identical configs (Fig. 3) ===\n");
  std::printf("%-46s %-26s %s\n", "metric", "paper", "measured");
  std::printf("%-46s %-26s %zu/%zu\n", "emulation pairwise reachability",
              "full pair-wise", emu_pairwise->reachable_pairs, emu_pairwise->total_pairs);
  std::printf("%-46s %-26s %s\n", "model R2->R1", "packets dropped",
              model_r2_r1->reachable() ? "reachable (NO)" : "dropped");
  std::printf("%-46s %-26s %s\n", "emulation R2->R1", "reachable",
              emu_r2_r1->reachable() ? "reachable" : "dropped (NO)");
  std::printf("%-46s %-26s %zu rows\n", "backend differential (same configs)",
              "difference reported", diff->rows.size());
  std::printf("%-46s %-26s %zu lines flagged\n", "issue #2: 'isis enable' invalid syntax",
              "reported as invalid", isis_syntax_flags);
  std::printf("%-46s %-26s %s\n", "issue #1: address silently dropped",
              "line ignored (silent)", "yes (no diagnostic, address absent)");
  mfv::util::Json fields = mfv::util::Json::object();
  fields["emulation_reachable_pairs"] =
      static_cast<uint64_t>(emu_pairwise->reachable_pairs);
  fields["total_pairs"] = static_cast<uint64_t>(emu_pairwise->total_pairs);
  fields["model_r2_r1_reachable"] = model_r2_r1->reachable();
  fields["differential_rows"] = static_cast<uint64_t>(diff->rows.size());
  fields["isis_syntax_flags"] = static_cast<uint64_t>(isis_syntax_flags);
  mfvbench::timing("E3_RESULT", fields);
  std::printf("\n");
}

void BM_ModelBasedPipeline(benchmark::State& state) {
  emu::Topology topology = workload::fig3_line_topology();
  for (auto _ : state) {
    model::ModelResult result = model::run_model(topology);
    benchmark::DoNotOptimize(result.snapshot.total_entries());
  }
}
BENCHMARK(BM_ModelBasedPipeline)->Unit(benchmark::kMicrosecond);

void BM_ModelFreePipeline(benchmark::State& state) {
  emu::Topology topology = workload::fig3_line_topology();
  for (auto _ : state) {
    emu::Emulation emulation;
    if (!emulation.add_topology(topology).ok()) return;
    emulation.start_all();
    emulation.run_to_convergence();
    gnmi::Snapshot snapshot = gnmi::Snapshot::capture(emulation, "s");
    benchmark::DoNotOptimize(snapshot.total_entries());
  }
}
BENCHMARK(BM_ModelFreePipeline)->Unit(benchmark::kMicrosecond);

void BM_BackendDifferential(benchmark::State& state) {
  api::Session session;
  emu::Topology topology = workload::fig3_line_topology();
  if (!session.init_snapshot(topology, "emulated", api::Backend::kModelFree).ok()) return;
  if (!session.init_snapshot(topology, "modeled", api::Backend::kModelBased).ok()) return;
  for (auto _ : state) {
    auto diff = session.differential_reachability("emulated", "modeled");
    benchmark::DoNotOptimize(diff->rows.size());
  }
}
BENCHMARK(BM_BackendDifferential)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_e3_divergence");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
