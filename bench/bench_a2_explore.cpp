// Ablation A2b (§6 "Non-deterministic behavior", exhaustive follow-up):
// bench_a2_nondeterminism samples the arrival-order outcome space with
// jittered seeds; this bench enumerates it with the exploration engine
// (src/explore) and measures what the machinery buys — how many schedules
// actually ran vs the naive interleaving bound (partial-order reduction),
// and how many converged states survived dedup vs schedules executed
// (canonicalization). Writes BENCH_explore.json by contract.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_json.hpp"
#include "emu/emulation.hpp"
#include "explore/explore.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mfv;

config::DeviceConfig advertiser(const std::string& name, int index, net::AsNumber as,
                                const std::string& link_cidr,
                                const std::string& peer_address) {
  config::DeviceConfig config;
  config.hostname = name;
  auto& loopback = config.interface("Loopback0");
  loopback.switchport = false;
  loopback.address = net::InterfaceAddress::parse("10.0.0." + std::to_string(index) + "/32");
  auto& eth = config.interface("Ethernet1");
  eth.switchport = false;
  eth.address = net::InterfaceAddress::parse(link_cidr);
  config.bgp.enabled = true;
  config.bgp.local_as = as;
  config.bgp.router_id = loopback.address->address;
  config::BgpNeighborConfig neighbor;
  neighbor.peer = *net::Ipv4Address::parse(peer_address);
  neighbor.remote_as = 65000;
  config.bgp.neighbors.push_back(neighbor);
  config.static_routes.push_back(
      {*net::Ipv4Prefix::parse("203.0.113.0/24"), std::nullopt, std::nullopt, true, 1});
  config.bgp.networks.push_back({*net::Ipv4Prefix::parse("203.0.113.0/24"), std::nullopt});
  return config;
}

/// The A2 race with `advertisers` competing peers (un-started; the
/// explorer boots every branch).
std::unique_ptr<emu::Emulation> race_base(int advertisers) {
  emu::EmulationOptions options;
  options.seed = 1;
  options.bgp_prefer_oldest = true;
  auto emulation = std::make_unique<emu::Emulation>(options);

  config::DeviceConfig listener;
  listener.hostname = "L";
  auto& loopback = listener.interface("Loopback0");
  loopback.switchport = false;
  loopback.address = net::InterfaceAddress::parse("10.0.0.99/32");
  listener.bgp.enabled = true;
  listener.bgp.local_as = 65000;
  listener.bgp.router_id = loopback.address->address;

  for (int i = 1; i <= advertisers; ++i) {
    std::string subnet = std::to_string(2 * (i - 1));
    std::string peer_side = std::to_string(2 * (i - 1) + 1);
    emulation->add_router(advertiser("A" + std::to_string(i), i,
                                     static_cast<net::AsNumber>(65000 + i),
                                     "100.64.0." + subnet + "/31",
                                     "100.64.0." + peer_side));
    auto& eth = listener.interface("Ethernet" + std::to_string(i));
    eth.switchport = false;
    eth.address = net::InterfaceAddress::parse("100.64.0." + peer_side + "/31");
    config::BgpNeighborConfig neighbor;
    neighbor.peer = *net::Ipv4Address::parse("100.64.0." + subnet);
    neighbor.remote_as = static_cast<net::AsNumber>(65000 + i);
    listener.bgp.neighbors.push_back(neighbor);
  }
  emulation->add_router(std::move(listener));
  for (int i = 1; i <= advertisers; ++i)
    emulation->add_link({"A" + std::to_string(i), "Ethernet1"},
                        {"L", "Ethernet" + std::to_string(i)});
  return emulation;
}

void report_case(const std::string& label, const emu::Emulation& base,
                 explore::ExploreOptions options) {
  explore::ExploreInput input;
  input.base = &base;
  input.start = true;

  auto start = std::chrono::steady_clock::now();
  util::Result<explore::ExploreResult> result = explore::explore(input, options);
  auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  if (!result.ok()) {
    std::fprintf(stderr, "explore(%s) failed: %s\n", label.c_str(),
                 result.status().to_string().c_str());
    return;
  }

  util::Json fields = util::Json::object();
  fields["case"] = label;
  fields["runs"] = static_cast<int64_t>(result->runs);
  fields["unique_states"] = static_cast<int64_t>(result->unique_states);
  fields["dedup_hits"] = static_cast<int64_t>(result->dedup_hits);
  fields["por_skipped_branches"] = static_cast<int64_t>(result->por_skipped_branches);
  fields["naive_interleavings"] = static_cast<int64_t>(result->naive_interleavings);
  fields["choice_points"] = static_cast<int64_t>(result->choice_points);
  fields["complete"] = result->complete;
  fields["events_total"] = static_cast<int64_t>(result->events_total);
  fields["wall_ms"] = static_cast<int64_t>(wall_ms);
  mfvbench::timing("A2B_EXPLORE", fields);
}

void report() {
  std::printf("=== A2b: Exhaustive exploration vs naive interleaving ===\n");

  explore::ExploreOptions fig2;
  fig2.verify_properties = false;
  fig2.threads = 4;
  report_case("fig2_2adv", *race_base(2), fig2);
  report_case("fig2_3adv", *race_base(3), fig2);

  // Seeded WAN: border routers take external route feeds and the iBGP
  // mesh spreads them, so interior routers see co-pending updates from
  // multiple sessions during boot — organic races, not a crafted tie.
  workload::WanOptions wan;
  wan.routers = 4;
  wan.seed = 7;
  wan.border_count = 2;
  wan.routes_per_peer = 4;
  wan.ibgp_mesh = true;
  emu::EmulationOptions emu_options;
  emu_options.seed = 1;
  emu::Emulation base(emu_options);
  util::Status added = base.add_topology(workload::wan_topology(wan));
  if (added.ok()) {
    explore::ExploreOptions bounded = fig2;
    bounded.max_runs = 256;
    bounded.max_choice_points = 16;
    report_case("wan_4r_seed7", base, bounded);
  } else {
    std::fprintf(stderr, "wan topology rejected: %s\n", added.to_string().c_str());
  }

  std::printf("\nnaive_interleavings counts every schedule a reduction-free\n"
              "enumerator would execute (runs + POR-pruned branches); dedup_hits\n"
              "are executed schedules that converged to an already-seen state.\n"
              "The gap between the two columns and unique_states is the paper's\n"
              "\"run multiple times\" sampling advice, made exhaustive.\n\n");
}

void BM_ExploreTwoAdvertisers(benchmark::State& state) {
  explore::ExploreOptions options;
  options.verify_properties = false;
  for (auto _ : state) {
    std::unique_ptr<emu::Emulation> base = race_base(2);
    explore::ExploreInput input;
    input.base = base.get();
    input.start = true;
    util::Result<explore::ExploreResult> result = explore::explore(input, options);
    benchmark::DoNotOptimize(result.ok() ? result->unique_states : 0u);
  }
}
BENCHMARK(BM_ExploreTwoAdvertisers)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_a2_explore",
                                        "BENCH_explore.json");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
