// Experiment E4a: "Emulation performance can scale in size and
// complexity" — the resource/packing side.
//
// Paper numbers: each cEOS router needs 0.5 vCPU + 1 GB, so one
// e2-standard-32 (32 vCPU / 128 GB) holds up to 60 routers; 1,000 devices
// converge on a 17-node cluster. The report sweeps cluster size -> maximum
// schedulable routers and shows the container-vs-VM capacity gap that made
// digital-twin scale affordable (§1/§3). Timed sections measure emulation
// wall-clock cost as topologies grow.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "emu/emulation.hpp"
#include "orch/cluster.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mfv;

int max_schedulable(int machines, orch::ImageKind image) {
  orch::ClusterSpec cluster = orch::ClusterSpec::standard(machines);
  // Binary search the largest pod count that schedules.
  int lo = 0;
  int hi = machines * 200;
  while (lo < hi) {
    int mid = (lo + hi + 1) / 2;
    std::vector<orch::PodSpec> pods;
    pods.reserve(static_cast<size_t>(mid));
    for (int i = 0; i < mid; ++i)
      pods.push_back({"r" + std::to_string(i), config::Vendor::kCeos, image});
    if (orch::schedule_pods(cluster, pods).ok()) lo = mid;
    else hi = mid - 1;
  }
  return lo;
}

void report() {
  std::printf("=== E4a: Cluster capacity (0.5 vCPU + 1 GB per cEOS router) ===\n");
  std::printf("%-34s %-18s %s\n", "configuration", "paper", "measured");
  std::printf("%-34s %-18s %d routers\n", "1 machine (e2-standard-32)", "up to 60",
              max_schedulable(1, orch::ImageKind::kContainer));
  std::printf("%-34s %-18s %d routers\n", "17-machine cluster", ">= 1000",
              max_schedulable(17, orch::ImageKind::kContainer));
  std::printf("%-34s %-18s %d routers\n", "1 machine, VM images", "(motivates containers)",
              max_schedulable(1, orch::ImageKind::kVm));

  std::printf("\ncluster-size sweep (containers):\n  machines :");
  for (int machines : {1, 2, 4, 8, 17}) std::printf(" %6d", machines);
  std::printf("\n  capacity :");
  for (int machines : {1, 2, 4, 8, 17})
    std::printf(" %6d", max_schedulable(machines, orch::ImageKind::kContainer));
  std::printf("\n\n");
  for (int machines : {1, 2, 4, 8, 17}) {
    mfv::util::Json fields = mfv::util::Json::object();
    fields["machines"] = machines;
    fields["capacity"] = max_schedulable(machines, orch::ImageKind::kContainer);
    mfvbench::timing("E4A_RESULT", fields);
  }

  std::printf("startup model (one-time infra init + image pull + boot):\n");
  std::printf("%-34s %-18s %s\n", "topology", "paper", "measured");
  for (int routers : {30, 60}) {
    emu::Topology topology = workload::wan_topology({.routers = routers, .seed = 7});
    auto plan = orch::plan_deployment(
        orch::ClusterSpec::standard(routers <= 60 ? 1 : 2), topology);
    if (!plan.ok()) continue;
    std::printf("%-34s %-18s %.1f min\n",
                (std::to_string(routers) + "-node WAN").c_str(),
                routers == 30 ? "12-17 min" : "(same order)",
                plan->boot.total_startup.seconds_double() / 60.0);
  }
  std::printf("\n");
}

void BM_EmulationWallClock(benchmark::State& state) {
  int routers = static_cast<int>(state.range(0));
  emu::Topology topology = workload::wan_topology({.routers = routers, .seed = 11});
  uint64_t entries = 0;
  for (auto _ : state) {
    emu::Emulation emulation;
    if (!emulation.add_topology(topology).ok()) return;
    emulation.start_all();
    emulation.run_to_convergence();
    entries = 0;
    for (const auto& device : emulation.dump_afts()) entries += device.aft.entry_count();
    benchmark::DoNotOptimize(entries);
  }
  state.counters["routers"] = routers;
  state.counters["fib_entries"] = static_cast<double>(entries);
}
BENCHMARK(BM_EmulationWallClock)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SchedulerThroughput(benchmark::State& state) {
  orch::ClusterSpec cluster = orch::ClusterSpec::standard(17);
  std::vector<orch::PodSpec> pods;
  for (int i = 0; i < 1000; ++i)
    pods.push_back({"r" + std::to_string(i), config::Vendor::kCeos,
                    orch::ImageKind::kContainer});
  for (auto _ : state) {
    auto placement = orch::schedule_pods(cluster, pods);
    benchmark::DoNotOptimize(placement.ok());
  }
}
BENCHMARK(BM_SchedulerThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_e4_scale");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
