// Experiment E4a: "Emulation performance can scale in size and
// complexity" — the resource/packing side.
//
// Paper numbers: each cEOS router needs 0.5 vCPU + 1 GB, so one
// e2-standard-32 (32 vCPU / 128 GB) holds up to 60 routers; 1,000 devices
// converge on a 17-node cluster. The report sweeps cluster size -> maximum
// schedulable routers and shows the container-vs-VM capacity gap that made
// digital-twin scale affordable (§1/§3). Timed sections measure emulation
// wall-clock cost as topologies grow.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_json.hpp"
#include "emu/emulation.hpp"
#include "gnmi/gnmi.hpp"
#include "orch/cluster.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mfv;

int max_schedulable(int machines, orch::ImageKind image) {
  orch::ClusterSpec cluster = orch::ClusterSpec::standard(machines);
  // Binary search the largest pod count that schedules.
  int lo = 0;
  int hi = machines * 200;
  while (lo < hi) {
    int mid = (lo + hi + 1) / 2;
    std::vector<orch::PodSpec> pods;
    pods.reserve(static_cast<size_t>(mid));
    for (int i = 0; i < mid; ++i)
      pods.push_back({"r" + std::to_string(i), config::Vendor::kCeos, image});
    if (orch::schedule_pods(cluster, pods).ok()) lo = mid;
    else hi = mid - 1;
  }
  return lo;
}

void report() {
  std::printf("=== E4a: Cluster capacity (0.5 vCPU + 1 GB per cEOS router) ===\n");
  std::printf("%-34s %-18s %s\n", "configuration", "paper", "measured");
  std::printf("%-34s %-18s %d routers\n", "1 machine (e2-standard-32)", "up to 60",
              max_schedulable(1, orch::ImageKind::kContainer));
  std::printf("%-34s %-18s %d routers\n", "17-machine cluster", ">= 1000",
              max_schedulable(17, orch::ImageKind::kContainer));
  std::printf("%-34s %-18s %d routers\n", "1 machine, VM images", "(motivates containers)",
              max_schedulable(1, orch::ImageKind::kVm));

  std::printf("\ncluster-size sweep (containers):\n  machines :");
  for (int machines : {1, 2, 4, 8, 17}) std::printf(" %6d", machines);
  std::printf("\n  capacity :");
  for (int machines : {1, 2, 4, 8, 17})
    std::printf(" %6d", max_schedulable(machines, orch::ImageKind::kContainer));
  std::printf("\n\n");
  for (int machines : {1, 2, 4, 8, 17}) {
    mfv::util::Json fields = mfv::util::Json::object();
    fields["machines"] = machines;
    fields["capacity"] = max_schedulable(machines, orch::ImageKind::kContainer);
    mfvbench::timing("E4A_RESULT", fields);
  }

  std::printf("startup model (one-time infra init + image pull + boot):\n");
  std::printf("%-34s %-18s %s\n", "topology", "paper", "measured");
  for (int routers : {30, 60}) {
    emu::Topology topology = workload::wan_topology({.routers = routers, .seed = 7});
    auto plan = orch::plan_deployment(
        orch::ClusterSpec::standard(routers <= 60 ? 1 : 2), topology);
    if (!plan.ok()) continue;
    std::printf("%-34s %-18s %.1f min\n",
                (std::to_string(routers) + "-node WAN").c_str(),
                routers == 30 ? "12-17 min" : "(same order)",
                plan->boot.total_startup.seconds_double() / 60.0);
  }
  std::printf("\n");
}

// Serial vs sharded kernel on one 200-router WAN (DESIGN.md §10). Each
// row records wall-clock, speedup over the serial row, and whether the
// converged snapshot is byte-identical to serial — the sharded kernel's
// contract. Speedup is bounded by the cores the host actually has, so
// the row carries host_cores; on a single-core machine every shard count
// serializes onto one core and the barrier overhead is what's measured.
void shard_sweep() {
  const unsigned host_cores = std::thread::hardware_concurrency();
  std::printf("=== E4a addendum: sharded kernel, 200-router WAN (%u host cores) ===\n",
              host_cores);
  std::printf("%-8s %-12s %-10s %s\n", "shards", "wall_ms", "speedup", "identical");

  emu::Topology topology = workload::wan_topology({.routers = 200, .seed = 11});
  std::string serial_snapshot;
  double serial_ms = 0.0;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    emu::EmulationOptions options;
    options.shards = shards;
    emu::Emulation emulation(options);
    if (!emulation.add_topology(topology).ok()) return;
    emulation.start_all();
    auto begin = std::chrono::steady_clock::now();
    bool converged = emulation.run_to_convergence();
    auto end = std::chrono::steady_clock::now();
    double wall_ms =
        std::chrono::duration<double, std::milli>(end - begin).count();
    std::string snapshot =
        gnmi::Snapshot::capture(emulation, "snap").to_json().dump();
    if (shards == 1) {
      serial_snapshot = snapshot;
      serial_ms = wall_ms;
    }
    bool identical = snapshot == serial_snapshot;
    double speedup = wall_ms > 0.0 ? serial_ms / wall_ms : 0.0;
    std::printf("%-8u %-12.1f %-10.2f %s\n", shards, wall_ms, speedup,
                identical ? "yes" : "NO");
    mfv::util::Json fields = mfv::util::Json::object();
    fields["routers"] = 200;
    fields["shards"] = static_cast<int>(shards);
    fields["host_cores"] = static_cast<int>(host_cores);
    fields["wall_ms"] = wall_ms;
    fields["speedup_vs_serial"] = speedup;
    fields["identical_to_serial"] = identical;
    fields["converged"] = converged;
    fields["events"] = emulation.kernel().executed();
    fields["serial_fallbacks"] = emulation.serial_fallbacks();
    mfvbench::timing("E4A_SHARD", fields);
  }
  std::printf("\n");
}

void BM_EmulationWallClock(benchmark::State& state) {
  int routers = static_cast<int>(state.range(0));
  emu::Topology topology = workload::wan_topology({.routers = routers, .seed = 11});
  uint64_t entries = 0;
  for (auto _ : state) {
    emu::Emulation emulation;
    if (!emulation.add_topology(topology).ok()) return;
    emulation.start_all();
    emulation.run_to_convergence();
    entries = 0;
    for (const auto& device : emulation.dump_afts()) entries += device.aft.entry_count();
    benchmark::DoNotOptimize(entries);
  }
  state.counters["routers"] = routers;
  state.counters["fib_entries"] = static_cast<double>(entries);
}
BENCHMARK(BM_EmulationWallClock)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SchedulerThroughput(benchmark::State& state) {
  orch::ClusterSpec cluster = orch::ClusterSpec::standard(17);
  std::vector<orch::PodSpec> pods;
  for (int i = 0; i < 1000; ++i)
    pods.push_back({"r" + std::to_string(i), config::Vendor::kCeos,
                    orch::ImageKind::kContainer});
  for (auto _ : state) {
    auto placement = orch::schedule_pods(cluster, pods);
    benchmark::DoNotOptimize(placement.ok());
  }
}
BENCHMARK(BM_SchedulerThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_e4_scale",
                                        "BENCH_emu.json");
  report();
  shard_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
