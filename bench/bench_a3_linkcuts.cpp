// Ablation A3 (§6 "Exhaustive search across configuration scenarios"):
// checking that the network survives any single link cut by running one
// emulation per scenario plus a differential check against the baseline —
// the approach the paper describes as "doable for some queries but can be
// overly compute intensive for others such as searching any k link cuts,
// which grows exponentially".
//
// The report enumerates all single-link-cut scenarios on a WAN, finds the
// cuts that break reachability, and shows the scenario-count growth for
// k = 1, 2, 3.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gnmi/gnmi.hpp"
#include "verify/queries.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mfv;

struct CutResult {
  size_t scenarios = 0;
  size_t breaking_cuts = 0;
  size_t worst_broken_pairs = 0;
  std::string worst_cut;
};

CutResult sweep_single_cuts(const emu::Topology& topology) {
  CutResult result;
  // Baseline.
  emu::Emulation base;
  if (!base.add_topology(topology).ok()) return result;
  base.start_all();
  base.run_to_convergence();
  verify::PairwiseResult base_pairwise =
      verify::pairwise_reachability(verify::ForwardingGraph(
          gnmi::Snapshot::capture(base, "base")));

  for (const emu::LinkSpec& cut : topology.links) {
    // One emulation per scenario, as the paper prescribes.
    emu::Emulation emulation;
    if (!emulation.add_topology(topology).ok()) continue;
    emulation.start_all();
    emulation.run_to_convergence();
    emulation.set_link_up(cut.a, cut.b, false);
    emulation.run_to_convergence();
    ++result.scenarios;

    verify::ForwardingGraph graph(gnmi::Snapshot::capture(emulation, "cut"));
    verify::PairwiseResult pairwise = verify::pairwise_reachability(graph);
    size_t broken = base_pairwise.reachable_pairs - pairwise.reachable_pairs;
    if (broken > 0) {
      ++result.breaking_cuts;
      if (broken > result.worst_broken_pairs) {
        result.worst_broken_pairs = broken;
        result.worst_cut = cut.a.to_string() + " <-> " + cut.b.to_string();
      }
    }
  }
  return result;
}

uint64_t choose(uint64_t n, uint64_t k) {
  uint64_t result = 1;
  for (uint64_t i = 0; i < k; ++i) result = result * (n - i) / (i + 1);
  return result;
}

void report() {
  // A ring with a few chords: some links are redundant, bridge links are
  // not (rings with chords keep 2-connectivity except at chord-free spans).
  workload::WanOptions options;
  options.routers = 12;
  options.seed = 13;
  options.extra_chords = 2;
  emu::Topology topology = workload::wan_topology(options);

  CutResult single = sweep_single_cuts(topology);
  std::printf("=== A3: Exhaustive what-if search via per-scenario emulation ===\n");
  std::printf("topology: %zu routers, %zu links (ring + chords)\n\n",
              topology.nodes.size(), topology.links.size());
  std::printf("single-link-cut sweep (k=1):\n");
  std::printf("  scenarios emulated          : %zu\n", single.scenarios);
  std::printf("  cuts that break reachability: %zu (redundant design verified)\n",
              single.breaking_cuts);
  if (single.breaking_cuts > 0)
    std::printf("  worst cut                   : %s (%zu pairs lost)\n",
                single.worst_cut.c_str(), single.worst_broken_pairs);

  // Negative control: a line topology, where every link is a bridge — the
  // sweep must flag every cut.
  workload::WanOptions line_options;
  line_options.routers = 8;
  line_options.seed = 13;
  line_options.line = true;
  emu::Topology line = workload::wan_topology(line_options);
  CutResult line_result = sweep_single_cuts(line);
  std::printf("\nline-topology control (%zu links, all bridges):\n", line.links.size());
  std::printf("  cuts that break reachability: %zu/%zu\n", line_result.breaking_cuts,
              line_result.scenarios);
  std::printf("  worst cut                   : %s (%zu pairs lost)\n",
              line_result.worst_cut.c_str(), line_result.worst_broken_pairs);

  std::printf("\nscenario-count growth (the exponential the paper warns about):\n");
  uint64_t links = topology.links.size();
  for (uint64_t k = 1; k <= 3; ++k)
    std::printf("  k=%llu: %llu scenarios\n", static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(choose(links, k)));
  std::printf("\n");
}

void BM_SingleCutScenario(benchmark::State& state) {
  workload::WanOptions options;
  options.routers = 12;
  options.seed = 13;
  emu::Topology topology = workload::wan_topology(options);
  const emu::LinkSpec& cut = topology.links.front();
  for (auto _ : state) {
    emu::Emulation emulation;
    if (!emulation.add_topology(topology).ok()) return;
    emulation.start_all();
    emulation.run_to_convergence();
    emulation.set_link_up(cut.a, cut.b, false);
    emulation.run_to_convergence();
    verify::ForwardingGraph graph(gnmi::Snapshot::capture(emulation, "cut"));
    auto pairwise = verify::pairwise_reachability(graph);
    benchmark::DoNotOptimize(pairwise.reachable_pairs);
  }
}
BENCHMARK(BM_SingleCutScenario)->Unit(benchmark::kMillisecond);

void BM_IncrementalCutReconvergence(benchmark::State& state) {
  // Cheaper alternative: cut + heal on one long-lived emulation
  // (reconfiguration path instead of per-scenario cold start).
  workload::WanOptions options;
  options.routers = 12;
  options.seed = 13;
  emu::Topology topology = workload::wan_topology(options);
  emu::Emulation emulation;
  if (!emulation.add_topology(topology).ok()) return;
  emulation.start_all();
  emulation.run_to_convergence();
  const emu::LinkSpec& cut = topology.links.front();
  for (auto _ : state) {
    emulation.set_link_up(cut.a, cut.b, false);
    emulation.run_to_convergence();
    emulation.set_link_up(cut.a, cut.b, true);
    emulation.run_to_convergence();
  }
}
BENCHMARK(BM_IncrementalCutReconvergence)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
