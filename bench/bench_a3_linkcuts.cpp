// Ablation A3 (§6 "Exhaustive search across configuration scenarios"):
// checking that the network survives any single link cut. The paper
// prescribes one emulation per scenario and warns the approach "can be
// overly compute intensive for others such as searching any k link cuts,
// which grows exponentially".
//
// This report runs the sweep both ways on the same WAN:
//   * cold     — one full emulation boot per scenario (the paper's path);
//   * forked   — the scenario engine: boot once, fork the converged base
//                per scenario, apply the cut, re-converge incrementally
//                (serial and sharded across the thread pool).
// Fork-equivalence (tests/test_scenario_fork.cpp) guarantees both produce
// identical snapshots, so the speedup column is a pure-cost comparison.
// The forked path also makes the k=2 sweep (C(links,2) scenarios) cheap
// enough to actually run rather than just count.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_json.hpp"
#include "gnmi/gnmi.hpp"
#include "scenario/scenario.hpp"
#include "verify/queries.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mfv;

struct SweepStats {
  size_t scenarios = 0;
  size_t breaking_cuts = 0;
  size_t worst_broken_pairs = 0;
  std::string worst_cut;
  double ms = 0.0;
  /// Aggregated splice counters when the sweep verified incrementally.
  verify::IncrementalStats incremental;
  size_t fallbacks = 0;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A3 asks "does the network survive the cut", i.e. router-to-router
/// reachability — scope the pairwise sweep to the loopback range rather
/// than the full flow space (which the external full-feed routes blow up).
verify::QueryOptions a3_verify_options() {
  verify::QueryOptions options = scenario::ScenarioRunnerOptions{}.verify;
  options.scope = net::Ipv4Prefix::parse("10.1.0.0/16");
  return options;
}

/// The paper's approach: a fresh emulation booted to convergence per
/// scenario, then the cut, then re-convergence and the pairwise query.
/// Verify options match the scenario engine's per-scenario defaults, so
/// the query cost is identical on both sides of the comparison.
SweepStats sweep_cold(const emu::Topology& topology) {
  SweepStats stats;
  double begin = now_ms();
  verify::QueryOptions verify_options = a3_verify_options();

  emu::Emulation base;
  if (!base.add_topology(topology).ok()) return stats;
  base.start_all();
  base.run_to_convergence();
  verify::PairwiseResult base_pairwise = verify::pairwise_reachability(
      verify::ForwardingGraph(gnmi::Snapshot::capture(base, "base")), verify_options);

  for (const emu::LinkSpec& cut : topology.links) {
    emu::Emulation emulation;
    if (!emulation.add_topology(topology).ok()) continue;
    emulation.start_all();
    emulation.run_to_convergence();
    emulation.set_link_up(cut.a, cut.b, false);
    emulation.run_to_convergence();
    ++stats.scenarios;

    verify::ForwardingGraph graph(gnmi::Snapshot::capture(emulation, "cut"));
    verify::PairwiseResult pairwise = verify::pairwise_reachability(graph, verify_options);
    size_t broken = base_pairwise.reachable_pairs - pairwise.reachable_pairs;
    if (broken > 0) {
      ++stats.breaking_cuts;
      if (broken > stats.worst_broken_pairs) {
        stats.worst_broken_pairs = broken;
        stats.worst_cut = cut.a.to_string() + " <-> " + cut.b.to_string();
      }
    }
  }
  stats.ms = now_ms() - begin;
  return stats;
}

/// The scenario engine: fork the already-converged base per scenario.
/// The timer covers runner construction (base snapshot + base pairwise)
/// so the comparison against sweep_cold is end-to-end fair; the one-time
/// base boot itself is charged to neither side (cold pays it per scenario,
/// forked pays it once — passing it in pre-converged mirrors the real
/// usage where the base already exists).
SweepStats sweep_forked(const emu::Emulation& base,
                        const std::vector<scenario::Scenario>& scenarios,
                        unsigned threads, bool incremental = false) {
  SweepStats stats;
  double begin = now_ms();

  scenario::ScenarioRunnerOptions options;
  options.threads = threads;
  options.keep_snapshots = false;
  options.verify = a3_verify_options();
  options.incremental = incremental;
  scenario::ScenarioRunner runner(base, options);
  auto results = runner.run(scenarios);
  if (!results.ok()) return stats;

  for (const scenario::ScenarioResult& result : *results) {
    ++stats.scenarios;
    stats.incremental.accumulate(result.incremental);
    if (result.incremental.fell_back) ++stats.fallbacks;
    if (result.broken_pairs > 0) {
      ++stats.breaking_cuts;
      if (result.broken_pairs > stats.worst_broken_pairs) {
        stats.worst_broken_pairs = result.broken_pairs;
        stats.worst_cut = result.name;
      }
    }
  }
  stats.ms = now_ms() - begin;
  return stats;
}

uint64_t choose(uint64_t n, uint64_t k) {
  uint64_t result = 1;
  for (uint64_t i = 0; i < k; ++i) result = result * (n - i) / (i + 1);
  return result;
}

void print_row(const char* label, const SweepStats& stats, double cold_ms) {
  double per_sec = stats.ms > 0 ? 1000.0 * static_cast<double>(stats.scenarios) / stats.ms
                                : 0.0;
  double speedup = stats.ms > 0 ? cold_ms / stats.ms : 0.0;
  std::printf("  %-18s %9zu %10.1f %13.1f %11.2fx %8zu\n", label, stats.scenarios,
              stats.ms, per_sec, speedup, stats.breaking_cuts);
}

/// One A3_TIMING row (legacy line + JSON); `cold_ms` > 0 adds a speedup.
void record_sweep(const char* sweep, const char* approach, const SweepStats& stats,
                  double cold_ms) {
  mfv::util::Json fields = mfv::util::Json::object();
  fields["sweep"] = sweep;
  fields["approach"] = approach;
  fields["scenarios"] = static_cast<uint64_t>(stats.scenarios);
  fields["ms"] = stats.ms;
  if (cold_ms > 0 && stats.ms > 0) fields["speedup"] = cold_ms / stats.ms;
  if (stats.incremental.classes > 0 || stats.fallbacks > 0) {
    fields["splice_hits"] = static_cast<uint64_t>(stats.incremental.spliced);
    fields["retraced"] = static_cast<uint64_t>(stats.incremental.retraced);
    fields["dirty_classes"] = static_cast<uint64_t>(stats.incremental.dirty_classes);
    fields["fallbacks"] = static_cast<uint64_t>(stats.fallbacks);
  }
  mfvbench::timing("A3_TIMING", fields);
}

void report() {
  // A ring with a few chords: some links are redundant, bridge links are
  // not (rings with chords keep 2-connectivity except at chord-free spans).
  // The iBGP mesh + external route feeds make the cold boot realistically
  // expensive (session establishment + full-feed propagation); a link cut
  // only has to re-run the IGP and shift affected BGP next-hops, which is
  // exactly the asymmetry the fork path exploits.
  workload::WanOptions options;
  options.routers = 12;
  options.seed = 13;
  options.extra_chords = 2;
  options.ibgp_mesh = true;
  options.border_count = 2;
  options.routes_per_peer = 200;
  emu::Topology topology = workload::wan_topology(options);

  emu::Emulation base;
  if (!base.add_topology(topology).ok()) return;
  base.start_all();
  base.run_to_convergence();

  std::vector<scenario::Scenario> k1 = scenario::single_link_cuts(topology);
  SweepStats cold = sweep_cold(topology);
  SweepStats forked_serial = sweep_forked(base, k1, /*threads=*/1);
  SweepStats forked_threaded = sweep_forked(base, k1, /*threads=*/0);
  SweepStats incremental_threaded =
      sweep_forked(base, k1, /*threads=*/0, /*incremental=*/true);

  std::printf("=== A3: Exhaustive what-if search, per-scenario emulation vs forking ===\n");
  std::printf("topology: %zu routers, %zu links (ring + chords)\n\n",
              topology.nodes.size(), topology.links.size());
  std::printf("single-link-cut sweep (k=1):\n");
  std::printf("  %-18s %9s %10s %13s %12s %8s\n", "approach", "scenarios", "ms",
              "scenarios/sec", "vs cold", "breaking");
  print_row("cold boot", cold, cold.ms);
  print_row("forked serial", forked_serial, cold.ms);
  print_row("forked threaded", forked_threaded, cold.ms);
  print_row("incr threaded", incremental_threaded, cold.ms);
  if (cold.breaking_cuts != forked_serial.breaking_cuts ||
      cold.breaking_cuts != forked_threaded.breaking_cuts ||
      cold.breaking_cuts != incremental_threaded.breaking_cuts)
    std::printf("  WARNING: breaking-cut counts disagree between approaches\n");
  if (forked_serial.worst_broken_pairs > 0)
    std::printf("  worst cut: %s (%zu pairs lost)\n", forked_serial.worst_cut.c_str(),
                forked_serial.worst_broken_pairs);
  std::printf("  incremental: %zu spliced / %zu retraced columns, %zu fallbacks\n",
              incremental_threaded.incremental.spliced,
              incremental_threaded.incremental.retraced,
              incremental_threaded.fallbacks);
  record_sweep("k1", "cold", cold, 0);
  record_sweep("k1", "forked-serial", forked_serial, cold.ms);
  record_sweep("k1", "forked-threaded", forked_threaded, cold.ms);
  record_sweep("k1", "incremental-threaded", incremental_threaded, cold.ms);

  // The exponential the paper warns about — now with the k=2 sweep
  // actually executed on the scenario engine instead of only counted.
  std::printf("\nscenario-count growth:\n");
  uint64_t links = topology.links.size();
  for (uint64_t k = 1; k <= 3; ++k)
    std::printf("  k=%llu: %llu scenarios\n", static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(choose(links, k)));

  std::vector<scenario::Scenario> k2 = scenario::k_link_cuts(topology, 2);
  SweepStats k2_stats = sweep_forked(base, k2, /*threads=*/0);
  double k2_per_sec =
      k2_stats.ms > 0 ? 1000.0 * static_cast<double>(k2_stats.scenarios) / k2_stats.ms : 0.0;
  std::printf("\ndouble-link-cut sweep (k=2, forked threaded):\n");
  std::printf("  scenarios run               : %zu in %.1f ms (%.1f scenarios/sec)\n",
              k2_stats.scenarios, k2_stats.ms, k2_per_sec);
  std::printf("  cuts that break reachability: %zu\n", k2_stats.breaking_cuts);
  if (k2_stats.worst_broken_pairs > 0)
    std::printf("  worst pair of cuts          : %s (%zu pairs lost)\n",
                k2_stats.worst_cut.c_str(), k2_stats.worst_broken_pairs);
  record_sweep("k2", "forked-threaded", k2_stats, 0);
  SweepStats k2_incremental = sweep_forked(base, k2, /*threads=*/0, /*incremental=*/true);
  std::printf("  incremental rerun           : %.1f ms (%.2fx; %zu spliced / %zu "
              "retraced, %zu fallbacks)\n",
              k2_incremental.ms,
              k2_incremental.ms > 0 ? k2_stats.ms / k2_incremental.ms : 0.0,
              k2_incremental.incremental.spliced, k2_incremental.incremental.retraced,
              k2_incremental.fallbacks);
  record_sweep("k2", "incremental-threaded", k2_incremental, k2_stats.ms);

  // Incremental verification at scale: on a 200-router WAN the pairwise
  // verify dominates each forked scenario, which is exactly the cost the
  // splicer removes. The k=2 sweep is restricted to cuts among the first
  // 14 links (C(14,2) = 91 scenarios) to keep the cold side runnable.
  workload::WanOptions big_options;
  big_options.routers = 200;
  big_options.seed = 11;
  emu::Topology big = workload::wan_topology(big_options);
  emu::Emulation big_base;
  if (!big_base.add_topology(big).ok()) return;
  big_base.start_all();
  big_base.run_to_convergence();
  emu::Topology big_cuts = big;
  if (big_cuts.links.size() > 14) big_cuts.links.resize(14);
  std::vector<scenario::Scenario> big_k2 = scenario::k_link_cuts(big_cuts, 2);
  SweepStats big_cold = sweep_forked(big_base, big_k2, /*threads=*/0);
  SweepStats big_incremental =
      sweep_forked(big_base, big_k2, /*threads=*/0, /*incremental=*/true);
  std::printf("\n200-router WAN, k=2 over first 14 links (%zu scenarios):\n",
              big_k2.size());
  std::printf("  forked + cold verify        : %.1f ms\n", big_cold.ms);
  std::printf("  forked + incremental verify : %.1f ms (%.2fx; %zu spliced / %zu "
              "retraced, %zu fallbacks)\n",
              big_incremental.ms,
              big_incremental.ms > 0 ? big_cold.ms / big_incremental.ms : 0.0,
              big_incremental.incremental.spliced,
              big_incremental.incremental.retraced, big_incremental.fallbacks);
  if (big_cold.breaking_cuts != big_incremental.breaking_cuts)
    std::printf("  WARNING: breaking-cut counts disagree (cold %zu vs incremental %zu)\n",
                big_cold.breaking_cuts, big_incremental.breaking_cuts);
  record_sweep("k2-200r", "forked-threaded", big_cold, 0);
  record_sweep("k2-200r", "incremental-threaded", big_incremental, big_cold.ms);

  // Negative control: a line topology, where every link is a bridge — the
  // sweep must flag every cut.
  workload::WanOptions line_options;
  line_options.routers = 8;
  line_options.seed = 13;
  line_options.line = true;
  emu::Topology line = workload::wan_topology(line_options);
  emu::Emulation line_base;
  if (!line_base.add_topology(line).ok()) return;
  line_base.start_all();
  line_base.run_to_convergence();
  SweepStats line_stats =
      sweep_forked(line_base, scenario::single_link_cuts(line), /*threads=*/0);
  std::printf("\nline-topology control (%zu links, all bridges):\n", line.links.size());
  std::printf("  cuts that break reachability: %zu/%zu\n", line_stats.breaking_cuts,
              line_stats.scenarios);
  std::printf("  worst cut                   : %s (%zu pairs lost)\n",
              line_stats.worst_cut.c_str(), line_stats.worst_broken_pairs);
  std::printf("\n");
}

void BM_SingleCutScenarioColdBoot(benchmark::State& state) {
  workload::WanOptions options;
  options.routers = 12;
  options.seed = 13;
  emu::Topology topology = workload::wan_topology(options);
  const emu::LinkSpec& cut = topology.links.front();
  for (auto _ : state) {
    emu::Emulation emulation;
    if (!emulation.add_topology(topology).ok()) return;
    emulation.start_all();
    emulation.run_to_convergence();
    emulation.set_link_up(cut.a, cut.b, false);
    emulation.run_to_convergence();
    verify::ForwardingGraph graph(gnmi::Snapshot::capture(emulation, "cut"));
    auto pairwise = verify::pairwise_reachability(graph);
    benchmark::DoNotOptimize(pairwise.reachable_pairs);
  }
}
BENCHMARK(BM_SingleCutScenarioColdBoot)->Unit(benchmark::kMillisecond);

void BM_SingleCutScenarioForked(benchmark::State& state) {
  // Same scenario as BM_SingleCutScenarioColdBoot, on the fork path: the
  // converged base is built once outside the loop.
  workload::WanOptions options;
  options.routers = 12;
  options.seed = 13;
  emu::Topology topology = workload::wan_topology(options);
  emu::Emulation base;
  if (!base.add_topology(topology).ok()) return;
  base.start_all();
  base.run_to_convergence();
  const emu::LinkSpec& cut = topology.links.front();
  for (auto _ : state) {
    std::unique_ptr<emu::Emulation> fork = base.fork();
    fork->set_link_up(cut.a, cut.b, false);
    fork->run_to_convergence();
    verify::ForwardingGraph graph(gnmi::Snapshot::capture(*fork, "cut"));
    auto pairwise = verify::pairwise_reachability(graph);
    benchmark::DoNotOptimize(pairwise.reachable_pairs);
  }
}
BENCHMARK(BM_SingleCutScenarioForked)->Unit(benchmark::kMillisecond);

void BM_ForkConvergedBase(benchmark::State& state) {
  // The raw cost of Emulation::fork() itself (deep copy, no re-convergence).
  workload::WanOptions options;
  options.routers = 12;
  options.seed = 13;
  emu::Topology topology = workload::wan_topology(options);
  emu::Emulation base;
  if (!base.add_topology(topology).ok()) return;
  base.start_all();
  base.run_to_convergence();
  for (auto _ : state) {
    std::unique_ptr<emu::Emulation> fork = base.fork();
    benchmark::DoNotOptimize(fork.get());
  }
}
BENCHMARK(BM_ForkConvergedBase)->Unit(benchmark::kMillisecond);

void BM_IncrementalCutReconvergence(benchmark::State& state) {
  // Cut + heal on one long-lived emulation (reconfiguration path; the
  // in-place lower bound the fork path approaches without the healing).
  workload::WanOptions options;
  options.routers = 12;
  options.seed = 13;
  emu::Topology topology = workload::wan_topology(options);
  emu::Emulation emulation;
  if (!emulation.add_topology(topology).ok()) return;
  emulation.start_all();
  emulation.run_to_convergence();
  const emu::LinkSpec& cut = topology.links.front();
  for (auto _ : state) {
    emulation.set_link_up(cut.a, cut.b, false);
    emulation.run_to_convergence();
    emulation.set_link_up(cut.a, cut.b, true);
    emulation.run_to_convergence();
  }
}
BENCHMARK(BM_IncrementalCutReconvergence)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_a3_linkcuts");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
