// Experiment E2: "Model-based verification struggles with feature
// coverage."
//
// The paper fed the (emulation-clean) Fig. 2 configurations to native
// Batfish and found 38-42 unrecognized lines per config — management
// daemons, gRPC/gNMI/SSL services, and materially-relevant MPLS/MPLS-TE.
// This bench runs both parsers over the same configs and prints the
// per-config coverage table, then times the parsers.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "config/dialect.hpp"
#include "model/reference_parser.hpp"
#include "workload/generator.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace mfv;

void report() {
  emu::Topology topology = workload::fig2_topology(false);
  std::printf("=== E2: Parser coverage, vendor parser vs reference model ===\n");
  std::printf("paper: 38-42 unrecognized lines per config (of 62-82 total);\n");
  std::printf("       vendor device accepts every line\n\n");
  std::printf("%-6s %-7s %-16s %-18s %-10s\n", "node", "lines", "vendor-errors",
              "model-unparsed", "in-range");
  size_t in_range = 0;
  for (const emu::NodeSpec& node : topology.nodes) {
    config::ParseResult vendor = config::parse_config(node.config_text, node.vendor);
    model::ReferenceParseResult reference = model::reference_parse(node.config_text);
    size_t unparsed = reference.diagnostics.unrecognized_count() +
                      reference.diagnostics.error_count();
    bool ok = unparsed >= 38 && unparsed <= 42;
    in_range += ok;
    std::printf("%-6s %-7d %-16zu %zu (%d material) %-4s %s\n", node.name.c_str(),
                vendor.total_lines, vendor.diagnostics.error_count(), unparsed,
                reference.material_unrecognized, "", ok ? "yes" : "NO");
  }
  std::printf("\nConfigs within the paper's 38-42 band: %zu/%zu\n", in_range,
              topology.nodes.size());
  std::printf("Materially-relevant gaps are MPLS / MPLS-TE lines, exactly the\n"
              "features the paper names as absent from the model.\n\n");

  // The paper's 2025 experiment: "we experimented with 1500 production
  // router configurations across a number of network roles, but found that
  // all of them failed in the parsing phase due to unsupported features".
  auto corpus = workload::production_corpus(1500, /*vjun_fraction=*/0.3, /*seed=*/7);
  size_t failed = 0;
  size_t vendor_clean = 0;
  for (const emu::NodeSpec& node : corpus) {
    model::ReferenceParseResult reference = model::reference_parse(node.config_text);
    if (reference.diagnostics.unrecognized_count() + reference.diagnostics.error_count() >
        0)
      ++failed;
    config::ParseResult vendor = config::parse_config(node.config_text, node.vendor);
    if (vendor.diagnostics.error_count() == 0) ++vendor_clean;
  }
  std::printf("production-corpus study (paper: 1500 configs, all failed parsing):\n");
  std::printf("  %-44s %zu/%zu\n", "configs with model parsing failures", failed,
              corpus.size());
  std::printf("  %-44s %zu/%zu\n", "configs the vendor parser accepts cleanly",
              vendor_clean, corpus.size());
  mfv::util::Json fields = mfv::util::Json::object();
  fields["configs_in_paper_band"] = static_cast<uint64_t>(in_range);
  fields["corpus_size"] = static_cast<uint64_t>(corpus.size());
  fields["corpus_model_failures"] = static_cast<uint64_t>(failed);
  fields["corpus_vendor_clean"] = static_cast<uint64_t>(vendor_clean);
  mfvbench::timing("E2_RESULT", fields);
  std::printf("\n");
}

void BM_VendorParser(benchmark::State& state) {
  emu::Topology topology = workload::fig2_topology(false);
  for (auto _ : state) {
    for (const emu::NodeSpec& node : topology.nodes) {
      auto parsed = config::parse_config(node.config_text, node.vendor);
      benchmark::DoNotOptimize(parsed.total_lines);
    }
  }
}
BENCHMARK(BM_VendorParser)->Unit(benchmark::kMicrosecond);

void BM_ReferenceParser(benchmark::State& state) {
  emu::Topology topology = workload::fig2_topology(false);
  for (auto _ : state) {
    for (const emu::NodeSpec& node : topology.nodes) {
      auto parsed = model::reference_parse(node.config_text);
      benchmark::DoNotOptimize(parsed.total_lines);
    }
  }
}
BENCHMARK(BM_ReferenceParser)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_e2_coverage");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
