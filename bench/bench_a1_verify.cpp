// Ablation A1: verification engine cost versus network size.
//
// Supports §3's claim that dataplane verification provides "exhaustive
// search" cheaply once the dataplane exists: measures packet-class counts
// and query latencies as the WAN grows, and the trade-off the paper
// discusses in §6 — per-scenario emulation is the expensive stage,
// verification of a snapshot is fast.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gnmi/gnmi.hpp"
#include "verify/queries.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mfv;

gnmi::Snapshot converge(int routers) {
  emu::Emulation emulation;
  if (!emulation.add_topology(workload::wan_topology({.routers = routers, .seed = 11})).ok())
    return {};
  emulation.start_all();
  emulation.run_to_convergence();
  return gnmi::Snapshot::capture(emulation, "wan");
}

void report() {
  std::printf("=== A1: Verification cost vs network size (IS-IS WANs) ===\n");
  std::printf("%-9s %-12s %-10s %-14s %-12s\n", "routers", "fib-entries", "classes",
              "flows", "full-mesh");
  for (int routers : {10, 20, 40, 80}) {
    gnmi::Snapshot snapshot = converge(routers);
    verify::ForwardingGraph graph(snapshot);
    verify::QueryOptions options;
    options.sources = {"wan0"};  // one source, all destination classes
    auto result = verify::reachability(graph, options);
    auto pairwise = verify::pairwise_reachability(graph);
    std::printf("%-9d %-12zu %-10zu %-14zu %s\n", routers, snapshot.total_entries(),
                result.classes, result.flows * static_cast<size_t>(routers),
                pairwise.full_mesh() ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_ReachabilityQuery(benchmark::State& state) {
  gnmi::Snapshot snapshot = converge(static_cast<int>(state.range(0)));
  verify::ForwardingGraph graph(snapshot);
  for (auto _ : state) {
    auto result = verify::reachability(graph);
    benchmark::DoNotOptimize(result.flows);
  }
  state.counters["routers"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ReachabilityQuery)->Arg(10)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_DifferentialQuery(benchmark::State& state) {
  gnmi::Snapshot snapshot = converge(static_cast<int>(state.range(0)));
  verify::ForwardingGraph base(snapshot);
  verify::ForwardingGraph candidate(snapshot);
  for (auto _ : state) {
    auto result = verify::differential_reachability(base, candidate);
    benchmark::DoNotOptimize(result.flows);
  }
}
BENCHMARK(BM_DifferentialQuery)->Arg(10)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_GraphConstruction(benchmark::State& state) {
  gnmi::Snapshot snapshot = converge(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    verify::ForwardingGraph graph(snapshot);
    benchmark::DoNotOptimize(graph.nodes().size());
  }
}
BENCHMARK(BM_GraphConstruction)->Arg(20)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_SingleTraceroute(benchmark::State& state) {
  gnmi::Snapshot snapshot = converge(40);
  verify::ForwardingGraph graph(snapshot);
  auto destination = verify::device_loopback(snapshot, "wan39");
  for (auto _ : state) {
    auto trace = verify::trace_flow(graph, "wan0", *destination);
    benchmark::DoNotOptimize(trace.paths.size());
  }
}
BENCHMARK(BM_SingleTraceroute)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
