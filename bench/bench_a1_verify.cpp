// Ablation A1: verification engine cost versus network size.
//
// Supports §3's claim that dataplane verification provides "exhaustive
// search" cheaply once the dataplane exists: measures packet-class counts
// and query latencies as the WAN grows, and the trade-off the paper
// discusses in §6 — per-scenario emulation is the expensive stage,
// verification of a snapshot is fast.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_json.hpp"
#include "gnmi/gnmi.hpp"
#include "obs/metrics.hpp"
#include "verify/queries.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mfv;

gnmi::Snapshot converge(int routers) {
  emu::Emulation emulation;
  if (!emulation.add_topology(workload::wan_topology({.routers = routers, .seed = 11})).ok())
    return {};
  emulation.start_all();
  emulation.run_to_convergence();
  return gnmi::Snapshot::capture(emulation, "wan");
}

void report() {
  std::printf("=== A1: Verification cost vs network size (IS-IS WANs) ===\n");
  std::printf("%-9s %-12s %-10s %-14s %-12s\n", "routers", "fib-entries", "classes",
              "flows", "full-mesh");
  for (int routers : {10, 20, 40, 80}) {
    gnmi::Snapshot snapshot = converge(routers);
    verify::ForwardingGraph graph(snapshot);
    verify::QueryOptions options;
    options.sources = {"wan0"};  // one source, all destination classes
    auto result = verify::reachability(graph, options);
    auto pairwise = verify::pairwise_reachability(graph);
    std::printf("%-9d %-12zu %-10zu %-14zu %s\n", routers, snapshot.total_entries(),
                result.classes, result.flows * static_cast<size_t>(routers),
                pairwise.full_mesh() ? "yes" : "NO");
  }
  std::printf("\n");
}

/// Serial-vs-parallel and cached-vs-uncached comparison on the headline
/// 200-router sweep. Emits machine-readable `A1_TIMING`/`A1_SPEEDUP`
/// lines so experiment scripts can scrape the numbers.
void engine_report() {
  constexpr int kRouters = 200;
  gnmi::Snapshot snapshot = converge(kRouters);
  verify::ForwardingGraph graph(snapshot);

  auto run = [&](const char* label, verify::QueryOptions options) {
    auto begin = std::chrono::steady_clock::now();
    auto result = verify::reachability(graph, options);
    auto end = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(end - begin).count();
    mfv::util::Json fields = mfv::util::Json::object();
    fields["routers"] = kRouters;
    fields["engine"] = label;
    fields["threads"] = static_cast<uint64_t>(options.threads);
    fields["flows"] = static_cast<uint64_t>(result.flows);
    fields["ms"] = ms;
    mfvbench::timing("A1_TIMING", fields);
    return ms;
  };

  std::printf("=== A1: engine comparison, %d-router reachability sweep ===\n",
              kRouters);
  verify::QueryOptions serial;
  serial.threads = 1;
  serial.engine = verify::EngineMode::kLegacy;
  double serial_ms = run("serial", serial);

  verify::QueryOptions cached_serial;
  cached_serial.threads = 1;
  cached_serial.engine = verify::EngineMode::kCached;
  double cached_serial_ms = run("cached-serial", cached_serial);

  verify::QueryOptions parallel;
  parallel.threads = 8;
  parallel.engine = verify::EngineMode::kCached;
  double parallel_ms = run("cached-parallel", parallel);

  mfv::util::Json speedup = mfv::util::Json::object();
  speedup["routers"] = kRouters;
  speedup["cached_serial"] = serial_ms / cached_serial_ms;
  speedup["cached_parallel"] = serial_ms / parallel_ms;
  mfvbench::timing("A1_SPEEDUP", speedup);
  std::printf("\n");
}

/// Observability tax: the cached-parallel sweep with no metrics sink versus
/// the same sweep publishing into a live obs::MetricsRegistry. Both sides
/// run kReps times and keep the best wall time (noise floor, not average),
/// and the registry snapshot itself rides along in the JSON report.
void obs_overhead_report() {
  constexpr int kRouters = 200;
  constexpr int kReps = 5;
  gnmi::Snapshot snapshot = converge(kRouters);
  verify::ForwardingGraph graph(snapshot);

  obs::MetricsRegistry registry;
  auto best_of = [&](obs::MetricsRegistry* metrics) {
    verify::QueryOptions options;
    options.threads = 8;
    options.engine = verify::EngineMode::kCached;
    options.metrics = metrics;
    double best = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      auto begin = std::chrono::steady_clock::now();
      auto result = verify::reachability(graph, options);
      auto end = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(result.flows);
      double ms = std::chrono::duration<double, std::milli>(end - begin).count();
      if (rep == 0 || ms < best) best = ms;
    }
    return best;
  };

  std::printf("=== A1: observability overhead, %d-router cached-parallel sweep ===\n",
              kRouters);
  double plain_ms = best_of(nullptr);
  double instrumented_ms = best_of(&registry);

  mfv::util::Json fields = mfv::util::Json::object();
  fields["routers"] = kRouters;
  fields["reps"] = kReps;
  fields["plain_ms"] = plain_ms;
  fields["instrumented_ms"] = instrumented_ms;
  fields["overhead_pct"] = (instrumented_ms / plain_ms - 1.0) * 100.0;
  mfvbench::timing("A1_OBS", fields);
  mfvbench::JsonReport::instance().attach("metrics", registry.to_json());
  std::printf("\n");
}

void BM_ReachabilityQuery(benchmark::State& state) {
  gnmi::Snapshot snapshot = converge(static_cast<int>(state.range(0)));
  verify::ForwardingGraph graph(snapshot);
  verify::QueryOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  options.engine = state.range(2) != 0 ? verify::EngineMode::kCached
                                       : verify::EngineMode::kLegacy;
  for (auto _ : state) {
    auto result = verify::reachability(graph, options);
    benchmark::DoNotOptimize(result.flows);
  }
  state.counters["routers"] = static_cast<double>(state.range(0));
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["cached"] = static_cast<double>(state.range(2));
}
// Rows: serial legacy baseline, cached at one thread (memoization win
// alone), cached at eight threads (memoization + sharding).
BENCHMARK(BM_ReachabilityQuery)
    ->Args({10, 1, 0})->Args({20, 1, 0})->Args({40, 1, 0})
    ->Args({10, 1, 1})->Args({20, 1, 1})->Args({40, 1, 1})
    ->Args({10, 8, 1})->Args({20, 8, 1})->Args({40, 8, 1})
    ->Unit(benchmark::kMillisecond);

void BM_DifferentialQuery(benchmark::State& state) {
  gnmi::Snapshot snapshot = converge(static_cast<int>(state.range(0)));
  verify::ForwardingGraph base(snapshot);
  verify::ForwardingGraph candidate(snapshot);
  verify::QueryOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  options.engine = state.range(1) > 1 ? verify::EngineMode::kCached
                                      : verify::EngineMode::kLegacy;
  for (auto _ : state) {
    auto result = verify::differential_reachability(base, candidate, options);
    benchmark::DoNotOptimize(result.flows);
  }
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_DifferentialQuery)
    ->Args({10, 1})->Args({20, 1})->Args({40, 1})
    ->Args({10, 8})->Args({20, 8})->Args({40, 8})
    ->Unit(benchmark::kMillisecond);

void BM_GraphConstruction(benchmark::State& state) {
  gnmi::Snapshot snapshot = converge(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    verify::ForwardingGraph graph(snapshot);
    benchmark::DoNotOptimize(graph.nodes().size());
  }
}
BENCHMARK(BM_GraphConstruction)->Arg(20)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_SingleTraceroute(benchmark::State& state) {
  gnmi::Snapshot snapshot = converge(40);
  verify::ForwardingGraph graph(snapshot);
  auto destination = verify::device_loopback(snapshot, "wan39");
  for (auto _ : state) {
    auto trace = verify::trace_flow(graph, "wan0", *destination);
    benchmark::DoNotOptimize(trace.paths.size());
  }
}
BENCHMARK(BM_SingleTraceroute)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_a1_verify");
  report();
  engine_report();
  obs_overhead_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
