// Ablation A4 (§2 anecdote): "poor interplay between RSVP-TE signaling
// timers in two vendors resulted in very slow reconvergence after a major
// link-cut, leading to tens of minutes of severe congestion."
//
// Exactly the class of bug a single reference model cannot exhibit (all
// vendors share one model there) but multi-vendor emulation does: our
// vendor behaviour profiles re-signal and refresh RSVP-TE state quickly on
// ceos (~1 s) and slowly on vjun (~30 s refresh interval). An LSP that
// re-routes through a vjun transit hop waits for that hop's refresh timer,
// so reconvergence is an order of magnitude slower than on an all-ceos
// path.
//
// Topology: head --- mid === tail (two parallel mid-tail links, the LSP
// takes the cheap one). Cutting the active mid-tail link forces the
// head-end to re-signal through `mid`, which already holds state for the
// session — the slow-refresh vendor defers processing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "config/dialect.hpp"
#include "emu/emulation.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mfv;

struct PortSpec {
  int port;
  std::string cidr;
  uint32_t metric;
};

std::string router_config(const std::string& name, int index, config::Vendor vendor,
                          const std::vector<PortSpec>& ports, bool tunnel_to_tail) {
  config::DeviceConfig config;
  config.hostname = name;
  config.vendor = vendor;
  config.isis.enabled = true;
  config.isis.instance = "default";
  char net[40];
  std::snprintf(net, sizeof(net), "49.0001.0000.0000.%04x.00", index);
  config.isis.net = net;
  config.isis.af_ipv4_unicast = true;
  auto& loopback = config.interface(workload::loopback_name(vendor));
  loopback.switchport = false;
  loopback.address = net::InterfaceAddress::parse("10.0.0." + std::to_string(index) + "/32");
  loopback.isis_enabled = true;
  loopback.isis_passive = true;
  for (const PortSpec& spec : ports) {
    auto& iface = config.interface(workload::interface_name(vendor, spec.port));
    iface.switchport = false;
    iface.address = net::InterfaceAddress::parse(spec.cidr);
    iface.isis_enabled = true;
    iface.isis_metric = spec.metric;
    iface.mpls_enabled = true;
  }
  config.mpls.enabled = true;
  config.mpls.te_enabled = true;
  if (tunnel_to_tail) {
    config::TeTunnel tunnel;
    tunnel.name = "TE-HEAD-TAIL";
    tunnel.destination = *net::Ipv4Address::parse("10.0.0.3");
    config.mpls.tunnels.push_back(tunnel);
  }
  return config::write_config(config);
}

emu::Topology build(config::Vendor mid_vendor) {
  emu::Topology topology;
  topology.nodes.push_back({"head", config::Vendor::kCeos,
                            router_config("head", 1, config::Vendor::kCeos,
                                          {{1, "100.64.0.0/31", 10}}, true)});
  topology.nodes.push_back(
      {"mid", mid_vendor,
       router_config("mid", 2, mid_vendor,
                     {{1, "100.64.0.1/31", 10},
                      {2, "100.64.0.2/31", 10},    // cheap link to tail
                      {3, "100.64.0.4/31", 20}},   // backup link to tail
                     false)});
  topology.nodes.push_back({"tail", config::Vendor::kCeos,
                            router_config("tail", 3, config::Vendor::kCeos,
                                          {{1, "100.64.0.3/31", 10},
                                           {2, "100.64.0.5/31", 20}},
                                          false)});
  auto mid_port = [&](int port) {
    return net::PortRef{"mid", workload::interface_name(mid_vendor, port)};
  };
  topology.links.push_back(
      {{"head", "Ethernet1"}, mid_port(1), 1000});
  topology.links.push_back({mid_port(2), {"tail", "Ethernet1"}, 1000});
  topology.links.push_back({mid_port(3), {"tail", "Ethernet2"}, 1000});
  return topology;
}

/// Tunnel reconvergence time (virtual seconds) after cutting the active
/// mid-tail link.
double reconvergence_seconds(config::Vendor mid_vendor) {
  emu::Topology topology = build(mid_vendor);
  emu::Emulation emulation;
  if (!emulation.add_topology(topology).ok()) return -1;
  emulation.start_all();
  emulation.run_to_convergence();
  const auto* head = emulation.router("head");
  if (head->te()->tunnels().at("TE-HEAD-TAIL").state != proto::TunnelState::kUp) return -1;

  util::TimePoint before = emulation.kernel().now();
  emulation.set_link_up({"mid", workload::interface_name(mid_vendor, 2)},
                        {"tail", "Ethernet1"}, false);
  // Head-end notices the dead LSP (Resv timeout analogue) and re-signals.
  const emu::NodeSpec* head_spec = topology.find_node("head");
  emulation.apply_config_text("head", head_spec->config_text, config::Vendor::kCeos);
  emulation.run_to_convergence();

  const auto& tunnel = emulation.router("head")->te()->tunnels().at("TE-HEAD-TAIL");
  if (tunnel.state != proto::TunnelState::kUp) return -1;
  return (emulation.converged_at() - before).seconds_double();
}

void report() {
  double pure_ceos = reconvergence_seconds(config::Vendor::kCeos);
  double mixed = reconvergence_seconds(config::Vendor::kVjun);
  std::printf("=== A4: RSVP-TE signaling-timer interplay across vendors ===\n");
  std::printf("LSP reconvergence after a link cut (virtual time):\n");
  std::printf("  %-38s %.1f s\n", "all-ceos path (fast refresh)", pure_ceos);
  std::printf("  %-38s %.1f s\n", "re-route through a vjun transit hop", mixed);
  if (pure_ceos > 0)
    std::printf("  %-38s %.1fx\n", "slowdown from timer interplay", mixed / pure_ceos);
  mfv::util::Json fields = mfv::util::Json::object();
  fields["all_ceos_s"] = pure_ceos;
  fields["mixed_vendor_s"] = mixed;
  if (pure_ceos > 0) fields["slowdown"] = mixed / pure_ceos;
  mfvbench::timing("A4_TIMING", fields);
  std::printf("\npaper (§2): mismatched RSVP-TE timers between two vendors caused\n"
              "\"very slow reconvergence after a major link-cut\". A single\n"
              "reference model cannot exhibit this; per-vendor emulation does.\n\n");
}

void BM_MixedVendorReconvergence(benchmark::State& state) {
  for (auto _ : state) {
    double seconds = reconvergence_seconds(config::Vendor::kVjun);
    benchmark::DoNotOptimize(seconds);
  }
}
BENCHMARK(BM_MixedVendorReconvergence)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_a4_interop");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
