// Shared machine-readable output for the bench binaries.
//
// Every bench keeps printing its legacy greppable `X_TIMING k=v` lines;
// routing those prints through mfvbench::timing() additionally records
// them, and `--json out.json` (stripped from argv before the benchmark
// library parses flags) dumps everything recorded as one JSON document:
//
//   { "bench": "bench_a3_linkcuts",
//     "metrics": [ {"metric": "A3_TIMING", "sweep": "k1", ...}, ... ] }
//
// Field order inside each metric row follows the legacy line order
// (util::Json objects preserve insertion order).
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "util/json.hpp"

namespace mfvbench {

class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport report;
    return report;
  }

  /// Consumes `--json PATH` / `--json=PATH` from argv (call before
  /// benchmark::Initialize, which rejects unknown flags). `default_path`
  /// makes the report unconditional for benches whose JSON output is part
  /// of their contract (bench_service → BENCH_service.json).
  void init(int* argc, char** argv, std::string bench, std::string default_path = "") {
    bench_ = std::move(bench);
    path_ = std::move(default_path);
    int out = 1;
    for (int in = 1; in < *argc; ++in) {
      std::string arg = argv[in];
      if (arg == "--json" && in + 1 < *argc) {
        path_ = argv[++in];
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      } else {
        argv[out++] = argv[in];
      }
    }
    *argc = out;
    argv[*argc] = nullptr;
  }

  void add(const std::string& metric, mfv::util::Json fields) {
    mfv::util::Json row = mfv::util::Json::object();
    row["metric"] = metric;
    if (fields.is_object())
      for (const auto& [key, value] : fields.members()) row[key] = value;
    rows_.push_back(std::move(row));
  }

  /// Attaches a named sub-document to the report — e.g. an
  /// obs::MetricsRegistry::to_json() snapshot taken after a sweep, so the
  /// JSON artifact carries the engine's own counters next to the wall-clock
  /// rows. Re-attaching the same key replaces the previous value.
  void attach(const std::string& key, mfv::util::Json value) {
    if (!attachments_.is_object()) attachments_ = mfv::util::Json::object();
    attachments_[key] = std::move(value);
  }

  /// Writes the report if a path is configured. Benches call this at the
  /// end of main; calling it with nothing recorded still writes a valid
  /// (empty) document so scripts can rely on the file existing.
  void flush() {
    if (path_.empty()) return;
    mfv::util::Json document = mfv::util::Json::object();
    document["bench"] = bench_;
    document["metrics"] = mfv::util::Json(rows_);
    if (attachments_.is_object()) document["attachments"] = attachments_;
    std::FILE* file = std::fopen(path_.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    std::string text = document.dump(2);
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
  }

 private:
  std::string bench_;
  std::string path_;
  mfv::util::JsonArray rows_;
  mfv::util::Json attachments_;
};

/// One metric row: prints the legacy `METRIC k=v ...` line to stdout and
/// records the same fields for the JSON report.
inline void timing(const std::string& metric, const mfv::util::Json& fields) {
  std::string line = metric;
  if (fields.is_object()) {
    for (const auto& [key, value] : fields.members()) {
      line += ' ';
      line += key;
      line += '=';
      switch (value.type()) {
        case mfv::util::Json::Type::kString:
          line += value.as_string();
          break;
        case mfv::util::Json::Type::kDouble: {
          char buffer[64];
          std::snprintf(buffer, sizeof(buffer), "%.2f", value.as_double());
          line += buffer;
          break;
        }
        default:
          line += value.dump();
          break;
      }
    }
  }
  std::printf("%s\n", line.c_str());
  JsonReport::instance().add(metric, fields);
}

}  // namespace mfvbench
