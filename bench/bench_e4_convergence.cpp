// Experiment E4b: convergence timing with production-realistic conditions.
//
// Paper: a 30-node multi-vendor replica with production-complexity configs
// and injected routes ("millions from each BGP peer") converges in ~3
// minutes of *real* time after configuration, while one-time startup takes
// 12-17 minutes. Our analogue: a 30-node multi-vendor WAN with external
// peers injecting synthetic feeds; we report converged *virtual* time under
// the event model (message latencies, protocol timers) plus the boot-model
// startup, and measure the wall-clock cost of computing it.
//
// The feed size is scaled (default 10k routes/peer) so the default run
// finishes quickly; pass --routes=N via MFV_ROUTES_PER_PEER to scale up.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_json.hpp"
#include "emu/emulation.hpp"
#include "orch/cluster.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mfv;

size_t routes_per_peer() {
  const char* env = std::getenv("MFV_ROUTES_PER_PEER");
  if (env != nullptr) return static_cast<size_t>(std::atoll(env));
  return 10000;
}

workload::WanOptions wan30() {
  workload::WanOptions options;
  options.routers = 30;
  options.seed = 7;
  options.vjun_fraction = 0.3;  // multi-vendor, like the paper's replica
  options.border_count = 2;
  options.routes_per_peer = routes_per_peer();
  options.ibgp_mesh = true;
  return options;
}

/// Runs the 30-node WAN at a given feed size; returns convergence virtual
/// time after boot completes.
double converge_minutes(size_t routes, const orch::BootPlan* boot) {
  workload::WanOptions options = wan30();
  options.routes_per_peer = routes;
  emu::Topology topology = workload::wan_topology(options);
  emu::Emulation emulation;
  if (!emulation.add_topology(topology).ok()) return -1;
  if (boot != nullptr) {
    for (const auto& [pod, ready] : boot->ready_at)
      emulation.start_node_after(pod, ready);
  } else {
    emulation.start_all();
  }
  if (!emulation.run_to_convergence()) return -1;
  util::TimePoint boot_done =
      boot != nullptr ? util::TimePoint(boot->total_startup.count_micros())
                      : util::TimePoint(0);
  return (emulation.converged_at() - boot_done).seconds_double() / 60.0;
}

void report() {
  workload::WanOptions options = wan30();
  emu::Topology topology = workload::wan_topology(options);

  // Startup: the orchestrator's boot model.
  auto plan = orch::plan_deployment(orch::ClusterSpec::standard(2), topology);
  const orch::BootPlan* boot = plan.ok() ? &plan->boot : nullptr;

  // Convergence the way the paper measures it: configuration + route
  // injection on already-up routers ("applying new configuration to
  // already-up routers converges much more quickly", §4.1) — so no boot
  // staggering here; startup is reported separately above. Two feed sizes
  // expose the linear dependence, then extrapolate to "millions per peer".
  (void)boot;
  double minutes_small = converge_minutes(options.routes_per_peer / 10, nullptr);
  double minutes = converge_minutes(options.routes_per_peer, nullptr);
  double per_route_minutes =
      (minutes - minutes_small) /
      (static_cast<double>(options.routes_per_peer) * 0.9);
  double extrapolated_1m =
      minutes + per_route_minutes * (1000000.0 - static_cast<double>(options.routes_per_peer));

  std::printf("=== E4b: 30-node multi-vendor WAN with injected routes ===\n");
  std::printf("%-48s %-14s %s\n", "metric", "paper", "measured");
  std::printf("%-48s %-14s %zu routes x %zu peers\n", "injected advertisements",
              "millions/peer", options.routes_per_peer, topology.external_peers.size());
  if (plan.ok())
    std::printf("%-48s %-14s %.1f min\n", "one-time startup (infra+boot)", "12-17 min",
                plan->boot.total_startup.seconds_double() / 60.0);
  std::printf("%-48s %-14s %.2f min (virtual)\n",
              ("convergence after boot (" + std::to_string(options.routes_per_peer) +
               "/peer)").c_str(),
              "-", minutes);
  std::printf("%-48s %-14s %.1f min (virtual, linear model)\n",
              "convergence extrapolated to 1M routes/peer", "~3 min", extrapolated_1m);
  mfv::util::Json fields = mfv::util::Json::object();
  if (plan.ok())
    fields["startup_min"] = plan->boot.total_startup.seconds_double() / 60.0;
  fields["routes_per_peer"] = static_cast<uint64_t>(options.routes_per_peer);
  fields["converge_min_virtual"] = minutes;
  fields["extrapolated_1m_min"] = extrapolated_1m;
  mfvbench::timing("E4B_TIMING", fields);
  std::printf("(run the measured point at full size: MFV_ROUTES_PER_PEER=1000000)\n\n");
}

void BM_Wan30Convergence(benchmark::State& state) {
  workload::WanOptions options = wan30();
  options.routes_per_peer = static_cast<size_t>(state.range(0));
  emu::Topology topology = workload::wan_topology(options);
  for (auto _ : state) {
    emu::Emulation emulation;
    if (!emulation.add_topology(topology).ok()) return;
    emulation.start_all();
    bool converged = emulation.run_to_convergence();
    benchmark::DoNotOptimize(converged);
  }
  state.counters["routes_per_peer"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Wan30Convergence)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ReconfigurationConvergence(benchmark::State& state) {
  // The paper notes reconfiguration of already-up routers converges much
  // faster than cold start: measure a config change on a converged WAN.
  workload::WanOptions options = wan30();
  options.routes_per_peer = 1000;
  emu::Topology topology = workload::wan_topology(options);
  emu::Emulation emulation;
  if (!emulation.add_topology(topology).ok()) return;
  emulation.start_all();
  emulation.run_to_convergence();
  const emu::NodeSpec* node = topology.find_node("wan5");
  for (auto _ : state) {
    emulation.apply_config_text(node->name, node->config_text, node->vendor);
    bool converged = emulation.run_to_convergence();
    benchmark::DoNotOptimize(converged);
  }
}
BENCHMARK(BM_ReconfigurationConvergence)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_e4_convergence");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
