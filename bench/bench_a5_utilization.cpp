// Ablation A5 (§6 "Performance verification"): workload exploration on the
// extracted dataplane. The paper notes many production bugs are
// *performance* bugs, and that while emulation cannot symbolically explore
// a demand space, "one can explore workloads on the produced dataplane
// model, such as checking link utilizations for a range of possible
// demands with the given dataplane."
//
// The report sweeps a uniform all-pairs demand over a WAN dataplane,
// reports the hottest link at each scale, and shows a what-if: after a
// link cut, the same demand concentrates on the survivors.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "gnmi/gnmi.hpp"
#include "verify/utilization.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mfv;

gnmi::Snapshot converge(emu::Emulation& emulation, const emu::Topology& topology) {
  if (!emulation.add_topology(topology).ok()) return {};
  emulation.start_all();
  emulation.run_to_convergence();
  return gnmi::Snapshot::capture(emulation, "wan");
}

void report() {
  emu::Topology topology = workload::wan_topology({.routers = 16, .seed = 9});
  emu::Emulation emulation;
  gnmi::Snapshot snapshot = converge(emulation, topology);
  verify::ForwardingGraph graph(snapshot);

  std::printf("=== A5: Link utilization under demand sweeps (16-router WAN) ===\n");
  std::printf("uniform all-pairs demand, per-pair load in Mbps:\n");
  std::printf("%-12s %-16s %-18s %s\n", "per-pair", "offered total", "hottest link",
              "max load");
  const double kCapacityMbps = 10000;  // 10G links
  for (double per_pair : {10.0, 50.0, 100.0, 250.0}) {
    auto demands = verify::uniform_mesh_demand(snapshot, per_pair);
    verify::UtilizationResult result = verify::link_utilization(graph, demands);
    std::pair<net::NodeName, net::InterfaceName> hottest;
    double peak = 0;
    for (const auto& [link, load] : result.load_bps)
      if (load > peak) {
        peak = load;
        hottest = link;
      }
    std::printf("%-12.0f %-16.0f %-18s %.0f Mbps (%.0f%% of 10G)%s\n", per_pair,
                per_pair * static_cast<double>(demands.size()),
                (hottest.first + ":" + hottest.second).c_str(), peak,
                100.0 * peak / kCapacityMbps,
                peak > kCapacityMbps ? "  <-- OVERLOADED" : "");
    mfv::util::Json fields = mfv::util::Json::object();
    fields["per_pair_mbps"] = per_pair;
    fields["hottest_link"] = hottest.first + ":" + hottest.second;
    fields["max_load_mbps"] = peak;
    fields["utilization_pct"] = 100.0 * peak / kCapacityMbps;
    mfvbench::timing("A5_RESULT", fields);
  }

  // What-if: cut the hottest link and re-check the same demand.
  auto demands = verify::uniform_mesh_demand(snapshot, 100.0);
  verify::UtilizationResult before = verify::link_utilization(graph, demands);
  const emu::LinkSpec& cut = topology.links.front();
  emulation.set_link_up(cut.a, cut.b, false);
  emulation.run_to_convergence();
  gnmi::Snapshot degraded = gnmi::Snapshot::capture(emulation, "degraded");
  verify::ForwardingGraph degraded_graph(degraded);
  verify::UtilizationResult after = verify::link_utilization(degraded_graph, demands);
  std::printf("\nwhat-if single link cut (%s): max load %.0f -> %.0f Mbps, "
              "unrouted %.0f Mbps\n\n",
              cut.a.to_string().c_str(), before.max_load(), after.max_load(),
              after.unrouted_bps);
  mfv::util::Json whatif = mfv::util::Json::object();
  whatif["cut"] = cut.a.to_string();
  whatif["max_load_before_mbps"] = before.max_load();
  whatif["max_load_after_mbps"] = after.max_load();
  whatif["unrouted_mbps"] = after.unrouted_bps;
  mfvbench::timing("A5_WHATIF", whatif);
}

void BM_UtilizationSweep(benchmark::State& state) {
  emu::Topology topology =
      workload::wan_topology({.routers = static_cast<int>(state.range(0)), .seed = 9});
  emu::Emulation emulation;
  gnmi::Snapshot snapshot = converge(emulation, topology);
  verify::ForwardingGraph graph(snapshot);
  auto demands = verify::uniform_mesh_demand(snapshot, 100.0);
  for (auto _ : state) {
    verify::UtilizationResult result = verify::link_utilization(graph, demands);
    benchmark::DoNotOptimize(result.max_load());
  }
  state.counters["demands"] = static_cast<double>(demands.size());
}
BENCHMARK(BM_UtilizationSweep)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_a5_utilization");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
