// Experiment E1 (Fig. 2): "Model-free verification can successfully
// uncover reachability impact."
//
// Reproduces the paper's demonstration: the 6-node network (AS1/AS2/AS3,
// iBGP + eBGP + IS-IS, configs 62-82 lines) is emulated twice — baseline
// and with the R2-R3 eBGP session taken down — and Differential
// Reachability exhaustively compares all flows. The paper reports the query
// "correctly discovers the loss of connectivity from routers in AS3 to
// routers in AS2". Timing sections measure the cost of each pipeline stage.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "api/session.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace mfv;

void report() {
  api::Session session;
  if (!session.init_snapshot(workload::fig2_topology(false), "base").ok()) return;
  if (!session.init_snapshot(workload::fig2_topology(true), "bug").ok()) return;
  auto diff = session.differential_reachability("base", "bug");
  if (!diff.ok()) return;
  auto regressions = diff->regressions();

  // Count regressions from AS3 sources toward AS2 loopbacks.
  size_t as3_to_as2 = 0;
  for (const auto& row : regressions) {
    if (row.source != "R3" && row.source != "R4" && row.source != "R6") continue;
    for (int i : {2, 5})
      if (row.destination.contains(
              *net::Ipv4Address::parse(workload::fig2_loopback(i))))
        ++as3_to_as2;
  }

  std::printf("=== E1: Differential reachability on the Fig. 2 network ===\n");
  std::printf("%-46s %-22s %s\n", "metric", "paper", "measured");
  std::printf("%-46s %-22s %zu nodes / %zu flows\n", "topology / flows compared",
              "6 nodes, all packets", session.snapshot("base")->devices.size(),
              diff->flows);
  std::printf("%-46s %-22s %s\n", "loss AS3->AS2 discovered", "yes",
              as3_to_as2 > 0 ? "yes" : "NO");
  std::printf("%-46s %-22s %zu rows (%zu AS3->AS2)\n", "regression rows", "reported",
              regressions.size(), as3_to_as2);
  std::printf("%-46s %-22s %s\n", "baseline convergence (virtual)", "n/a",
              session.info("base")->convergence_time.to_string().c_str());
  std::printf("\n");
}

void BM_EmulateFig2ToConvergence(benchmark::State& state) {
  emu::Topology topology = workload::fig2_topology(false);
  for (auto _ : state) {
    api::Session session;
    bool ok = session.init_snapshot(topology, "s").ok();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_EmulateFig2ToConvergence)->Unit(benchmark::kMillisecond);

void BM_DifferentialQuery(benchmark::State& state) {
  api::Session session;
  if (!session.init_snapshot(workload::fig2_topology(false), "base").ok()) return;
  if (!session.init_snapshot(workload::fig2_topology(true), "bug").ok()) return;
  for (auto _ : state) {
    auto diff = session.differential_reachability("base", "bug");
    benchmark::DoNotOptimize(diff->rows.size());
  }
}
BENCHMARK(BM_DifferentialQuery)->Unit(benchmark::kMillisecond);

void BM_SnapshotExtraction(benchmark::State& state) {
  emu::Emulation emulation;
  if (!emulation.add_topology(workload::fig2_topology(false)).ok()) return;
  emulation.start_all();
  emulation.run_to_convergence();
  for (auto _ : state) {
    gnmi::Snapshot snapshot = gnmi::Snapshot::capture(emulation, "s");
    benchmark::DoNotOptimize(snapshot.total_entries());
  }
}
BENCHMARK(BM_SnapshotExtraction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
