// Experiment E1 (Fig. 2): "Model-free verification can successfully
// uncover reachability impact."
//
// Reproduces the paper's demonstration: the 6-node network (AS1/AS2/AS3,
// iBGP + eBGP + IS-IS, configs 62-82 lines) is emulated twice — baseline
// and with the R2-R3 eBGP session taken down — and Differential
// Reachability exhaustively compares all flows. The paper reports the query
// "correctly discovers the loss of connectivity from routers in AS3 to
// routers in AS2". Timing sections measure the cost of each pipeline stage.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "api/session.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace mfv;

void report() {
  api::Session session;
  if (!session.init_snapshot(workload::fig2_topology(false), "base").ok()) return;
  if (!session.init_snapshot(workload::fig2_topology(true), "bug").ok()) return;
  auto diff = session.differential_reachability("base", "bug");
  if (!diff.ok()) return;
  auto regressions = diff->regressions();

  // Count regressions from AS3 sources toward AS2 loopbacks.
  size_t as3_to_as2 = 0;
  for (const auto& row : regressions) {
    if (row.source != "R3" && row.source != "R4" && row.source != "R6") continue;
    for (int i : {2, 5})
      if (row.destination.contains(
              *net::Ipv4Address::parse(workload::fig2_loopback(i))))
        ++as3_to_as2;
  }

  std::printf("=== E1: Differential reachability on the Fig. 2 network ===\n");
  std::printf("%-46s %-22s %s\n", "metric", "paper", "measured");
  std::printf("%-46s %-22s %zu nodes / %zu flows\n", "topology / flows compared",
              "6 nodes, all packets", session.snapshot("base")->devices.size(),
              diff->flows);
  std::printf("%-46s %-22s %s\n", "loss AS3->AS2 discovered", "yes",
              as3_to_as2 > 0 ? "yes" : "NO");
  std::printf("%-46s %-22s %zu rows (%zu AS3->AS2)\n", "regression rows", "reported",
              regressions.size(), as3_to_as2);
  std::printf("%-46s %-22s %s\n", "baseline convergence (virtual)", "n/a",
              session.info("base")->convergence_time.to_string().c_str());

  // Engine comparison on the same query: serial legacy walker versus the
  // memoized trace cache, with and without sharded execution. Emitted as
  // machine-readable E1_TIMING lines for experiment scripts.
  auto timed = [&](const char* label, verify::QueryOptions options) {
    auto begin = std::chrono::steady_clock::now();
    auto result = session.differential_reachability("base", "bug", options);
    auto end = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(end - begin).count();
    std::printf("E1_TIMING engine=%s threads=%u flows=%zu ms=%.2f\n", label,
                options.threads, result.ok() ? result->flows : 0, ms);
  };
  verify::QueryOptions serial;
  serial.threads = 1;
  serial.engine = verify::EngineMode::kLegacy;
  timed("serial", serial);
  verify::QueryOptions cached_serial;
  cached_serial.threads = 1;
  cached_serial.engine = verify::EngineMode::kCached;
  timed("cached-serial", cached_serial);
  verify::QueryOptions parallel;
  parallel.threads = 8;
  parallel.engine = verify::EngineMode::kCached;
  timed("cached-parallel", parallel);
  std::printf("\n");
}

void BM_EmulateFig2ToConvergence(benchmark::State& state) {
  emu::Topology topology = workload::fig2_topology(false);
  for (auto _ : state) {
    api::Session session;
    bool ok = session.init_snapshot(topology, "s").ok();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_EmulateFig2ToConvergence)->Unit(benchmark::kMillisecond);

void BM_DifferentialQuery(benchmark::State& state) {
  api::Session session;
  if (!session.init_snapshot(workload::fig2_topology(false), "base").ok()) return;
  if (!session.init_snapshot(workload::fig2_topology(true), "bug").ok()) return;
  verify::QueryOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  options.engine = state.range(0) > 1 ? verify::EngineMode::kCached
                                      : verify::EngineMode::kLegacy;
  for (auto _ : state) {
    auto diff = session.differential_reachability("base", "bug", options);
    benchmark::DoNotOptimize(diff->rows.size());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DifferentialQuery)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SnapshotExtraction(benchmark::State& state) {
  emu::Emulation emulation;
  if (!emulation.add_topology(workload::fig2_topology(false)).ok()) return;
  emulation.start_all();
  emulation.run_to_convergence();
  for (auto _ : state) {
    gnmi::Snapshot snapshot = gnmi::Snapshot::capture(emulation, "s");
    benchmark::DoNotOptimize(snapshot.total_entries());
  }
}
BENCHMARK(BM_SnapshotExtraction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
