// Experiment E1 (Fig. 2): "Model-free verification can successfully
// uncover reachability impact."
//
// Reproduces the paper's demonstration: the 6-node network (AS1/AS2/AS3,
// iBGP + eBGP + IS-IS, configs 62-82 lines) is emulated twice — baseline
// and with the R2-R3 eBGP session taken down — and Differential
// Reachability exhaustively compares all flows. The paper reports the query
// "correctly discovers the loss of connectivity from routers in AS3 to
// routers in AS2". Timing sections measure the cost of each pipeline stage.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_json.hpp"
#include "api/session.hpp"
#include "scenario/scenario.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace mfv;

/// The E1 change as perturbations: the configs that differ between the
/// healthy and bug topologies, expressed as ConfigReplace operations.
std::vector<scenario::Perturbation> e1_perturbations() {
  emu::Topology healthy = workload::fig2_topology(false);
  emu::Topology bug = workload::fig2_topology(true);
  std::vector<scenario::Perturbation> perturbations;
  for (const emu::NodeSpec& node : bug.nodes) {
    const emu::NodeSpec* before = healthy.find_node(node.name);
    if (before != nullptr && before->config_text != node.config_text)
      perturbations.push_back(
          scenario::ConfigReplace{node.name, node.config_text, node.vendor});
  }
  return perturbations;
}

void report() {
  api::Session session;
  if (!session.init_snapshot(workload::fig2_topology(false), "base").ok()) return;

  // Candidate snapshot built both ways: a second cold boot (the paper's
  // pipeline) and a fork of the converged base with the config delta
  // applied (the scenario engine). Both are byte-equivalent dataplanes
  // (tests/test_scenario_fork.cpp); timings quantify the saving.
  auto cold_begin = std::chrono::steady_clock::now();
  if (!session.init_snapshot(workload::fig2_topology(true), "bug").ok()) return;
  double cold_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - cold_begin)
                       .count();
  auto fork_begin = std::chrono::steady_clock::now();
  if (!session.fork_snapshot("base", "bug-forked", e1_perturbations()).ok()) return;
  double fork_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - fork_begin)
                       .count();
  auto diff = session.differential_reachability("base", "bug");
  if (!diff.ok()) return;
  auto regressions = diff->regressions();

  // Count regressions from AS3 sources toward AS2 loopbacks.
  size_t as3_to_as2 = 0;
  for (const auto& row : regressions) {
    if (row.source != "R3" && row.source != "R4" && row.source != "R6") continue;
    for (int i : {2, 5})
      if (row.destination.contains(
              *net::Ipv4Address::parse(workload::fig2_loopback(i))))
        ++as3_to_as2;
  }

  std::printf("=== E1: Differential reachability on the Fig. 2 network ===\n");
  std::printf("%-46s %-22s %s\n", "metric", "paper", "measured");
  std::printf("%-46s %-22s %zu nodes / %zu flows\n", "topology / flows compared",
              "6 nodes, all packets", session.snapshot("base")->devices.size(),
              diff->flows);
  std::printf("%-46s %-22s %s\n", "loss AS3->AS2 discovered", "yes",
              as3_to_as2 > 0 ? "yes" : "NO");
  std::printf("%-46s %-22s %zu rows (%zu AS3->AS2)\n", "regression rows", "reported",
              regressions.size(), as3_to_as2);
  std::printf("%-46s %-22s %s\n", "baseline convergence (virtual)", "n/a",
              session.info("base")->convergence_time.to_string().c_str());
  std::printf("%-46s %-22s %.2f ms cold / %.2f ms forked (%.1fx)\n",
              "candidate snapshot build (wall)", "full re-emulation", cold_ms, fork_ms,
              fork_ms > 0 ? cold_ms / fork_ms : 0.0);

  // The forked candidate answers the query identically.
  auto forked_diff = session.differential_reachability("base", "bug-forked");
  size_t forked_as3_to_as2 = 0;
  if (forked_diff.ok()) {
    for (const auto& row : forked_diff->regressions()) {
      if (row.source != "R3" && row.source != "R4" && row.source != "R6") continue;
      for (int i : {2, 5})
        if (row.destination.contains(
                *net::Ipv4Address::parse(workload::fig2_loopback(i))))
          ++forked_as3_to_as2;
    }
  }
  std::printf("%-46s %-22s %s (%zu AS3->AS2 rows)\n", "forked snapshot finds the loss",
              "same verdict", forked_as3_to_as2 == as3_to_as2 ? "yes" : "NO",
              forked_as3_to_as2);
  {
    mfv::util::Json fields = mfv::util::Json::object();
    fields["build"] = "cold";
    fields["ms"] = cold_ms;
    mfvbench::timing("E1_TIMING", fields);
    fields = mfv::util::Json::object();
    fields["build"] = "forked";
    fields["ms"] = fork_ms;
    fields["speedup"] = fork_ms > 0 ? cold_ms / fork_ms : 0.0;
    mfvbench::timing("E1_TIMING", fields);
  }

  // Engine comparison on the same query: serial legacy walker versus the
  // memoized trace cache, with and without sharded execution. Emitted as
  // machine-readable E1_TIMING lines for experiment scripts.
  auto timed = [&](const char* label, verify::QueryOptions options) {
    auto begin = std::chrono::steady_clock::now();
    auto result = session.differential_reachability("base", "bug", options);
    auto end = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(end - begin).count();
    mfv::util::Json fields = mfv::util::Json::object();
    fields["engine"] = label;
    fields["threads"] = static_cast<uint64_t>(options.threads);
    fields["flows"] = static_cast<uint64_t>(result.ok() ? result->flows : 0);
    fields["ms"] = ms;
    mfvbench::timing("E1_TIMING", fields);
  };
  verify::QueryOptions serial;
  serial.threads = 1;
  serial.engine = verify::EngineMode::kLegacy;
  timed("serial", serial);
  verify::QueryOptions cached_serial;
  cached_serial.threads = 1;
  cached_serial.engine = verify::EngineMode::kCached;
  timed("cached-serial", cached_serial);
  verify::QueryOptions parallel;
  parallel.threads = 8;
  parallel.engine = verify::EngineMode::kCached;
  timed("cached-parallel", parallel);
  std::printf("\n");
}

void BM_EmulateFig2ToConvergence(benchmark::State& state) {
  emu::Topology topology = workload::fig2_topology(false);
  for (auto _ : state) {
    api::Session session;
    bool ok = session.init_snapshot(topology, "s").ok();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_EmulateFig2ToConvergence)->Unit(benchmark::kMillisecond);

void BM_ForkFig2WithConfigDelta(benchmark::State& state) {
  // The incremental alternative to BM_EmulateFig2ToConvergence: fork the
  // converged base and apply the E1 config delta.
  emu::Emulation base;
  if (!base.add_topology(workload::fig2_topology(false)).ok()) return;
  base.start_all();
  base.run_to_convergence();
  std::vector<scenario::Perturbation> perturbations = e1_perturbations();
  for (auto _ : state) {
    std::unique_ptr<emu::Emulation> fork = base.fork();
    for (const scenario::Perturbation& perturbation : perturbations)
      scenario::ScenarioRunner::apply(*fork, perturbation);
    fork->run_to_convergence();
    gnmi::Snapshot snapshot = gnmi::Snapshot::capture(*fork, "bug");
    benchmark::DoNotOptimize(snapshot.total_entries());
  }
}
BENCHMARK(BM_ForkFig2WithConfigDelta)->Unit(benchmark::kMillisecond);

void BM_DifferentialQuery(benchmark::State& state) {
  api::Session session;
  if (!session.init_snapshot(workload::fig2_topology(false), "base").ok()) return;
  if (!session.init_snapshot(workload::fig2_topology(true), "bug").ok()) return;
  verify::QueryOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  options.engine = state.range(0) > 1 ? verify::EngineMode::kCached
                                      : verify::EngineMode::kLegacy;
  for (auto _ : state) {
    auto diff = session.differential_reachability("base", "bug", options);
    benchmark::DoNotOptimize(diff->rows.size());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DifferentialQuery)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SnapshotExtraction(benchmark::State& state) {
  emu::Emulation emulation;
  if (!emulation.add_topology(workload::fig2_topology(false)).ok()) return;
  emulation.start_all();
  emulation.run_to_convergence();
  for (auto _ : state) {
    gnmi::Snapshot snapshot = gnmi::Snapshot::capture(emulation, "s");
    benchmark::DoNotOptimize(snapshot.total_entries());
  }
}
BENCHMARK(BM_SnapshotExtraction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_e1_differential");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
