// Ablation A2 (§6 "Non-deterministic behavior"): some convergence outcomes
// depend on message timing — e.g. the BGP arrival-order tiebreak. One
// emulation run yields one converged state; running multiple seeds with
// timing jitter explores the outcome space, which is the paper's proposed
// mitigation ("run multiple times in parallel to produce multiple
// resulting dataplanes").
//
// Setup: a listener with two eBGP sessions toward different ASes, both
// advertising the same prefix with identical attributes. The decision
// process reaches the prefer-oldest tiebreak, so the winner depends on
// which update arrived first.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <set>

#include "bench_json.hpp"
#include "emu/emulation.hpp"
#include "gnmi/gnmi.hpp"

namespace {

using namespace mfv;

config::DeviceConfig advertiser(const std::string& name, int index, net::AsNumber as,
                                const std::string& link_cidr,
                                const std::string& peer_address) {
  config::DeviceConfig config;
  config.hostname = name;
  auto& loopback = config.interface("Loopback0");
  loopback.switchport = false;
  loopback.address = net::InterfaceAddress::parse("10.0.0." + std::to_string(index) + "/32");
  auto& eth = config.interface("Ethernet1");
  eth.switchport = false;
  eth.address = net::InterfaceAddress::parse(link_cidr);
  config.bgp.enabled = true;
  config.bgp.local_as = as;
  config.bgp.router_id = loopback.address->address;
  config::BgpNeighborConfig neighbor;
  neighbor.peer = *net::Ipv4Address::parse(peer_address);
  neighbor.remote_as = 65000;
  config.bgp.neighbors.push_back(neighbor);
  config.static_routes.push_back(
      {*net::Ipv4Prefix::parse("203.0.113.0/24"), std::nullopt, std::nullopt, true, 1});
  config.bgp.networks.push_back({*net::Ipv4Prefix::parse("203.0.113.0/24"), std::nullopt});
  return config;
}

/// Runs one emulation with the given options; returns the winning next hop
/// the listener installs for the contested prefix.
std::string run_once(uint64_t seed, int64_t jitter, bool prefer_oldest) {
  emu::EmulationOptions options;
  options.seed = seed;
  options.message_jitter_micros = jitter;
  options.bgp_prefer_oldest = prefer_oldest;
  emu::Emulation emulation(options);

  emulation.add_router(advertiser("A1", 1, 65001, "100.64.0.0/31", "100.64.0.1"));
  emulation.add_router(advertiser("A2", 2, 65002, "100.64.0.2/31", "100.64.0.3"));

  config::DeviceConfig listener;
  listener.hostname = "L";
  auto& loopback = listener.interface("Loopback0");
  loopback.switchport = false;
  loopback.address = net::InterfaceAddress::parse("10.0.0.9/32");
  for (int i = 1; i <= 2; ++i) {
    auto& eth = listener.interface("Ethernet" + std::to_string(i));
    eth.switchport = false;
    eth.address = net::InterfaceAddress::parse(
        "100.64.0." + std::to_string(i == 1 ? 1 : 3) + "/31");
    config::BgpNeighborConfig neighbor;
    neighbor.peer = *net::Ipv4Address::parse("100.64.0." + std::to_string(i == 1 ? 0 : 2));
    neighbor.remote_as = i == 1 ? 65001 : 65002;
    listener.bgp.neighbors.push_back(neighbor);
  }
  listener.bgp.enabled = true;
  listener.bgp.local_as = 65000;
  listener.bgp.router_id = loopback.address->address;
  emulation.add_router(std::move(listener));

  emulation.add_link({"A1", "Ethernet1"}, {"L", "Ethernet1"});
  emulation.add_link({"A2", "Ethernet1"}, {"L", "Ethernet2"});
  emulation.start_all();
  emulation.run_to_convergence();

  auto hops = emulation.router("L")->fib().forward(*net::Ipv4Address::parse("203.0.113.1"));
  if (hops.empty() || !hops[0].ip_address) return "none";
  return hops[0].ip_address->to_string();
}

void report() {
  constexpr int kRuns = 20;
  std::map<std::string, int> jittered;
  std::map<std::string, int> deterministic;
  std::map<std::string, int> no_jitter;
  for (int seed = 1; seed <= kRuns; ++seed) {
    ++jittered[run_once(static_cast<uint64_t>(seed), 2000, /*prefer_oldest=*/true)];
    ++deterministic[run_once(static_cast<uint64_t>(seed), 2000, /*prefer_oldest=*/false)];
    ++no_jitter[run_once(static_cast<uint64_t>(seed), 0, /*prefer_oldest=*/true)];
  }

  auto print = [](const char* label, const std::map<std::string, int>& outcomes) {
    std::printf("%-44s %zu distinct outcome(s):", label, outcomes.size());
    for (const auto& [winner, count] : outcomes)
      std::printf("  %s x%d", winner.c_str(), count);
    std::printf("\n");
  };
  std::printf("=== A2: Non-determinism from message timing (%d seeded runs) ===\n", kRuns);
  print("arrival-order tiebreak + timing jitter", jittered);
  print("arrival-order tiebreak, no jitter", no_jitter);
  print("deterministic (router-id) tiebreak + jitter", deterministic);

  mfv::util::Json fields = mfv::util::Json::object();
  fields["runs"] = kRuns;
  fields["jittered_outcomes"] = static_cast<uint64_t>(jittered.size());
  fields["no_jitter_outcomes"] = static_cast<uint64_t>(no_jitter.size());
  fields["deterministic_outcomes"] = static_cast<uint64_t>(deterministic.size());
  mfvbench::timing("A2_RESULT", fields);
  std::printf("\npaper: 'one run of emulation will produce a single converged state';\n"
              "running multiple times explores the ordering space. Model-based tools\n"
              "'avoid supporting features requiring non-determinism' — the\n"
              "deterministic-tiebreak row is that simplification, reproduced.\n\n");
}

void BM_SeededRun(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    std::string winner = run_once(seed++, 2000, true);
    benchmark::DoNotOptimize(winner.size());
  }
}
BENCHMARK(BM_SeededRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  mfvbench::JsonReport::instance().init(&argc, argv, "bench_a2_nondeterminism");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mfvbench::JsonReport::instance().flush();
  return 0;
}
