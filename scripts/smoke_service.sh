#!/usr/bin/env bash
# Loopback smoke test for the verification service: boots mfvd on a unix
# socket, drives the full verb surface with mfvc (upload -> snapshot ->
# query -> fork -> differential -> stats), and checks the answers. CI runs
# this after the build; it needs only bash + python3 for JSON plumbing.
set -euo pipefail

BUILD_DIR="${1:-build}"
MFVD="$BUILD_DIR/src/cli/mfvd"
MFVC="$BUILD_DIR/src/cli/mfvc"
[ -x "$MFVD" ] && [ -x "$MFVC" ] || { echo "smoke: build $MFVD / $MFVC first"; exit 1; }

SOCK="$(mktemp -u /tmp/mfvd_smoke_XXXXXX.sock)"
WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null && wait "$DAEMON_PID" 2>/dev/null
  rm -rf "$WORK"
  rm -f "$SOCK"
}
trap cleanup EXIT

"$MFVD" --socket "$SOCK" &
DAEMON_PID=$!
for _ in $(seq 1 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "smoke: mfvd did not come up"; exit 1; }

c() { "$MFVC" --socket "$SOCK" "$@"; }
field() { python3 -c "import json,sys; print(json.load(sys.stdin)$1)"; }

echo "smoke: demo topology + upload"
c demo-topology --routers 5 > "$WORK/topology.json"
SUBMISSION="$(c upload "$WORK/topology.json" | field "['submission']")"
echo "smoke: submission $SUBMISSION"

echo "smoke: snapshot (cold, then store hit)"
HIT_COLD="$(c snapshot "$SUBMISSION" | field "['hit']")"
HIT_WARM="$(c snapshot "$SUBMISSION" | field "['hit']")"
[ "$HIT_COLD" = "False" ] || { echo "smoke: first snapshot should be a miss"; exit 1; }
[ "$HIT_WARM" = "True" ] || { echo "smoke: second snapshot should hit the store"; exit 1; }

echo "smoke: pairwise query"
PAIRS="$(c query "$SUBMISSION" --kind pairwise | field "['answer']['reachable_pairs']")"
[ "$PAIRS" -eq 20 ] || { echo "smoke: expected 20 reachable pairs, got $PAIRS"; exit 1; }

echo "smoke: fork a link-cut what-if"
python3 - "$WORK/topology.json" > "$WORK/cut.json" << 'EOF'
import json, sys
link = json.load(open(sys.argv[1]))["links"][0]
# topology links are "node:interface" strings; perturbations take objects
def port(ref):
    node, interface = ref.split(":", 1)
    return {"node": node, "interface": interface}
print(json.dumps([{"kind": "link_cut", "a": port(link["a"]), "b": port(link["b"])}]))
EOF
FORK="$(c fork "$SUBMISSION" "$WORK/cut.json" | field "['snapshot']")"
[ "$FORK" != "$SUBMISSION" ] || { echo "smoke: fork key must differ from base"; exit 1; }

echo "smoke: differential query against the base"
DIFFS="$(c query "$FORK" --kind differential --base "$SUBMISSION" | field "['answer']['flows']")"
[ "$DIFFS" -ge 0 ] || { echo "smoke: differential failed"; exit 1; }

echo "smoke: stats"
ENTRIES="$(c stats | field "['store']['entries']")"
[ "$ENTRIES" -eq 2 ] || { echo "smoke: expected 2 stored snapshots, got $ENTRIES"; exit 1; }

echo "smoke: metrics (registry snapshot, kept as $BUILD_DIR/smoke_metrics.json)"
c metrics --json > "$BUILD_DIR/smoke_metrics.json"
# Every instrumented family must have published by now, and the registry
# must agree with what the run just did (one convergence per distinct
# snapshot: base + fork).
python3 - "$BUILD_DIR/smoke_metrics.json" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
counters = doc["metrics"]["counters"]
for family in ("emu_", "trace_cache_", "snapshot_store_", "broker_", "service_"):
    assert any(name.startswith(family) for name in counters), f"no {family} metrics"
assert counters["emu_convergence_runs"] == 2, counters["emu_convergence_runs"]
assert counters["snapshot_store_hits"] >= 1
assert counters["snapshot_store_misses"] == 2
assert counters["trace_cache_hits"] > 0
assert doc["metrics"]["histograms"]["verify_shard_latency_us"]["count"] > 0
assert len(doc["spans"]) > 0, "span ring must not be empty"
EOF
# The text exposition serves the same numbers.
c metrics | grep -q "^emu_convergence_runs 2$" \
  || { echo "smoke: text exposition out of sync"; exit 1; }

echo "smoke: graceful shutdown"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "smoke: mfvd exited non-zero"; exit 1; }
DAEMON_PID=""

echo "smoke: OK"
