#!/usr/bin/env bash
# Loopback smoke test for the verification service: boots mfvd on a unix
# socket, drives the full verb surface with mfvc (upload -> snapshot ->
# query -> fork -> differential -> stats), and checks the answers. CI runs
# this after the build; it needs only bash + python3 for JSON plumbing.
set -euo pipefail

BUILD_DIR="${1:-build}"
MFVD="$BUILD_DIR/src/cli/mfvd"
MFVC="$BUILD_DIR/src/cli/mfvc"
[ -x "$MFVD" ] && [ -x "$MFVC" ] || { echo "smoke: build $MFVD / $MFVC first"; exit 1; }

SOCK="$(mktemp -u /tmp/mfvd_smoke_XXXXXX.sock)"
SOCK_A="$(mktemp -u /tmp/mfvd_smoke_a_XXXXXX.sock)"
SOCK_B="$(mktemp -u /tmp/mfvd_smoke_b_XXXXXX.sock)"
WORK="$(mktemp -d)"
DAEMON_PID=""
PID_A=""
PID_B=""
cleanup() {
  for pid in "$DAEMON_PID" "$PID_A" "$PID_B"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null
  done
  rm -rf "$WORK"
  rm -f "$SOCK" "$SOCK_A" "$SOCK_B"
}
trap cleanup EXIT

wait_for_socket() {
  for _ in $(seq 1 50); do [ -S "$1" ] && return 0; sleep 0.1; done
  echo "smoke: no daemon came up on $1"; exit 1
}

"$MFVD" --socket "$SOCK" &
DAEMON_PID=$!
wait_for_socket "$SOCK"

c() { "$MFVC" --socket "$SOCK" "$@"; }
field() { python3 -c "import json,sys; print(json.load(sys.stdin)$1)"; }

echo "smoke: demo topology + upload"
c demo-topology --routers 5 > "$WORK/topology.json"
SUBMISSION="$(c upload "$WORK/topology.json" | field "['submission']")"
echo "smoke: submission $SUBMISSION"

echo "smoke: snapshot (cold, then store hit)"
HIT_COLD="$(c snapshot "$SUBMISSION" | field "['hit']")"
HIT_WARM="$(c snapshot "$SUBMISSION" | field "['hit']")"
[ "$HIT_COLD" = "False" ] || { echo "smoke: first snapshot should be a miss"; exit 1; }
[ "$HIT_WARM" = "True" ] || { echo "smoke: second snapshot should hit the store"; exit 1; }

echo "smoke: pairwise query"
PAIRS="$(c query "$SUBMISSION" --kind pairwise | field "['answer']['reachable_pairs']")"
[ "$PAIRS" -eq 20 ] || { echo "smoke: expected 20 reachable pairs, got $PAIRS"; exit 1; }

echo "smoke: fork a link-cut what-if"
python3 - "$WORK/topology.json" > "$WORK/cut.json" << 'EOF'
import json, sys
link = json.load(open(sys.argv[1]))["links"][0]
# topology links are "node:interface" strings; perturbations take objects
def port(ref):
    node, interface = ref.split(":", 1)
    return {"node": node, "interface": interface}
print(json.dumps([{"kind": "link_cut", "a": port(link["a"]), "b": port(link["b"])}]))
EOF
FORK="$(c fork "$SUBMISSION" "$WORK/cut.json" | field "['snapshot']")"
[ "$FORK" != "$SUBMISSION" ] || { echo "smoke: fork key must differ from base"; exit 1; }

echo "smoke: differential query against the base"
DIFFS="$(c query "$FORK" --kind differential --base "$SUBMISSION" | field "['answer']['flows']")"
[ "$DIFFS" -ge 0 ] || { echo "smoke: differential failed"; exit 1; }

echo "smoke: stats"
ENTRIES="$(c stats | field "['store']['entries']")"
[ "$ENTRIES" -eq 2 ] || { echo "smoke: expected 2 stored snapshots, got $ENTRIES"; exit 1; }

echo "smoke: metrics (registry snapshot, kept as $BUILD_DIR/smoke_metrics.json)"
c metrics --json > "$BUILD_DIR/smoke_metrics.json"
# Every instrumented family must have published by now, and the registry
# must agree with what the run just did (one convergence per distinct
# snapshot: base + fork).
python3 - "$BUILD_DIR/smoke_metrics.json" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
counters = doc["metrics"]["counters"]
for family in ("emu_", "trace_cache_", "snapshot_store_", "broker_", "service_"):
    assert any(name.startswith(family) for name in counters), f"no {family} metrics"
assert counters["emu_convergence_runs"] == 2, counters["emu_convergence_runs"]
assert counters["snapshot_store_hits"] >= 1
assert counters["snapshot_store_misses"] == 2
assert counters["trace_cache_hits"] > 0
assert doc["metrics"]["histograms"]["verify_shard_latency_us"]["count"] > 0
assert len(doc["spans"]) > 0, "span ring must not be empty"
EOF
# The text exposition serves the same numbers.
c metrics | grep -q "^emu_convergence_runs 2$" \
  || { echo "smoke: text exposition out of sync"; exit 1; }

echo "smoke: graceful shutdown"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "smoke: mfvd exited non-zero"; exit 1; }
DAEMON_PID=""

# ---------------------------------------------------------------------------
# Multi-tenant fleet: two daemons on a consistent-hash ring, two tenants
# with a 1 MiB per-tenant store quota each. Asserts (a) ring routing — the
# cluster client places tenant_a's snapshot on exactly one instance and a
# direct query of that owner matches the ring answer; (b) quota rejection —
# tenant_b's oversized snapshot is turned away with a non-zero mfvc exit
# while tenant_a's data and store hits are untouched.
# ---------------------------------------------------------------------------
echo "smoke: multi-tenant fleet (two daemons, two tenants)"
"$MFVD" --socket "$SOCK_A" --tenant-budget-mb 1 &
PID_A=$!
"$MFVD" --socket "$SOCK_B" --tenant-budget-mb 1 &
PID_B=$!
wait_for_socket "$SOCK_A"
wait_for_socket "$SOCK_B"

CLUSTER="$SOCK_A,$SOCK_B"
cc() { "$MFVC" --cluster "$CLUSTER" "$@"; }

echo "smoke: tenant_a routes through the ring"
"$MFVC" demo-topology --routers 7 > "$WORK/fleet_topology.json"
SUB_A="$(cc --tenant tenant_a upload "$WORK/fleet_topology.json" | field "['submission']")"
HIT="$(cc --tenant tenant_a snapshot "$SUB_A" | field "['hit']")"
[ "$HIT" = "False" ] || { echo "smoke: first fleet snapshot should be a miss"; exit 1; }
PAIRS_RING="$(cc --tenant tenant_a query "$SUB_A" --kind pairwise | field "['answer']['reachable_pairs']")"

ENTRIES_A="$("$MFVC" --socket "$SOCK_A" stats | field "['store']['entries']")"
ENTRIES_B="$("$MFVC" --socket "$SOCK_B" stats | field "['store']['entries']")"
[ $((ENTRIES_A + ENTRIES_B)) -eq 1 ] \
  || { echo "smoke: ring must place the snapshot on exactly one instance (saw $ENTRIES_A + $ENTRIES_B)"; exit 1; }
if [ "$ENTRIES_A" -eq 1 ]; then OWNER="$SOCK_A"; else OWNER="$SOCK_B"; fi
PAIRS_DIRECT="$("$MFVC" --socket "$OWNER" --tenant tenant_a query "$SUB_A" --kind pairwise | field "['answer']['reachable_pairs']")"
[ "$PAIRS_RING" = "$PAIRS_DIRECT" ] \
  || { echo "smoke: ring answer ($PAIRS_RING) differs from the owner's ($PAIRS_DIRECT)"; exit 1; }

echo "smoke: tenant_b's oversized snapshot is rejected by its quota"
"$MFVC" demo-topology --routers 80 > "$WORK/oversized_topology.json"
SUB_B="$(cc --tenant tenant_b upload "$WORK/oversized_topology.json" | field "['submission']")"
if cc --tenant tenant_b snapshot "$SUB_B" > /dev/null 2>&1; then
  echo "smoke: oversized tenant_b snapshot must be RESOURCE_EXHAUSTED-rejected"; exit 1
fi
# tenant_a is untouched: its snapshot is still a warm store hit.
HIT_A="$(cc --tenant tenant_a snapshot "$SUB_A" | field "['hit']")"
[ "$HIT_A" = "True" ] || { echo "smoke: tenant_a must keep its store entry across tenant_b's rejection"; exit 1; }

echo "smoke: per-tenant accounting (kept as $BUILD_DIR/smoke_service_tenant.json)"
"$MFVC" --socket "$SOCK_A" stats > "$WORK/stats_a.json"
"$MFVC" --socket "$SOCK_B" stats > "$WORK/stats_b.json"
python3 - "$WORK/stats_a.json" "$WORK/stats_b.json" > "$BUILD_DIR/smoke_service_tenant.json" << 'EOF'
import json, sys
instances = [json.load(open(path)) for path in sys.argv[1:3]]
tenants = {}
for doc in instances:
    for name, slice_ in doc.get("tenants", {}).items():
        agg = tenants.setdefault(name, {})
        for key, value in slice_.items():
            agg[key] = agg.get(key, 0) + value
assert tenants["tenant_a"]["store_entries"] == 1, tenants
assert tenants["tenant_a"].get("store_quota_rejections", 0) == 0, tenants
assert tenants["tenant_b"]["store_entries"] == 0, tenants
assert tenants["tenant_b"]["store_quota_rejections"] == 1, tenants
print(json.dumps({"instances": instances, "tenants_aggregate": tenants}, indent=2))
EOF

echo "smoke: fleet graceful shutdown"
for pid in "$PID_A" "$PID_B"; do
  kill -TERM "$pid"
  wait "$pid" || { echo "smoke: fleet mfvd exited non-zero"; exit 1; }
done
PID_A=""
PID_B=""

echo "smoke: OK"
