# Empty dependencies file for mfv_aft.
# This may be replaced when dependencies are built.
