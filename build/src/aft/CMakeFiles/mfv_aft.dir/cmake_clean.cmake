file(REMOVE_RECURSE
  "CMakeFiles/mfv_aft.dir/aft.cpp.o"
  "CMakeFiles/mfv_aft.dir/aft.cpp.o.d"
  "libmfv_aft.a"
  "libmfv_aft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_aft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
