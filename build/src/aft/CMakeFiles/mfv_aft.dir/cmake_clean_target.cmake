file(REMOVE_RECURSE
  "libmfv_aft.a"
)
