file(REMOVE_RECURSE
  "libmfv_rib.a"
)
