file(REMOVE_RECURSE
  "CMakeFiles/mfv_rib.dir/rib.cpp.o"
  "CMakeFiles/mfv_rib.dir/rib.cpp.o.d"
  "libmfv_rib.a"
  "libmfv_rib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_rib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
