# Empty dependencies file for mfv_rib.
# This may be replaced when dependencies are built.
