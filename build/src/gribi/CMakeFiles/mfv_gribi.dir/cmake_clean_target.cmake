file(REMOVE_RECURSE
  "libmfv_gribi.a"
)
