# Empty dependencies file for mfv_gribi.
# This may be replaced when dependencies are built.
