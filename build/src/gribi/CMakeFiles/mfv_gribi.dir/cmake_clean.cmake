file(REMOVE_RECURSE
  "CMakeFiles/mfv_gribi.dir/gribi.cpp.o"
  "CMakeFiles/mfv_gribi.dir/gribi.cpp.o.d"
  "libmfv_gribi.a"
  "libmfv_gribi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_gribi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
