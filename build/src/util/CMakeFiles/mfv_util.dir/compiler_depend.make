# Empty compiler generated dependencies file for mfv_util.
# This may be replaced when dependencies are built.
