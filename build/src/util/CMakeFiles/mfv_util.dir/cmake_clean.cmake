file(REMOVE_RECURSE
  "CMakeFiles/mfv_util.dir/json.cpp.o"
  "CMakeFiles/mfv_util.dir/json.cpp.o.d"
  "CMakeFiles/mfv_util.dir/logging.cpp.o"
  "CMakeFiles/mfv_util.dir/logging.cpp.o.d"
  "CMakeFiles/mfv_util.dir/strings.cpp.o"
  "CMakeFiles/mfv_util.dir/strings.cpp.o.d"
  "CMakeFiles/mfv_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mfv_util.dir/thread_pool.cpp.o.d"
  "libmfv_util.a"
  "libmfv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
