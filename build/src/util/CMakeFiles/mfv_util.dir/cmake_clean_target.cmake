file(REMOVE_RECURSE
  "libmfv_util.a"
)
