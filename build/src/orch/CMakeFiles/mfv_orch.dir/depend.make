# Empty dependencies file for mfv_orch.
# This may be replaced when dependencies are built.
