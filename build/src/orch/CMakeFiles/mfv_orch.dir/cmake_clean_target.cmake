file(REMOVE_RECURSE
  "libmfv_orch.a"
)
