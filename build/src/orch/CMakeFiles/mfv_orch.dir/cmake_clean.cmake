file(REMOVE_RECURSE
  "CMakeFiles/mfv_orch.dir/cluster.cpp.o"
  "CMakeFiles/mfv_orch.dir/cluster.cpp.o.d"
  "libmfv_orch.a"
  "libmfv_orch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_orch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
