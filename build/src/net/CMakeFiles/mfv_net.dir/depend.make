# Empty dependencies file for mfv_net.
# This may be replaced when dependencies are built.
