file(REMOVE_RECURSE
  "CMakeFiles/mfv_net.dir/ipv4.cpp.o"
  "CMakeFiles/mfv_net.dir/ipv4.cpp.o.d"
  "libmfv_net.a"
  "libmfv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
