file(REMOVE_RECURSE
  "libmfv_net.a"
)
