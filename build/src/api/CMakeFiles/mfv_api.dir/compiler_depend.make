# Empty compiler generated dependencies file for mfv_api.
# This may be replaced when dependencies are built.
