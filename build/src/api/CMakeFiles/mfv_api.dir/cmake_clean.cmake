file(REMOVE_RECURSE
  "CMakeFiles/mfv_api.dir/session.cpp.o"
  "CMakeFiles/mfv_api.dir/session.cpp.o.d"
  "libmfv_api.a"
  "libmfv_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
