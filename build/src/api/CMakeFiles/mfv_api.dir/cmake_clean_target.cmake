file(REMOVE_RECURSE
  "libmfv_api.a"
)
