file(REMOVE_RECURSE
  "libmfv_emu.a"
)
