# Empty compiler generated dependencies file for mfv_emu.
# This may be replaced when dependencies are built.
