file(REMOVE_RECURSE
  "CMakeFiles/mfv_emu.dir/convergence.cpp.o"
  "CMakeFiles/mfv_emu.dir/convergence.cpp.o.d"
  "CMakeFiles/mfv_emu.dir/emulation.cpp.o"
  "CMakeFiles/mfv_emu.dir/emulation.cpp.o.d"
  "CMakeFiles/mfv_emu.dir/topology.cpp.o"
  "CMakeFiles/mfv_emu.dir/topology.cpp.o.d"
  "libmfv_emu.a"
  "libmfv_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
