# Empty compiler generated dependencies file for mfv_verify.
# This may be replaced when dependencies are built.
