
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/disposition.cpp" "src/verify/CMakeFiles/mfv_verify.dir/disposition.cpp.o" "gcc" "src/verify/CMakeFiles/mfv_verify.dir/disposition.cpp.o.d"
  "/root/repo/src/verify/forwarding_graph.cpp" "src/verify/CMakeFiles/mfv_verify.dir/forwarding_graph.cpp.o" "gcc" "src/verify/CMakeFiles/mfv_verify.dir/forwarding_graph.cpp.o.d"
  "/root/repo/src/verify/packet_classes.cpp" "src/verify/CMakeFiles/mfv_verify.dir/packet_classes.cpp.o" "gcc" "src/verify/CMakeFiles/mfv_verify.dir/packet_classes.cpp.o.d"
  "/root/repo/src/verify/queries.cpp" "src/verify/CMakeFiles/mfv_verify.dir/queries.cpp.o" "gcc" "src/verify/CMakeFiles/mfv_verify.dir/queries.cpp.o.d"
  "/root/repo/src/verify/trace.cpp" "src/verify/CMakeFiles/mfv_verify.dir/trace.cpp.o" "gcc" "src/verify/CMakeFiles/mfv_verify.dir/trace.cpp.o.d"
  "/root/repo/src/verify/trace_cache.cpp" "src/verify/CMakeFiles/mfv_verify.dir/trace_cache.cpp.o" "gcc" "src/verify/CMakeFiles/mfv_verify.dir/trace_cache.cpp.o.d"
  "/root/repo/src/verify/utilization.cpp" "src/verify/CMakeFiles/mfv_verify.dir/utilization.cpp.o" "gcc" "src/verify/CMakeFiles/mfv_verify.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gnmi/CMakeFiles/mfv_gnmi.dir/DependInfo.cmake"
  "/root/repo/build/src/aft/CMakeFiles/mfv_aft.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mfv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mfv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/mfv_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/vrouter/CMakeFiles/mfv_vrouter.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/mfv_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/rib/CMakeFiles/mfv_rib.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/mfv_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
