file(REMOVE_RECURSE
  "libmfv_verify.a"
)
