file(REMOVE_RECURSE
  "CMakeFiles/mfv_verify.dir/disposition.cpp.o"
  "CMakeFiles/mfv_verify.dir/disposition.cpp.o.d"
  "CMakeFiles/mfv_verify.dir/forwarding_graph.cpp.o"
  "CMakeFiles/mfv_verify.dir/forwarding_graph.cpp.o.d"
  "CMakeFiles/mfv_verify.dir/packet_classes.cpp.o"
  "CMakeFiles/mfv_verify.dir/packet_classes.cpp.o.d"
  "CMakeFiles/mfv_verify.dir/queries.cpp.o"
  "CMakeFiles/mfv_verify.dir/queries.cpp.o.d"
  "CMakeFiles/mfv_verify.dir/trace.cpp.o"
  "CMakeFiles/mfv_verify.dir/trace.cpp.o.d"
  "CMakeFiles/mfv_verify.dir/trace_cache.cpp.o"
  "CMakeFiles/mfv_verify.dir/trace_cache.cpp.o.d"
  "CMakeFiles/mfv_verify.dir/utilization.cpp.o"
  "CMakeFiles/mfv_verify.dir/utilization.cpp.o.d"
  "libmfv_verify.a"
  "libmfv_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
