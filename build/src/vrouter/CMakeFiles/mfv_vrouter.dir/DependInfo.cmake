
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vrouter/virtual_router.cpp" "src/vrouter/CMakeFiles/mfv_vrouter.dir/virtual_router.cpp.o" "gcc" "src/vrouter/CMakeFiles/mfv_vrouter.dir/virtual_router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/mfv_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/mfv_config.dir/DependInfo.cmake"
  "/root/repo/build/src/rib/CMakeFiles/mfv_rib.dir/DependInfo.cmake"
  "/root/repo/build/src/aft/CMakeFiles/mfv_aft.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mfv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mfv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
