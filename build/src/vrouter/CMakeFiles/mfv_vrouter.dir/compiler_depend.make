# Empty compiler generated dependencies file for mfv_vrouter.
# This may be replaced when dependencies are built.
