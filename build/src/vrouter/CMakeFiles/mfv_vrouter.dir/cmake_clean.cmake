file(REMOVE_RECURSE
  "CMakeFiles/mfv_vrouter.dir/virtual_router.cpp.o"
  "CMakeFiles/mfv_vrouter.dir/virtual_router.cpp.o.d"
  "libmfv_vrouter.a"
  "libmfv_vrouter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_vrouter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
