file(REMOVE_RECURSE
  "libmfv_vrouter.a"
)
