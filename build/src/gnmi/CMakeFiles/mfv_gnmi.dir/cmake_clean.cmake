file(REMOVE_RECURSE
  "CMakeFiles/mfv_gnmi.dir/gnmi.cpp.o"
  "CMakeFiles/mfv_gnmi.dir/gnmi.cpp.o.d"
  "libmfv_gnmi.a"
  "libmfv_gnmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_gnmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
