file(REMOVE_RECURSE
  "libmfv_gnmi.a"
)
