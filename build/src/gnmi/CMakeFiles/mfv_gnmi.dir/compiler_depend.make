# Empty compiler generated dependencies file for mfv_gnmi.
# This may be replaced when dependencies are built.
