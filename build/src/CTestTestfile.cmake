# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("net")
subdirs("config")
subdirs("aft")
subdirs("rib")
subdirs("proto")
subdirs("vrouter")
subdirs("emu")
subdirs("orch")
subdirs("gnmi")
subdirs("gribi")
subdirs("verify")
subdirs("model")
subdirs("workload")
subdirs("cli")
subdirs("api")
