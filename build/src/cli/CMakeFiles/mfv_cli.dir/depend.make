# Empty dependencies file for mfv_cli.
# This may be replaced when dependencies are built.
