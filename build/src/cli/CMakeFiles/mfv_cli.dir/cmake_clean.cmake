file(REMOVE_RECURSE
  "CMakeFiles/mfv_cli.dir/show.cpp.o"
  "CMakeFiles/mfv_cli.dir/show.cpp.o.d"
  "libmfv_cli.a"
  "libmfv_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
