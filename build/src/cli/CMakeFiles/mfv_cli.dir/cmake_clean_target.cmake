file(REMOVE_RECURSE
  "libmfv_cli.a"
)
