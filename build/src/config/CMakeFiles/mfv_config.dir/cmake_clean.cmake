file(REMOVE_RECURSE
  "CMakeFiles/mfv_config.dir/ceos_parser.cpp.o"
  "CMakeFiles/mfv_config.dir/ceos_parser.cpp.o.d"
  "CMakeFiles/mfv_config.dir/ceos_writer.cpp.o"
  "CMakeFiles/mfv_config.dir/ceos_writer.cpp.o.d"
  "CMakeFiles/mfv_config.dir/device_config.cpp.o"
  "CMakeFiles/mfv_config.dir/device_config.cpp.o.d"
  "CMakeFiles/mfv_config.dir/dialect.cpp.o"
  "CMakeFiles/mfv_config.dir/dialect.cpp.o.d"
  "CMakeFiles/mfv_config.dir/vjun_parser.cpp.o"
  "CMakeFiles/mfv_config.dir/vjun_parser.cpp.o.d"
  "CMakeFiles/mfv_config.dir/vjun_writer.cpp.o"
  "CMakeFiles/mfv_config.dir/vjun_writer.cpp.o.d"
  "libmfv_config.a"
  "libmfv_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
