file(REMOVE_RECURSE
  "libmfv_config.a"
)
