
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/ceos_parser.cpp" "src/config/CMakeFiles/mfv_config.dir/ceos_parser.cpp.o" "gcc" "src/config/CMakeFiles/mfv_config.dir/ceos_parser.cpp.o.d"
  "/root/repo/src/config/ceos_writer.cpp" "src/config/CMakeFiles/mfv_config.dir/ceos_writer.cpp.o" "gcc" "src/config/CMakeFiles/mfv_config.dir/ceos_writer.cpp.o.d"
  "/root/repo/src/config/device_config.cpp" "src/config/CMakeFiles/mfv_config.dir/device_config.cpp.o" "gcc" "src/config/CMakeFiles/mfv_config.dir/device_config.cpp.o.d"
  "/root/repo/src/config/dialect.cpp" "src/config/CMakeFiles/mfv_config.dir/dialect.cpp.o" "gcc" "src/config/CMakeFiles/mfv_config.dir/dialect.cpp.o.d"
  "/root/repo/src/config/vjun_parser.cpp" "src/config/CMakeFiles/mfv_config.dir/vjun_parser.cpp.o" "gcc" "src/config/CMakeFiles/mfv_config.dir/vjun_parser.cpp.o.d"
  "/root/repo/src/config/vjun_writer.cpp" "src/config/CMakeFiles/mfv_config.dir/vjun_writer.cpp.o" "gcc" "src/config/CMakeFiles/mfv_config.dir/vjun_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mfv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mfv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
