# Empty compiler generated dependencies file for mfv_config.
# This may be replaced when dependencies are built.
