# Empty compiler generated dependencies file for mfv_proto.
# This may be replaced when dependencies are built.
