
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/bgp.cpp" "src/proto/CMakeFiles/mfv_proto.dir/bgp.cpp.o" "gcc" "src/proto/CMakeFiles/mfv_proto.dir/bgp.cpp.o.d"
  "/root/repo/src/proto/isis.cpp" "src/proto/CMakeFiles/mfv_proto.dir/isis.cpp.o" "gcc" "src/proto/CMakeFiles/mfv_proto.dir/isis.cpp.o.d"
  "/root/repo/src/proto/messages.cpp" "src/proto/CMakeFiles/mfv_proto.dir/messages.cpp.o" "gcc" "src/proto/CMakeFiles/mfv_proto.dir/messages.cpp.o.d"
  "/root/repo/src/proto/mpls.cpp" "src/proto/CMakeFiles/mfv_proto.dir/mpls.cpp.o" "gcc" "src/proto/CMakeFiles/mfv_proto.dir/mpls.cpp.o.d"
  "/root/repo/src/proto/ospf.cpp" "src/proto/CMakeFiles/mfv_proto.dir/ospf.cpp.o" "gcc" "src/proto/CMakeFiles/mfv_proto.dir/ospf.cpp.o.d"
  "/root/repo/src/proto/policy.cpp" "src/proto/CMakeFiles/mfv_proto.dir/policy.cpp.o" "gcc" "src/proto/CMakeFiles/mfv_proto.dir/policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/mfv_config.dir/DependInfo.cmake"
  "/root/repo/build/src/rib/CMakeFiles/mfv_rib.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mfv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mfv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/aft/CMakeFiles/mfv_aft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
