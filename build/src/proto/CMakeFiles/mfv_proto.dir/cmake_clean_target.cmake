file(REMOVE_RECURSE
  "libmfv_proto.a"
)
