file(REMOVE_RECURSE
  "CMakeFiles/mfv_proto.dir/bgp.cpp.o"
  "CMakeFiles/mfv_proto.dir/bgp.cpp.o.d"
  "CMakeFiles/mfv_proto.dir/isis.cpp.o"
  "CMakeFiles/mfv_proto.dir/isis.cpp.o.d"
  "CMakeFiles/mfv_proto.dir/messages.cpp.o"
  "CMakeFiles/mfv_proto.dir/messages.cpp.o.d"
  "CMakeFiles/mfv_proto.dir/mpls.cpp.o"
  "CMakeFiles/mfv_proto.dir/mpls.cpp.o.d"
  "CMakeFiles/mfv_proto.dir/ospf.cpp.o"
  "CMakeFiles/mfv_proto.dir/ospf.cpp.o.d"
  "CMakeFiles/mfv_proto.dir/policy.cpp.o"
  "CMakeFiles/mfv_proto.dir/policy.cpp.o.d"
  "libmfv_proto.a"
  "libmfv_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
