file(REMOVE_RECURSE
  "libmfv_model.a"
)
