# Empty compiler generated dependencies file for mfv_model.
# This may be replaced when dependencies are built.
