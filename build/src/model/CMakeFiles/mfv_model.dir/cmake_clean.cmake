file(REMOVE_RECURSE
  "CMakeFiles/mfv_model.dir/ibdp.cpp.o"
  "CMakeFiles/mfv_model.dir/ibdp.cpp.o.d"
  "CMakeFiles/mfv_model.dir/reference_parser.cpp.o"
  "CMakeFiles/mfv_model.dir/reference_parser.cpp.o.d"
  "libmfv_model.a"
  "libmfv_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
