# Empty dependencies file for mfv_workload.
# This may be replaced when dependencies are built.
