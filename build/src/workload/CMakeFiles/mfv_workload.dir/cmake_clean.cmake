file(REMOVE_RECURSE
  "CMakeFiles/mfv_workload.dir/generator.cpp.o"
  "CMakeFiles/mfv_workload.dir/generator.cpp.o.d"
  "CMakeFiles/mfv_workload.dir/scenarios.cpp.o"
  "CMakeFiles/mfv_workload.dir/scenarios.cpp.o.d"
  "libmfv_workload.a"
  "libmfv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
