file(REMOVE_RECURSE
  "libmfv_workload.a"
)
