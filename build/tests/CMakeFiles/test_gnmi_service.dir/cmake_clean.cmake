file(REMOVE_RECURSE
  "CMakeFiles/test_gnmi_service.dir/test_gnmi_service.cpp.o"
  "CMakeFiles/test_gnmi_service.dir/test_gnmi_service.cpp.o.d"
  "test_gnmi_service"
  "test_gnmi_service.pdb"
  "test_gnmi_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnmi_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
