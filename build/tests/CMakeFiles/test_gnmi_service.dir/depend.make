# Empty dependencies file for test_gnmi_service.
# This may be replaced when dependencies are built.
