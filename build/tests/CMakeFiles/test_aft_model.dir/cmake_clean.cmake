file(REMOVE_RECURSE
  "CMakeFiles/test_aft_model.dir/test_aft_model.cpp.o"
  "CMakeFiles/test_aft_model.dir/test_aft_model.cpp.o.d"
  "test_aft_model"
  "test_aft_model.pdb"
  "test_aft_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aft_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
