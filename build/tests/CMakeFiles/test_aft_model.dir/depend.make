# Empty dependencies file for test_aft_model.
# This may be replaced when dependencies are built.
