# Empty dependencies file for test_vrouter.
# This may be replaced when dependencies are built.
