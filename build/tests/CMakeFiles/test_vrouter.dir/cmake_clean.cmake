file(REMOVE_RECURSE
  "CMakeFiles/test_vrouter.dir/test_vrouter.cpp.o"
  "CMakeFiles/test_vrouter.dir/test_vrouter.cpp.o.d"
  "test_vrouter"
  "test_vrouter.pdb"
  "test_vrouter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vrouter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
