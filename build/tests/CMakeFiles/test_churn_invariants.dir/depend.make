# Empty dependencies file for test_churn_invariants.
# This may be replaced when dependencies are built.
