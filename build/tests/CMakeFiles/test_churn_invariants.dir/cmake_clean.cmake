file(REMOVE_RECURSE
  "CMakeFiles/test_churn_invariants.dir/test_churn_invariants.cpp.o"
  "CMakeFiles/test_churn_invariants.dir/test_churn_invariants.cpp.o.d"
  "test_churn_invariants"
  "test_churn_invariants.pdb"
  "test_churn_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_churn_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
