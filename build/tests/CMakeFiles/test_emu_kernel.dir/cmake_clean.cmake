file(REMOVE_RECURSE
  "CMakeFiles/test_emu_kernel.dir/test_emu_kernel.cpp.o"
  "CMakeFiles/test_emu_kernel.dir/test_emu_kernel.cpp.o.d"
  "test_emu_kernel"
  "test_emu_kernel.pdb"
  "test_emu_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emu_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
