# Empty compiler generated dependencies file for test_emu_kernel.
# This may be replaced when dependencies are built.
