file(REMOVE_RECURSE
  "CMakeFiles/test_config_ceos.dir/test_config_ceos.cpp.o"
  "CMakeFiles/test_config_ceos.dir/test_config_ceos.cpp.o.d"
  "test_config_ceos"
  "test_config_ceos.pdb"
  "test_config_ceos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_ceos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
