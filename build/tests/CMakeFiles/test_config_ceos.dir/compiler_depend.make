# Empty compiler generated dependencies file for test_config_ceos.
# This may be replaced when dependencies are built.
