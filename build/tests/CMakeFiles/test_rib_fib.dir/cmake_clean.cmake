file(REMOVE_RECURSE
  "CMakeFiles/test_rib_fib.dir/test_rib_fib.cpp.o"
  "CMakeFiles/test_rib_fib.dir/test_rib_fib.cpp.o.d"
  "test_rib_fib"
  "test_rib_fib.pdb"
  "test_rib_fib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rib_fib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
