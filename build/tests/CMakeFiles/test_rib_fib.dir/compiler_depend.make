# Empty compiler generated dependencies file for test_rib_fib.
# This may be replaced when dependencies are built.
