# Empty dependencies file for test_proto_isis.
# This may be replaced when dependencies are built.
