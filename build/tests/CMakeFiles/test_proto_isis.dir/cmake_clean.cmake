file(REMOVE_RECURSE
  "CMakeFiles/test_proto_isis.dir/test_proto_isis.cpp.o"
  "CMakeFiles/test_proto_isis.dir/test_proto_isis.cpp.o.d"
  "test_proto_isis"
  "test_proto_isis.pdb"
  "test_proto_isis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_isis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
