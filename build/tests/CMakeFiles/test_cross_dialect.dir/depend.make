# Empty dependencies file for test_cross_dialect.
# This may be replaced when dependencies are built.
