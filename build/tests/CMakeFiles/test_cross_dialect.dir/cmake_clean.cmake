file(REMOVE_RECURSE
  "CMakeFiles/test_cross_dialect.dir/test_cross_dialect.cpp.o"
  "CMakeFiles/test_cross_dialect.dir/test_cross_dialect.cpp.o.d"
  "test_cross_dialect"
  "test_cross_dialect.pdb"
  "test_cross_dialect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_dialect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
