# Empty dependencies file for test_gnmi_subscribe.
# This may be replaced when dependencies are built.
