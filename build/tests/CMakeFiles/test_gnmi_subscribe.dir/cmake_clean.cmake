file(REMOVE_RECURSE
  "CMakeFiles/test_gnmi_subscribe.dir/test_gnmi_subscribe.cpp.o"
  "CMakeFiles/test_gnmi_subscribe.dir/test_gnmi_subscribe.cpp.o.d"
  "test_gnmi_subscribe"
  "test_gnmi_subscribe.pdb"
  "test_gnmi_subscribe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnmi_subscribe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
