file(REMOVE_RECURSE
  "CMakeFiles/test_rib_core.dir/test_rib_core.cpp.o"
  "CMakeFiles/test_rib_core.dir/test_rib_core.cpp.o.d"
  "test_rib_core"
  "test_rib_core.pdb"
  "test_rib_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rib_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
