file(REMOVE_RECURSE
  "CMakeFiles/test_bgp_route_reflector.dir/test_bgp_route_reflector.cpp.o"
  "CMakeFiles/test_bgp_route_reflector.dir/test_bgp_route_reflector.cpp.o.d"
  "test_bgp_route_reflector"
  "test_bgp_route_reflector.pdb"
  "test_bgp_route_reflector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp_route_reflector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
