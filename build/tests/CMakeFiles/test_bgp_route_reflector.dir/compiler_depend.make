# Empty compiler generated dependencies file for test_bgp_route_reflector.
# This may be replaced when dependencies are built.
