file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_equivalence.dir/test_shadow_equivalence.cpp.o"
  "CMakeFiles/test_shadow_equivalence.dir/test_shadow_equivalence.cpp.o.d"
  "test_shadow_equivalence"
  "test_shadow_equivalence.pdb"
  "test_shadow_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
