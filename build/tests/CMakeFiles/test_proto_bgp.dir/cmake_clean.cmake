file(REMOVE_RECURSE
  "CMakeFiles/test_proto_bgp.dir/test_proto_bgp.cpp.o"
  "CMakeFiles/test_proto_bgp.dir/test_proto_bgp.cpp.o.d"
  "test_proto_bgp"
  "test_proto_bgp.pdb"
  "test_proto_bgp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
