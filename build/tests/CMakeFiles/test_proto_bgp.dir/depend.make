# Empty dependencies file for test_proto_bgp.
# This may be replaced when dependencies are built.
