# Empty dependencies file for test_integration_fig3.
# This may be replaced when dependencies are built.
