file(REMOVE_RECURSE
  "CMakeFiles/test_integration_fig3.dir/test_integration_fig3.cpp.o"
  "CMakeFiles/test_integration_fig3.dir/test_integration_fig3.cpp.o.d"
  "test_integration_fig3"
  "test_integration_fig3.pdb"
  "test_integration_fig3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_fig3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
