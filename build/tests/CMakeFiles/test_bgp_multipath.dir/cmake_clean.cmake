file(REMOVE_RECURSE
  "CMakeFiles/test_bgp_multipath.dir/test_bgp_multipath.cpp.o"
  "CMakeFiles/test_bgp_multipath.dir/test_bgp_multipath.cpp.o.d"
  "test_bgp_multipath"
  "test_bgp_multipath.pdb"
  "test_bgp_multipath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
