# Empty dependencies file for test_bgp_multipath.
# This may be replaced when dependencies are built.
