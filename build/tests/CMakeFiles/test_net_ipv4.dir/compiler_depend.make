# Empty compiler generated dependencies file for test_net_ipv4.
# This may be replaced when dependencies are built.
