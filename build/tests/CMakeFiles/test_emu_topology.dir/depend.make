# Empty dependencies file for test_emu_topology.
# This may be replaced when dependencies are built.
