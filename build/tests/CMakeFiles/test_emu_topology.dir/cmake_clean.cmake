file(REMOVE_RECURSE
  "CMakeFiles/test_emu_topology.dir/test_emu_topology.cpp.o"
  "CMakeFiles/test_emu_topology.dir/test_emu_topology.cpp.o.d"
  "test_emu_topology"
  "test_emu_topology.pdb"
  "test_emu_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emu_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
