# Empty dependencies file for test_gribi.
# This may be replaced when dependencies are built.
