file(REMOVE_RECURSE
  "CMakeFiles/test_gribi.dir/test_gribi.cpp.o"
  "CMakeFiles/test_gribi.dir/test_gribi.cpp.o.d"
  "test_gribi"
  "test_gribi.pdb"
  "test_gribi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gribi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
