# Empty compiler generated dependencies file for test_model_baseline.
# This may be replaced when dependencies are built.
