file(REMOVE_RECURSE
  "CMakeFiles/test_model_baseline.dir/test_model_baseline.cpp.o"
  "CMakeFiles/test_model_baseline.dir/test_model_baseline.cpp.o.d"
  "test_model_baseline"
  "test_model_baseline.pdb"
  "test_model_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
