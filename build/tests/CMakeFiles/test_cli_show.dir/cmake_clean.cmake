file(REMOVE_RECURSE
  "CMakeFiles/test_cli_show.dir/test_cli_show.cpp.o"
  "CMakeFiles/test_cli_show.dir/test_cli_show.cpp.o.d"
  "test_cli_show"
  "test_cli_show.pdb"
  "test_cli_show[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cli_show.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
