# Empty compiler generated dependencies file for test_cli_show.
# This may be replaced when dependencies are built.
