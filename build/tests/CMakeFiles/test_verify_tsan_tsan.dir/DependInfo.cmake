
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aft/aft.cpp" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/aft/aft.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/aft/aft.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/net/ipv4.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/net/ipv4.cpp.o.d"
  "/root/repo/src/util/json.cpp" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/util/json.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/util/json.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/util/strings.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/util/strings.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/util/thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/util/thread_pool.cpp.o.d"
  "/root/repo/src/verify/disposition.cpp" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/disposition.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/disposition.cpp.o.d"
  "/root/repo/src/verify/forwarding_graph.cpp" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/forwarding_graph.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/forwarding_graph.cpp.o.d"
  "/root/repo/src/verify/packet_classes.cpp" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/packet_classes.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/packet_classes.cpp.o.d"
  "/root/repo/src/verify/queries.cpp" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/queries.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/queries.cpp.o.d"
  "/root/repo/src/verify/trace.cpp" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/trace.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/trace.cpp.o.d"
  "/root/repo/src/verify/trace_cache.cpp" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/trace_cache.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/trace_cache.cpp.o.d"
  "/root/repo/tests/test_verify_tsan.cpp" "tests/CMakeFiles/test_verify_tsan_tsan.dir/test_verify_tsan.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan_tsan.dir/test_verify_tsan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
