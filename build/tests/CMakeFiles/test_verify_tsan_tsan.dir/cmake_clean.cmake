file(REMOVE_RECURSE
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/aft/aft.cpp.o"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/aft/aft.cpp.o.d"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/net/ipv4.cpp.o"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/net/ipv4.cpp.o.d"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/util/json.cpp.o"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/util/json.cpp.o.d"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/util/strings.cpp.o"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/util/strings.cpp.o.d"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/util/thread_pool.cpp.o"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/util/thread_pool.cpp.o.d"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/disposition.cpp.o"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/disposition.cpp.o.d"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/forwarding_graph.cpp.o"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/forwarding_graph.cpp.o.d"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/packet_classes.cpp.o"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/packet_classes.cpp.o.d"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/queries.cpp.o"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/queries.cpp.o.d"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/trace.cpp.o"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/trace.cpp.o.d"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/trace_cache.cpp.o"
  "CMakeFiles/test_verify_tsan_tsan.dir/__/src/verify/trace_cache.cpp.o.d"
  "CMakeFiles/test_verify_tsan_tsan.dir/test_verify_tsan.cpp.o"
  "CMakeFiles/test_verify_tsan_tsan.dir/test_verify_tsan.cpp.o.d"
  "test_verify_tsan_tsan"
  "test_verify_tsan_tsan.pdb"
  "test_verify_tsan_tsan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_tsan_tsan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
