file(REMOVE_RECURSE
  "CMakeFiles/test_api_session.dir/test_api_session.cpp.o"
  "CMakeFiles/test_api_session.dir/test_api_session.cpp.o.d"
  "test_api_session"
  "test_api_session.pdb"
  "test_api_session[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
