file(REMOVE_RECURSE
  "CMakeFiles/test_verify_lsp.dir/test_verify_lsp.cpp.o"
  "CMakeFiles/test_verify_lsp.dir/test_verify_lsp.cpp.o.d"
  "test_verify_lsp"
  "test_verify_lsp.pdb"
  "test_verify_lsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_lsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
