# Empty compiler generated dependencies file for test_verify_lsp.
# This may be replaced when dependencies are built.
