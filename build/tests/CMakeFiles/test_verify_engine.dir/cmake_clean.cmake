file(REMOVE_RECURSE
  "CMakeFiles/test_verify_engine.dir/test_verify_engine.cpp.o"
  "CMakeFiles/test_verify_engine.dir/test_verify_engine.cpp.o.d"
  "test_verify_engine"
  "test_verify_engine.pdb"
  "test_verify_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
