# Empty dependencies file for test_verify_engine.
# This may be replaced when dependencies are built.
