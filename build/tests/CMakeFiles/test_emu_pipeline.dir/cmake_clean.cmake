file(REMOVE_RECURSE
  "CMakeFiles/test_emu_pipeline.dir/test_emu_pipeline.cpp.o"
  "CMakeFiles/test_emu_pipeline.dir/test_emu_pipeline.cpp.o.d"
  "test_emu_pipeline"
  "test_emu_pipeline.pdb"
  "test_emu_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emu_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
