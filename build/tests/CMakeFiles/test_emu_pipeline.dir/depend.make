# Empty dependencies file for test_emu_pipeline.
# This may be replaced when dependencies are built.
