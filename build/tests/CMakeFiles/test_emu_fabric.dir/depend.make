# Empty dependencies file for test_emu_fabric.
# This may be replaced when dependencies are built.
