file(REMOVE_RECURSE
  "CMakeFiles/test_emu_fabric.dir/test_emu_fabric.cpp.o"
  "CMakeFiles/test_emu_fabric.dir/test_emu_fabric.cpp.o.d"
  "test_emu_fabric"
  "test_emu_fabric.pdb"
  "test_emu_fabric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emu_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
