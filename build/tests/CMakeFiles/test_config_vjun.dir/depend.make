# Empty dependencies file for test_config_vjun.
# This may be replaced when dependencies are built.
