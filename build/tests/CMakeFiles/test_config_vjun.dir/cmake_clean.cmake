file(REMOVE_RECURSE
  "CMakeFiles/test_config_vjun.dir/test_config_vjun.cpp.o"
  "CMakeFiles/test_config_vjun.dir/test_config_vjun.cpp.o.d"
  "test_config_vjun"
  "test_config_vjun.pdb"
  "test_config_vjun[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_vjun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
