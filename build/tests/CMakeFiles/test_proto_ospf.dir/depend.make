# Empty dependencies file for test_proto_ospf.
# This may be replaced when dependencies are built.
