file(REMOVE_RECURSE
  "CMakeFiles/test_proto_ospf.dir/test_proto_ospf.cpp.o"
  "CMakeFiles/test_proto_ospf.dir/test_proto_ospf.cpp.o.d"
  "test_proto_ospf"
  "test_proto_ospf.pdb"
  "test_proto_ospf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_ospf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
