file(REMOVE_RECURSE
  "CMakeFiles/test_orch_cluster.dir/test_orch_cluster.cpp.o"
  "CMakeFiles/test_orch_cluster.dir/test_orch_cluster.cpp.o.d"
  "test_orch_cluster"
  "test_orch_cluster.pdb"
  "test_orch_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orch_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
