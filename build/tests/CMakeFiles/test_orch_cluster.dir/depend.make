# Empty dependencies file for test_orch_cluster.
# This may be replaced when dependencies are built.
