# Empty compiler generated dependencies file for test_routes_question.
# This may be replaced when dependencies are built.
