file(REMOVE_RECURSE
  "CMakeFiles/test_routes_question.dir/test_routes_question.cpp.o"
  "CMakeFiles/test_routes_question.dir/test_routes_question.cpp.o.d"
  "test_routes_question"
  "test_routes_question.pdb"
  "test_routes_question[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routes_question.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
