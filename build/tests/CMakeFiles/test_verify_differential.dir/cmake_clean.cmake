file(REMOVE_RECURSE
  "CMakeFiles/test_verify_differential.dir/test_verify_differential.cpp.o"
  "CMakeFiles/test_verify_differential.dir/test_verify_differential.cpp.o.d"
  "test_verify_differential"
  "test_verify_differential.pdb"
  "test_verify_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
