# Empty compiler generated dependencies file for test_verify_differential.
# This may be replaced when dependencies are built.
