file(REMOVE_RECURSE
  "CMakeFiles/test_convergence_monitor.dir/test_convergence_monitor.cpp.o"
  "CMakeFiles/test_convergence_monitor.dir/test_convergence_monitor.cpp.o.d"
  "test_convergence_monitor"
  "test_convergence_monitor.pdb"
  "test_convergence_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_convergence_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
