# Empty compiler generated dependencies file for test_convergence_monitor.
# This may be replaced when dependencies are built.
