file(REMOVE_RECURSE
  "CMakeFiles/test_verify_parallel.dir/test_verify_parallel.cpp.o"
  "CMakeFiles/test_verify_parallel.dir/test_verify_parallel.cpp.o.d"
  "test_verify_parallel"
  "test_verify_parallel.pdb"
  "test_verify_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
