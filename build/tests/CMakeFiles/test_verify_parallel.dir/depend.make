# Empty dependencies file for test_verify_parallel.
# This may be replaced when dependencies are built.
