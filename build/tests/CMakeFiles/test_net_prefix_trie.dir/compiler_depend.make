# Empty compiler generated dependencies file for test_net_prefix_trie.
# This may be replaced when dependencies are built.
