file(REMOVE_RECURSE
  "CMakeFiles/test_proto_policy.dir/test_proto_policy.cpp.o"
  "CMakeFiles/test_proto_policy.dir/test_proto_policy.cpp.o.d"
  "test_proto_policy"
  "test_proto_policy.pdb"
  "test_proto_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
