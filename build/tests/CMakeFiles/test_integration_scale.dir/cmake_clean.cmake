file(REMOVE_RECURSE
  "CMakeFiles/test_integration_scale.dir/test_integration_scale.cpp.o"
  "CMakeFiles/test_integration_scale.dir/test_integration_scale.cpp.o.d"
  "test_integration_scale"
  "test_integration_scale.pdb"
  "test_integration_scale[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
