# Empty dependencies file for test_verify_tsan.
# This may be replaced when dependencies are built.
