
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_verify_tsan.cpp" "tests/CMakeFiles/test_verify_tsan.dir/test_verify_tsan.cpp.o" "gcc" "tests/CMakeFiles/test_verify_tsan.dir/test_verify_tsan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mfv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mfv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/mfv_config.dir/DependInfo.cmake"
  "/root/repo/build/src/aft/CMakeFiles/mfv_aft.dir/DependInfo.cmake"
  "/root/repo/build/src/rib/CMakeFiles/mfv_rib.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/mfv_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/vrouter/CMakeFiles/mfv_vrouter.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/mfv_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/orch/CMakeFiles/mfv_orch.dir/DependInfo.cmake"
  "/root/repo/build/src/gnmi/CMakeFiles/mfv_gnmi.dir/DependInfo.cmake"
  "/root/repo/build/src/gribi/CMakeFiles/mfv_gribi.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/mfv_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mfv_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mfv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/mfv_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/mfv_api.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
