file(REMOVE_RECURSE
  "CMakeFiles/test_verify_tsan.dir/test_verify_tsan.cpp.o"
  "CMakeFiles/test_verify_tsan.dir/test_verify_tsan.cpp.o.d"
  "test_verify_tsan"
  "test_verify_tsan.pdb"
  "test_verify_tsan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_tsan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
