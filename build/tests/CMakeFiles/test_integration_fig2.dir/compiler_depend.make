# Empty compiler generated dependencies file for test_integration_fig2.
# This may be replaced when dependencies are built.
