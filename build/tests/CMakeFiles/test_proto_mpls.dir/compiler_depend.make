# Empty compiler generated dependencies file for test_proto_mpls.
# This may be replaced when dependencies are built.
