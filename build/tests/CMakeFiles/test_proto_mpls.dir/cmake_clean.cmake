file(REMOVE_RECURSE
  "CMakeFiles/test_proto_mpls.dir/test_proto_mpls.cpp.o"
  "CMakeFiles/test_proto_mpls.dir/test_proto_mpls.cpp.o.d"
  "test_proto_mpls"
  "test_proto_mpls.pdb"
  "test_proto_mpls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_mpls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
