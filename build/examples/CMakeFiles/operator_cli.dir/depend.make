# Empty dependencies file for operator_cli.
# This may be replaced when dependencies are built.
