file(REMOVE_RECURSE
  "CMakeFiles/operator_cli.dir/operator_cli.cpp.o"
  "CMakeFiles/operator_cli.dir/operator_cli.cpp.o.d"
  "operator_cli"
  "operator_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
