# Empty dependencies file for pre_deployment_check.
# This may be replaced when dependencies are built.
