file(REMOVE_RECURSE
  "CMakeFiles/pre_deployment_check.dir/pre_deployment_check.cpp.o"
  "CMakeFiles/pre_deployment_check.dir/pre_deployment_check.cpp.o.d"
  "pre_deployment_check"
  "pre_deployment_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pre_deployment_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
