file(REMOVE_RECURSE
  "CMakeFiles/campus_acl.dir/campus_acl.cpp.o"
  "CMakeFiles/campus_acl.dir/campus_acl.cpp.o.d"
  "campus_acl"
  "campus_acl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_acl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
