# Empty dependencies file for campus_acl.
# This may be replaced when dependencies are built.
