file(REMOVE_RECURSE
  "CMakeFiles/sdn_controller.dir/sdn_controller.cpp.o"
  "CMakeFiles/sdn_controller.dir/sdn_controller.cpp.o.d"
  "sdn_controller"
  "sdn_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
