# Empty compiler generated dependencies file for sdn_controller.
# This may be replaced when dependencies are built.
