# Empty dependencies file for multivendor_wan.
# This may be replaced when dependencies are built.
