file(REMOVE_RECURSE
  "CMakeFiles/multivendor_wan.dir/multivendor_wan.cpp.o"
  "CMakeFiles/multivendor_wan.dir/multivendor_wan.cpp.o.d"
  "multivendor_wan"
  "multivendor_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multivendor_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
