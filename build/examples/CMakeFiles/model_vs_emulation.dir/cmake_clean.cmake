file(REMOVE_RECURSE
  "CMakeFiles/model_vs_emulation.dir/model_vs_emulation.cpp.o"
  "CMakeFiles/model_vs_emulation.dir/model_vs_emulation.cpp.o.d"
  "model_vs_emulation"
  "model_vs_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_vs_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
