# Empty dependencies file for model_vs_emulation.
# This may be replaced when dependencies are built.
