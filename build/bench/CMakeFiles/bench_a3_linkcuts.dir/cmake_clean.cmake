file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_linkcuts.dir/bench_a3_linkcuts.cpp.o"
  "CMakeFiles/bench_a3_linkcuts.dir/bench_a3_linkcuts.cpp.o.d"
  "bench_a3_linkcuts"
  "bench_a3_linkcuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_linkcuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
