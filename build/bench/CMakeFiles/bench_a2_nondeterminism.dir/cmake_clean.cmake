file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_nondeterminism.dir/bench_a2_nondeterminism.cpp.o"
  "CMakeFiles/bench_a2_nondeterminism.dir/bench_a2_nondeterminism.cpp.o.d"
  "bench_a2_nondeterminism"
  "bench_a2_nondeterminism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_nondeterminism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
