file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_interop.dir/bench_a4_interop.cpp.o"
  "CMakeFiles/bench_a4_interop.dir/bench_a4_interop.cpp.o.d"
  "bench_a4_interop"
  "bench_a4_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
