# Empty dependencies file for bench_e3_divergence.
# This may be replaced when dependencies are built.
