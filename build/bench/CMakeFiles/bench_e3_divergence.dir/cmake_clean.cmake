file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_divergence.dir/bench_e3_divergence.cpp.o"
  "CMakeFiles/bench_e3_divergence.dir/bench_e3_divergence.cpp.o.d"
  "bench_e3_divergence"
  "bench_e3_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
