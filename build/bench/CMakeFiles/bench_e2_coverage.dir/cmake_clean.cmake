file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_coverage.dir/bench_e2_coverage.cpp.o"
  "CMakeFiles/bench_e2_coverage.dir/bench_e2_coverage.cpp.o.d"
  "bench_e2_coverage"
  "bench_e2_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
