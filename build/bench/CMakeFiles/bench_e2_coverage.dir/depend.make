# Empty dependencies file for bench_e2_coverage.
# This may be replaced when dependencies are built.
