file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_tooling.dir/bench_e5_tooling.cpp.o"
  "CMakeFiles/bench_e5_tooling.dir/bench_e5_tooling.cpp.o.d"
  "bench_e5_tooling"
  "bench_e5_tooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_tooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
