file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_scale.dir/bench_e4_scale.cpp.o"
  "CMakeFiles/bench_e4_scale.dir/bench_e4_scale.cpp.o.d"
  "bench_e4_scale"
  "bench_e4_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
