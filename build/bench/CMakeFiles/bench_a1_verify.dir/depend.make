# Empty dependencies file for bench_a1_verify.
# This may be replaced when dependencies are built.
