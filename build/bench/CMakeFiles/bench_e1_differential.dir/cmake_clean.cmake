file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_differential.dir/bench_e1_differential.cpp.o"
  "CMakeFiles/bench_e1_differential.dir/bench_e1_differential.cpp.o.d"
  "bench_e1_differential"
  "bench_e1_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
