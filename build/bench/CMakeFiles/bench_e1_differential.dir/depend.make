# Empty dependencies file for bench_e1_differential.
# This may be replaced when dependencies are built.
