# Empty dependencies file for bench_e4_convergence.
# This may be replaced when dependencies are built.
