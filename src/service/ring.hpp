// Consistent-hash placement of snapshot keys across a fleet of mfvd
// instances.
//
// Each instance contributes `vnodes` points on a 64-bit hash circle
// (FNV-1a of "name#i" pushed through a murmur3-style finalizer); a key
// belongs to the instance owning the first
// point clockwise from the key's own hash. Adding or removing one
// instance therefore moves only ~1/N of the keyspace — the property that
// makes a fleet elastically resizable without re-homing every stored
// snapshot — and every client computes the same owner from nothing but
// the member list (no coordination service in the data path).
//
// The placement unit is deliberately coarser than the full snapshot id:
// placement_key() strips the delta component, so a converged base and
// every fork derived from it land on the same instance. Forks need the
// base's live emulation to fork from; splitting them across the ring
// would turn every what-if into a cold boot.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mfv::service {

struct HashRingOptions {
  /// Points per instance on the circle. More vnodes = smoother balance;
  /// 64 keeps the max/mean keyspace share within ~30% for small fleets.
  size_t vnodes = 64;
};

class HashRing {
 public:
  HashRing() = default;
  explicit HashRing(std::vector<std::string> instances, HashRingOptions options = {});

  size_t size() const { return instances_.size(); }
  bool empty() const { return instances_.empty(); }
  const std::string& instance(size_t index) const { return instances_[index]; }

  /// Index of the instance that owns `key`. Undefined on an empty ring.
  size_t owner(std::string_view key) const;

  /// Up to `count` distinct instances in ring order from the owner
  /// onwards — the failover preference list (owner first, then the
  /// successor that inherits its keyspace, and so on).
  std::vector<size_t> preference(std::string_view key, size_t count) const;

 private:
  std::vector<std::string> instances_;
  /// (point hash, instance index), sorted by hash; ties broken by index
  /// so every member computes the identical ring.
  std::vector<std::pair<uint64_t, uint32_t>> points_;
};

/// Placement component of a snapshot/submission id: "t…-c…-d…" maps to
/// its "t…-c…" prefix (ids that do not parse route by their full text).
std::string placement_key(std::string_view snapshot_id);

}  // namespace mfv::service
