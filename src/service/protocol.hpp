// Wire protocol of the mfv verification service.
//
// Frames are a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON — trivial to speak from any language, incrementally
// parseable, and bounded (kMaxFrameBytes caps what a peer can force the
// server to buffer; the JSON parser additionally runs under
// kWireParseLimits so adversarial nesting cannot blow the stack).
//
// A Request names a verb (upload_configs / snapshot / query /
// fork_scenario / explore / stats / metrics), carries a client-chosen id echoed back in the
// Response, a tenant namespace, a priority class for the broker, and an
// optional relative deadline. Responses carry a StatusCode by name, so
// RESOURCE_EXHAUSTED rejections and DEADLINE_EXCEEDED expiries are
// first-class wire values.
//
// Tenancy: every request executes inside one tenant namespace. An absent
// or empty `tenant` field maps to kDefaultTenant, so single-tenant
// clients need not change. Tenant names are restricted to
// [A-Za-z0-9_-]{1,64} — they become snapshot-store namespace prefixes and
// metric-name components, so arbitrary bytes are rejected at decode time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/json.hpp"
#include "util/status.hpp"

namespace mfv::service {

/// Broker scheduling classes, dispatched strictly in this order.
enum class Priority { kInteractive = 0, kBatch = 1, kBackground = 2 };
inline constexpr size_t kPriorityCount = 3;

std::string priority_name(Priority priority);
std::optional<Priority> priority_from_name(std::string_view name);

/// Tenant a request belongs to when it names none.
inline constexpr const char* kDefaultTenant = "default";

/// True iff `name` is a legal tenant name: [A-Za-z0-9_-]{1,64}.
bool valid_tenant_name(std::string_view name);

struct Request {
  /// Client-chosen correlation id, echoed in the response (pipelined
  /// clients match responses by id; ordering is not guaranteed).
  uint64_t id = 0;
  std::string verb;
  /// Tenant namespace; empty = kDefaultTenant. Scopes uploads, snapshot
  /// keys, store quotas, and broker fair-share accounting.
  std::string tenant;
  Priority priority = Priority::kBatch;
  /// Relative deadline budget in milliseconds; 0 = none. A request whose
  /// deadline passes while still queued is failed with DEADLINE_EXCEEDED
  /// instead of executed.
  int64_t deadline_ms = 0;
  util::Json params;

  /// The effective tenant namespace (kDefaultTenant when unset).
  const std::string& tenant_or_default() const {
    static const std::string kDefault = kDefaultTenant;
    return tenant.empty() ? kDefault : tenant;
  }

  util::Json to_json() const;
  static util::Result<Request> from_json(const util::Json& json);
};

struct Response {
  uint64_t id = 0;
  util::StatusCode code = util::StatusCode::kOk;
  std::string error;  // human-readable; empty when ok
  util::Json result;  // verb-specific object; null when !ok

  bool ok() const { return code == util::StatusCode::kOk; }
  util::Status status() const {
    if (ok()) return util::Status::ok_status();
    return util::Status(code, error);
  }

  util::Json to_json() const;
  static util::Result<Response> from_json(const util::Json& json);
  static Response failure(uint64_t id, const util::Status& status);
  static Response success(uint64_t id, util::Json result);
};

/// Upper bound on one frame's payload (4-byte length field notwithstanding).
inline constexpr size_t kMaxFrameBytes = 16u << 20;

/// Parser limits applied to every payload read off the wire.
inline constexpr util::JsonParseLimits kWireParseLimits{/*max_depth=*/64,
                                                        /*max_bytes=*/kMaxFrameBytes};

/// Writes one length-prefixed frame; loops over partial writes. Fails with
/// kInvalidArgument when the payload exceeds max_bytes, kUnavailable when
/// the peer is gone (EPIPE/ECONNRESET).
util::Status write_frame(int fd, std::string_view payload,
                         size_t max_bytes = kMaxFrameBytes);

/// Reads one frame into `payload`. kUnavailable on clean EOF at a frame
/// boundary (peer closed), kInvalidArgument on an oversized length prefix,
/// kInternal on a mid-frame EOF or socket error.
util::Status read_frame(int fd, std::string& payload,
                        size_t max_bytes = kMaxFrameBytes);

/// Payload decoding under the wire parse limits.
util::Result<Request> decode_request(std::string_view payload);
util::Result<Response> decode_response(std::string_view payload);

}  // namespace mfv::service
