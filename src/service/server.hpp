// Socket front end of the verification service (the mfvd daemon's core).
//
// Listens on a unix-domain socket (preferred for local use) or loopback
// TCP, accepts connections on a dedicated thread, and runs one reader
// thread per connection. Each decoded request is submitted to the
// service's broker; the completion callback writes the response frame
// under a per-connection write mutex, so pipelined requests from one
// client interleave correctly (responses may arrive out of order —
// clients match on the echoed request id).
//
// stop() is the graceful-drain sequence: stop accepting, drain the
// service (in-flight requests finish and their responses are delivered),
// then shut the connections down and join every thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"
#include "util/status.hpp"

namespace mfv::service {

struct ServerOptions {
  /// Non-empty = listen on this unix-domain socket path (unlinked on
  /// bind and on stop).
  std::string unix_path;
  /// Used when unix_path is empty: TCP on 127.0.0.1; 0 = ephemeral (read
  /// the bound port back with port()).
  uint16_t tcp_port = 0;
};

class Server {
 public:
  Server(VerificationService& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept thread.
  util::Status start();

  /// Graceful shutdown; safe to call more than once.
  void stop();

  /// Bound TCP port (valid after start() in TCP mode).
  uint16_t port() const { return port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  size_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  /// One client socket. The fd closes when the last reference drops, so
  /// a response callback still in flight after the reader exits writes
  /// to a valid descriptor (at worst a shut-down one).
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex write_mutex;
  };

  void accept_loop();
  void serve_connection(std::shared_ptr<Connection> connection);

  VerificationService& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> connections_accepted_{0};
  std::thread accept_thread_;

  std::mutex mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<std::weak_ptr<Connection>> connections_;
};

}  // namespace mfv::service
