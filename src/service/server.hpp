// Socket front end of the verification service (the mfvd daemon's core).
//
// Listens on a unix-domain socket (preferred for local use) or loopback
// TCP, accepts connections on a dedicated thread, and runs one reader
// thread per connection. Each decoded request is submitted to the
// service's broker; the completion callback writes the response frame
// under a per-connection write mutex, so pipelined requests from one
// client interleave correctly (responses may arrive out of order —
// clients match on the echoed request id).
//
// Daemon-lifetime hardening (the properties a fleet member must hold):
//
//  * Transient accept() failures — EMFILE/ENFILE fd exhaustion,
//    ECONNABORTED, ENOBUFS/ENOMEM — are retried with capped exponential
//    backoff and counted in `server_accept_retries`, not treated as
//    shutdown. A daemon that sheds one fd-pressure spike by silently
//    exiting its accept loop looks alive (process up, socket bound) while
//    refusing every future client; only stop() or an unrecoverable error
//    ends the loop.
//
//  * Finished connection threads are reaped as connections close (each
//    accept iteration and on stop), so a long-lived daemon serving
//    millions of short connections holds threads and registry slots
//    proportional to *live* connections, not to connections ever served.
//
//  * start() probe-connects the unix socket path before touching it: a
//    live daemon answering on the path fails the newcomer with
//    ALREADY_EXISTS, while a stale file from a crashed run (connect →
//    ECONNREFUSED) is unlinked and reclaimed. Blind unlink — the old
//    behavior — let a second daemon silently steal the path and orphan
//    the first.
//
// stop() is the graceful-drain sequence: stop accepting, drain the
// service (in-flight requests finish and their responses are delivered),
// then shut the connections down and join every thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"
#include "util/status.hpp"

namespace mfv::service {

struct ServerOptions {
  /// Non-empty = listen on this unix-domain socket path. A stale path is
  /// reclaimed on start; a path with a live listener fails start() with
  /// ALREADY_EXISTS. Unlinked on stop.
  std::string unix_path;
  /// Used when unix_path is empty: TCP on 127.0.0.1; 0 = ephemeral (read
  /// the bound port back with port()).
  uint16_t tcp_port = 0;
  /// Test seam for the accept(2) call: takes the listen fd, returns a
  /// client fd or -1 with errno set (deterministic fd-exhaustion tests
  /// inject EMFILE here). Null = real ::accept.
  std::function<int(int listen_fd)> accept_fn;
};

class Server {
 public:
  Server(VerificationService& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept thread.
  util::Status start();

  /// Graceful shutdown; safe to call more than once.
  void stop();

  /// Bound TCP port (valid after start() in TCP mode).
  uint16_t port() const { return port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  size_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Transient accept() failures survived (also the
  /// `server_accept_retries` counter).
  uint64_t accept_retries() const {
    return accept_retries_.load(std::memory_order_relaxed);
  }
  /// Reader threads not yet reaped — bounded by live connections plus the
  /// finished-but-unreaped remainder, NOT by connections ever accepted.
  size_t live_connection_threads() const;
  /// Connection registry entries whose socket is still open.
  size_t tracked_connections() const;

 private:
  /// One client socket. The fd closes when the last reference drops, so
  /// a response callback still in flight after the reader exits writes
  /// to a valid descriptor (at worst a shut-down one).
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex write_mutex;
  };

  /// A reader thread plus the flag it raises as its last action. The
  /// accept loop joins flagged workers — join-after-finished, so reaping
  /// never blocks the accept path behind a slow reader.
  struct Worker {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void serve_connection(std::shared_ptr<Connection> connection);
  /// Joins finished workers and drops expired connection entries
  /// (caller holds mutex_).
  void reap_finished_locked();

  VerificationService& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> connections_accepted_{0};
  std::atomic<uint64_t> accept_retries_{0};
  std::thread accept_thread_;

  mutable std::mutex mutex_;
  std::vector<Worker> workers_;
  std::vector<std::weak_ptr<Connection>> connections_;
};

}  // namespace mfv::service
