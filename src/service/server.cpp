#include "service/server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/logging.hpp"

namespace mfv::service {

namespace {

bool transient_accept_errno(int err) {
  // Per-process/system fd exhaustion, a connection that died between
  // SYN and accept, and kernel memory pressure all clear on their own;
  // none of them means the listen socket is broken.
  return err == EMFILE || err == ENFILE || err == ECONNABORTED ||
         err == ENOBUFS || err == ENOMEM;
}

}  // namespace

Server::Connection::~Connection() { ::close(fd); }

Server::Server(VerificationService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() { stop(); }

util::Status Server::start() {
  if (listen_fd_ >= 0) return util::failed_precondition("server already started");

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path))
      return util::invalid_argument("unix socket path too long: " + options_.unix_path);
    std::strncpy(addr.sun_path, options_.unix_path.c_str(), sizeof(addr.sun_path) - 1);

    // Probe before touching the path: a live daemon is answering there iff
    // connect succeeds, and it must not be evicted by a newcomer. Only a
    // refused connection proves the file is a leftover from a crashed run,
    // which is the one case where unlinking is reclamation, not theft.
    int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      if (::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        ::close(probe);
        return util::already_exists("unix socket " + options_.unix_path +
                                    " has a live listener (another daemon is "
                                    "serving it); pick a different --socket");
      }
      const int probe_errno = errno;
      ::close(probe);
      if (probe_errno != ENOENT) {
        MFV_LOG(kInfo, "server") << "reclaiming stale socket " << options_.unix_path;
        ::unlink(options_.unix_path.c_str());
      }
    }

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
      return util::internal_error(std::string("socket: ") + std::strerror(errno));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      util::Status status =
          util::internal_error("bind " + options_.unix_path + ": " + std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
      return util::internal_error(std::string("socket: ") + std::strerror(errno));
    int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never exposed beyond localhost
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      util::Status status = util::internal_error("bind 127.0.0.1:" +
                                                 std::to_string(options_.tcp_port) + ": " +
                                                 std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    sockaddr_in bound{};
    socklen_t bound_size = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size);
    port_ = ntohs(bound.sin_port);
  }

  if (::listen(listen_fd_, 64) < 0) {
    util::Status status = util::internal_error(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  MFV_LOG(kInfo, "server") << "listening on "
                           << (options_.unix_path.empty()
                                   ? "127.0.0.1:" + std::to_string(port_)
                                   : options_.unix_path);
  return util::Status::ok_status();
}

void Server::accept_loop() {
  obs::Counter& retries_counter = service_.metrics().counter("server_accept_retries");
  int backoff_ms = 1;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      reap_finished_locked();
    }
    int fd = options_.accept_fn ? options_.accept_fn(listen_fd_)
                                : ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!stopping_.load() && transient_accept_errno(errno)) {
        accept_retries_.fetch_add(1, std::memory_order_relaxed);
        retries_counter.add(1);
        MFV_LOG(kWarn, "server")
            << "accept failed transiently (" << std::strerror(errno)
            << "); retrying in " << backoff_ms << "ms";
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, 100);
        continue;
      }
      return;  // listen socket closed (stop) or unrecoverable
    }
    backoff_ms = 1;
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_shared<Connection>(fd);
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.push_back(connection);
    Worker worker;
    worker.done = done;
    worker.thread =
        std::thread([this, connection = std::move(connection), done]() mutable {
          serve_connection(std::move(connection));
          // Last action: flag for the reaper. Anything after this store
          // would race the join.
          done->store(true, std::memory_order_release);
        });
    workers_.push_back(std::move(worker));
  }
}

void Server::reap_finished_locked() {
  for (size_t i = 0; i < workers_.size();) {
    if (workers_[i].done->load(std::memory_order_acquire)) {
      workers_[i].thread.join();
      workers_[i] = std::move(workers_.back());
      workers_.pop_back();
    } else {
      ++i;
    }
  }
  std::erase_if(connections_,
                [](const std::weak_ptr<Connection>& weak) { return weak.expired(); });
}

size_t Server::live_connection_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

size_t Server::tracked_connections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t live = 0;
  for (const std::weak_ptr<Connection>& weak : connections_)
    if (!weak.expired()) ++live;
  return live;
}

void Server::serve_connection(std::shared_ptr<Connection> connection) {
  std::string payload;
  for (;;) {
    util::Status status = read_frame(connection->fd, payload);
    if (!status.ok()) {
      if (status.code() != util::StatusCode::kUnavailable) {
        MFV_LOG(kDebug, "server") << "connection dropped: " << status.to_string();
      }
      return;
    }

    util::Result<Request> request = decode_request(payload);
    if (!request.ok()) {
      // Malformed payload: answer (id 0 — we could not parse theirs) and
      // keep the connection; framing is still intact.
      Response response = Response::failure(0, request.status());
      std::lock_guard<std::mutex> lock(connection->write_mutex);
      if (!write_frame(connection->fd, response.to_json().dump()).ok()) return;
      continue;
    }

    // The callback owns a reference to the connection, so a response that
    // completes after this reader exits still has a live fd to write to.
    service_.submit(std::move(*request), [connection](Response response) {
      std::string frame = response.to_json().dump();
      std::lock_guard<std::mutex> lock(connection->write_mutex);
      util::Status write_status = write_frame(connection->fd, frame);
      if (!write_status.ok()) {
        MFV_LOG(kDebug, "server") << "response dropped: " << write_status.to_string();
      }
    });
  }
}

void Server::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);

  // 1. No new connections: closing the listen socket pops accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain: everything already admitted executes and its response is
  // written to the still-open client sockets.
  service_.drain();

  // 3. Unblock the per-connection readers and join them.
  std::vector<Worker> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::weak_ptr<Connection>& weak : connections_)
      if (std::shared_ptr<Connection> connection = weak.lock())
        ::shutdown(connection->fd, SHUT_RDWR);
    workers.swap(workers_);
    connections_.clear();
  }
  for (Worker& worker : workers) worker.thread.join();

  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

}  // namespace mfv::service
