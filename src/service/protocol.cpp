#include "service/protocol.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace mfv::service {

std::string priority_name(Priority priority) {
  switch (priority) {
    case Priority::kInteractive: return "interactive";
    case Priority::kBatch: return "batch";
    case Priority::kBackground: return "background";
  }
  return "?";
}

std::optional<Priority> priority_from_name(std::string_view name) {
  if (name == "interactive") return Priority::kInteractive;
  if (name == "batch") return Priority::kBatch;
  if (name == "background") return Priority::kBackground;
  return std::nullopt;
}

bool valid_tenant_name(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

util::Json Request::to_json() const {
  util::Json j = util::Json::object();
  j["id"] = id;
  j["verb"] = verb;
  if (!tenant.empty()) j["tenant"] = tenant;
  j["priority"] = priority_name(priority);
  if (deadline_ms > 0) j["deadline_ms"] = deadline_ms;
  if (!params.is_null()) j["params"] = params;
  return j;
}

util::Result<Request> Request::from_json(const util::Json& json) {
  if (!json.is_object()) return util::invalid_argument("request must be a JSON object");
  Request request;
  if (const util::Json* id = json.find("id")) {
    if (id->type() != util::Json::Type::kInt || id->as_int() < 0)
      return util::invalid_argument("request 'id' must be a non-negative integer");
    request.id = static_cast<uint64_t>(id->as_int());
  }
  const util::Json* verb = json.find("verb");
  if (verb == nullptr || verb->type() != util::Json::Type::kString)
    return util::invalid_argument("request needs a string 'verb'");
  request.verb = verb->as_string();
  if (const util::Json* tenant = json.find("tenant")) {
    if (tenant->type() != util::Json::Type::kString)
      return util::invalid_argument("request 'tenant' must be a string");
    if (!tenant->as_string().empty()) {
      if (!valid_tenant_name(tenant->as_string()))
        return util::invalid_argument(
            "bad tenant name '" + tenant->as_string() +
            "' (need [A-Za-z0-9_-]{1,64})");
      request.tenant = tenant->as_string();
    }
  }
  if (const util::Json* priority = json.find("priority")) {
    if (priority->type() != util::Json::Type::kString)
      return util::invalid_argument("request 'priority' must be a string");
    auto parsed = priority_from_name(priority->as_string());
    if (!parsed)
      return util::invalid_argument("unknown priority '" + priority->as_string() + "'");
    request.priority = *parsed;
  }
  if (const util::Json* deadline = json.find("deadline_ms")) {
    if (deadline->type() != util::Json::Type::kInt || deadline->as_int() < 0)
      return util::invalid_argument("request 'deadline_ms' must be a non-negative integer");
    request.deadline_ms = deadline->as_int();
  }
  if (const util::Json* params = json.find("params")) request.params = *params;
  return request;
}

util::Json Response::to_json() const {
  util::Json j = util::Json::object();
  j["id"] = id;
  j["code"] = util::Status::code_name(code);
  if (!error.empty()) j["error"] = error;
  if (!result.is_null()) j["result"] = result;
  return j;
}

util::Result<Response> Response::from_json(const util::Json& json) {
  if (!json.is_object()) return util::invalid_argument("response must be a JSON object");
  Response response;
  if (const util::Json* id = json.find("id")) {
    if (id->type() != util::Json::Type::kInt || id->as_int() < 0)
      return util::invalid_argument("response 'id' must be a non-negative integer");
    response.id = static_cast<uint64_t>(id->as_int());
  }
  const util::Json* code = json.find("code");
  if (code == nullptr || code->type() != util::Json::Type::kString)
    return util::invalid_argument("response needs a string 'code'");
  auto parsed = util::Status::code_from_name(code->as_string());
  if (!parsed)
    return util::invalid_argument("unknown status code '" + code->as_string() + "'");
  response.code = *parsed;
  if (const util::Json* error = json.find("error")) {
    if (error->type() != util::Json::Type::kString)
      return util::invalid_argument("response 'error' must be a string");
    response.error = error->as_string();
  }
  if (const util::Json* result = json.find("result")) response.result = *result;
  return response;
}

Response Response::failure(uint64_t id, const util::Status& status) {
  Response response;
  response.id = id;
  response.code = status.ok() ? util::StatusCode::kInternal : status.code();
  response.error = status.ok() ? "failure() from OK status" : status.message();
  return response;
}

Response Response::success(uint64_t id, util::Json result) {
  Response response;
  response.id = id;
  response.result = std::move(result);
  return response;
}

namespace {

util::Status write_all(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    // MSG_NOSIGNAL: a peer that hangs up must surface as EPIPE, not kill
    // the process with SIGPIPE. Non-socket fds (tests over pipes) fall
    // back to write(2).
    ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET)
        return util::unavailable("peer closed the connection");
      return util::internal_error(std::string("write: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return util::Status::ok_status();
}

/// Reads exactly `size` bytes. eof_ok: a clean EOF before the first byte
/// returns kUnavailable (frame boundary), otherwise kInternal (truncation).
util::Status read_all(int fd, char* data, size_t size, bool eof_ok) {
  size_t received = 0;
  while (received < size) {
    ssize_t n = ::read(fd, data + received, size - received);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::internal_error(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (eof_ok && received == 0)
        return util::unavailable("peer closed the connection");
      return util::internal_error("connection closed mid-frame");
    }
    received += static_cast<size_t>(n);
  }
  return util::Status::ok_status();
}

}  // namespace

util::Status write_frame(int fd, std::string_view payload, size_t max_bytes) {
  if (payload.size() > max_bytes)
    return util::invalid_argument("frame payload of " + std::to_string(payload.size()) +
                                  " bytes exceeds limit of " + std::to_string(max_bytes));
  char header[4];
  uint32_t size = static_cast<uint32_t>(payload.size());
  header[0] = static_cast<char>((size >> 24) & 0xff);
  header[1] = static_cast<char>((size >> 16) & 0xff);
  header[2] = static_cast<char>((size >> 8) & 0xff);
  header[3] = static_cast<char>(size & 0xff);
  // Two writes keep the implementation allocation-free for large payloads;
  // interleaving is impossible because each connection has one writer at a
  // time (the server serializes via a per-connection write mutex).
  util::Status status = write_all(fd, header, sizeof(header));
  if (!status.ok()) return status;
  return write_all(fd, payload.data(), payload.size());
}

util::Status read_frame(int fd, std::string& payload, size_t max_bytes) {
  char header[4];
  util::Status status = read_all(fd, header, sizeof(header), /*eof_ok=*/true);
  if (!status.ok()) return status;
  uint32_t size = (static_cast<uint32_t>(static_cast<uint8_t>(header[0])) << 24) |
                  (static_cast<uint32_t>(static_cast<uint8_t>(header[1])) << 16) |
                  (static_cast<uint32_t>(static_cast<uint8_t>(header[2])) << 8) |
                  static_cast<uint32_t>(static_cast<uint8_t>(header[3]));
  if (size > max_bytes)
    return util::invalid_argument("frame of " + std::to_string(size) +
                                  " bytes exceeds limit of " + std::to_string(max_bytes));
  payload.resize(size);
  if (size == 0) return util::Status::ok_status();
  return read_all(fd, payload.data(), size, /*eof_ok=*/false);
}

util::Result<Request> decode_request(std::string_view payload) {
  util::Result<util::Json> json = util::Json::parse_checked(payload, kWireParseLimits);
  if (!json.ok()) return json.status();
  return Request::from_json(*json);
}

util::Result<Response> decode_response(std::string_view payload) {
  util::Result<util::Json> json = util::Json::parse_checked(payload, kWireParseLimits);
  if (!json.ok()) return json.status();
  return Response::from_json(*json);
}

}  // namespace mfv::service
