#include "service/ring.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace mfv::service {

namespace {

// FNV-1a alone is unusable for ring points: short strings that differ
// only in a suffix ("alpha#0" … "alpha#63") hash to nearly consecutive
// values, so each instance's vnodes collapse into one contiguous arc and
// the "ring" degenerates into a handful of giant ranges. A strong
// integer finalizer (murmur3's fmix64) diffuses every input bit across
// the word, which is what scatters the points.
uint64_t scatter(std::string_view text) {
  uint64_t h = util::fnv1a(text);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

HashRing::HashRing(std::vector<std::string> instances, HashRingOptions options)
    : instances_(std::move(instances)) {
  points_.reserve(instances_.size() * options.vnodes);
  for (uint32_t index = 0; index < instances_.size(); ++index) {
    for (size_t vnode = 0; vnode < options.vnodes; ++vnode) {
      const std::string point = instances_[index] + "#" + std::to_string(vnode);
      points_.emplace_back(scatter(point), index);
    }
  }
  std::sort(points_.begin(), points_.end());
}

size_t HashRing::owner(std::string_view key) const {
  const uint64_t hash = scatter(key);
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(hash, uint32_t{0}));
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return it->second;
}

std::vector<size_t> HashRing::preference(std::string_view key, size_t count) const {
  std::vector<size_t> order;
  if (points_.empty()) return order;
  count = std::min(count, instances_.size());
  const uint64_t hash = scatter(key);
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(hash, uint32_t{0}));
  if (it == points_.end()) it = points_.begin();
  // Walk clockwise collecting distinct instances; bounded by one full lap.
  for (size_t step = 0; step < points_.size() && order.size() < count; ++step) {
    const size_t candidate = it->second;
    if (std::find(order.begin(), order.end(), candidate) == order.end())
      order.push_back(candidate);
    ++it;
    if (it == points_.end()) it = points_.begin();
  }
  return order;
}

std::string placement_key(std::string_view snapshot_id) {
  // "t<16>-c<16>-d<16>": the placement unit is the "t…-c…" prefix, so a
  // base and its forks co-locate. Anything else routes by its full text.
  if (snapshot_id.size() == 53 && snapshot_id[0] == 't' &&
      snapshot_id.substr(17, 2) == "-c" && snapshot_id.substr(35, 2) == "-d")
    return std::string(snapshot_id.substr(0, 35));
  return std::string(snapshot_id);
}

}  // namespace mfv::service
