// The verification service: verbs over the snapshot store, scheduled by
// the broker.
//
//   upload_configs  register a topology; returns its content address
//                   (identical submissions dedupe to the same id)
//   snapshot        converge the uploaded network (or reuse the stored
//                   converged emulation — one boot per distinct content)
//   query           reachability / pairwise / loops / routes /
//                   differential against a stored snapshot
//   fork_scenario   what-if: fork the stored converged emulation, apply
//                   perturbations, re-converge incrementally; the result
//                   is itself stored and addressable
//   explore         enumerate every converged state reachable under
//                   message-delivery nondeterminism (boot exploration of
//                   an uploaded submission, or perturbation exploration
//                   of a stored snapshot); properties come back
//                   holds-on-all / fails-on-some with a replayable
//                   witness schedule (src/explore)
//   stats           store / broker / request counters for observability
//   metrics         stats superset: the full MetricsRegistry snapshot
//                   (emu/verify/store/broker/scenario families), recent
//                   trace spans, and optional text exposition
//
// Every response carries a `timing` object (queue_wait_us, converge_us,
// verify_us, total_us) so clients can see where their latency went.
// Deeper visibility comes from the injected (or service-owned)
// obs::MetricsRegistry — every subsystem publishes into it — plus a
// ring-buffer SpanCollector that records a causal span per request with
// converge/verify child spans.
//
// Concurrency contract: stored snapshots are immutable once built; all
// queries run with prime_lpm=false (the graph is shared and priming
// mutates it) and share the entry's thread-safe TraceCache, so N
// concurrent queries on one snapshot are both safe and byte-identical to
// serial execution.
#pragma once

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "service/broker.hpp"
#include "service/protocol.hpp"
#include "service/snapshot_store.hpp"
#include "verify/queries.hpp"

namespace mfv::service {

struct ServiceOptions {
  StoreOptions store;
  BrokerOptions broker;
  emu::EmulationOptions emulation;
  /// Event budget per convergence run (cold boot or fork re-converge).
  uint64_t max_events = 100000000ull;
  /// Worker threads per individual query. 1 keeps each request serial —
  /// the broker's pool is the parallelism — which is the right shape for
  /// a loaded service; raise it only for huge networks at low QPS.
  unsigned query_threads = 1;
  /// Row cap for rendered query results unless the request sets
  /// params.full = true.
  size_t max_rows = 1000;
  /// Capture each converged base snapshot's full disposition matrix at
  /// build time (verify/incremental), so queries against its forks verify
  /// only the diff. The capture doubles as a full TraceCache warm-up for
  /// the base. Off = forks always verify cold.
  bool capture_verify_base = true;
  /// Metrics registry every subsystem (store, broker, emulation, trace
  /// caches, spans) publishes into. nullptr = the service owns a private
  /// registry, so the metrics verb always answers; inject one to observe
  /// the service in-process (tests do exactly this).
  obs::MetricsRegistry* metrics = nullptr;
  /// Span collector for request/converge/verify spans; nullptr = the
  /// service owns one with `span_capacity` slots.
  obs::SpanCollector* spans = nullptr;
  size_t span_capacity = 1024;
};

class VerificationService {
 public:
  explicit VerificationService(ServiceOptions options = {});
  ~VerificationService();

  VerificationService(const VerificationService&) = delete;
  VerificationService& operator=(const VerificationService&) = delete;

  /// Executes a request synchronously on the calling thread, bypassing
  /// the broker (tests, and the broker's own handler).
  Response execute(const Request& request, const ExecContext& context = {});

  /// Schedules through the broker: admission control, priorities,
  /// deadlines all apply. The callback runs exactly once.
  void submit(Request request, Broker::Callback callback);
  std::future<Response> submit(Request request);

  /// Stops admission and waits for in-flight requests (see Broker::drain).
  void drain();

  SnapshotStore& store() { return store_; }
  BrokerStats broker_stats() const { return broker_.stats(); }
  /// The registry/collector actually in use (injected or service-owned).
  obs::MetricsRegistry& metrics() { return *metrics_; }
  obs::SpanCollector& spans() { return *spans_; }

  // Rendering helpers, exposed so tests can compare a wire answer with a
  // direct engine run byte for byte. max_rows = 0 means unlimited.
  static util::Json render_reachability(const verify::ReachabilityResult& result,
                                        size_t max_rows);
  static util::Json render_pairwise(const verify::PairwiseResult& result);
  static util::Json render_differential(const verify::DifferentialResult& result,
                                        size_t max_rows);
  static util::Json render_routes(const std::vector<verify::RouteRow>& rows,
                                  size_t max_rows);

 private:
  /// Stamps the shared registry into the store/broker/emulation options
  /// before those members are constructed from them.
  static ServiceOptions wire_observability(ServiceOptions options,
                                           obs::MetricsRegistry* metrics);

  Response upload_configs(const Request& request);
  Response snapshot(const Request& request, util::Json& timing, uint64_t parent_span);
  Response query(const Request& request, util::Json& timing, uint64_t parent_span);
  Response fork_scenario(const Request& request, util::Json& timing,
                         uint64_t parent_span);
  Response explore(const Request& request, util::Json& timing, uint64_t parent_span);
  Response stats(const Request& request);
  Response metrics_snapshot(const Request& request);

  /// Resolves a "<field>": "<snapshot id>" param to a pinned store entry.
  util::Result<SnapshotStore::Lease> resolve_snapshot(const Request& request,
                                                      const char* field);

  /// QueryOptions for serving `entry` under the concurrency contract.
  verify::QueryOptions query_options(const Request& request,
                                     const StoredSnapshot& entry) const;

  /// Declared (and thus constructed) before options_/store_/broker_,
  /// which all consume the resolved registry pointer.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::SpanCollector> owned_spans_;
  obs::SpanCollector* spans_ = nullptr;
  obs::Counter* requests_counter_ = nullptr;

  ServiceOptions options_;
  SnapshotStore store_;

  std::mutex uploads_mutex_;
  /// Registered topologies by content address (the dedup map).
  std::map<std::string, std::shared_ptr<const emu::Topology>> uploads_;

  std::atomic<uint64_t> requests_{0};

  /// Last member: drains before everything it references is destroyed.
  Broker broker_;
};

}  // namespace mfv::service
