// The verification service: verbs over the snapshot store, scheduled by
// the broker.
//
//   upload_configs  register a topology; returns its content address
//                   (identical submissions dedupe to the same id)
//   snapshot        converge the uploaded network (or reuse the stored
//                   converged emulation — one boot per distinct content)
//   query           reachability / pairwise / loops / routes /
//                   differential against a stored snapshot
//   fork_scenario   what-if: fork the stored converged emulation, apply
//                   perturbations, re-converge incrementally; the result
//                   is itself stored and addressable
//   stats           store / broker / request counters for observability
//
// Every response carries a `timing` object (queue_wait_us, converge_us,
// verify_us, total_us) so clients can see where their latency went.
//
// Concurrency contract: stored snapshots are immutable once built; all
// queries run with prime_lpm=false (the graph is shared and priming
// mutates it) and share the entry's thread-safe TraceCache, so N
// concurrent queries on one snapshot are both safe and byte-identical to
// serial execution.
#pragma once

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "service/broker.hpp"
#include "service/protocol.hpp"
#include "service/snapshot_store.hpp"
#include "verify/queries.hpp"

namespace mfv::service {

struct ServiceOptions {
  StoreOptions store;
  BrokerOptions broker;
  emu::EmulationOptions emulation;
  /// Event budget per convergence run (cold boot or fork re-converge).
  uint64_t max_events = 100000000ull;
  /// Worker threads per individual query. 1 keeps each request serial —
  /// the broker's pool is the parallelism — which is the right shape for
  /// a loaded service; raise it only for huge networks at low QPS.
  unsigned query_threads = 1;
  /// Row cap for rendered query results unless the request sets
  /// params.full = true.
  size_t max_rows = 1000;
};

class VerificationService {
 public:
  explicit VerificationService(ServiceOptions options = {});
  ~VerificationService();

  VerificationService(const VerificationService&) = delete;
  VerificationService& operator=(const VerificationService&) = delete;

  /// Executes a request synchronously on the calling thread, bypassing
  /// the broker (tests, and the broker's own handler).
  Response execute(const Request& request, const ExecContext& context = {});

  /// Schedules through the broker: admission control, priorities,
  /// deadlines all apply. The callback runs exactly once.
  void submit(Request request, Broker::Callback callback);
  std::future<Response> submit(Request request);

  /// Stops admission and waits for in-flight requests (see Broker::drain).
  void drain();

  SnapshotStore& store() { return store_; }
  BrokerStats broker_stats() const { return broker_.stats(); }

  // Rendering helpers, exposed so tests can compare a wire answer with a
  // direct engine run byte for byte. max_rows = 0 means unlimited.
  static util::Json render_reachability(const verify::ReachabilityResult& result,
                                        size_t max_rows);
  static util::Json render_pairwise(const verify::PairwiseResult& result);
  static util::Json render_differential(const verify::DifferentialResult& result,
                                        size_t max_rows);
  static util::Json render_routes(const std::vector<verify::RouteRow>& rows,
                                  size_t max_rows);

 private:
  Response upload_configs(const Request& request);
  Response snapshot(const Request& request, util::Json& timing);
  Response query(const Request& request, util::Json& timing);
  Response fork_scenario(const Request& request, util::Json& timing);
  Response stats(const Request& request);

  /// Resolves a "<field>": "<snapshot id>" param to a pinned store entry.
  util::Result<SnapshotStore::Lease> resolve_snapshot(const Request& request,
                                                      const char* field);

  /// QueryOptions for serving `entry` under the concurrency contract.
  verify::QueryOptions query_options(const Request& request,
                                     const StoredSnapshot& entry) const;

  ServiceOptions options_;
  SnapshotStore store_;

  std::mutex uploads_mutex_;
  /// Registered topologies by content address (the dedup map).
  std::map<std::string, std::shared_ptr<const emu::Topology>> uploads_;

  std::atomic<uint64_t> requests_{0};

  /// Last member: drains before everything it references is destroyed.
  Broker broker_;
};

}  // namespace mfv::service
