#include "service/service.hpp"

#include <algorithm>
#include <chrono>

#include "explore/explore.hpp"
#include "util/logging.hpp"

namespace mfv::service {

namespace {

int64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

const util::Json* find_param(const Request& request, const char* key) {
  return request.params.find(key);
}

util::Result<std::string> string_param(const Request& request, const char* key) {
  const util::Json* value = find_param(request, key);
  if (value == nullptr || value->type() != util::Json::Type::kString)
    return util::invalid_argument(std::string("verb '") + request.verb +
                                  "' needs a string param '" + key + "'");
  return value->as_string();
}

bool bool_param(const Request& request, const char* key, bool fallback) {
  const util::Json* value = find_param(request, key);
  if (value == nullptr || value->type() != util::Json::Type::kBool) return fallback;
  return value->as_bool();
}

}  // namespace

ServiceOptions VerificationService::wire_observability(ServiceOptions options,
                                                       obs::MetricsRegistry* metrics) {
  options.store.metrics = metrics;
  options.broker.metrics = metrics;
  options.emulation.metrics = metrics;
  return options;
}

VerificationService::VerificationService(ServiceOptions options)
    : owned_metrics_(options.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(options.metrics != nullptr ? options.metrics : owned_metrics_.get()),
      owned_spans_(options.spans == nullptr
                       ? std::make_unique<obs::SpanCollector>(
                             obs::SpanCollectorOptions{options.span_capacity, {}},
                             metrics_)
                       : nullptr),
      spans_(options.spans != nullptr ? options.spans : owned_spans_.get()),
      requests_counter_(&metrics_->counter("service_requests")),
      options_(wire_observability(std::move(options), metrics_)),
      store_(options_.store),
      broker_(options_.broker, [this](const Request& request, const ExecContext& context) {
        return execute(request, context);
      }) {}

VerificationService::~VerificationService() { drain(); }

void VerificationService::submit(Request request, Broker::Callback callback) {
  broker_.submit(std::move(request), std::move(callback));
}

std::future<Response> VerificationService::submit(Request request) {
  return broker_.submit(std::move(request));
}

void VerificationService::drain() { broker_.drain(); }

Response VerificationService::execute(const Request& request, const ExecContext& context) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  requests_counter_->add(1);
  metrics_->counter("service_tenant_requests_" + request.tenant_or_default()).add(1);
  auto start = std::chrono::steady_clock::now();
  util::Json timing = util::Json::object();
  timing["queue_wait_us"] = context.queue_wait_us;

  obs::TraceSpan span(spans_, "request");
  span.attr("verb", request.verb);
  span.attr("tenant", request.tenant_or_default());

  Response response;
  if (request.verb == "upload_configs") response = upload_configs(request);
  else if (request.verb == "snapshot") response = snapshot(request, timing, span.id());
  else if (request.verb == "query") response = query(request, timing, span.id());
  else if (request.verb == "fork_scenario")
    response = fork_scenario(request, timing, span.id());
  else if (request.verb == "explore") response = explore(request, timing, span.id());
  else if (request.verb == "stats") response = stats(request);
  else if (request.verb == "metrics") response = metrics_snapshot(request);
  else
    response = Response::failure(
        request.id, util::invalid_argument("unknown verb '" + request.verb + "'"));

  response.id = request.id;
  if (response.ok()) {
    timing["total_us"] = elapsed_us(start);
    response.result["timing"] = std::move(timing);
  } else {
    util::log_line(util::LogLevel::kDebug, "service",
                   "request " + std::to_string(request.id) + " " + request.verb +
                       " failed: " + response.status().to_string());
  }
  return response;
}

Response VerificationService::upload_configs(const Request& request) {
  const util::Json* topology_json = find_param(request, "topology");
  if (topology_json == nullptr)
    return Response::failure(request.id,
                             util::invalid_argument("upload_configs needs a 'topology' param"));
  util::Result<emu::Topology> topology = emu::Topology::from_json(*topology_json);
  if (!topology.ok()) return Response::failure(request.id, topology.status());

  SnapshotKey key = key_for_topology(*topology);
  const std::string id = key.to_string();
  // Uploads are tenant-scoped: the same content uploaded by two tenants
  // dedupes within each namespace but never across them.
  const std::string upload_key = request.tenant_or_default() + "/" + id;

  bool deduped;
  size_t nodes = topology->nodes.size();
  size_t links = topology->links.size();
  size_t peers = topology->external_peers.size();
  {
    std::lock_guard<std::mutex> lock(uploads_mutex_);
    deduped = uploads_.count(upload_key) > 0;
    if (!deduped)
      uploads_.emplace(upload_key,
                       std::make_shared<const emu::Topology>(std::move(*topology)));
  }

  util::Json result = util::Json::object();
  result["submission"] = id;
  result["tenant"] = request.tenant_or_default();
  result["nodes"] = nodes;
  result["links"] = links;
  result["external_peers"] = peers;
  result["deduped"] = deduped;
  return Response::success(request.id, std::move(result));
}

Response VerificationService::snapshot(const Request& request, util::Json& timing,
                                       uint64_t parent_span) {
  util::Result<std::string> id = string_param(request, "submission");
  if (!id.ok()) return Response::failure(request.id, id.status());
  std::optional<SnapshotKey> key = SnapshotKey::parse(*id);
  if (!key)
    return Response::failure(request.id,
                             util::invalid_argument("malformed submission id '" + *id + "'"));

  const std::string& tenant = request.tenant_or_default();
  std::shared_ptr<const emu::Topology> topology;
  {
    std::lock_guard<std::mutex> lock(uploads_mutex_);
    auto it = uploads_.find(tenant + "/" + *id);
    if (it != uploads_.end()) topology = it->second;
  }
  if (topology == nullptr)
    return Response::failure(
        request.id, util::not_found("no uploaded topology '" + *id +
                                    "' in tenant '" + tenant +
                                    "'; call upload_configs first"));

  auto converge_start = std::chrono::steady_clock::now();
  const uint64_t content_check = content_check_for_topology(*topology);
  util::Result<SnapshotStore::Lease> lease =
      store_.get_or_build(tenant, *key, [this, &topology, &id, parent_span]()
                              -> util::Result<std::unique_ptr<StoredSnapshot>> {
        obs::TraceSpan converge(spans_, "converge", parent_span);
        converge.attr("snapshot", *id);
        auto entry = std::make_unique<StoredSnapshot>();
        auto emulation = std::make_unique<emu::Emulation>(options_.emulation);
        util::Status status = emulation->add_topology(*topology);
        if (!status.ok()) return status;
        emulation->start_all();
        if (!emulation->run_to_convergence(options_.max_events))
          return util::internal_error("submission '" + *id +
                                      "' did not converge within the event budget");
        entry->convergence_time = emulation->converged_at() - util::TimePoint(0);
        entry->messages = emulation->messages_delivered();
        entry->snapshot = gnmi::Snapshot::capture(*emulation, *id);
        entry->emulation = std::move(emulation);
        entry->graph = std::make_unique<verify::ForwardingGraph>(entry->snapshot);
        entry->cache = std::make_unique<verify::TraceCache>(*entry->graph, metrics_);
        if (options_.capture_verify_base) {
          // Same engine shape as query_options(); routing the capture
          // through the entry cache fully warms it as a side effect.
          verify::QueryOptions capture;
          capture.threads = options_.query_threads;
          capture.engine = verify::EngineMode::kCached;
          capture.prime_lpm = false;
          capture.cache = entry->cache.get();
          capture.metrics = metrics_;
          entry->verify_base =
              verify::capture_incremental_base(*entry->graph, capture);
        }
        return entry;
      }, content_check);
  if (!lease.ok()) return Response::failure(request.id, lease.status());
  timing["converge_us"] = lease->hit ? int64_t{0} : elapsed_us(converge_start);

  util::Json result = util::Json::object();
  result["snapshot"] = *id;
  result["hit"] = lease->hit;
  result["entries"] = lease->entry->snapshot.total_entries();
  result["convergence_virtual_us"] = lease->entry->convergence_time.count_micros();
  result["messages"] = lease->entry->messages;
  return Response::success(request.id, std::move(result));
}

util::Result<SnapshotStore::Lease> VerificationService::resolve_snapshot(
    const Request& request, const char* field) {
  util::Result<std::string> id = string_param(request, field);
  if (!id.ok()) return id.status();
  std::optional<SnapshotKey> key = SnapshotKey::parse(*id);
  if (!key) return util::invalid_argument("malformed snapshot id '" + *id + "'");
  SnapshotStore::EntryPtr entry = store_.find(request.tenant_or_default(), *key);
  if (entry == nullptr)
    return util::not_found("no stored snapshot '" + *id + "' in tenant '" +
                           request.tenant_or_default() +
                           "' (evicted or never built); rebuild it with the "
                           "snapshot or fork_scenario verb");
  return SnapshotStore::Lease{std::move(entry), /*hit=*/true};
}

verify::QueryOptions VerificationService::query_options(
    const Request& request, const StoredSnapshot& entry) const {
  verify::QueryOptions options;
  options.threads = options_.query_threads;
  options.engine = verify::EngineMode::kCached;
  // The graph is shared by every concurrent request on this snapshot:
  // priming would mutate it, the shared TraceCache is the safe substitute.
  options.prime_lpm = false;
  options.cache = entry.cache.get();
  options.metrics = metrics_;
  if (const util::Json* sources = find_param(request, "sources");
      sources != nullptr && sources->is_array())
    for (const util::Json& source : sources->as_array())
      if (source.type() == util::Json::Type::kString)
        options.sources.push_back(source.as_string());
  return options;
}

Response VerificationService::query(const Request& request, util::Json& timing,
                                    uint64_t parent_span) {
  util::Result<SnapshotStore::Lease> lease = resolve_snapshot(request, "snapshot");
  if (!lease.ok()) return Response::failure(request.id, lease.status());
  const StoredSnapshot& entry = *lease->entry;

  std::string kind = "reachability";
  if (const util::Json* kind_param = find_param(request, "kind")) {
    if (kind_param->type() != util::Json::Type::kString)
      return Response::failure(request.id,
                               util::invalid_argument("query 'kind' must be a string"));
    kind = kind_param->as_string();
  }

  verify::QueryOptions options = query_options(request, entry);
  if (const util::Json* scope = find_param(request, "scope")) {
    if (scope->type() != util::Json::Type::kString)
      return Response::failure(request.id,
                               util::invalid_argument("query 'scope' must be a string prefix"));
    auto prefix = net::Ipv4Prefix::parse(scope->as_string());
    if (!prefix)
      return Response::failure(
          request.id, util::invalid_argument("bad scope prefix '" + scope->as_string() + "'"));
    options.scope = *prefix;
  }
  size_t max_rows = bool_param(request, "full", false) ? 0 : options_.max_rows;

  // A forked snapshot verifies against its ancestor's captured result:
  // the splicer re-traces only what the perturbation dirtied. The lease's
  // parent pointer pins the ancestor, so eviction cannot race this.
  verify::IncrementalStats incremental_stats;
  const StoredSnapshot* splice_base =
      entry.parent != nullptr && entry.parent->verify_base != nullptr
          ? entry.parent.get()
          : nullptr;
  if (splice_base != nullptr) {
    options.incremental = splice_base->verify_base.get();
    options.incremental_stats = &incremental_stats;
  }

  auto verify_start = std::chrono::steady_clock::now();
  obs::TraceSpan verify_span(spans_, "verify", parent_span);
  verify_span.attr("kind", kind);
  util::Json result = util::Json::object();
  result["snapshot"] = entry.key.to_string();
  result["kind"] = kind;

  if (kind == "reachability") {
    result["answer"] = render_reachability(verify::reachability(*entry.graph, options),
                                           max_rows);
  } else if (kind == "pairwise") {
    result["answer"] = render_pairwise(verify::pairwise_reachability(*entry.graph, options));
  } else if (kind == "loops") {
    result["answer"] =
        render_reachability(verify::detect_loops(*entry.graph, options), max_rows);
  } else if (kind == "routes") {
    std::string node;
    if (const util::Json* node_param = find_param(request, "node");
        node_param != nullptr && node_param->type() == util::Json::Type::kString)
      node = node_param->as_string();
    result["answer"] = render_routes(verify::routes(*entry.graph, node), max_rows);
  } else if (kind == "differential") {
    util::Result<SnapshotStore::Lease> base = resolve_snapshot(request, "base");
    if (!base.ok()) return Response::failure(request.id, base.status());
    // Store entries play the candidate role; 'base' is the reference.
    verify::QueryOptions diff_options = options;
    diff_options.cache = base->entry->cache.get();
    diff_options.candidate_cache = entry.cache.get();
    result["base"] = base->entry->key.to_string();
    result["answer"] = render_differential(
        verify::differential_reachability(*base->entry->graph, *entry.graph, diff_options),
        max_rows);
  } else {
    return Response::failure(request.id,
                             util::invalid_argument("unknown query kind '" + kind + "'"));
  }

  if (splice_base != nullptr &&
      (kind == "reachability" || kind == "pairwise" || kind == "loops")) {
    util::Json incremental = util::Json::object();
    incremental["base"] = splice_base->key.to_string();
    incremental["spliced"] = incremental_stats.spliced;
    incremental["retraced"] = incremental_stats.retraced;
    incremental["dirty_classes"] = incremental_stats.dirty_classes;
    incremental["fell_back"] = incremental_stats.fell_back;
    if (incremental_stats.fell_back)
      incremental["fallback_reason"] = incremental_stats.fallback_reason;
    result["incremental"] = std::move(incremental);
  }
  timing["verify_us"] = elapsed_us(verify_start);
  return Response::success(request.id, std::move(result));
}

Response VerificationService::fork_scenario(const Request& request, util::Json& timing,
                                            uint64_t parent_span) {
  util::Result<SnapshotStore::Lease> base = resolve_snapshot(request, "base");
  if (!base.ok()) return Response::failure(request.id, base.status());
  const SnapshotStore::EntryPtr& base_entry = base->entry;
  if (base_entry->emulation == nullptr)
    return Response::failure(request.id,
                             util::failed_precondition("base snapshot has no live emulation"));

  const util::Json* perturbations_json = find_param(request, "perturbations");
  if (perturbations_json == nullptr)
    return Response::failure(
        request.id, util::invalid_argument("fork_scenario needs a 'perturbations' param"));
  util::Result<std::vector<scenario::Perturbation>> perturbations =
      scenario::perturbations_from_json(*perturbations_json);
  if (!perturbations.ok()) return Response::failure(request.id, perturbations.status());

  SnapshotKey key = key_for_fork(base_entry->key, *perturbations);
  const std::string id = key.to_string();

  auto converge_start = std::chrono::steady_clock::now();
  const uint64_t content_check =
      content_check_for_fork(base_entry->content_check, *perturbations);
  util::Result<SnapshotStore::Lease> lease = store_.get_or_build(
      request.tenant_or_default(), key,
      [this, &base_entry, &perturbations, &id, parent_span]()
               -> util::Result<std::unique_ptr<StoredSnapshot>> {
        obs::TraceSpan converge(spans_, "converge", parent_span);
        converge.attr("snapshot", id);
        std::unique_ptr<emu::Emulation> fork = base_entry->emulation->fork();
        if (fork == nullptr)
          return util::failed_precondition(
              "base emulation is not quiescent; cannot fork");
        util::TimePoint forked_at = fork->kernel().now();
        for (const scenario::Perturbation& perturbation : *perturbations)
          if (!scenario::ScenarioRunner::apply(*fork, perturbation))
            return util::not_found("perturbation target missing: " +
                                   scenario::perturbation_to_string(perturbation));
        if (!fork->run_to_convergence(options_.max_events))
          return util::internal_error("fork '" + id +
                                      "' did not re-converge within the event budget");
        auto entry = std::make_unique<StoredSnapshot>();
        entry->convergence_time = fork->kernel().now() - forked_at;
        entry->messages = fork->messages_delivered();
        entry->snapshot = gnmi::Snapshot::capture(*fork, id);
        entry->emulation = std::move(fork);
        entry->graph = std::make_unique<verify::ForwardingGraph>(entry->snapshot);
        entry->cache = std::make_unique<verify::TraceCache>(*entry->graph, metrics_);
        // Queries on this fork splice from the nearest ancestor that
        // captured a verify base (forks of forks chain through it).
        entry->parent =
            base_entry->verify_base != nullptr ? base_entry : base_entry->parent;
        return entry;
      }, content_check);
  if (!lease.ok()) return Response::failure(request.id, lease.status());
  timing["converge_us"] = lease->hit ? int64_t{0} : elapsed_us(converge_start);

  util::Json result = util::Json::object();
  result["snapshot"] = id;
  result["base"] = base_entry->key.to_string();
  result["hit"] = lease->hit;
  result["perturbations"] = perturbations->size();
  result["entries"] = lease->entry->snapshot.total_entries();
  result["reconvergence_virtual_us"] = lease->entry->convergence_time.count_micros();
  return Response::success(request.id, std::move(result));
}

Response VerificationService::explore(const Request& request, util::Json& timing,
                                      uint64_t parent_span) {
  namespace xpl = mfv::explore;
  xpl::ExploreOptions options;
  options.metrics = metrics_;
  if (const util::Json* v = find_param(request, "max_runs"))
    options.max_runs = static_cast<uint64_t>(std::max<int64_t>(1, v->as_int()));
  if (const util::Json* v = find_param(request, "max_states"))
    options.max_states = static_cast<uint64_t>(std::max<int64_t>(1, v->as_int()));
  if (const util::Json* v = find_param(request, "max_choice_points"))
    options.max_choice_points =
        static_cast<uint32_t>(std::max<int64_t>(1, v->as_int()));
  if (const util::Json* v = find_param(request, "threads"))
    options.threads = static_cast<unsigned>(std::max<int64_t>(0, v->as_int()));
  options.verify_properties = bool_param(request, "properties", true);
  options.verify_threads = options_.query_threads;
  if (const util::Json* v = find_param(request, "scope")) {
    std::optional<net::Ipv4Prefix> scope = net::Ipv4Prefix::parse(v->as_string());
    if (!scope)
      return Response::failure(
          request.id, util::invalid_argument("malformed scope prefix '" +
                                             v->as_string() + "'"));
    options.scope = scope;
  }

  xpl::ExploreInput input;
  std::unique_ptr<emu::Emulation> boot_base;  // boot path owns its base
  SnapshotStore::EntryPtr pinned;             // snapshot path pins the store entry

  if (find_param(request, "submission") != nullptr) {
    // Boot exploration: every branch boots the uploaded topology from
    // scratch under a different delivery schedule.
    util::Result<std::string> id = string_param(request, "submission");
    if (!id.ok()) return Response::failure(request.id, id.status());
    std::shared_ptr<const emu::Topology> topology;
    {
      std::lock_guard<std::mutex> lock(uploads_mutex_);
      auto it = uploads_.find(request.tenant_or_default() + "/" + *id);
      if (it != uploads_.end()) topology = it->second;
    }
    if (topology == nullptr)
      return Response::failure(
          request.id, util::not_found("no uploaded topology '" + *id + "' in tenant '" +
                                      request.tenant_or_default() +
                                      "'; call upload_configs first"));
    boot_base = std::make_unique<emu::Emulation>(options_.emulation);
    util::Status status = boot_base->add_topology(*topology);
    if (!status.ok()) return Response::failure(request.id, status);
    input.base = boot_base.get();
    input.start = true;
  } else {
    // Perturbation exploration: branch the delivery schedules of a
    // what-if applied to a stored converged snapshot.
    util::Result<SnapshotStore::Lease> base = resolve_snapshot(request, "snapshot");
    if (!base.ok()) return Response::failure(request.id, base.status());
    if (base->entry->emulation == nullptr)
      return Response::failure(request.id, util::failed_precondition(
                                               "base snapshot has no live emulation"));
    pinned = base->entry;
    input.base = pinned->emulation.get();
    if (const util::Json* perturbations_json = find_param(request, "perturbations")) {
      util::Result<std::vector<scenario::Perturbation>> perturbations =
          scenario::perturbations_from_json(*perturbations_json);
      if (!perturbations.ok()) return Response::failure(request.id, perturbations.status());
      input.perturbations = std::move(*perturbations);
    }
  }

  obs::TraceSpan span(spans_, "explore", parent_span);
  auto explore_start = std::chrono::steady_clock::now();
  util::Result<xpl::ExploreResult> result = xpl::explore(input, options);
  if (!result.ok()) return Response::failure(request.id, result.status());
  timing["explore_us"] = elapsed_us(explore_start);
  span.attr("unique_states", std::to_string(result->unique_states));
  return Response::success(request.id, result->to_json());
}

Response VerificationService::stats(const Request& request) {
  StoreStats store_stats = store_.stats();
  BrokerStats broker_stats = broker_.stats();

  util::Json store = util::Json::object();
  store["entries"] = store_stats.entries;
  store["bytes"] = store_stats.bytes;
  store["hits"] = store_stats.hits;
  store["misses"] = store_stats.misses;
  store["evictions"] = store_stats.evictions;
  store["single_flight_joins"] = store_stats.single_flight_joins;
  store["hash_collisions"] = store_stats.hash_collisions;
  store["trace_hits"] = store_stats.trace_hits;
  store["trace_misses"] = store_stats.trace_misses;

  util::Json broker = util::Json::object();
  broker["accepted"] = broker_stats.accepted;
  broker["completed"] = broker_stats.completed;
  broker["rejected"] = broker_stats.rejected;
  broker["expired"] = broker_stats.expired;
  broker["expired_wait_us"] = broker_stats.expired_wait_us;
  broker["queued"] = broker_stats.queued;
  broker["executing"] = broker_stats.executing;

  // Per-tenant slice: broker scheduling counters joined with the store
  // footprint, one object per tenant ever seen by either side.
  util::Json tenants = util::Json::object();
  for (const auto& [name, slice] : broker_stats.tenants) {
    util::Json t = util::Json::object();
    t["accepted"] = slice.accepted;
    t["completed"] = slice.completed;
    t["rejected"] = slice.rejected;
    t["expired"] = slice.expired;
    t["queued"] = slice.queued;
    tenants[name] = std::move(t);
  }
  for (const auto& [name, slice] : store_stats.tenants) {
    if (tenants.find(name) == nullptr) tenants[name] = util::Json::object();
    tenants[name]["store_entries"] = slice.entries;
    tenants[name]["store_bytes"] = slice.bytes;
    tenants[name]["store_quota_rejections"] = slice.quota_rejections;
  }

  util::Json result = util::Json::object();
  result["store"] = std::move(store);
  result["broker"] = std::move(broker);
  result["tenants"] = std::move(tenants);
  result["requests"] = requests_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(uploads_mutex_);
    result["uploads"] = uploads_.size();
  }
  return Response::success(request.id, std::move(result));
}

Response VerificationService::metrics_snapshot(const Request& request) {
  // Strict superset of stats: same summary object, plus the full
  // registry and the recent span ring. `spans` caps the span dump
  // (default 64, 0 = everything retained); `text` adds the Prometheus
  // flavoured exposition for humans and scrapers.
  Response response = stats(request);
  if (!response.ok()) return response;
  response.result["metrics"] = metrics_->to_json();
  int64_t span_limit = 64;
  if (const util::Json* limit = find_param(request, "spans");
      limit != nullptr && limit->type() == util::Json::Type::kInt)
    span_limit = limit->as_int();
  if (span_limit < 0) span_limit = 0;
  response.result["spans"] = spans_->to_json(static_cast<size_t>(span_limit));
  response.result["spans_dropped"] = spans_->dropped();
  if (bool_param(request, "text", false)) response.result["text"] = metrics_->to_text();
  return response;
}

// ---------------------------------------------------------------------------
// Rendering

util::Json VerificationService::render_reachability(const verify::ReachabilityResult& result,
                                                    size_t max_rows) {
  util::Json answer = util::Json::object();
  answer["classes"] = result.classes;
  answer["flows"] = result.flows;
  answer["rows_total"] = result.rows.size();
  size_t limit = max_rows == 0 ? result.rows.size() : std::min(max_rows, result.rows.size());
  answer["truncated"] = limit < result.rows.size();
  util::Json rows = util::Json::array();
  for (size_t i = 0; i < limit; ++i) {
    const verify::ReachabilityRow& row = result.rows[i];
    util::Json j = util::Json::object();
    j["source"] = row.source;
    j["destination"] = row.destination.to_string();
    j["dispositions"] = row.dispositions.to_string();
    rows.push_back(std::move(j));
  }
  answer["rows"] = std::move(rows);
  return answer;
}

util::Json VerificationService::render_pairwise(const verify::PairwiseResult& result) {
  util::Json answer = util::Json::object();
  answer["reachable_pairs"] = result.reachable_pairs;
  answer["total_pairs"] = result.total_pairs;
  answer["full_mesh"] = result.full_mesh();
  util::Json unreachable = util::Json::array();
  for (const verify::PairwiseCell& cell : result.cells) {
    if (cell.reachable) continue;
    util::Json j = util::Json::object();
    j["source"] = cell.source;
    j["destination"] = cell.destination;
    unreachable.push_back(std::move(j));
  }
  answer["unreachable"] = std::move(unreachable);
  return answer;
}

util::Json VerificationService::render_differential(const verify::DifferentialResult& result,
                                                    size_t max_rows) {
  util::Json answer = util::Json::object();
  answer["classes"] = result.classes;
  answer["flows"] = result.flows;
  answer["differences"] = result.rows.size();
  answer["regressions"] = result.regressions().size();
  size_t limit = max_rows == 0 ? result.rows.size() : std::min(max_rows, result.rows.size());
  answer["truncated"] = limit < result.rows.size();
  util::Json rows = util::Json::array();
  for (size_t i = 0; i < limit; ++i) {
    const verify::DifferentialRow& row = result.rows[i];
    util::Json j = util::Json::object();
    j["source"] = row.source;
    j["destination"] = row.destination.to_string();
    j["base"] = row.base.to_string();
    j["candidate"] = row.candidate.to_string();
    rows.push_back(std::move(j));
  }
  answer["rows"] = std::move(rows);
  return answer;
}

util::Json VerificationService::render_routes(const std::vector<verify::RouteRow>& rows,
                                              size_t max_rows) {
  util::Json answer = util::Json::object();
  answer["rows_total"] = rows.size();
  size_t limit = max_rows == 0 ? rows.size() : std::min(max_rows, rows.size());
  answer["truncated"] = limit < rows.size();
  util::Json out = util::Json::array();
  for (size_t i = 0; i < limit; ++i) {
    const verify::RouteRow& row = rows[i];
    util::Json j = util::Json::object();
    j["node"] = row.node;
    j["prefix"] = row.prefix.to_string();
    j["protocol"] = row.protocol;
    j["metric"] = row.metric;
    util::Json hops = util::Json::array();
    for (const std::string& hop : row.next_hops) hops.push_back(hop);
    j["next_hops"] = std::move(hops);
    out.push_back(std::move(j));
  }
  answer["rows"] = std::move(out);
  return answer;
}

}  // namespace mfv::service
