// Content-addressed snapshot store: the service's memory.
//
// A stored snapshot is addressed by what produced it, not by a name:
//
//   (topology hash, config-set hash, scenario-delta hash)
//
// The topology hash covers structure only (nodes/links/peers with config
// text blanked), the config-set hash covers the per-node configuration
// bytes, and the delta hash chains the perturbation sequence applied on
// top of the converged base (empty chain = 0). Two clients uploading the
// same network therefore dedupe onto one converged emulation, and a
// what-if that differs only in its perturbations forks from the cached
// base instead of cold-booting (DESIGN.md §7).
//
// Entries carry everything a query needs — the captured gnmi::Snapshot,
// the live emulation (kept quiescent, fork()-able for further what-ifs),
// the ForwardingGraph, and a shared thread-safe TraceCache so concurrent
// requests on one snapshot amortize trace work across each other.
//
// Retention is byte-budget LRU. Eviction only drops the store's
// reference: in-flight requests hold shared_ptr leases, so an evicted
// entry stays alive until its last lease is released. Builds are
// single-flight — concurrent misses on one key block on the first
// builder instead of duplicating the convergence run.
//
// Tenancy: every entry lives inside a tenant namespace — the slot map is
// keyed (tenant, content key), so two tenants uploading byte-identical
// networks get independent entries, leases, and eviction fates (content
// addressing never leaks one operator's network into another's
// namespace). An optional per-tenant byte quota rides on top of the
// global budget: a tenant over quota evicts its own LRU entries first,
// and a single entry larger than the quota is rejected with
// RESOURCE_EXHAUSTED instead of cached — the quota is a hard ceiling,
// not a suggestion.
#pragma once

#include <condition_variable>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "emu/emulation.hpp"
#include "emu/topology.hpp"
#include "gnmi/gnmi.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"
#include "util/status.hpp"
#include "verify/forwarding_graph.hpp"
#include "verify/incremental/incremental.hpp"
#include "verify/trace_cache.hpp"

namespace mfv::service {

struct SnapshotKey {
  uint64_t topology = 0;  // structure sans config text
  uint64_t configs = 0;   // per-node configuration bytes
  uint64_t delta = 0;     // chained perturbation hash; 0 = converged base

  bool operator==(const SnapshotKey&) const = default;

  /// "t<hex16>-c<hex16>-d<hex16>" — doubles as the client-visible
  /// submission id.
  std::string to_string() const;
  static std::optional<SnapshotKey> parse(std::string_view text);
};

/// Key of the converged base snapshot for a topology (delta = 0).
SnapshotKey key_for_topology(const emu::Topology& topology);

/// Chains `perturbations` onto a parent delta hash. Hashes the lossless
/// JSON wire form (perturbation_to_string drops config bytes, which would
/// collide distinct config deltas).
uint64_t delta_hash(uint64_t parent_delta,
                    const std::vector<scenario::Perturbation>& perturbations);

/// Key of the snapshot produced by applying `perturbations` to `base`.
SnapshotKey key_for_fork(const SnapshotKey& base,
                         const std::vector<scenario::Perturbation>& perturbations);

/// Second, FNV-independent content fingerprint of a topology (splitmix64
/// over the same serialization the key hashes). The store compares it on
/// cache hits before treating two snapshots as identical: a 64-bit
/// SnapshotKey collision then degrades to a counted disambiguation
/// (`store_hash_collisions`) instead of silently serving one network's
/// snapshot for another. 0 is reserved for "no check available".
uint64_t content_check_for_topology(const emu::Topology& topology);

/// Chains `perturbations` onto a parent content check, mirroring
/// key_for_fork over the independent hash.
uint64_t content_check_for_fork(uint64_t parent_check,
                                const std::vector<scenario::Perturbation>& perturbations);

/// One converged network state plus the machinery to query and fork it.
struct StoredSnapshot {
  SnapshotKey key;
  /// Namespace the entry was built under (stamped by the store).
  std::string tenant;
  gnmi::Snapshot snapshot;
  /// Quiescent post-convergence emulation; fork() source for what-ifs.
  std::unique_ptr<emu::Emulation> emulation;
  std::unique_ptr<verify::ForwardingGraph> graph;
  /// Thread-safe; shared by every request that leases this entry.
  std::unique_ptr<verify::TraceCache> cache;
  /// Base verify result in splice-ready form (verify/incremental), so
  /// forks of this snapshot answer queries by verifying only the diff.
  /// Captured for converged bases, not for forks (capturing a fork would
  /// cost exactly the cold verify the splice is meant to avoid); read-only
  /// after build, safe to share across concurrent requests.
  std::unique_ptr<verify::IncrementalBase> verify_base;
  /// Nearest ancestor carrying a verify_base (null for bases). Pins the
  /// ancestor across store eviction, so an incremental query on a fork
  /// never races the LRU.
  std::shared_ptr<const StoredSnapshot> parent;
  /// Independent content fingerprint (stamped by the store from the
  /// get_or_build argument; 0 = unchecked). Distinguishes genuine content
  /// identity from a SnapshotKey collision on later hits.
  uint64_t content_check = 0;
  /// Retention charge (snapshot JSON size unless the builder set it).
  size_t bytes = 0;
  /// Virtual convergence time and control-plane messages of the build.
  util::Duration convergence_time;
  uint64_t messages = 0;
};

struct StoreOptions {
  /// Byte budget for retained entries; the most recently used entry is
  /// always kept even if it alone exceeds the budget.
  size_t byte_budget = 512u << 20;
  /// Per-tenant byte quota; 0 = no per-tenant quota (only the global
  /// budget applies). A tenant over quota evicts its own LRU entries; an
  /// entry that alone exceeds the quota is refused with
  /// RESOURCE_EXHAUSTED rather than stored.
  size_t tenant_byte_budget = 0;
  /// Optional metrics sink: mirrors the snapshot_store_* family
  /// (hits/misses/evictions/single-flight joins as counters,
  /// entries/bytes as gauges, plus per-tenant
  /// snapshot_store_tenant_bytes_<tenant> gauges). The plain StoreStats
  /// members stay authoritative; stats() is a thin view either way.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-tenant slice of the retained footprint.
struct TenantStoreStats {
  size_t entries = 0;
  size_t bytes = 0;
  uint64_t quota_rejections = 0;
};

struct StoreStats {
  size_t entries = 0;
  size_t bytes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Callers that blocked on another caller's in-flight build of the
  /// same key instead of duplicating it (counted once per caller).
  uint64_t single_flight_joins = 0;
  /// Lookups whose key matched a cached entry but whose independent
  /// content check did not — a 64-bit key collision, routed to a
  /// disambiguated slot instead of served the wrong snapshot.
  uint64_t hash_collisions = 0;
  /// Aggregate TraceCache counters across live + evicted entries.
  uint64_t trace_hits = 0;
  uint64_t trace_misses = 0;
  /// Live footprint and quota pressure per tenant namespace.
  std::map<std::string, TenantStoreStats> tenants;
};

class SnapshotStore {
 public:
  using EntryPtr = std::shared_ptr<const StoredSnapshot>;

  /// A pinned entry: holding the Lease keeps the snapshot alive across
  /// eviction. `hit` is false when this call ran the builder.
  struct Lease {
    EntryPtr entry;
    bool hit = false;
  };

  /// Produces a fully populated entry on miss (key/bytes are stamped by
  /// the store). Runs outside the store lock; may take seconds.
  using Builder = std::function<util::Result<std::unique_ptr<StoredSnapshot>>()>;

  explicit SnapshotStore(StoreOptions options = {});

  /// Returns the cached entry or builds it exactly once: concurrent
  /// callers with the same (tenant, key) block until the first caller's
  /// builder finishes and then share its entry. A failed build is not
  /// cached. `tenant` must be non-empty (callers resolve the default
  /// namespace via Request::tenant_or_default).
  ///
  /// `content_check` (0 = skip) is an independent fingerprint of the
  /// content the key was derived from (content_check_for_topology /
  /// content_check_for_fork). When a cached entry's check disagrees, the
  /// key collided: the lookup is re-routed to a per-check disambiguated
  /// slot (never served the colliding entry) and `store_hash_collisions`
  /// is bumped. Bare-id lookups that carry no content (find) cannot be
  /// checked — the residual ambiguity of a 64-bit client-visible id.
  util::Result<Lease> get_or_build(const std::string& tenant, const SnapshotKey& key,
                                   const Builder& builder, uint64_t content_check = 0);

  /// Lookup without building; touches LRU on hit. nullptr on miss, and on
  /// a content-check mismatch (a collision miss, counted).
  EntryPtr find(const std::string& tenant, const SnapshotKey& key,
                uint64_t content_check = 0);

  StoreStats stats() const;

 private:
  struct Slot {
    EntryPtr value;          // null while building
    bool building = false;
    std::list<std::string>::iterator lru;  // valid iff value != null
  };

  /// "tenant/t…-c…-d…" — the namespaced slot identity.
  static std::string slot_id(const std::string& tenant, const SnapshotKey& key);

  /// Drops one entry by slot iterator: accounting, retired trace
  /// counters, LRU and tenant bookkeeping (caller holds the lock).
  void drop_locked(std::map<std::string, Slot>::iterator it);

  /// Drops least-recently-used entries until the global budget and every
  /// tenant quota hold (caller holds the lock). Never drops the most
  /// recent entry; tenant-quota pressure only evicts that tenant's own
  /// entries.
  void evict_locked(const std::string& tenant);

  void publish_tenant_bytes_locked(const std::string& tenant);

  StoreOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable build_done_;
  std::map<std::string, Slot> slots_;
  std::list<std::string> lru_;  // front = most recently used
  size_t bytes_ = 0;
  std::map<std::string, TenantStoreStats> tenants_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t single_flight_joins_ = 0;
  uint64_t hash_collisions_ = 0;
  /// TraceCache counters of evicted entries, so stats stay cumulative.
  uint64_t retired_trace_hits_ = 0;
  uint64_t retired_trace_misses_ = 0;

  /// Registry mirrors (null when no registry was injected).
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* joins_counter_ = nullptr;
  obs::Counter* collisions_counter_ = nullptr;
  obs::Gauge* entries_gauge_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
};

}  // namespace mfv::service
