#include "service/snapshot_store.hpp"

#include "util/hash.hpp"

namespace mfv::service {

std::string SnapshotKey::to_string() const {
  return "t" + util::hex64(topology) + "-c" + util::hex64(configs) + "-d" +
         util::hex64(delta);
}

std::optional<SnapshotKey> SnapshotKey::parse(std::string_view text) {
  // t<16>-c<16>-d<16> = 1 + 16 + 2 + 16 + 2 + 16
  if (text.size() != 53 || text[0] != 't' || text.substr(17, 2) != "-c" ||
      text.substr(35, 2) != "-d")
    return std::nullopt;
  SnapshotKey key;
  if (!util::parse_hex64(text.substr(1, 16), key.topology) ||
      !util::parse_hex64(text.substr(19, 16), key.configs) ||
      !util::parse_hex64(text.substr(37, 16), key.delta))
    return std::nullopt;
  return key;
}

SnapshotKey key_for_topology(const emu::Topology& topology) {
  SnapshotKey key;

  // Structure hash: the topology JSON with config bytes blanked, so a
  // config-only change moves the config hash but not the topology hash.
  emu::Topology structure = topology;
  for (emu::NodeSpec& node : structure.nodes) node.config_text.clear();
  key.topology = util::fnv1a(structure.to_json().dump());

  uint64_t configs = util::kFnvOffset;
  for (const emu::NodeSpec& node : topology.nodes) {
    configs = util::fnv1a(node.name, configs);
    configs = util::fnv1a(config::vendor_name(node.vendor), configs);
    configs = util::fnv1a(node.config_text, configs);
  }
  key.configs = configs;
  return key;
}

uint64_t delta_hash(uint64_t parent_delta,
                    const std::vector<scenario::Perturbation>& perturbations) {
  uint64_t hash = util::fnv1a_mix(parent_delta);
  for (const scenario::Perturbation& perturbation : perturbations)
    hash = util::fnv1a(scenario::perturbation_to_json(perturbation).dump(), hash);
  return hash;
}

SnapshotKey key_for_fork(const SnapshotKey& base,
                         const std::vector<scenario::Perturbation>& perturbations) {
  SnapshotKey key = base;
  key.delta = delta_hash(base.delta, perturbations);
  return key;
}

uint64_t content_check_for_topology(const emu::Topology& topology) {
  // Same serialization the key hashes, different hash family: an FNV
  // collision on the key and a splitmix collision on the check are
  // structurally unrelated events.
  uint64_t check = util::splitmix_hash(topology.to_json().dump());
  return check == 0 ? 1 : check;  // 0 means "unchecked"
}

uint64_t content_check_for_fork(uint64_t parent_check,
                                const std::vector<scenario::Perturbation>& perturbations) {
  uint64_t check = util::splitmix_mix(parent_check);
  for (const scenario::Perturbation& perturbation : perturbations)
    check = util::splitmix_hash(scenario::perturbation_to_json(perturbation).dump(),
                                check);
  return check == 0 ? 1 : check;
}

SnapshotStore::SnapshotStore(StoreOptions options) : options_(options) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *options_.metrics;
    hits_counter_ = &metrics.counter("snapshot_store_hits");
    misses_counter_ = &metrics.counter("snapshot_store_misses");
    evictions_counter_ = &metrics.counter("snapshot_store_evictions");
    joins_counter_ = &metrics.counter("snapshot_store_single_flight_joins");
    collisions_counter_ = &metrics.counter("store_hash_collisions");
    entries_gauge_ = &metrics.gauge("snapshot_store_entries");
    bytes_gauge_ = &metrics.gauge("snapshot_store_bytes");
  }
}

std::string SnapshotStore::slot_id(const std::string& tenant, const SnapshotKey& key) {
  return tenant + "/" + key.to_string();
}

util::Result<SnapshotStore::Lease> SnapshotStore::get_or_build(const std::string& tenant,
                                                               const SnapshotKey& key,
                                                               const Builder& builder,
                                                               uint64_t content_check) {
  std::string id = slot_id(tenant, key);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    bool joined = false;
    for (;;) {
      auto it = slots_.find(id);
      if (it == slots_.end()) break;
      if (it->second.value != nullptr) {
        if (content_check != 0 && it->second.value->content_check != 0 &&
            it->second.value->content_check != content_check) {
          // The key collided with different content: never treat the two
          // snapshots as identical. Route this caller to a slot
          // disambiguated by its own fingerprint and look up again.
          ++hash_collisions_;
          if (collisions_counter_ != nullptr) collisions_counter_->add(1);
          id += "~" + util::hex64(content_check);
          continue;
        }
        ++hits_;
        if (hits_counter_ != nullptr) hits_counter_->add(1);
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        return Lease{it->second.value, /*hit=*/true};
      }
      // Someone else is building this key; wait for them rather than
      // duplicating a convergence run. Counted once per joining caller,
      // however many times the condition variable wakes it.
      if (!joined) {
        joined = true;
        ++single_flight_joins_;
        if (joins_counter_ != nullptr) joins_counter_->add(1);
      }
      build_done_.wait(lock);
    }
    ++misses_;
    if (misses_counter_ != nullptr) misses_counter_->add(1);
    slots_[id].building = true;
  }

  util::Result<std::unique_ptr<StoredSnapshot>> built = builder();

  std::unique_lock<std::mutex> lock(mutex_);
  if (!built.ok() || *built == nullptr) {
    // Not cached: the next request for this key retries the build.
    slots_.erase(id);
    build_done_.notify_all();
    if (!built.ok()) return built.status();
    return util::internal_error("snapshot builder returned no entry");
  }

  std::shared_ptr<StoredSnapshot> entry(std::move(*built));
  entry->key = key;
  entry->tenant = tenant;
  entry->content_check = content_check;
  if (entry->bytes == 0) entry->bytes = entry->snapshot.to_json().dump().size();

  TenantStoreStats& tenant_stats = tenants_[tenant];
  if (options_.tenant_byte_budget > 0 && entry->bytes > options_.tenant_byte_budget) {
    // No amount of evicting this tenant's older entries would fit this
    // one under its quota, so the quota is enforced as a hard rejection.
    ++tenant_stats.quota_rejections;
    slots_.erase(id);
    build_done_.notify_all();
    return util::resource_exhausted(
        "snapshot of " + std::to_string(entry->bytes) + " bytes exceeds tenant '" +
        tenant + "' byte quota of " + std::to_string(options_.tenant_byte_budget));
  }

  Slot& slot = slots_[id];
  slot.value = entry;
  slot.building = false;
  lru_.push_front(id);
  slot.lru = lru_.begin();
  bytes_ += entry->bytes;
  tenant_stats.bytes += entry->bytes;
  ++tenant_stats.entries;
  evict_locked(tenant);
  if (entries_gauge_ != nullptr) {
    entries_gauge_->set(static_cast<int64_t>(lru_.size()));
    bytes_gauge_->set(static_cast<int64_t>(bytes_));
  }
  publish_tenant_bytes_locked(tenant);
  build_done_.notify_all();
  return Lease{std::move(entry), /*hit=*/false};
}

SnapshotStore::EntryPtr SnapshotStore::find(const std::string& tenant,
                                            const SnapshotKey& key,
                                            uint64_t content_check) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string id = slot_id(tenant, key);
  for (;;) {
    auto it = slots_.find(id);
    if (it == slots_.end() || it->second.value == nullptr) return nullptr;
    if (content_check != 0 && it->second.value->content_check != 0 &&
        it->second.value->content_check != content_check) {
      ++hash_collisions_;
      if (collisions_counter_ != nullptr) collisions_counter_->add(1);
      id += "~" + util::hex64(content_check);
      continue;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return it->second.value;
  }
}

void SnapshotStore::drop_locked(std::map<std::string, Slot>::iterator it) {
  const EntryPtr& entry = it->second.value;
  bytes_ -= entry->bytes;
  TenantStoreStats& tenant_stats = tenants_[entry->tenant];
  tenant_stats.bytes -= entry->bytes;
  --tenant_stats.entries;
  if (entry->cache != nullptr) {
    retired_trace_hits_ += entry->cache->hits();
    retired_trace_misses_ += entry->cache->misses();
  }
  ++evictions_;
  if (evictions_counter_ != nullptr) evictions_counter_->add(1);
  lru_.erase(it->second.lru);
  slots_.erase(it);  // leaseholders keep the entry alive
}

void SnapshotStore::evict_locked(const std::string& tenant) {
  // Per-tenant quota first: the over-quota tenant pays with its own LRU
  // entries, never with another tenant's. Scanned back-to-front over the
  // shared recency list; the just-inserted front entry is exempt.
  if (options_.tenant_byte_budget > 0) {
    auto tenant_bytes = [&] { return tenants_[tenant].bytes; };
    while (tenant_bytes() > options_.tenant_byte_budget && lru_.size() > 1) {
      auto victim = slots_.end();
      for (auto lru_it = std::prev(lru_.end()); lru_it != lru_.begin(); --lru_it) {
        auto slot_it = slots_.find(*lru_it);
        if (slot_it->second.value->tenant == tenant) {
          victim = slot_it;
          break;
        }
      }
      if (victim == slots_.end()) break;  // only the fresh entry remains
      drop_locked(victim);
    }
    publish_tenant_bytes_locked(tenant);
  }
  while (bytes_ > options_.byte_budget && lru_.size() > 1) {
    auto it = slots_.find(lru_.back());
    const std::string victim_tenant = it->second.value->tenant;
    drop_locked(it);
    publish_tenant_bytes_locked(victim_tenant);
  }
}

void SnapshotStore::publish_tenant_bytes_locked(const std::string& tenant) {
  if (options_.metrics == nullptr) return;
  options_.metrics->gauge("snapshot_store_tenant_bytes_" + tenant)
      .set(static_cast<int64_t>(tenants_[tenant].bytes));
}

StoreStats SnapshotStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreStats stats;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.single_flight_joins = single_flight_joins_;
  stats.hash_collisions = hash_collisions_;
  stats.trace_hits = retired_trace_hits_;
  stats.trace_misses = retired_trace_misses_;
  stats.tenants = tenants_;
  for (const auto& [id, slot] : slots_) {
    if (slot.value == nullptr || slot.value->cache == nullptr) continue;
    stats.trace_hits += slot.value->cache->hits();
    stats.trace_misses += slot.value->cache->misses();
  }
  return stats;
}

}  // namespace mfv::service
