// Request broker: admission control, priority scheduling, deadlines, and
// graceful drain in front of the worker pool.
//
// Every accepted request enters a bounded queue inside one of three
// priority classes (interactive > batch > background). Workers always
// serve the highest-priority class with pending work, so a batch backlog
// cannot starve an interactive caller of its turn. Inside each class,
// tenants share the workers by weighted deficit-round-robin: each tenant
// with queued work sits in a ring and is served `weight` requests per
// round, so one tenant pipelining thousands of requests cannot push
// another tenant's single request to the back of a common FIFO (the
// strict-priority scan this replaced did exactly that).
//
// Admission is explicit and two-level: the global capacity bounds total
// memory, and a per-tenant cap bounds how much of that capacity one
// tenant can own. A tenant over its own cap gets RESOURCE_EXHAUSTED while
// other tenants keep admitting — the queue-full failure is scoped to
// whoever caused it. A request whose relative deadline passes while still
// queued is failed with DEADLINE_EXCEEDED instead of executed. drain()
// stops admission (UNAVAILABLE) and waits for everything already accepted
// to finish — the graceful-shutdown half of the contract.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "util/thread_pool.hpp"

namespace mfv::service {

struct BrokerOptions {
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Max queued (not yet executing) requests across all priorities and
  /// tenants.
  size_t queue_capacity = 64;
  /// Max queued requests a single tenant may hold across all priorities;
  /// 0 = no per-tenant cap (only the global capacity applies). A tenant
  /// at its cap is rejected with RESOURCE_EXHAUSTED even while the global
  /// queue has room — that headroom belongs to the other tenants.
  size_t tenant_queue_cap = 0;
  /// Deficit-round-robin weight per tenant (requests served per DRR round
  /// within a priority class). Absent or zero = 1.
  std::map<std::string, uint32_t> tenant_weights;
  /// Clock used for deadlines and queue-wait accounting; null = the real
  /// steady clock. Injectable so tests can place the deadline exactly
  /// between dequeue and execution start.
  std::function<std::chrono::steady_clock::time_point()> clock;
  /// Optional metrics sink: mirrors the broker_* family
  /// (accepted/completed/rejected/expired counters, queued/executing
  /// gauges, queue-wait and expired-wait histograms — the waits use the
  /// injectable clock above, so histogram contents are exact in tests)
  /// plus lazily registered broker_tenant_<outcome>_<tenant> counters.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Execution-side context handed to the handler alongside the request.
struct ExecContext {
  /// Time the request spent queued before a worker picked it up.
  int64_t queue_wait_us = 0;
};

/// Per-tenant slice of the broker counters (see BrokerStats::tenants).
struct TenantBrokerStats {
  uint64_t accepted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t expired = 0;
  size_t queued = 0;
};

struct BrokerStats {
  uint64_t accepted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;         // RESOURCE_EXHAUSTED at admission
  uint64_t expired = 0;          // DEADLINE_EXCEEDED at execution start
  /// Cumulative queue+dispatch wait of expired requests, so the time an
  /// impatient caller spent waiting for a DEADLINE_EXCEEDED shows up in
  /// observability just like completed requests' waits do.
  int64_t expired_wait_us = 0;
  size_t queued = 0;             // current depth across priorities
  size_t executing = 0;
  /// Same counters sliced by tenant (every tenant ever seen).
  std::map<std::string, TenantBrokerStats> tenants;
};

class Broker {
 public:
  using Handler = std::function<Response(const Request&, const ExecContext&)>;
  using Callback = std::function<void(Response)>;

  /// `handler` executes accepted requests on worker threads; it must be
  /// safe to call concurrently.
  Broker(BrokerOptions options, Handler handler);
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Admits the request or fails fast. The callback runs exactly once, on
  /// a worker thread for executed/expired requests or inline on the
  /// caller for admission rejections (queue or tenant cap full →
  /// RESOURCE_EXHAUSTED, draining → UNAVAILABLE).
  void submit(Request request, Callback callback);

  /// Future-returning convenience for synchronous callers.
  std::future<Response> submit(Request request);

  /// Stops admitting work and blocks until every accepted request has
  /// completed. Safe to call more than once.
  void drain();

  BrokerStats stats() const;

 private:
  struct Job {
    Request request;
    Callback callback;
    std::string tenant;  // resolved namespace (never empty)
    std::chrono::steady_clock::time_point enqueued_at;
    /// Absolute expiry derived from request.deadline_ms; max() = none.
    std::chrono::steady_clock::time_point expires_at;
  };

  /// One tenant's backlog within a priority class. Present in the class
  /// map only while it has queued jobs, so an idle tenant costs nothing.
  struct TenantQueue {
    std::deque<Job> jobs;
    /// DRR deficit: requests this tenant may still pop this round.
    /// Replenished by its weight when its turn comes with deficit 0;
    /// reset when the backlog empties (standard DRR).
    uint64_t deficit = 0;
  };

  /// One priority class: tenant backlogs plus the DRR ring of tenants
  /// with queued work (ring front = tenant currently being served).
  struct PriorityClass {
    std::map<std::string, TenantQueue> tenants;
    std::list<std::string> ring;
    size_t total = 0;
  };

  /// Aggregated per-tenant accounting plus lazily created registry
  /// mirrors (null when no registry was injected).
  struct TenantAccounting {
    TenantBrokerStats stats;
    obs::Counter* accepted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* expired = nullptr;
  };

  /// Worker-side: pops the next job by (priority, DRR) order and runs or
  /// expires it. The deadline is checked at execution start — after the
  /// dequeue, from the same clock sample that stamps queue_wait — so a
  /// job whose deadline passed between dequeue and execution never runs,
  /// and a job that does run never reports a wait exceeding its deadline.
  void run_one();

  /// Pops the next job under the DRR discipline; caller holds the lock.
  /// False when every class is empty.
  bool pop_locked(Job& job);

  /// DRR quantum for a tenant (its configured weight, min 1).
  uint64_t quantum(const std::string& tenant) const;

  TenantAccounting& tenant_accounting_locked(const std::string& tenant);

  std::chrono::steady_clock::time_point now() const {
    return options_.clock ? options_.clock() : std::chrono::steady_clock::now();
  }

  BrokerOptions options_;
  Handler handler_;

  mutable std::mutex mutex_;
  std::condition_variable drained_;
  PriorityClass classes_[kPriorityCount];
  std::map<std::string, TenantAccounting> tenants_;
  size_t queued_ = 0;
  size_t executing_ = 0;
  bool draining_ = false;
  uint64_t accepted_ = 0;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t expired_ = 0;
  int64_t expired_wait_us_ = 0;

  /// Registry mirrors (null when no registry was injected); the plain
  /// members above stay authoritative for stats().
  obs::Counter* accepted_counter_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* expired_counter_ = nullptr;
  obs::Gauge* queued_gauge_ = nullptr;
  obs::Gauge* executing_gauge_ = nullptr;
  obs::Histogram* queue_wait_us_ = nullptr;
  obs::Histogram* expired_wait_histogram_ = nullptr;

  /// Last member: destroyed first, so workers stop before the queues and
  /// handler they reference go away.
  util::ThreadPool pool_;
};

}  // namespace mfv::service
