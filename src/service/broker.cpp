#include "service/broker.hpp"

#include <utility>

namespace mfv::service {

Broker::Broker(BrokerOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)),
      pool_(options_.threads) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *options_.metrics;
    accepted_counter_ = &metrics.counter("broker_accepted");
    completed_counter_ = &metrics.counter("broker_completed");
    rejected_counter_ = &metrics.counter("broker_rejected");
    expired_counter_ = &metrics.counter("broker_expired");
    queued_gauge_ = &metrics.gauge("broker_queued");
    executing_gauge_ = &metrics.gauge("broker_executing");
    queue_wait_us_ = &metrics.latency_histogram_us("broker_queue_wait_us");
    expired_wait_histogram_ =
        &metrics.latency_histogram_us("broker_expired_wait_us");
  }
}

Broker::~Broker() { drain(); }

uint64_t Broker::quantum(const std::string& tenant) const {
  auto it = options_.tenant_weights.find(tenant);
  if (it == options_.tenant_weights.end() || it->second == 0) return 1;
  return it->second;
}

Broker::TenantAccounting& Broker::tenant_accounting_locked(const std::string& tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted && options_.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *options_.metrics;
    it->second.accepted = &metrics.counter("broker_tenant_accepted_" + tenant);
    it->second.completed = &metrics.counter("broker_tenant_completed_" + tenant);
    it->second.rejected = &metrics.counter("broker_tenant_rejected_" + tenant);
    it->second.expired = &metrics.counter("broker_tenant_expired_" + tenant);
  }
  return it->second;
}

void Broker::submit(Request request, Callback callback) {
  const uint64_t id = request.id;
  std::string tenant = request.tenant_or_default();
  util::Status rejection;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TenantAccounting& accounting = tenant_accounting_locked(tenant);
    const size_t tenant_cap =
        options_.tenant_queue_cap > 0 ? options_.tenant_queue_cap
                                      : options_.queue_capacity;
    if (draining_) {
      ++rejected_;
      ++accounting.stats.rejected;
      if (rejected_counter_ != nullptr) rejected_counter_->add(1);
      if (accounting.rejected != nullptr) accounting.rejected->add(1);
      rejection = util::unavailable("service is draining; not accepting requests");
    } else if (queued_ >= options_.queue_capacity) {
      ++rejected_;
      ++accounting.stats.rejected;
      if (rejected_counter_ != nullptr) rejected_counter_->add(1);
      if (accounting.rejected != nullptr) accounting.rejected->add(1);
      rejection = util::resource_exhausted(
          "request queue full (" + std::to_string(options_.queue_capacity) +
          " pending); retry later or lower the offered load");
    } else if (accounting.stats.queued >= tenant_cap) {
      // The scoped failure: this tenant saturated its share, so only this
      // tenant is turned away — the remaining global headroom stays
      // available to everyone else.
      ++rejected_;
      ++accounting.stats.rejected;
      if (rejected_counter_ != nullptr) rejected_counter_->add(1);
      if (accounting.rejected != nullptr) accounting.rejected->add(1);
      rejection = util::resource_exhausted(
          "tenant '" + tenant + "' is at its queue cap (" +
          std::to_string(tenant_cap) + " pending); retry later or lower this "
          "tenant's offered load");
    } else {
      Job job;
      job.enqueued_at = now();
      job.expires_at =
          request.deadline_ms > 0
              ? job.enqueued_at + std::chrono::milliseconds(request.deadline_ms)
              : std::chrono::steady_clock::time_point::max();
      PriorityClass& cls = classes_[static_cast<size_t>(request.priority)];
      job.request = std::move(request);
      job.callback = std::move(callback);
      job.tenant = tenant;
      auto [queue_it, first_job] = cls.tenants.try_emplace(tenant);
      if (first_job) queue_it->second.deficit = 0;
      if (queue_it->second.jobs.empty()) cls.ring.push_back(tenant);
      queue_it->second.jobs.push_back(std::move(job));
      ++cls.total;
      ++queued_;
      ++accepted_;
      ++accounting.stats.accepted;
      ++accounting.stats.queued;
      if (accounting.accepted != nullptr) accounting.accepted->add(1);
      if (accepted_counter_ != nullptr) {
        accepted_counter_->add(1);
        queued_gauge_->set(static_cast<int64_t>(queued_));
      }
    }
  }
  if (!rejection.ok()) {
    callback(Response::failure(id, rejection));
    return;
  }
  // One pool task per admitted job; the task picks the next job by
  // (priority, DRR) order at execution time, which is what makes the
  // scheduling classes meaningful on a saturated pool.
  pool_.submit([this] { run_one(); });
}

std::future<Response> Broker::submit(Request request) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  submit(std::move(request),
         [promise](Response response) { promise->set_value(std::move(response)); });
  return future;
}

bool Broker::pop_locked(Job& job) {
  for (PriorityClass& cls : classes_) {
    if (cls.total == 0) continue;
    // Deficit round robin over the tenants with queued work in this
    // class. Invariant: a tenant is in the ring iff its backlog is
    // non-empty, so the ring front always has a job to give. A tenant
    // whose turn comes with deficit 0 is replenished by its weight; it
    // keeps the head of the ring until the deficit is spent (weight jobs
    // served) or its backlog empties, then rotates to the back. One
    // tenant's thousand queued requests therefore cost every other
    // tenant at most `weight` positions per round, not a thousand.
    const std::string tenant = cls.ring.front();
    auto queue_it = cls.tenants.find(tenant);
    TenantQueue& queue = queue_it->second;
    if (queue.deficit == 0) queue.deficit = quantum(tenant);
    job = std::move(queue.jobs.front());
    queue.jobs.pop_front();
    --queue.deficit;
    --cls.total;
    if (queue.jobs.empty()) {
      // Backlog drained: leave the ring and forfeit the leftover deficit
      // (standard DRR — an idle tenant must not bank credit).
      cls.ring.pop_front();
      cls.tenants.erase(queue_it);
    } else if (queue.deficit == 0) {
      cls.ring.splice(cls.ring.end(), cls.ring, cls.ring.begin());
    }
    return true;
  }
  return false;
}

void Broker::run_one() {
  Job job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!pop_locked(job)) return;  // job count and task count always match
    --queued_;
    ++executing_;
    --tenants_[job.tenant].stats.queued;
    if (queued_gauge_ != nullptr) {
      queued_gauge_->set(static_cast<int64_t>(queued_));
      executing_gauge_->set(static_cast<int64_t>(executing_));
    }
  }

  // One clock sample at execution start decides expiry AND stamps the
  // queue wait. Checking under the dequeue lock and stamping with a later
  // sample (the old scheme) let a job whose deadline passed in between run
  // to completion — counted as completed, with a reported wait exceeding
  // its own deadline.
  const auto started = now();
  const bool expired = started >= job.expires_at;
  const int64_t queue_wait_us =
      std::chrono::duration_cast<std::chrono::microseconds>(started - job.enqueued_at)
          .count();

  Response response;
  if (expired) {
    response = Response::failure(
        job.request.id,
        util::deadline_exceeded("deadline of " + std::to_string(job.request.deadline_ms) +
                                "ms passed while queued (waited " +
                                std::to_string(queue_wait_us) + "us)"));
  } else {
    ExecContext context;
    context.queue_wait_us = queue_wait_us;
    response = handler_(job.request, context);
    response.id = job.request.id;
  }
  // Outcome accounting lands BEFORE the callback: a caller who has seen
  // its response (the future resolved, the frame arrived) must find the
  // completion already in stats() and the registry — otherwise every
  // "submit, then read the counters" sequence races the worker's tail.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TenantAccounting& accounting = tenants_[job.tenant];
    if (expired) {
      ++expired_;
      ++accounting.stats.expired;
      expired_wait_us_ += queue_wait_us;
      if (accounting.expired != nullptr) accounting.expired->add(1);
      if (expired_counter_ != nullptr) {
        expired_counter_->add(1);
        expired_wait_histogram_->observe(queue_wait_us);
      }
    } else {
      ++completed_;
      ++accounting.stats.completed;
      if (accounting.completed != nullptr) accounting.completed->add(1);
      if (completed_counter_ != nullptr) {
        completed_counter_->add(1);
        queue_wait_us_->observe(queue_wait_us);
      }
    }
  }
  job.callback(std::move(response));

  // The executing count (and the drain wake-up) stays after the callback:
  // drain() must not return while a delivery is still in flight.
  std::lock_guard<std::mutex> lock(mutex_);
  --executing_;
  if (executing_gauge_ != nullptr)
    executing_gauge_->set(static_cast<int64_t>(executing_));
  if (queued_ == 0 && executing_ == 0) drained_.notify_all();
}

void Broker::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  drained_.wait(lock, [this] { return queued_ == 0 && executing_ == 0; });
}

BrokerStats Broker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BrokerStats stats;
  stats.accepted = accepted_;
  stats.completed = completed_;
  stats.rejected = rejected_;
  stats.expired = expired_;
  stats.expired_wait_us = expired_wait_us_;
  stats.queued = queued_;
  stats.executing = executing_;
  for (const auto& [tenant, accounting] : tenants_)
    stats.tenants.emplace(tenant, accounting.stats);
  return stats;
}

}  // namespace mfv::service
