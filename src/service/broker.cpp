#include "service/broker.hpp"

#include <utility>

namespace mfv::service {

Broker::Broker(BrokerOptions options, Handler handler)
    : options_(options), handler_(std::move(handler)), pool_(options.threads) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *options_.metrics;
    accepted_counter_ = &metrics.counter("broker_accepted");
    completed_counter_ = &metrics.counter("broker_completed");
    rejected_counter_ = &metrics.counter("broker_rejected");
    expired_counter_ = &metrics.counter("broker_expired");
    queued_gauge_ = &metrics.gauge("broker_queued");
    executing_gauge_ = &metrics.gauge("broker_executing");
    queue_wait_us_ = &metrics.latency_histogram_us("broker_queue_wait_us");
    expired_wait_histogram_ =
        &metrics.latency_histogram_us("broker_expired_wait_us");
  }
}

Broker::~Broker() { drain(); }

void Broker::submit(Request request, Callback callback) {
  const uint64_t id = request.id;
  util::Status rejection;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      ++rejected_;
      if (rejected_counter_ != nullptr) rejected_counter_->add(1);
      rejection = util::unavailable("service is draining; not accepting requests");
    } else if (queued_ >= options_.queue_capacity) {
      ++rejected_;
      if (rejected_counter_ != nullptr) rejected_counter_->add(1);
      rejection = util::resource_exhausted(
          "request queue full (" + std::to_string(options_.queue_capacity) +
          " pending); retry later or lower the offered load");
    } else {
      Job job;
      job.enqueued_at = now();
      job.expires_at =
          request.deadline_ms > 0
              ? job.enqueued_at + std::chrono::milliseconds(request.deadline_ms)
              : std::chrono::steady_clock::time_point::max();
      size_t queue = static_cast<size_t>(request.priority);
      job.request = std::move(request);
      job.callback = std::move(callback);
      queues_[queue].push_back(std::move(job));
      ++queued_;
      ++accepted_;
      if (accepted_counter_ != nullptr) {
        accepted_counter_->add(1);
        queued_gauge_->set(static_cast<int64_t>(queued_));
      }
    }
  }
  if (!rejection.ok()) {
    callback(Response::failure(id, rejection));
    return;
  }
  // One pool task per admitted job; the task picks the highest-priority
  // pending job at execution time, which is what makes priority classes
  // meaningful on a saturated pool.
  pool_.submit([this] { run_one(); });
}

std::future<Response> Broker::submit(Request request) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  submit(std::move(request),
         [promise](Response response) { promise->set_value(std::move(response)); });
  return future;
}

void Broker::run_one() {
  Job job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::deque<Job>* queue = nullptr;
    for (auto& candidate : queues_)
      if (!candidate.empty()) {
        queue = &candidate;
        break;
      }
    if (queue == nullptr) return;  // job count and task count always match
    job = std::move(queue->front());
    queue->pop_front();
    --queued_;
    ++executing_;
    if (queued_gauge_ != nullptr) {
      queued_gauge_->set(static_cast<int64_t>(queued_));
      executing_gauge_->set(static_cast<int64_t>(executing_));
    }
  }

  // One clock sample at execution start decides expiry AND stamps the
  // queue wait. Checking under the dequeue lock and stamping with a later
  // sample (the old scheme) let a job whose deadline passed in between run
  // to completion — counted as completed, with a reported wait exceeding
  // its own deadline.
  const auto started = now();
  const bool expired = started >= job.expires_at;
  const int64_t queue_wait_us =
      std::chrono::duration_cast<std::chrono::microseconds>(started - job.enqueued_at)
          .count();

  Response response;
  if (expired) {
    response = Response::failure(
        job.request.id,
        util::deadline_exceeded("deadline of " + std::to_string(job.request.deadline_ms) +
                                "ms passed while queued (waited " +
                                std::to_string(queue_wait_us) + "us)"));
  } else {
    ExecContext context;
    context.queue_wait_us = queue_wait_us;
    response = handler_(job.request, context);
    response.id = job.request.id;
  }
  // Outcome accounting lands BEFORE the callback: a caller who has seen
  // its response (the future resolved, the frame arrived) must find the
  // completion already in stats() and the registry — otherwise every
  // "submit, then read the counters" sequence races the worker's tail.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (expired) {
      ++expired_;
      expired_wait_us_ += queue_wait_us;
      if (expired_counter_ != nullptr) {
        expired_counter_->add(1);
        expired_wait_histogram_->observe(queue_wait_us);
      }
    } else {
      ++completed_;
      if (completed_counter_ != nullptr) {
        completed_counter_->add(1);
        queue_wait_us_->observe(queue_wait_us);
      }
    }
  }
  job.callback(std::move(response));

  // The executing count (and the drain wake-up) stays after the callback:
  // drain() must not return while a delivery is still in flight.
  std::lock_guard<std::mutex> lock(mutex_);
  --executing_;
  if (executing_gauge_ != nullptr)
    executing_gauge_->set(static_cast<int64_t>(executing_));
  if (queued_ == 0 && executing_ == 0) drained_.notify_all();
}

void Broker::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  drained_.wait(lock, [this] { return queued_ == 0 && executing_ == 0; });
}

BrokerStats Broker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BrokerStats stats;
  stats.accepted = accepted_;
  stats.completed = completed_;
  stats.rejected = rejected_;
  stats.expired = expired_;
  stats.expired_wait_us = expired_wait_us_;
  stats.queued = queued_;
  stats.executing = executing_;
  return stats;
}

}  // namespace mfv::service
