#include "service/cluster_client.hpp"

#include <algorithm>

#include "emu/topology.hpp"
#include "service/snapshot_store.hpp"

namespace mfv::service {

std::string ClusterEndpoint::name() const {
  if (!unix_path.empty()) return "unix:" + unix_path;
  return "tcp:" + host + ":" + std::to_string(port);
}

util::Result<ClusterEndpoint> ClusterEndpoint::parse(std::string_view text) {
  if (text.empty()) return util::invalid_argument("empty cluster endpoint");
  ClusterEndpoint endpoint;
  if (text.find('/') != std::string_view::npos) {
    endpoint.unix_path = std::string(text);
    return endpoint;
  }
  const size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 == text.size())
    return util::invalid_argument("cluster endpoint '" + std::string(text) +
                                  "' is neither a socket path nor host:port");
  uint64_t port = 0;
  for (char c : text.substr(colon + 1)) {
    if (c < '0' || c > '9' || (port = port * 10 + (c - '0')) > 65535)
      return util::invalid_argument("bad port in cluster endpoint '" +
                                    std::string(text) + "'");
  }
  endpoint.host = std::string(text.substr(0, colon));
  endpoint.port = static_cast<uint16_t>(port);
  return endpoint;
}

ClusterClient::ClusterClient(ClusterClientOptions options)
    : options_(std::move(options)) {
  std::vector<std::string> names;
  names.reserve(options_.endpoints.size());
  for (const ClusterEndpoint& endpoint : options_.endpoints)
    names.push_back(endpoint.name());
  ring_ = HashRing(std::move(names), HashRingOptions{options_.vnodes});
  connections_.resize(options_.endpoints.size());
  calls_.assign(options_.endpoints.size(), 0);
}

util::Result<std::string> ClusterClient::routing_key(const Request& request) {
  auto id_param = [&](const char* field) -> util::Result<std::string> {
    const util::Json* value = request.params.find(field);
    if (value == nullptr || value->type() != util::Json::Type::kString)
      return util::invalid_argument("verb '" + request.verb +
                                    "' needs string param '" + field + "'");
    return placement_key(value->as_string());
  };
  if (request.verb == "upload_configs") {
    // The service derives the submission id from the uploaded content;
    // deriving the same hash here routes the upload to the instance that
    // will own every later request against it.
    const util::Json* topology_json = request.params.find("topology");
    if (topology_json == nullptr)
      return util::invalid_argument("upload_configs needs param 'topology'");
    util::Result<emu::Topology> topology = emu::Topology::from_json(*topology_json);
    if (!topology.ok()) return topology.status();
    return placement_key(key_for_topology(*topology).to_string());
  }
  if (request.verb == "snapshot") return id_param("submission");
  if (request.verb == "query") return id_param("snapshot");
  if (request.verb == "fork_scenario") return id_param("base");
  return std::string();  // unkeyed (stats/metrics): first instance
}

util::Result<Response> ClusterClient::call_endpoint(size_t index,
                                                    const Request& request) {
  Client& client = connections_[index];
  if (!client.connected()) {
    const ClusterEndpoint& endpoint = options_.endpoints[index];
    util::Status connected = endpoint.unix_path.empty()
                                 ? client.connect_tcp(endpoint.host, endpoint.port)
                                 : client.connect_unix(endpoint.unix_path);
    if (!connected.ok()) return connected;
  }
  util::Result<Response> response = client.call(request);
  // Any transport failure poisons the cached connection; the next call to
  // this endpoint re-dials instead of reusing a dead fd.
  if (!response.ok()) client.close();
  else ++calls_[index];
  return response;
}

util::Result<Response> ClusterClient::call(Request request) {
  if (options_.endpoints.empty())
    return util::failed_precondition("cluster client has no endpoints");
  if (request.tenant.empty()) request.tenant = options_.tenant;

  util::Result<std::string> key = routing_key(request);
  if (!key.ok()) return key.status();

  size_t attempts = options_.max_attempts > 0
                        ? std::min(options_.max_attempts, options_.endpoints.size())
                        : options_.endpoints.size();
  std::vector<size_t> order;
  if (key->empty()) {
    for (size_t i = 0; i < attempts; ++i) order.push_back(i);
  } else {
    order = ring_.preference(*key, attempts);
  }

  util::Status last = util::unavailable("no cluster instance reachable");
  for (size_t index : order) {
    util::Result<Response> response = call_endpoint(index, request);
    if (response.ok()) return response;
    last = response.status();
  }
  return util::Status(last.code(),
                      "all " + std::to_string(order.size()) +
                          " cluster instance(s) failed; last error: " + last.message());
}

}  // namespace mfv::service
