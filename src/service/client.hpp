// Client side of the wire protocol (the mfvc binary and the tests /
// benches use this; any language that can frame JSON can substitute).
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.hpp"
#include "util/status.hpp"

namespace mfv::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  util::Status connect_unix(const std::string& path);
  util::Status connect_tcp(const std::string& host, uint16_t port);

  /// One round trip: send the request, read one response, check the
  /// echoed id. For non-pipelined use; pipelined callers use
  /// send()/receive() and match ids themselves.
  util::Result<Response> call(const Request& request);

  util::Status send(const Request& request);
  util::Result<Response> receive();

  void close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace mfv::service
