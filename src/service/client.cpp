#include "service/client.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace mfv::service {

Client::~Client() { close(); }

util::Status Client::connect_unix(const std::string& path) {
  if (fd_ >= 0) return util::failed_precondition("client already connected");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    return util::invalid_argument("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return util::internal_error(std::string("socket: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    util::Status status =
        util::unavailable("connect " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return util::Status::ok_status();
}

util::Status Client::connect_tcp(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return util::failed_precondition("client already connected");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return util::invalid_argument("bad IPv4 address '" + host + "'");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return util::internal_error(std::string("socket: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    util::Status status = util::unavailable("connect " + host + ":" +
                                            std::to_string(port) + ": " +
                                            std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return util::Status::ok_status();
}

util::Status Client::send(const Request& request) {
  if (fd_ < 0) return util::failed_precondition("client is not connected");
  return write_frame(fd_, request.to_json().dump());
}

util::Result<Response> Client::receive() {
  if (fd_ < 0) return util::failed_precondition("client is not connected");
  std::string payload;
  util::Status status = read_frame(fd_, payload);
  if (!status.ok()) return status;
  return decode_response(payload);
}

util::Result<Response> Client::call(const Request& request) {
  util::Status status = send(request);
  if (!status.ok()) return status;
  util::Result<Response> response = receive();
  if (!response.ok()) return response;
  if (response->id != request.id)
    return util::internal_error("response id " + std::to_string(response->id) +
                                " does not match request id " +
                                std::to_string(request.id) +
                                " (pipelined calls must use send/receive)");
  return response;
}

void Client::close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

}  // namespace mfv::service
