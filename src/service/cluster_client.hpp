// Fleet-aware client: routes each request to the mfvd instance that owns
// its snapshot key on the consistent-hash ring, with failover to the ring
// successor when the owner is unreachable.
//
// Routing is computed client-side from the member list alone — the same
// content hashes the service uses for dedup double as placement keys, so
// an upload_configs and every later snapshot/query/fork against that
// network deterministically hit the same instance (that instance holds
// the live emulation; routing elsewhere would cold-boot it). Verbs with
// no snapshot identity (stats, metrics) go to the first instance.
//
// Failover is transport-level only: a dead owner's keyspace falls to its
// successor, which rebuilds state from re-uploaded content (uploads are
// content-addressed, hence idempotent). Application errors — NOT_FOUND,
// RESOURCE_EXHAUSTED, a failed verification — are answers, not outages,
// and are returned without trying other instances.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/ring.hpp"
#include "util/status.hpp"

namespace mfv::service {

struct ClusterEndpoint {
  /// Unix-domain socket path; when empty, host/port is used instead.
  std::string unix_path;
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Stable ring identity ("unix:<path>" / "tcp:<host>:<port>").
  std::string name() const;

  /// "path" (contains '/') or "host:port". Empty/invalid → error.
  static util::Result<ClusterEndpoint> parse(std::string_view text);
};

struct ClusterClientOptions {
  std::vector<ClusterEndpoint> endpoints;
  /// Tenant stamped onto requests that do not already name one.
  std::string tenant;
  size_t vnodes = 64;
  /// Distinct instances tried per call before giving up; 0 = all.
  size_t max_attempts = 0;
};

class ClusterClient {
 public:
  explicit ClusterClient(ClusterClientOptions options);

  /// Routes by the request's placement key and performs one round trip,
  /// failing over along the ring preference list on transport errors.
  /// Connections are opened lazily and dropped on failure, so a restarted
  /// instance is usable on the next call without client restart.
  util::Result<Response> call(Request request);

  size_t instances() const { return options_.endpoints.size(); }

  /// Endpoint index the ring assigns `placement` to (tests/bench use this
  /// to assert routing without sniffing sockets).
  size_t owner_of(std::string_view placement) const { return ring_.owner(placement); }

  /// Placement key for a request: the snapshot identity its verb names
  /// (computed client-side for upload_configs from the topology content).
  /// Empty string = unkeyed verb (routes to the first instance).
  static util::Result<std::string> routing_key(const Request& request);

  /// Calls completed against each endpoint, by index (routing attribution).
  const std::vector<uint64_t>& per_instance_calls() const { return calls_; }

 private:
  util::Result<Response> call_endpoint(size_t index, const Request& request);

  ClusterClientOptions options_;
  HashRing ring_;
  std::vector<Client> connections_;  // parallel to endpoints; lazy
  std::vector<uint64_t> calls_;
};

}  // namespace mfv::service
