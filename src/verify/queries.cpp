#include "verify/queries.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <thread>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"
#include "verify/incremental/incremental.hpp"
#include "verify/trace_cache.hpp"

namespace mfv::verify {

namespace {

std::vector<net::NodeName> resolve_sources(const ForwardingGraph& graph,
                                           const QueryOptions& options) {
  if (!options.sources.empty()) return options.sources;
  return graph.nodes();
}

std::vector<PacketClass> classes_for(const std::vector<net::Ipv4Prefix>& prefixes,
                                     const QueryOptions& options) {
  if (options.scope) return compute_packet_classes(prefixes, *options.scope);
  return compute_packet_classes(prefixes);
}

unsigned resolve_threads(const QueryOptions& options) {
  if (options.threads != 0) return options.threads;
  return util::ThreadPool::default_threads();
}

/// True when the memoized (TraceCache) engine should run; false selects
/// the legacy per-flow walker.
bool use_cached_engine(const QueryOptions& options, unsigned threads) {
  switch (options.engine) {
    case EngineMode::kLegacy: return false;
    case EngineMode::kCached: return true;
    case EngineMode::kAuto: return threads > 1;
  }
  return threads > 1;
}

bool row_passes(const QueryOptions& options, const DispositionSet& dispositions) {
  return options.row_filter.empty() || dispositions.intersects(options.row_filter);
}

/// The memoization a query sweep uses: the caller's long-lived cache when
/// provided (service / session path), else a fresh query-local one.
class CacheRef {
 public:
  CacheRef(TraceCache* shared, const ForwardingGraph& graph,
           obs::MetricsRegistry* metrics) {
    if (shared == nullptr) local_ = std::make_unique<TraceCache>(graph, metrics);
    cache_ = shared != nullptr ? shared : local_.get();
  }
  TraceCache& operator*() { return *cache_; }

 private:
  std::unique_ptr<TraceCache> local_;
  TraceCache* cache_ = nullptr;
};

/// Resolves the per-shard latency histogram once per sweep (nullptr when
/// no registry is attached) and times one shard around a callable.
obs::Histogram* shard_latency_histogram(const QueryOptions& options) {
  if (options.metrics == nullptr) return nullptr;
  return &options.metrics->latency_histogram_us("verify_shard_latency_us");
}

template <typename Fn>
void timed_shard(obs::Histogram* histogram, Fn&& fn) {
  if (histogram == nullptr) {
    fn();
    return;
  }
  auto start = std::chrono::steady_clock::now();
  fn();
  histogram->observe(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count());
}

}  // namespace

ReachabilityResult reachability(const ForwardingGraph& graph, const QueryOptions& options) {
  if (options.incremental != nullptr) return incremental_reachability(graph, options);
  ReachabilityResult result;
  std::vector<PacketClass> classes = classes_for(graph.relevant_prefixes(), options);
  std::vector<net::NodeName> sources = resolve_sources(graph, options);
  result.classes = classes.size();

  unsigned threads = resolve_threads(options);
  if (!use_cached_engine(options, threads) && threads <= 1) {
    // Legacy serial engine: one full walk per (source, class), bit-identical
    // to the seed implementation (including path-truncation behavior).
    for (const net::NodeName& source : sources) {
      for (const PacketClass& cls : classes) {
        TraceResult trace = trace_flow(graph, source, cls.representative(), options.trace);
        ++result.flows;
        if (!row_passes(options, trace.dispositions)) continue;
        result.rows.push_back({source, cls, trace.dispositions});
      }
    }
    return result;
  }

  // Sharded engine: one shard per packet class. Each shard resolves its
  // class once (memoized per-node table when the cache is on) and fills a
  // shard-indexed slice of the disposition matrix, so row content and
  // order never depend on the worker count.
  if (options.prime_lpm) graph.prime_class_lpm(classes);
  const size_t class_count = classes.size();
  std::vector<DispositionSet> matrix(sources.size() * class_count);
  bool cached = use_cached_engine(options, threads);
  CacheRef cache(options.cache, graph, options.metrics);
  obs::Histogram* shard_latency = shard_latency_histogram(options);
  util::parallel_for_shards(threads, class_count, [&](size_t c) {
    timed_shard(shard_latency, [&] {
      net::Ipv4Address representative = classes[c].representative();
      if (cached) (*cache).warm(representative);
      for (size_t s = 0; s < sources.size(); ++s) {
        matrix[s * class_count + c] =
            cached ? (*cache).dispositions(sources[s], representative)
                   : trace_flow(graph, sources[s], representative, options.trace)
                         .dispositions;
      }
    });
  });

  result.flows = sources.size() * class_count;
  for (size_t s = 0; s < sources.size(); ++s) {
    for (size_t c = 0; c < class_count; ++c) {
      const DispositionSet& dispositions = matrix[s * class_count + c];
      if (!row_passes(options, dispositions)) continue;
      result.rows.push_back({sources[s], classes[c], dispositions});
    }
  }
  return result;
}

std::string DifferentialRow::to_string() const {
  return source + " -> " + destination.to_string() + ": base=" + base.to_string() +
         " candidate=" + candidate.to_string();
}

std::vector<DifferentialRow> DifferentialResult::regressions() const {
  std::vector<DifferentialRow> out;
  for (const DifferentialRow& row : rows)
    if (row.base.all_success() && row.candidate.any_failure()) out.push_back(row);
  return out;
}

DifferentialResult differential_reachability(const ForwardingGraph& base,
                                             const ForwardingGraph& candidate,
                                             const QueryOptions& options) {
  DifferentialResult result;

  // Classes must be computed over the union of both snapshots' prefixes so
  // a boundary present in only one side still splits the space. Computed
  // once here — base and candidate then share one TraceCache pair across
  // every flow instead of re-deriving per-flow state.
  std::vector<net::Ipv4Prefix> prefixes = base.relevant_prefixes();
  std::vector<net::Ipv4Prefix> candidate_prefixes = candidate.relevant_prefixes();
  prefixes.insert(prefixes.end(), candidate_prefixes.begin(), candidate_prefixes.end());
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());

  std::vector<PacketClass> classes = classes_for(prefixes, options);
  result.classes = classes.size();

  // Sources: union of both snapshots' devices (or the explicit list).
  std::vector<net::NodeName> sources;
  if (!options.sources.empty()) {
    sources = options.sources;
  } else {
    std::set<net::NodeName> all;
    for (const net::NodeName& node : base.nodes()) all.insert(node);
    for (const net::NodeName& node : candidate.nodes()) all.insert(node);
    sources.assign(all.begin(), all.end());
  }

  unsigned threads = resolve_threads(options);
  if (!use_cached_engine(options, threads) && threads <= 1) {
    for (const net::NodeName& source : sources) {
      for (const PacketClass& cls : classes) {
        TraceResult base_trace = trace_flow(base, source, cls.representative(), options.trace);
        TraceResult candidate_trace =
            trace_flow(candidate, source, cls.representative(), options.trace);
        ++result.flows;
        if (base_trace.dispositions == candidate_trace.dispositions) continue;
        result.rows.push_back(
            {source, cls, base_trace.dispositions, candidate_trace.dispositions});
      }
    }
    return result;
  }

  if (options.prime_lpm) {
    base.prime_class_lpm(classes);
    candidate.prime_class_lpm(classes);
  }
  const size_t class_count = classes.size();
  bool cached = use_cached_engine(options, threads);
  CacheRef base_cache(options.cache, base, options.metrics);
  CacheRef candidate_cache(options.candidate_cache, candidate, options.metrics);
  obs::Histogram* shard_latency = shard_latency_histogram(options);
  // Cell (s, c): the two disposition sets plus a differ flag; only
  // differing cells become rows, in source-major order like the legacy
  // engine.
  std::vector<DispositionSet> base_matrix(sources.size() * class_count);
  std::vector<DispositionSet> candidate_matrix(sources.size() * class_count);
  std::vector<uint8_t> differs(sources.size() * class_count, 0);
  util::parallel_for_shards(threads, class_count, [&](size_t c) {
    timed_shard(shard_latency, [&] {
      net::Ipv4Address representative = classes[c].representative();
      if (cached) {
        (*base_cache).warm(representative);
        (*candidate_cache).warm(representative);
      }
      for (size_t s = 0; s < sources.size(); ++s) {
        size_t cell = s * class_count + c;
        if (cached) {
          base_matrix[cell] = (*base_cache).dispositions(sources[s], representative);
          candidate_matrix[cell] =
              (*candidate_cache).dispositions(sources[s], representative);
        } else {
          base_matrix[cell] =
              trace_flow(base, sources[s], representative, options.trace).dispositions;
          candidate_matrix[cell] =
              trace_flow(candidate, sources[s], representative, options.trace)
                  .dispositions;
        }
        differs[cell] = base_matrix[cell] == candidate_matrix[cell] ? 0 : 1;
      }
    });
  });

  result.flows = sources.size() * class_count;
  for (size_t s = 0; s < sources.size(); ++s) {
    for (size_t c = 0; c < class_count; ++c) {
      size_t cell = s * class_count + c;
      if (!differs[cell]) continue;
      result.rows.push_back(
          {sources[s], classes[c], base_matrix[cell], candidate_matrix[cell]});
    }
  }
  return result;
}

std::string RouteRow::to_string() const {
  std::string out = node + " " + prefix.to_string() + " " + protocol + "/" +
                    std::to_string(metric) + " ->";
  for (const std::string& hop : next_hops) out += " " + hop;
  return out;
}

std::vector<RouteRow> routes(const ForwardingGraph& graph, const net::NodeName& node) {
  std::vector<RouteRow> rows;
  for (const auto& [name, device] : graph.snapshot().devices) {
    if (!node.empty() && name != node) continue;
    for (const auto& [prefix, entry] : device.aft.ipv4_entries()) {
      RouteRow row;
      row.node = name;
      row.prefix = prefix;
      row.protocol = entry.origin_protocol;
      row.metric = entry.metric;
      for (const aft::NextHop& hop : graph.next_hops(name, entry)) {
        if (hop.drop) {
          row.next_hops.push_back("drop");
          continue;
        }
        std::string rendered;
        if (hop.ip_address) rendered = hop.ip_address->to_string();
        if (hop.interface)
          rendered += (rendered.empty() ? "via " : " via ") + *hop.interface;
        if (hop.label_op == aft::LabelOp::kPush)
          rendered += " push " + std::to_string(hop.label);
        row.next_hops.push_back(rendered.empty() ? "attached" : rendered);
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

ReachabilityResult detect_loops(const ForwardingGraph& graph, const QueryOptions& options) {
  // Push the loop filter into the query sweep: non-loop rows are never
  // materialized instead of being built and thrown away.
  QueryOptions loop_options = options;
  loop_options.row_filter = DispositionSet();
  loop_options.row_filter.add(Disposition::kLoop);
  return reachability(graph, loop_options);
}

std::optional<net::Ipv4Address> device_loopback(const gnmi::Snapshot& snapshot,
                                                const net::NodeName& node) {
  auto it = snapshot.devices.find(node);
  if (it == snapshot.devices.end()) return std::nullopt;
  std::optional<net::Ipv4Address> fallback;
  for (const auto& [name, interface] : it->second.interfaces) {
    if (!interface.address || !interface.oper_up) continue;
    if (name.rfind("Loopback", 0) == 0 || name.rfind("lo", 0) == 0)
      return interface.address->address;
    if (!fallback || interface.address->address < *fallback)
      fallback = interface.address->address;
  }
  return fallback;
}

PairwiseResult pairwise_reachability(const ForwardingGraph& graph,
                                     const QueryOptions& options) {
  if (options.incremental != nullptr) return incremental_pairwise(graph, options);
  PairwiseResult result;
  std::vector<net::NodeName> nodes = graph.nodes();

  unsigned threads = resolve_threads(options);
  if (!use_cached_engine(options, threads) && threads <= 1) {
    for (const net::NodeName& source : nodes) {
      for (const net::NodeName& destination : nodes) {
        if (source == destination) continue;
        auto loopback = device_loopback(graph.snapshot(), destination);
        if (!loopback) continue;
        TraceResult trace = trace_flow(graph, source, *loopback, options.trace);
        bool reachable = trace.reachable();
        result.cells.push_back({source, destination, reachable});
        ++result.total_pairs;
        if (reachable) ++result.reachable_pairs;
      }
    }
    return result;
  }

  // Shard by destination device: its loopback's trace table is computed
  // once (memoized) and shared by all sources. Cells are emitted
  // source-major afterwards, matching the legacy ordering.
  const size_t node_count = nodes.size();
  std::vector<std::optional<net::Ipv4Address>> loopbacks(node_count);
  for (size_t d = 0; d < node_count; ++d)
    loopbacks[d] = device_loopback(graph.snapshot(), nodes[d]);

  bool cached = use_cached_engine(options, threads);
  CacheRef cache(options.cache, graph, options.metrics);
  obs::Histogram* shard_latency = shard_latency_histogram(options);
  std::vector<uint8_t> reachable(node_count * node_count, 0);
  util::parallel_for_shards(threads, node_count, [&](size_t d) {
    if (!loopbacks[d]) return;
    timed_shard(shard_latency, [&] {
      for (size_t s = 0; s < node_count; ++s) {
        if (s == d) continue;
        bool ok =
            cached
                ? (*cache).dispositions(nodes[s], *loopbacks[d]).contains(Disposition::kAccepted)
                : trace_flow(graph, nodes[s], *loopbacks[d], options.trace).reachable();
        reachable[s * node_count + d] = ok ? 1 : 0;
      }
    });
  });

  for (size_t s = 0; s < node_count; ++s) {
    for (size_t d = 0; d < node_count; ++d) {
      if (s == d || !loopbacks[d]) continue;
      bool ok = reachable[s * node_count + d] != 0;
      result.cells.push_back({nodes[s], nodes[d], ok});
      ++result.total_pairs;
      if (ok) ++result.reachable_pairs;
    }
  }
  return result;
}

PairwiseResult pairwise_reachability(const ForwardingGraph& graph,
                                     const TraceOptions& options) {
  QueryOptions query;
  query.trace = options;
  return pairwise_reachability(graph, query);
}

}  // namespace mfv::verify
