#include "verify/queries.hpp"

#include <algorithm>
#include <set>

namespace mfv::verify {

namespace {

std::vector<net::NodeName> resolve_sources(const ForwardingGraph& graph,
                                           const QueryOptions& options) {
  if (!options.sources.empty()) return options.sources;
  return graph.nodes();
}

std::vector<PacketClass> classes_for(const std::vector<net::Ipv4Prefix>& prefixes,
                                     const QueryOptions& options) {
  if (options.scope) return compute_packet_classes(prefixes, *options.scope);
  return compute_packet_classes(prefixes);
}

}  // namespace

ReachabilityResult reachability(const ForwardingGraph& graph, const QueryOptions& options) {
  ReachabilityResult result;
  std::vector<PacketClass> classes = classes_for(graph.relevant_prefixes(), options);
  std::vector<net::NodeName> sources = resolve_sources(graph, options);
  result.classes = classes.size();
  for (const net::NodeName& source : sources) {
    for (const PacketClass& cls : classes) {
      TraceResult trace = trace_flow(graph, source, cls.representative(), options.trace);
      result.rows.push_back({source, cls, trace.dispositions});
      ++result.flows;
    }
  }
  return result;
}

std::string DifferentialRow::to_string() const {
  return source + " -> " + destination.to_string() + ": base=" + base.to_string() +
         " candidate=" + candidate.to_string();
}

std::vector<DifferentialRow> DifferentialResult::regressions() const {
  std::vector<DifferentialRow> out;
  for (const DifferentialRow& row : rows)
    if (row.base.all_success() && row.candidate.any_failure()) out.push_back(row);
  return out;
}

DifferentialResult differential_reachability(const ForwardingGraph& base,
                                             const ForwardingGraph& candidate,
                                             const QueryOptions& options) {
  DifferentialResult result;

  // Classes must be computed over the union of both snapshots' prefixes so
  // a boundary present in only one side still splits the space.
  std::vector<net::Ipv4Prefix> prefixes = base.relevant_prefixes();
  std::vector<net::Ipv4Prefix> candidate_prefixes = candidate.relevant_prefixes();
  prefixes.insert(prefixes.end(), candidate_prefixes.begin(), candidate_prefixes.end());
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());

  std::vector<PacketClass> classes = classes_for(prefixes, options);
  result.classes = classes.size();

  // Sources: union of both snapshots' devices (or the explicit list).
  std::vector<net::NodeName> sources;
  if (!options.sources.empty()) {
    sources = options.sources;
  } else {
    std::set<net::NodeName> all;
    for (const net::NodeName& node : base.nodes()) all.insert(node);
    for (const net::NodeName& node : candidate.nodes()) all.insert(node);
    sources.assign(all.begin(), all.end());
  }

  for (const net::NodeName& source : sources) {
    for (const PacketClass& cls : classes) {
      TraceResult base_trace = trace_flow(base, source, cls.representative(), options.trace);
      TraceResult candidate_trace =
          trace_flow(candidate, source, cls.representative(), options.trace);
      ++result.flows;
      if (base_trace.dispositions == candidate_trace.dispositions) continue;
      result.rows.push_back(
          {source, cls, base_trace.dispositions, candidate_trace.dispositions});
    }
  }
  return result;
}

std::string RouteRow::to_string() const {
  std::string out = node + " " + prefix.to_string() + " " + protocol + "/" +
                    std::to_string(metric) + " ->";
  for (const std::string& hop : next_hops) out += " " + hop;
  return out;
}

std::vector<RouteRow> routes(const ForwardingGraph& graph, const net::NodeName& node) {
  std::vector<RouteRow> rows;
  for (const auto& [name, device] : graph.snapshot().devices) {
    if (!node.empty() && name != node) continue;
    for (const auto& [prefix, entry] : device.aft.ipv4_entries()) {
      RouteRow row;
      row.node = name;
      row.prefix = prefix;
      row.protocol = entry.origin_protocol;
      row.metric = entry.metric;
      for (const aft::NextHop& hop : graph.next_hops(name, entry)) {
        if (hop.drop) {
          row.next_hops.push_back("drop");
          continue;
        }
        std::string rendered;
        if (hop.ip_address) rendered = hop.ip_address->to_string();
        if (hop.interface)
          rendered += (rendered.empty() ? "via " : " via ") + *hop.interface;
        if (hop.label_op == aft::LabelOp::kPush)
          rendered += " push " + std::to_string(hop.label);
        row.next_hops.push_back(rendered.empty() ? "attached" : rendered);
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

ReachabilityResult detect_loops(const ForwardingGraph& graph, const QueryOptions& options) {
  ReachabilityResult all = reachability(graph, options);
  ReachabilityResult loops;
  loops.classes = all.classes;
  loops.flows = all.flows;
  for (ReachabilityRow& row : all.rows)
    if (row.dispositions.contains(Disposition::kLoop)) loops.rows.push_back(std::move(row));
  return loops;
}

std::optional<net::Ipv4Address> device_loopback(const gnmi::Snapshot& snapshot,
                                                const net::NodeName& node) {
  auto it = snapshot.devices.find(node);
  if (it == snapshot.devices.end()) return std::nullopt;
  std::optional<net::Ipv4Address> fallback;
  for (const auto& [name, interface] : it->second.interfaces) {
    if (!interface.address || !interface.oper_up) continue;
    if (name.rfind("Loopback", 0) == 0 || name.rfind("lo", 0) == 0)
      return interface.address->address;
    if (!fallback || interface.address->address < *fallback)
      fallback = interface.address->address;
  }
  return fallback;
}

PairwiseResult pairwise_reachability(const ForwardingGraph& graph,
                                     const TraceOptions& options) {
  PairwiseResult result;
  std::vector<net::NodeName> nodes = graph.nodes();
  for (const net::NodeName& source : nodes) {
    for (const net::NodeName& destination : nodes) {
      if (source == destination) continue;
      auto loopback = device_loopback(graph.snapshot(), destination);
      if (!loopback) continue;
      TraceResult trace = trace_flow(graph, source, *loopback, options);
      bool reachable = trace.reachable();
      result.cells.push_back({source, destination, reachable});
      ++result.total_pairs;
      if (reachable) ++result.reachable_pairs;
    }
  }
  return result;
}

}  // namespace mfv::verify
