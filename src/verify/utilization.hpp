// Workload exploration on the extracted dataplane (§6, "Performance
// verification"): "one can explore workloads on the produced dataplane
// model, such as checking link utilizations for a range of possible
// demands with the given dataplane."
//
// Routes a demand matrix over the snapshot's forwarding state — splitting
// flow equally across ECMP branches at every hop — and accumulates the
// offered load on each directed link (egress interface). No packet-level
// simulation: this is fluid-flow accounting on the verified FIBs, which is
// exactly what an operator needs to ask "would this dataplane melt under
// Monday's traffic?" before deploying it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "verify/forwarding_graph.hpp"

namespace mfv::verify {

struct Demand {
  net::NodeName source;
  net::Ipv4Address destination;
  double bps = 0;
};

struct UtilizationResult {
  /// Offered load per directed link, keyed by (node, egress interface).
  std::map<std::pair<net::NodeName, net::InterfaceName>, double> load_bps;
  /// Demand volume that could not be routed (no route / filtered / loop).
  double unrouted_bps = 0;
  /// Demand volume delivered somewhere (accepted / delivered / exits).
  double delivered_bps = 0;

  double max_load() const {
    double peak = 0;
    for (const auto& [link, load] : load_bps) peak = std::max(peak, load);
    return peak;
  }
};

/// Routes every demand over the forwarding graph.
UtilizationResult link_utilization(const ForwardingGraph& graph,
                                   const std::vector<Demand>& demands);

/// Convenience: a uniform all-pairs loopback-to-loopback demand matrix.
std::vector<Demand> uniform_mesh_demand(const gnmi::Snapshot& snapshot, double bps_per_pair);

}  // namespace mfv::verify
