#include "verify/packet_classes.hpp"

#include <algorithm>
#include <set>

namespace mfv::verify {

std::string PacketClass::to_string() const {
  if (first == last) return first.to_string();
  return first.to_string() + "-" + last.to_string();
}

std::vector<PacketClass> compute_packet_classes(
    const std::vector<net::Ipv4Prefix>& prefixes) {
  // Boundary points: the first address of each prefix and the address just
  // past its last. 64-bit to represent the point past 255.255.255.255.
  std::set<uint64_t> boundaries;
  boundaries.insert(0);
  boundaries.insert(0x100000000ull);
  for (const net::Ipv4Prefix& prefix : prefixes) {
    boundaries.insert(prefix.first_address().bits());
    boundaries.insert(static_cast<uint64_t>(prefix.last_address().bits()) + 1);
  }

  std::vector<PacketClass> classes;
  classes.reserve(boundaries.size());
  auto it = boundaries.begin();
  uint64_t previous = *it++;
  for (; it != boundaries.end(); ++it) {
    classes.push_back(PacketClass{net::Ipv4Address(static_cast<uint32_t>(previous)),
                                  net::Ipv4Address(static_cast<uint32_t>(*it - 1))});
    previous = *it;
  }
  return classes;
}

std::vector<PacketClass> compute_packet_classes(
    const std::vector<net::Ipv4Prefix>& prefixes, const net::Ipv4Prefix& scope) {
  std::vector<PacketClass> all = compute_packet_classes(prefixes);
  std::vector<PacketClass> scoped;
  for (const PacketClass& cls : all) {
    // Intersect with scope.
    uint32_t lo = std::max(cls.first.bits(), scope.first_address().bits());
    uint32_t hi = std::min(cls.last.bits(), scope.last_address().bits());
    if (lo > hi) continue;
    scoped.push_back(PacketClass{net::Ipv4Address(lo), net::Ipv4Address(hi)});
  }
  return scoped;
}

}  // namespace mfv::verify
