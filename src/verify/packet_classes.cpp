#include "verify/packet_classes.hpp"

#include <algorithm>

namespace mfv::verify {

std::string PacketClass::to_string() const {
  if (first == last) return first.to_string();
  return first.to_string() + "-" + last.to_string();
}

std::vector<PacketClass> compute_packet_classes(
    const std::vector<net::Ipv4Prefix>& prefixes) {
  // Boundary points: the first address of each prefix and the address just
  // past its last. 64-bit to represent the point past 255.255.255.255.
  // Sorted flat vector + unique instead of a std::set: one allocation and
  // a sort beat a red-black node per boundary on large snapshots.
  std::vector<uint64_t> boundaries;
  boundaries.reserve(2 * prefixes.size() + 2);
  boundaries.push_back(0);
  boundaries.push_back(0x100000000ull);
  for (const net::Ipv4Prefix& prefix : prefixes) {
    boundaries.push_back(prefix.first_address().bits());
    boundaries.push_back(static_cast<uint64_t>(prefix.last_address().bits()) + 1);
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());

  std::vector<PacketClass> classes;
  classes.reserve(boundaries.size());
  auto it = boundaries.begin();
  uint64_t previous = *it++;
  for (; it != boundaries.end(); ++it) {
    classes.push_back(PacketClass{net::Ipv4Address(static_cast<uint32_t>(previous)),
                                  net::Ipv4Address(static_cast<uint32_t>(*it - 1))});
    previous = *it;
  }
  return classes;
}

std::vector<PacketClass> compute_packet_classes(
    const std::vector<net::Ipv4Prefix>& prefixes, const net::Ipv4Prefix& scope) {
  std::vector<PacketClass> all = compute_packet_classes(prefixes);
  std::vector<PacketClass> scoped;
  for (const PacketClass& cls : all) {
    // Intersect with scope.
    uint32_t lo = std::max(cls.first.bits(), scope.first_address().bits());
    uint32_t hi = std::min(cls.last.bits(), scope.last_address().bits());
    if (lo > hi) continue;
    scoped.push_back(PacketClass{net::Ipv4Address(lo), net::Ipv4Address(hi)});
  }
  return scoped;
}

}  // namespace mfv::verify
