#include "verify/disposition.hpp"

namespace mfv::verify {

std::string disposition_name(Disposition disposition) {
  switch (disposition) {
    case Disposition::kAccepted: return "ACCEPTED";
    case Disposition::kDeliveredToSubnet: return "DELIVERED_TO_SUBNET";
    case Disposition::kExitsNetwork: return "EXITS_NETWORK";
    case Disposition::kNoRoute: return "NO_ROUTE";
    case Disposition::kNullRouted: return "NULL_ROUTED";
    case Disposition::kNeighborUnreachable: return "NEIGHBOR_UNREACHABLE";
    case Disposition::kLoop: return "LOOP";
    case Disposition::kDeniedIn: return "DENIED_IN";
    case Disposition::kDeniedOut: return "DENIED_OUT";
  }
  return "?";
}

bool DispositionSet::all_success() const {
  if (empty()) return false;
  for (Disposition d : values())
    if (d != Disposition::kAccepted && d != Disposition::kDeliveredToSubnet &&
        d != Disposition::kExitsNetwork)
      return false;
  return true;
}

bool DispositionSet::any_failure() const {
  for (Disposition d : values())
    if (d == Disposition::kNoRoute || d == Disposition::kNullRouted ||
        d == Disposition::kNeighborUnreachable || d == Disposition::kLoop ||
        d == Disposition::kDeniedIn || d == Disposition::kDeniedOut)
      return true;
  return false;
}

std::vector<Disposition> DispositionSet::values() const {
  std::vector<Disposition> out;
  for (int i = 0; i <= static_cast<int>(Disposition::kDeniedOut); ++i) {
    Disposition d = static_cast<Disposition>(i);
    if (contains(d)) out.push_back(d);
  }
  return out;
}

std::string DispositionSet::to_string() const {
  std::string out;
  for (Disposition d : values()) {
    if (!out.empty()) out += "|";
    out += disposition_name(d);
  }
  return out.empty() ? "NONE" : out;
}

}  // namespace mfv::verify
