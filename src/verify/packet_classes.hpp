// Packet-class partitioning of the IPv4 destination space.
//
// Exhaustive reachability ("for all possible packets", §5) is feasible
// because forwarding decisions only change at prefix boundaries: collecting
// every prefix that appears in any FIB or on any interface and splitting
// the 2^32 destination space at each prefix's first and last+1 address
// yields O(#prefixes) atomic intervals. Within one interval, every router's
// LPM result is constant, so one representative address per interval covers
// the whole space — the interval-based equivalent of Batfish's BDD packet
// sets, specialized to destination-IP forwarding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4.hpp"

namespace mfv::verify {

/// One atomic destination class: the half-open address interval
/// [first, last] (inclusive) over which all forwarding decisions are
/// constant.
struct PacketClass {
  net::Ipv4Address first;
  net::Ipv4Address last;

  net::Ipv4Address representative() const { return first; }
  uint64_t size() const {
    return static_cast<uint64_t>(last.bits()) - first.bits() + 1;
  }
  bool contains(net::Ipv4Address address) const {
    return address >= first && address <= last;
  }
  std::string to_string() const;

  bool operator==(const PacketClass&) const = default;
};

/// Partitions the full destination space at the boundaries of `prefixes`.
/// The result covers [0.0.0.0, 255.255.255.255] exactly, in order, with no
/// gaps or overlaps (an invariant the property tests check).
std::vector<PacketClass> compute_packet_classes(
    const std::vector<net::Ipv4Prefix>& prefixes);

/// Classes restricted to those overlapping `scope` (e.g. only loopback
/// space, or only destinations the operator asked about).
std::vector<PacketClass> compute_packet_classes(
    const std::vector<net::Ipv4Prefix>& prefixes, const net::Ipv4Prefix& scope);

}  // namespace mfv::verify
