// Multipath flow tracing over a forwarding graph (the engine behind
// traceroute, reachability, and differential queries).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "verify/disposition.hpp"
#include "verify/forwarding_graph.hpp"

namespace mfv::verify {

struct TraceHopDetail {
  net::NodeName node;
  std::optional<net::Ipv4Prefix> matched_prefix;
  std::string origin_protocol;
  std::optional<net::Ipv4Address> next_hop;
  std::optional<net::InterfaceName> out_interface;
  /// MPLS label the packet carries when *leaving* this hop (LSP segments).
  std::optional<uint32_t> out_label;
};

struct TracePath {
  std::vector<TraceHopDetail> hops;
  Disposition disposition = Disposition::kNoRoute;

  std::string to_string() const;
};

struct TraceResult {
  std::vector<TracePath> paths;
  DispositionSet dispositions;
  bool truncated = false;  // hit the path-count cap

  bool reachable() const { return dispositions.contains(Disposition::kAccepted); }
};

struct TraceOptions {
  int max_hops = 64;
  size_t max_paths = 128;
};

/// Traces a packet destined to `destination` injected at `source`,
/// following every ECMP branch.
TraceResult trace_flow(const ForwardingGraph& graph, const net::NodeName& source,
                       net::Ipv4Address destination, const TraceOptions& options = {});

}  // namespace mfv::verify
