#include "verify/trace_cache.hpp"

#include <set>

namespace mfv::verify {

namespace {

/// Per-class depth-first disposition solver. States are (node, carried
/// MPLS label); loop detection is node-based like the legacy walker's
/// visited set, so a revisit of a device under *any* label state ends the
/// path with kLoop.
///
/// The subtlety: inside a forwarding cycle, a node's disposition set is
/// context-sensitive — entering the cycle mid-way blocks exploration of
/// the on-stack part, so the truncated union must not be memoized (a
/// plain tri-color memo would record {LOOP} for a cycle member that can
/// also reach an exit). Every on-stack hit therefore taints the result
/// with the hit node; a frame absorbs taint on its own node when it pops
/// and only untainted (context-free) results enter the memo. Roots are
/// always untainted by the time they return — all deps reference stack
/// ancestors — so one pass over all nodes fully populates the table.
class ClassSolver {
 public:
  ClassSolver(const ForwardingGraph& graph, net::Ipv4Address destination,
              const std::map<net::NodeName, uint32_t>& node_index,
              std::unordered_map<uint64_t, TraceMemoEntry>& memo,
              std::atomic<uint64_t>* reexpansions,
              obs::Counter* reexpansions_counter)
      : graph_(graph),
        destination_(destination),
        node_index_(node_index),
        memo_(memo),
        reexpansions_(reexpansions),
        reexpansions_counter_(reexpansions_counter),
        node_on_stack_(node_index.size(), 0) {}

  void solve_all() {
    for (const auto& [node, index] : node_index_) solve_root(node, index);
  }

  /// Solves one root (and every continuation it reaches), memoizing into
  /// the shared table. Root results are always context-free: every
  /// dependency recorded below a frame is absorbed when that frame pops,
  /// so by the time the (empty-stack) root returns, deps is empty and
  /// the result was memoized by visit() itself. A root already memoized
  /// by an earlier partial solve returns from the memo immediately.
  void solve_root(const net::NodeName& node, uint32_t index) {
    (void)visit(node, index, std::nullopt);
  }

 private:
  struct Outcome {
    DispositionSet set;
    /// Node indices whose on-stack presence this result depends on;
    /// empty = context-free (memoizable).
    std::set<uint32_t> deps;
    /// Every node index this subtree traversed. Stored with the memo
    /// entry: the result is reusable only by callers whose path avoids
    /// all of them (node-based loop semantics).
    std::set<uint32_t> footprint;
  };

  static uint64_t state_key(uint32_t node_index, std::optional<uint32_t> label) {
    // label+1 so "no label" (0) never collides with label 0.
    uint64_t label_part = label ? static_cast<uint64_t>(*label) + 1 : 0;
    return (static_cast<uint64_t>(node_index) << 33) | label_part;
  }

  Outcome visit(const net::NodeName& node, uint32_t index,
                std::optional<uint32_t> label) {
    uint64_t key = state_key(index, label);
    // The on-stack check must come BEFORE the memo lookup. A memoized
    // entry for (node, label') is context-free only in contexts where the
    // node is not already on the path: the legacy walker's visited set is
    // node-based, so re-entering an on-stack device under a *different*
    // label state is a loop for this path even though the state's
    // context-free continuation (memoized from some other root, where the
    // node was fresh) says otherwise. Serving the memo here absorbed taint
    // owed to the on-stack node and silently diverged from the serial
    // walker on cycles spanning multiple label states (found by the
    // serial-vs-threaded fuzz oracle; regression in tests/fuzz_corpus/).
    if (node_on_stack_[index] > 0) {
      // Device already on the current path (under any label state): the
      // legacy walker's node-based visited set calls this a loop. The
      // verdict holds only for paths running through that on-stack
      // occurrence, so taint the result with the node — a cycle member
      // reached mid-cycle may still reach exits this truncated branch
      // cannot see, and must not be memoized here.
      Outcome loop;
      loop.set.add(Disposition::kLoop);
      loop.deps.insert(index);
      loop.footprint.insert(index);
      return loop;
    }
    if (auto it = memo_.find(key); it != memo_.end()) {
      // A memo entry is context-free only for callers whose path avoids
      // every node its subtree traverses: loop detection is node-based,
      // so if any footprint node is already on the stack, the legacy
      // walker would cut this continuation short with kLoop at that node
      // instead of running it to the recorded terminals. Re-expand in
      // context — the expansion deterministically reaches the on-stack
      // node, returns tainted, and is not re-memoized (found by the
      // serial-vs-threaded fuzz oracle on label cycles whose broken
      // binding sits on the re-entered node).
      bool reusable = true;
      for (uint32_t traversed : it->second.footprint) {
        if (node_on_stack_[traversed] > 0) {
          reusable = false;
          break;
        }
      }
      if (!reusable) {
        if (reexpansions_ != nullptr)
          reexpansions_->fetch_add(1, std::memory_order_relaxed);
        if (reexpansions_counter_ != nullptr) reexpansions_counter_->add(1);
      }
      if (reusable) {
        Outcome hit;
        hit.set = it->second.set;
        hit.footprint.insert(it->second.footprint.begin(),
                             it->second.footprint.end());
        return hit;
      }
    }

    ++node_on_stack_[index];
    Outcome outcome = expand(node, label);
    --node_on_stack_[index];

    outcome.footprint.insert(index);
    outcome.deps.erase(index);  // this frame satisfies its own-node deps
    if (outcome.deps.empty())
      memo_[key] = {outcome.set, {outcome.footprint.begin(), outcome.footprint.end()}};
    return outcome;
  }

  /// One step of the legacy walker, disposition-only: label forwarding
  /// until pop, then IP forwarding. Mirrors Tracer::walk in trace.cpp.
  Outcome expand(const net::NodeName& node, std::optional<uint32_t> label) {
    Outcome out;
    if (label) {
      const aft::LabelEntry* label_entry = graph_.lookup_label(node, *label);
      if (label_entry == nullptr) return terminal(Disposition::kNoRoute);
      std::vector<aft::NextHop> label_hops = graph_.label_next_hops(node, *label_entry);
      if (label_hops.empty()) return terminal(Disposition::kNoRoute);
      const aft::NextHop& action = label_hops.front();  // LSPs do not ECMP
      if (action.label_op != aft::LabelOp::kPop) {
        // Swap and move downstream.
        if (!action.ip_address) return terminal(Disposition::kNeighborUnreachable);
        auto owner = graph_.address_owner(*action.ip_address);
        if (!owner) return terminal(Disposition::kNeighborUnreachable);
        follow(out, *owner, action.label);
        return out;
      }
      // Pop: resume IP forwarding on this node, same frame (the walker
      // does not re-check its visited set here).
    }

    if (graph_.owns(node, destination_)) return terminal(Disposition::kAccepted);

    const aft::Ipv4Entry* entry = graph_.lookup(node, destination_);
    if (entry == nullptr) return terminal(Disposition::kNoRoute);
    std::vector<aft::NextHop> next_hops = graph_.next_hops(node, *entry);
    if (next_hops.empty()) return terminal(Disposition::kNoRoute);

    for (const aft::NextHop& next_hop : next_hops) {
      if (next_hop.drop) {
        out.set.add(Disposition::kNullRouted);
        continue;
      }
      if (next_hop.interface &&
          !graph_.egress_permits(node, *next_hop.interface, destination_)) {
        out.set.add(Disposition::kDeniedOut);
        continue;
      }
      if (next_hop.ip_address) {
        auto owner = graph_.address_owner(*next_hop.ip_address);
        if (!owner) {
          out.set.add(Disposition::kNeighborUnreachable);
          continue;
        }
        if (!graph_.ingress_permits(*owner, *next_hop.ip_address, destination_)) {
          out.set.add(Disposition::kDeniedIn);
          continue;
        }
        std::optional<uint32_t> pushed;
        if (next_hop.label_op == aft::LabelOp::kPush) pushed = next_hop.label;
        follow(out, *owner, pushed);
        continue;
      }
      // Attached: forwarding onto a connected subnet.
      auto owner = graph_.address_owner(destination_);
      if (owner) {
        if (!graph_.ingress_permits(*owner, destination_, destination_)) {
          out.set.add(Disposition::kDeniedIn);
          continue;
        }
        follow(out, *owner, std::nullopt);
      } else if (graph_.on_connected_subnet(node, destination_)) {
        out.set.add(Disposition::kDeliveredToSubnet);
      } else {
        out.set.add(Disposition::kExitsNetwork);
      }
    }
    return out;
  }

  void follow(Outcome& out, const net::NodeName& node, std::optional<uint32_t> label) {
    auto it = node_index_.find(node);
    if (it == node_index_.end()) {
      // Downstream device absent from the graph (cannot happen for
      // address owners, which are graph nodes by construction).
      out.set.add(Disposition::kNoRoute);
      return;
    }
    Outcome child = visit(node, it->second, label);
    out.set.merge(child.set);
    out.deps.insert(child.deps.begin(), child.deps.end());
    out.footprint.insert(child.footprint.begin(), child.footprint.end());
  }

  static Outcome terminal(Disposition disposition) {
    Outcome out;
    out.set.add(disposition);
    return out;
  }

  const ForwardingGraph& graph_;
  net::Ipv4Address destination_;
  const std::map<net::NodeName, uint32_t>& node_index_;
  std::unordered_map<uint64_t, TraceMemoEntry>& memo_;
  std::atomic<uint64_t>* reexpansions_;
  obs::Counter* reexpansions_counter_;
  std::vector<uint32_t> node_on_stack_;  // per-node on-chain counts
};

}  // namespace

TraceCache::TraceCache(const ForwardingGraph& graph,
                       obs::MetricsRegistry* metrics)
    : graph_(graph) {
  uint32_t index = 0;
  for (const net::NodeName& node : graph.nodes()) {
    node_index_.emplace(node, index++);
    node_names_.push_back(node);
  }
  if (metrics != nullptr) {
    hits_counter_ = &metrics->counter("trace_cache_hits");
    misses_counter_ = &metrics->counter("trace_cache_misses");
    reexpansions_counter_ = &metrics->counter("trace_cache_reexpansions");
  }
}

TraceCache::ClassTable& TraceCache::slot_for(net::Ipv4Address destination) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<ClassTable>& slot = tables_[destination.bits()];
  if (!slot) slot = std::make_unique<ClassTable>();
  return *slot;
}

TraceCache::ClassTable& TraceCache::table_for(net::Ipv4Address destination) {
  ClassTable& table = slot_for(destination);
  bool solved_here = false;
  {
    std::lock_guard<std::mutex> lock(table.mutex);
    if (!table.fully_solved) {
      // Roots memoized by earlier partial solves (dispositions_for) are
      // served from the memo; only the remainder runs.
      ClassSolver solver(graph_, destination, node_index_, table.memo,
                         &reexpansions_, reexpansions_counter_);
      solver.solve_all();
      table.fully_solved = true;
      solved_here = true;
    }
  }
  if (solved_here) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (misses_counter_ != nullptr) misses_counter_->add(1);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hits_counter_ != nullptr) hits_counter_->add(1);
  }
  return table;
}

void TraceCache::warm(net::Ipv4Address destination) { table_for(destination); }

std::vector<DispositionSet> TraceCache::dispositions_for(
    const std::vector<net::NodeName>& sources, net::Ipv4Address destination) {
  ClassTable& table = slot_for(destination);
  std::vector<DispositionSet> out;
  out.reserve(sources.size());
  std::lock_guard<std::mutex> lock(table.mutex);
  if (!table.fully_solved) {
    ClassSolver solver(graph_, destination, node_index_, table.memo,
                       &reexpansions_, reexpansions_counter_);
    for (const net::NodeName& source : sources) {
      auto it = node_index_.find(source);
      if (it != node_index_.end()) solver.solve_root(source, it->second);
    }
    // Deliberately not fully_solved: only the requested roots (and their
    // downstream continuations) are in the memo. A partial solve counts
    // as a miss — it ran the solver — even though warm() may run it
    // again later to finish the table.
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (misses_counter_ != nullptr) misses_counter_->add(1);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hits_counter_ != nullptr) hits_counter_->add(1);
  }
  for (const net::NodeName& source : sources) {
    auto it = node_index_.find(source);
    if (it == node_index_.end()) {
      DispositionSet no_route;
      no_route.add(Disposition::kNoRoute);
      out.push_back(no_route);
      continue;
    }
    uint64_t key = static_cast<uint64_t>(it->second) << 33;
    auto memo_it = table.memo.find(key);
    out.push_back(memo_it != table.memo.end() ? memo_it->second.set : DispositionSet());
  }
  return out;
}

DispositionSet TraceCache::dispositions(const net::NodeName& source,
                                        net::Ipv4Address destination) {
  auto index_it = node_index_.find(source);
  if (index_it == node_index_.end()) {
    DispositionSet no_route;
    no_route.add(Disposition::kNoRoute);
    return no_route;
  }
  ClassTable& table = table_for(destination);
  uint64_t key = static_cast<uint64_t>(index_it->second) << 33;
  auto it = table.memo.find(key);
  if (it != table.memo.end()) return it->second.set;
  // Unreachable: solve_all memoizes every root (see ClassSolver).
  return {};
}

size_t TraceCache::classes_cached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tables_.size();
}

}  // namespace mfv::verify
