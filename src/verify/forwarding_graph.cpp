#include "verify/forwarding_graph.hpp"

#include <set>

namespace mfv::verify {

ForwardingGraph::ForwardingGraph(const gnmi::Snapshot& snapshot) : snapshot_(snapshot) {
  for (const auto& [node, device] : snapshot_.devices) {
    net::PrefixTrie<const aft::Ipv4Entry*>& trie = tries_[node];
    for (const auto& [prefix, entry] : device.aft.ipv4_entries())
      trie.insert(prefix, &entry);
    for (const auto& [name, interface] : device.interfaces) {
      // Non-default-instance (VRF) interfaces are invisible to the default
      // forwarding graph: their addresses are not reachable through it.
      if (!interface.oper_up || !interface.address || !interface.vrf.empty()) continue;
      owners_[interface.address->address.bits()] = node;
      connected_[node].push_back(interface.address->subnet);
    }
  }
}

std::vector<net::NodeName> ForwardingGraph::nodes() const {
  std::vector<net::NodeName> names;
  names.reserve(snapshot_.devices.size());
  for (const auto& [node, device] : snapshot_.devices) names.push_back(node);
  return names;
}

const aft::Ipv4Entry* ForwardingGraph::lookup(const net::NodeName& node,
                                              net::Ipv4Address destination) const {
  if (!lpm_index_.empty()) {
    auto node_it = lpm_index_.find(node);
    if (node_it != lpm_index_.end()) {
      auto hit = node_it->second.find(destination.bits());
      if (hit != node_it->second.end()) return hit->second;
    }
  }
  auto it = tries_.find(node);
  if (it == tries_.end()) return nullptr;
  auto match = it->second.longest_match(destination);
  return match ? *match->second : nullptr;
}

void ForwardingGraph::prime_class_lpm(const std::vector<PacketClass>& classes) const {
  for (const auto& [node, trie] : tries_) {
    auto& index = lpm_index_[node];
    index.reserve(index.size() + classes.size());
    for (const PacketClass& cls : classes) {
      net::Ipv4Address representative = cls.representative();
      auto [it, fresh] = index.try_emplace(representative.bits(), nullptr);
      if (!fresh) continue;  // already primed by an earlier partition
      auto match = trie.longest_match(representative);
      it->second = match ? *match->second : nullptr;
    }
  }
}

namespace {
std::vector<aft::NextHop> group_hops(const aft::Aft& aft, uint64_t group_id) {
  const aft::NextHopGroup* group = aft.group(group_id);
  if (group == nullptr) return {};
  std::vector<aft::NextHop> hops;
  for (const auto& [index, weight] : group->next_hops) {
    const aft::NextHop* hop = aft.next_hop(index);
    if (hop != nullptr) hops.push_back(*hop);
  }
  return hops;
}
}  // namespace

std::vector<aft::NextHop> ForwardingGraph::next_hops(const net::NodeName& node,
                                                     const aft::Ipv4Entry& entry) const {
  auto it = snapshot_.devices.find(node);
  if (it == snapshot_.devices.end()) return {};
  return group_hops(it->second.aft, entry.next_hop_group);
}

const aft::LabelEntry* ForwardingGraph::lookup_label(const net::NodeName& node,
                                                     uint32_t label) const {
  auto it = snapshot_.devices.find(node);
  if (it == snapshot_.devices.end()) return nullptr;
  const auto& entries = it->second.aft.label_entries();
  auto entry_it = entries.find(label);
  return entry_it == entries.end() ? nullptr : &entry_it->second;
}

std::vector<aft::NextHop> ForwardingGraph::label_next_hops(
    const net::NodeName& node, const aft::LabelEntry& entry) const {
  auto it = snapshot_.devices.find(node);
  if (it == snapshot_.devices.end()) return {};
  return group_hops(it->second.aft, entry.next_hop_group);
}

std::optional<net::NodeName> ForwardingGraph::address_owner(
    net::Ipv4Address address) const {
  auto it = owners_.find(address.bits());
  if (it == owners_.end()) return std::nullopt;
  return it->second;
}

bool ForwardingGraph::owns(const net::NodeName& node, net::Ipv4Address address) const {
  auto it = owners_.find(address.bits());
  return it != owners_.end() && it->second == node;
}

bool ForwardingGraph::on_connected_subnet(const net::NodeName& node,
                                          net::Ipv4Address address) const {
  auto it = connected_.find(node);
  if (it == connected_.end()) return false;
  for (const net::Ipv4Prefix& subnet : it->second)
    if (subnet.contains(address)) return true;
  return false;
}

const aft::InterfaceState* ForwardingGraph::interface_state(
    const net::NodeName& node, const net::InterfaceName& interface) const {
  auto it = snapshot_.devices.find(node);
  if (it == snapshot_.devices.end()) return nullptr;
  auto iface_it = it->second.interfaces.find(interface);
  return iface_it == it->second.interfaces.end() ? nullptr : &iface_it->second;
}

const aft::InterfaceState* ForwardingGraph::interface_owning(
    const net::NodeName& node, net::Ipv4Address address) const {
  auto it = snapshot_.devices.find(node);
  if (it == snapshot_.devices.end()) return nullptr;
  for (const auto& [name, interface] : it->second.interfaces)
    if (interface.oper_up && interface.address &&
        interface.address->address == address)
      return &interface;
  return nullptr;
}

bool ForwardingGraph::egress_permits(const net::NodeName& node,
                                     const net::InterfaceName& interface,
                                     net::Ipv4Address destination) const {
  const aft::InterfaceState* state = interface_state(node, interface);
  if (state == nullptr || !state->acl_out) return true;
  return aft::acl_permits(*state->acl_out, destination);
}

bool ForwardingGraph::ingress_permits(const net::NodeName& node, net::Ipv4Address via,
                                      net::Ipv4Address destination) const {
  const aft::InterfaceState* state = interface_owning(node, via);
  if (state == nullptr || !state->acl_in) return true;
  return aft::acl_permits(*state->acl_in, destination);
}

std::vector<net::Ipv4Prefix> ForwardingGraph::relevant_prefixes() const {
  std::set<net::Ipv4Prefix> prefixes;
  for (const auto& [node, device] : snapshot_.devices) {
    for (const auto& [prefix, entry] : device.aft.ipv4_entries()) prefixes.insert(prefix);
    for (const auto& [name, interface] : device.interfaces) {
      if (interface.address && interface.vrf.empty()) {
        prefixes.insert(interface.address->subnet);
        prefixes.insert(net::Ipv4Prefix::host(interface.address->address));
      }
      // Packet-filter match boundaries shape forwarding too: without them
      // a class could straddle a permit/deny edge.
      if (interface.acl_in)
        for (const aft::AclRule& rule : *interface.acl_in)
          prefixes.insert(rule.destination);
      if (interface.acl_out)
        for (const aft::AclRule& rule : *interface.acl_out)
          prefixes.insert(rule.destination);
    }
  }
  return {prefixes.begin(), prefixes.end()};
}

}  // namespace mfv::verify
