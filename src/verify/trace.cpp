#include "verify/trace.hpp"

#include <set>

namespace mfv::verify {

std::string TracePath::to_string() const {
  std::string out;
  for (size_t i = 0; i < hops.size(); ++i) {
    if (i != 0) {
      // Mark label-switched segments: R1 =(100001)=> R2.
      const auto& previous = hops[i - 1];
      out += previous.out_label
                 ? " =(" + std::to_string(*previous.out_label) + ")=> "
                 : " -> ";
    }
    out += hops[i].node;
  }
  out += " [" + disposition_name(disposition) + "]";
  return out;
}

namespace {

class Tracer {
 public:
  Tracer(const ForwardingGraph& graph, net::Ipv4Address destination,
         const TraceOptions& options)
      : graph_(graph), destination_(destination), options_(options) {}

  TraceResult run(const net::NodeName& source) {
    std::vector<TraceHopDetail> path;
    std::set<net::NodeName> visited;
    walk(source, std::nullopt, path, visited);
    return std::move(result_);
  }

 private:
  void finish(std::vector<TraceHopDetail> path, Disposition disposition) {
    result_.dispositions.add(disposition);
    if (result_.paths.size() >= options_.max_paths) {
      result_.truncated = true;
      return;
    }
    TracePath trace_path;
    trace_path.hops = std::move(path);
    trace_path.disposition = disposition;
    result_.paths.push_back(std::move(trace_path));
  }

  void walk(const net::NodeName& node, std::optional<uint32_t> carried_label,
            std::vector<TraceHopDetail> path, std::set<net::NodeName> visited) {
    if (result_.paths.size() >= options_.max_paths) {
      result_.truncated = true;
      return;
    }
    TraceHopDetail hop;
    hop.node = node;

    if (visited.count(node) || static_cast<int>(path.size()) >= options_.max_hops) {
      path.push_back(hop);
      finish(std::move(path), Disposition::kLoop);
      return;
    }
    visited.insert(node);

    // Labeled packet: forward by the MPLS table until a pop returns it to
    // IP forwarding.
    while (carried_label) {
      const aft::LabelEntry* label_entry = graph_.lookup_label(node, *carried_label);
      if (label_entry == nullptr) {
        // Broken LSP: the device has no binding for the incoming label.
        path.push_back(hop);
        finish(std::move(path), Disposition::kNoRoute);
        return;
      }
      std::vector<aft::NextHop> label_hops = graph_.label_next_hops(node, *label_entry);
      if (label_hops.empty()) {
        path.push_back(hop);
        finish(std::move(path), Disposition::kNoRoute);
        return;
      }
      const aft::NextHop& action = label_hops.front();  // LSPs do not ECMP here
      if (action.label_op == aft::LabelOp::kPop) {
        carried_label.reset();  // tail: resume IP forwarding on this node
        break;
      }
      // Swap and move downstream.
      hop.out_label = action.label;
      hop.next_hop = action.ip_address;
      hop.out_interface = action.interface;
      hop.origin_protocol = "MPLS";
      if (!action.ip_address) {
        path.push_back(hop);
        finish(std::move(path), Disposition::kNeighborUnreachable);
        return;
      }
      auto owner = graph_.address_owner(*action.ip_address);
      if (!owner) {
        path.push_back(hop);
        finish(std::move(path), Disposition::kNeighborUnreachable);
        return;
      }
      path.push_back(hop);
      walk(*owner, action.label, std::move(path), std::move(visited));
      return;
    }

    // Delivered: this device owns the destination address.
    if (graph_.owns(node, destination_)) {
      path.push_back(hop);
      finish(std::move(path), Disposition::kAccepted);
      return;
    }

    const aft::Ipv4Entry* entry = graph_.lookup(node, destination_);
    if (entry == nullptr) {
      path.push_back(hop);
      finish(std::move(path), Disposition::kNoRoute);
      return;
    }
    hop.matched_prefix = entry->prefix;
    hop.origin_protocol = entry->origin_protocol;

    std::vector<aft::NextHop> next_hops = graph_.next_hops(node, *entry);
    if (next_hops.empty()) {
      path.push_back(hop);
      finish(std::move(path), Disposition::kNoRoute);
      return;
    }

    for (const aft::NextHop& next_hop : next_hops) {
      TraceHopDetail branch_hop = hop;
      branch_hop.next_hop = next_hop.ip_address;
      branch_hop.out_interface = next_hop.interface;
      if (next_hop.label_op == aft::LabelOp::kPush) branch_hop.out_label = next_hop.label;
      std::vector<TraceHopDetail> branch_path = path;
      branch_path.push_back(branch_hop);

      if (next_hop.drop) {
        finish(std::move(branch_path), Disposition::kNullRouted);
        continue;
      }
      // Egress packet filter on the outgoing interface.
      if (next_hop.interface &&
          !graph_.egress_permits(node, *next_hop.interface, destination_)) {
        finish(std::move(branch_path), Disposition::kDeniedOut);
        continue;
      }
      if (next_hop.ip_address) {
        auto owner = graph_.address_owner(*next_hop.ip_address);
        if (!owner) {
          finish(std::move(branch_path), Disposition::kNeighborUnreachable);
          continue;
        }
        // Ingress filter on the receiving interface.
        if (!graph_.ingress_permits(*owner, *next_hop.ip_address, destination_)) {
          TraceHopDetail denied;
          denied.node = *owner;
          branch_path.push_back(denied);
          finish(std::move(branch_path), Disposition::kDeniedIn);
          continue;
        }
        std::optional<uint32_t> pushed;
        if (next_hop.label_op == aft::LabelOp::kPush) pushed = next_hop.label;
        walk(*owner, pushed, std::move(branch_path), visited);
        continue;
      }
      // Attached: forwarding onto a connected subnet.
      auto owner = graph_.address_owner(destination_);
      if (owner) {
        if (!graph_.ingress_permits(*owner, destination_, destination_)) {
          TraceHopDetail denied;
          denied.node = *owner;
          branch_path.push_back(denied);
          finish(std::move(branch_path), Disposition::kDeniedIn);
          continue;
        }
        walk(*owner, std::nullopt, std::move(branch_path), visited);
      } else if (graph_.on_connected_subnet(node, destination_)) {
        finish(std::move(branch_path), Disposition::kDeliveredToSubnet);
      } else {
        finish(std::move(branch_path), Disposition::kExitsNetwork);
      }
    }
  }

  const ForwardingGraph& graph_;
  net::Ipv4Address destination_;
  TraceOptions options_;
  TraceResult result_;
};

}  // namespace

TraceResult trace_flow(const ForwardingGraph& graph, const net::NodeName& source,
                       net::Ipv4Address destination, const TraceOptions& options) {
  if (!graph.has_node(source)) {
    TraceResult result;
    result.dispositions.add(Disposition::kNoRoute);
    return result;
  }
  return Tracer(graph, destination, options).run(source);
}

}  // namespace mfv::verify
