#include "verify/utilization.hpp"

#include <set>

#include "verify/queries.hpp"

namespace mfv::verify {

namespace {

class FlowRouter {
 public:
  FlowRouter(const ForwardingGraph& graph, UtilizationResult& result)
      : graph_(graph), result_(result) {}

  void route(const net::NodeName& node, net::Ipv4Address destination, double bps,
             std::set<net::NodeName> visited) {
    if (bps <= 0) return;
    if (visited.count(node)) {
      result_.unrouted_bps += bps;  // loop: traffic circulates, count as lost
      return;
    }
    visited.insert(node);

    if (graph_.owns(node, destination)) {
      result_.delivered_bps += bps;
      return;
    }
    const aft::Ipv4Entry* entry = graph_.lookup(node, destination);
    if (entry == nullptr) {
      result_.unrouted_bps += bps;
      return;
    }
    std::vector<aft::NextHop> hops = graph_.next_hops(node, *entry);
    if (hops.empty()) {
      result_.unrouted_bps += bps;
      return;
    }
    double share = bps / static_cast<double>(hops.size());  // equal ECMP split
    for (const aft::NextHop& hop : hops) {
      if (hop.drop) {
        result_.unrouted_bps += share;
        continue;
      }
      if (hop.interface) {
        if (!graph_.egress_permits(node, *hop.interface, destination)) {
          result_.unrouted_bps += share;
          continue;
        }
        result_.load_bps[{node, *hop.interface}] += share;
      }
      if (hop.ip_address) {
        auto owner = graph_.address_owner(*hop.ip_address);
        if (!owner) {
          result_.unrouted_bps += share;
          continue;
        }
        if (!graph_.ingress_permits(*owner, *hop.ip_address, destination)) {
          result_.unrouted_bps += share;
          continue;
        }
        route(*owner, destination, share, visited);
      } else {
        // Attached delivery.
        auto owner = graph_.address_owner(destination);
        if (owner) route(*owner, destination, share, visited);
        else result_.delivered_bps += share;  // leaves the modeled network
      }
    }
  }

 private:
  const ForwardingGraph& graph_;
  UtilizationResult& result_;
};

}  // namespace

UtilizationResult link_utilization(const ForwardingGraph& graph,
                                   const std::vector<Demand>& demands) {
  UtilizationResult result;
  FlowRouter router(graph, result);
  for (const Demand& demand : demands)
    router.route(demand.source, demand.destination, demand.bps, {});
  return result;
}

std::vector<Demand> uniform_mesh_demand(const gnmi::Snapshot& snapshot,
                                        double bps_per_pair) {
  std::vector<Demand> demands;
  for (const auto& [source, source_device] : snapshot.devices) {
    for (const auto& [target, target_device] : snapshot.devices) {
      if (source == target) continue;
      auto loopback = device_loopback(snapshot, target);
      if (!loopback) continue;
      demands.push_back({source, *loopback, bps_per_pair});
    }
  }
  return demands;
}

}  // namespace mfv::verify
