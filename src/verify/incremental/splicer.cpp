// DispositionSplicer: capture the base verify result, then answer
// candidate queries by re-tracing only what the delta can actually touch
// and splicing everything else from the captured matrix.
//
// Granularity is per cell, not per column. A column (packet class, or
// pairwise destination) whose address range misses every dirty range is
// spliced whole, by the containment lemma (a clean candidate class lies
// inside exactly one base class — DESIGN.md §11). Inside a dirty column,
// a cell (source, column) still splices unless the source can meet a node
// that is dirty *for that column's representative address* along class
// forwarding on either snapshot: the backward closure of the per-column
// dirty node set over base ∪ candidate forwarding edges (plus all label
// edges; label deltas are inexpressible, so the tables are identical).
// A node outside the closure provably forwards the representative
// identically on both snapshots, hop by hop, so its disposition set is
// unchanged. Only closure sources re-trace, via TraceCache's partial
// solve — warming the full per-class table would cost O(nodes) per dirty
// column and erase the win. Every precondition failure routes to the
// cold path with a named reason, and the result is byte-identical to
// cold re-verification either way (enforced by tests and the incremental
// fuzz oracle).
#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"
#include "verify/incremental/incremental.hpp"
#include "verify/trace_cache.hpp"

namespace mfv::verify {

/// Reverse-edge memo shared by every incremental query forking from one
/// IncrementalBase (declared in incremental.hpp). Base forwarding at a
/// class representative is uniform over the containing base class —
/// every FIB prefix and interface subnet/host range is a partition
/// boundary, and an owned address forms its own [a, a] singleton class —
/// so one reverse adjacency per base class, built at that class's own
/// representative, answers every candidate class it contains. Columns
/// fill lazily under per-class once_flags: a scenario sweep touches each
/// dirty class once and every later scenario reuses the edges.
struct SpliceAdjacency {
  explicit SpliceAdjacency(size_t class_count)
      : built(class_count), columns(class_count) {}

  std::vector<std::once_flag> built;
  /// columns[base_class][node] -> upstream node indices (base graph).
  std::vector<std::vector<std::vector<uint32_t>>> columns;
  std::once_flag label_built;
  /// Label-forwarding reverse edges (identical on both snapshots — a
  /// label delta is inexpressible), address-independent, built once.
  std::vector<std::vector<uint32_t>> label_reverse;
};

IncrementalBase::IncrementalBase() = default;
IncrementalBase::~IncrementalBase() = default;

namespace {

// Mirrors of the cold sweep's resolution helpers (queries.cpp keeps its
// own in an anonymous namespace); any drift here breaks byte-identity and
// is caught by the incremental fuzz oracle.
std::vector<net::NodeName> resolve_sources(const ForwardingGraph& graph,
                                           const QueryOptions& options) {
  if (!options.sources.empty()) return options.sources;
  return graph.nodes();
}

std::vector<PacketClass> classes_for(const std::vector<net::Ipv4Prefix>& prefixes,
                                     const QueryOptions& options) {
  if (options.scope) return compute_packet_classes(prefixes, *options.scope);
  return compute_packet_classes(prefixes);
}

unsigned resolve_threads(const QueryOptions& options) {
  if (options.threads != 0) return options.threads;
  return util::ThreadPool::default_threads();
}

bool row_passes(const QueryOptions& options, const DispositionSet& dispositions) {
  return options.row_filter.empty() || dispositions.intersects(options.row_filter);
}

/// The caller's long-lived cache when provided, else a query-local one.
class CacheRef {
 public:
  CacheRef(TraceCache* shared, const ForwardingGraph& graph,
           obs::MetricsRegistry* metrics) {
    if (shared == nullptr) local_ = std::make_unique<TraceCache>(graph, metrics);
    cache_ = shared != nullptr ? shared : local_.get();
  }
  TraceCache& operator*() { return *cache_; }

 private:
  std::unique_ptr<TraceCache> local_;
  TraceCache* cache_ = nullptr;
};

QueryOptions cold_options(const QueryOptions& options) {
  QueryOptions cold = options;
  cold.incremental = nullptr;
  cold.incremental_stats = nullptr;
  return cold;
}

void record(const QueryOptions& options, const IncrementalStats& stats) {
  if (options.incremental_stats != nullptr) *options.incremental_stats = stats;
  obs::MetricsRegistry* metrics = options.metrics;
  if (metrics == nullptr) return;
  metrics->counter("verify_incremental_runs").add(1);
  metrics->counter("verify_incremental_dirty_classes").add(stats.dirty_classes);
  metrics->counter("verify_incremental_splice_hits").add(stats.spliced);
  metrics->counter("verify_incremental_retraced_classes").add(stats.retraced);
  if (stats.fell_back) {
    metrics->counter("verify_incremental_fallbacks").add(1);
    metrics->counter("verify_incremental_fallback_" + stats.fallback_reason).add(1);
  }
}

/// Shared splice preconditions: a usable base, matching query options,
/// and an expressible delta.
struct Preflight {
  const IncrementalBase* base = nullptr;
  FibDelta delta;
  std::string fallback;  // empty = splice may proceed
};

Preflight preflight(const ForwardingGraph& graph, const QueryOptions& options) {
  Preflight p;
  p.base = options.incremental;
  if (p.base == nullptr || p.base->graph == nullptr) {
    p.fallback = "no-base";
    return p;
  }
  if (p.base->trace.max_hops != options.trace.max_hops ||
      p.base->trace.max_paths != options.trace.max_paths) {
    p.fallback = "options-mismatch";
    return p;
  }
  if (p.base->scope != options.scope) {
    p.fallback = "scope-mismatch";
    return p;
  }
  p.delta = diff_fibs(p.base->graph->snapshot(), graph.snapshot());
  if (!p.delta.expressible) p.fallback = p.delta.fallback_reason;
  return p;
}

/// Index of the base class containing [first, last] entirely, or nullopt.
std::optional<size_t> containing_base_class(const IncrementalBase& base,
                                            net::Ipv4Address first,
                                            net::Ipv4Address last) {
  auto it = std::partition_point(
      base.classes.begin(), base.classes.end(),
      [&](const PacketClass& cls) { return cls.last < first; });
  if (it == base.classes.end() || !(it->first <= first && last <= it->last))
    return std::nullopt;
  return static_cast<size_t>(it - base.classes.begin());
}

/// How one column of the sweep is answered.
enum class ColumnMode : uint8_t {
  kSplice,   // clean: every cell from the base matrix
  kCell,     // dirty: closure cells re-trace, the rest splice
  kRetrace,  // dirty with no usable base column: re-trace every cell
};

/// Per-query context for the per-cell closure: a dense node index (the
/// node sets are identical — a node-set delta is inexpressible) over the
/// base's SpliceAdjacency memo. closure() fills the memo lazily under its
/// once_flags and otherwise allocates locally, so dirty columns can run
/// it in parallel and concurrent queries can share one base.
class SpliceCloser {
 public:
  SpliceCloser(const IncrementalBase& base, const ForwardingGraph& candidate)
      : base_(base),
        base_graph_(*base.graph),
        candidate_(candidate),
        nodes_(candidate.nodes()) {
    for (size_t i = 0; i < nodes_.size(); ++i) index_.emplace(nodes_[i], i);
    // Without a memo (defensively: capture always allocates one) the
    // label edges are rebuilt per query, as the pre-memo code did.
    if (base_.adjacency == nullptr) local_label_ = label_edges();
  }

  const std::vector<net::NodeName>& nodes() const { return nodes_; }

  std::optional<size_t> index_of(const net::NodeName& node) const {
    auto it = index_.find(node);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  /// Nodes whose class-`representative` flows can meet a node of `seeds`
  /// on either snapshot: reverse reachability of the seed set over the
  /// base and candidate forwarding edges at the representative, plus the
  /// label edges. A source outside the set traces the representative
  /// identically on both snapshots (DESIGN.md §11).
  ///
  /// The base side comes from the per-base-class memo (`base_class` is
  /// the class containing `representative` — uniformity makes the cached
  /// edges exact for it). The candidate side only walks the seed nodes:
  /// a node outside the seed set forwards the representative identically
  /// on both snapshots (that is what its absence from node_dirty_ranges
  /// certifies), so its candidate edges are already in the base edge
  /// set — except when the representative's *ownership* moved, which
  /// rewrites attached-hop edges of clean nodes too; then the closure
  /// walks every candidate node for this column (rare: ownership moves
  /// only on interface re-addressing).
  std::vector<uint8_t> closure(net::Ipv4Address representative, size_t base_class,
                               const std::vector<size_t>& seeds) const {
    SpliceAdjacency* memo = base_.adjacency.get();
    std::vector<std::vector<uint32_t>> local_base;
    const std::vector<std::vector<uint32_t>>* base_reverse;
    if (memo != nullptr) {
      std::call_once(memo->built[base_class], [&] {
        memo->columns[base_class] = forwarding_edges(
            base_graph_, base_.classes[base_class].representative());
      });
      base_reverse = &memo->columns[base_class];
    } else {
      local_base = forwarding_edges(base_graph_, representative);
      base_reverse = &local_base;
    }
    const std::vector<std::vector<uint32_t>>* label_reverse;
    if (memo != nullptr) {
      std::call_once(memo->label_built, [&] { memo->label_reverse = label_edges(); });
      label_reverse = &memo->label_reverse;
    } else {
      label_reverse = &local_label_;
    }

    std::vector<std::vector<uint32_t>> overlay(nodes_.size());
    if (base_graph_.address_owner(representative) ==
        candidate_.address_owner(representative)) {
      for (size_t seed : seeds) candidate_edges_from(seed, representative, overlay);
    } else {
      for (size_t i = 0; i < nodes_.size(); ++i)
        candidate_edges_from(i, representative, overlay);
    }

    std::vector<uint8_t> in_closure(nodes_.size(), 0);
    std::vector<size_t> frontier;
    for (size_t seed : seeds) {
      if (in_closure[seed]) continue;
      in_closure[seed] = 1;
      frontier.push_back(seed);
    }
    while (!frontier.empty()) {
      size_t node = frontier.back();
      frontier.pop_back();
      const std::vector<uint32_t>* edge_lists[] = {
          &(*base_reverse)[node], &(*label_reverse)[node], &overlay[node]};
      for (const std::vector<uint32_t>* edges : edge_lists) {
        for (uint32_t upstream : *edges) {
          if (in_closure[upstream]) continue;
          in_closure[upstream] = 1;
          frontier.push_back(upstream);
        }
      }
    }
    return in_closure;
  }

 private:
  void add_reverse_edge(const ForwardingGraph& graph,
                        std::vector<std::vector<uint32_t>>& reverse,
                        net::Ipv4Address via, size_t from) const {
    std::optional<net::NodeName> owner = graph.address_owner(via);
    if (!owner) return;
    auto it = index_.find(*owner);
    if (it != index_.end()) reverse[it->second].push_back(static_cast<uint32_t>(from));
  }

  /// Reverse forwarding edges of `graph` at `representative`, all nodes.
  std::vector<std::vector<uint32_t>> forwarding_edges(
      const ForwardingGraph& graph, net::Ipv4Address representative) const {
    std::vector<std::vector<uint32_t>> reverse(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const aft::Ipv4Entry* entry = graph.lookup(nodes_[i], representative);
      if (entry == nullptr) continue;
      for (const aft::NextHop& hop : graph.next_hops(nodes_[i], *entry)) {
        if (hop.drop) continue;
        // Addressed hops move to the hop owner, attached hops to the
        // destination owner — mirror of Tracer::walk / ClassSolver.
        add_reverse_edge(graph, reverse,
                         hop.ip_address ? *hop.ip_address : representative, i);
      }
    }
    return reverse;
  }

  /// Candidate-graph reverse edges out of one node, appended to `overlay`.
  void candidate_edges_from(size_t i, net::Ipv4Address representative,
                            std::vector<std::vector<uint32_t>>& overlay) const {
    const aft::Ipv4Entry* entry = candidate_.lookup(nodes_[i], representative);
    if (entry == nullptr) return;
    for (const aft::NextHop& hop : candidate_.next_hops(nodes_[i], *entry)) {
      if (hop.drop) continue;
      add_reverse_edge(candidate_, overlay,
                       hop.ip_address ? *hop.ip_address : representative, i);
    }
  }

  /// Label-forwarding reverse edges (identical on both snapshots; built
  /// from the base graph).
  std::vector<std::vector<uint32_t>> label_edges() const {
    std::vector<std::vector<uint32_t>> reverse(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      auto device = base_graph_.snapshot().devices.find(nodes_[i]);
      if (device == base_graph_.snapshot().devices.end()) continue;
      for (const auto& [label, entry] : device->second.aft.label_entries()) {
        // The tracer only follows the first resolved hop; taking them all
        // keeps the edge set a sound over-approximation.
        for (const aft::NextHop& hop : base_graph_.label_next_hops(nodes_[i], entry)) {
          if (hop.drop || !hop.ip_address) continue;
          add_reverse_edge(base_graph_, reverse, *hop.ip_address, i);
        }
      }
    }
    return reverse;
  }

  const IncrementalBase& base_;
  const ForwardingGraph& base_graph_;
  const ForwardingGraph& candidate_;
  std::vector<net::NodeName> nodes_;
  std::map<net::NodeName, size_t> index_;
  std::vector<std::vector<uint32_t>> local_label_;
};

/// Seed set for one column: nodes whose own deltas touch `representative`.
std::vector<size_t> dirty_seeds(const FibDelta& delta, const SpliceCloser& closer,
                                net::Ipv4Address representative) {
  std::vector<size_t> seeds;
  for (const auto& [node, ranges] : delta.node_dirty_ranges) {
    if (!delta.node_dirty(node, representative, representative)) continue;
    if (std::optional<size_t> index = closer.index_of(node)) seeds.push_back(*index);
  }
  return seeds;
}

}  // namespace

std::unique_ptr<IncrementalBase> capture_incremental_base(const ForwardingGraph& graph,
                                                          const QueryOptions& options) {
  auto base = std::make_unique<IncrementalBase>();
  base->graph = &graph;
  base->sources = resolve_sources(graph, options);
  base->scope = options.scope;
  base->trace = options.trace;
  base->classes = classes_for(graph.relevant_prefixes(), options);
  for (size_t s = 0; s < base->sources.size(); ++s)
    base->source_index.emplace(base->sources[s], s);

  const size_t class_count = base->classes.size();
  base->matrix.assign(base->sources.size() * class_count, DispositionSet());
  unsigned threads = resolve_threads(options);
  if (options.prime_lpm) graph.prime_class_lpm(base->classes);
  CacheRef cache(options.cache, graph, options.metrics);
  util::parallel_for_shards(threads, class_count, [&](size_t c) {
    net::Ipv4Address representative = base->classes[c].representative();
    (*cache).warm(representative);
    for (size_t s = 0; s < base->sources.size(); ++s)
      base->matrix[s * class_count + c] =
          (*cache).dispositions(base->sources[s], representative);
  });
  base->adjacency = std::make_unique<SpliceAdjacency>(class_count);
  return base;
}

ReachabilityResult incremental_reachability(const ForwardingGraph& graph,
                                            const QueryOptions& options) {
  IncrementalStats stats;
  auto fall_back = [&](std::string reason) {
    stats.fell_back = true;
    stats.fallback_reason = std::move(reason);
    record(options, stats);
    return reachability(graph, cold_options(options));
  };

  Preflight p = preflight(graph, options);
  if (!p.fallback.empty()) return fall_back(p.fallback);
  const IncrementalBase& base = *p.base;

  std::vector<PacketClass> classes = classes_for(graph.relevant_prefixes(), options);
  std::vector<net::NodeName> sources = resolve_sources(graph, options);
  const size_t class_count = classes.size();
  const size_t source_count = sources.size();
  stats.classes = class_count;

  std::vector<size_t> base_row(source_count);
  for (size_t s = 0; s < source_count; ++s) {
    auto it = base.source_index.find(sources[s]);
    if (it == base.source_index.end()) return fall_back("source-set-delta");
    base_row[s] = it->second;
  }

  std::vector<ColumnMode> mode(class_count, ColumnMode::kSplice);
  std::vector<size_t> base_column(class_count, 0);
  std::vector<size_t> dirty_index;
  std::vector<PacketClass> dirty_classes;
  for (size_t c = 0; c < class_count; ++c) {
    std::optional<size_t> column =
        containing_base_class(base, classes[c].first, classes[c].last);
    if (p.delta.dirty(classes[c].first, classes[c].last)) {
      // A dirty class straddling a base-class boundary (a removed
      // prefix's edge inside it) has no base column to splice cells from.
      mode[c] = column ? ColumnMode::kCell : ColumnMode::kRetrace;
      if (column) base_column[c] = *column;
      dirty_index.push_back(c);
      dirty_classes.push_back(classes[c]);
      continue;
    }
    // The containment lemma says a clean candidate class lies inside one
    // base class; a miss means the preconditions were violated.
    if (!column) return fall_back("partition-mismatch");
    base_column[c] = *column;
  }
  stats.dirty_classes = dirty_index.size();

  // Per dirty cell column: the closure sources whose cells must re-trace.
  SpliceCloser closer(base, graph);
  const size_t node_count = closer.nodes().size();
  std::vector<size_t> source_node(source_count, SIZE_MAX);
  for (size_t s = 0; s < source_count; ++s)
    if (std::optional<size_t> index = closer.index_of(sources[s]))
      source_node[s] = *index;

  unsigned threads = resolve_threads(options);
  std::vector<std::vector<uint8_t>> retrace(dirty_index.size());
  std::vector<std::vector<uint8_t>> closures(dirty_index.size());
  util::parallel_for_shards(threads, dirty_index.size(), [&](size_t i) {
    size_t c = dirty_index[i];
    if (mode[c] != ColumnMode::kCell) return;
    net::Ipv4Address representative = classes[c].representative();
    std::vector<uint8_t> in_closure = closer.closure(
        representative, base_column[c], dirty_seeds(p.delta, closer, representative));
    retrace[i].assign(source_count, 0);
    for (size_t s = 0; s < source_count; ++s)
      if (source_node[s] != SIZE_MAX && in_closure[source_node[s]])
        retrace[i][s] = 1;
    closures[i] = std::move(in_closure);
  });

  // The fallback guard weighs re-traced cells, not dirty columns: with
  // per-cell splicing a mostly-dirty partition can still be mostly
  // spliced work-wise, and cells are what cost trace time.
  size_t retrace_cells = 0;
  bool any_full = false;
  for (size_t i = 0; i < dirty_index.size(); ++i) {
    if (mode[dirty_index[i]] != ColumnMode::kCell) {
      retrace_cells += source_count;
      any_full = true;
      continue;
    }
    for (uint8_t bit : retrace[i]) retrace_cells += bit;
  }
  const size_t total_cells = source_count * class_count;
  if (total_cells > 0 &&
      static_cast<double>(retrace_cells) >
          options.incremental_max_dirty_fraction * static_cast<double>(total_cells))
    return fall_back("dirty-fraction");
  if (any_full) {
    stats.dirty_nodes = node_count;
  } else {
    std::vector<uint8_t> dirty_union(node_count, 0);
    for (const std::vector<uint8_t>& in_closure : closures)
      for (size_t n = 0; n < in_closure.size(); ++n)
        dirty_union[n] |= in_closure[n];
    for (uint8_t bit : dirty_union) stats.dirty_nodes += bit;
  }

  // Re-trace closure cells with the same memoized engine as the cold
  // sweep — partial class solves for cell columns, full tables for
  // whole-column re-traces — and splice everything else.
  if (options.prime_lpm && !dirty_classes.empty()) graph.prime_class_lpm(dirty_classes);
  std::vector<DispositionSet> matrix(source_count * class_count);
  CacheRef cache(options.cache, graph, options.metrics);
  util::parallel_for_shards(threads, dirty_index.size(), [&](size_t i) {
    size_t c = dirty_index[i];
    net::Ipv4Address representative = classes[c].representative();
    if (mode[c] != ColumnMode::kCell) {
      (*cache).warm(representative);
      for (size_t s = 0; s < source_count; ++s)
        matrix[s * class_count + c] = (*cache).dispositions(sources[s], representative);
      return;
    }
    std::vector<net::NodeName> retrace_sources;
    std::vector<size_t> retrace_rows;
    for (size_t s = 0; s < source_count; ++s) {
      if (retrace[i][s] == 0) continue;
      retrace_sources.push_back(sources[s]);
      retrace_rows.push_back(s);
    }
    if (retrace_sources.empty()) return;
    std::vector<DispositionSet> sets =
        (*cache).dispositions_for(retrace_sources, representative);
    for (size_t k = 0; k < retrace_rows.size(); ++k)
      matrix[retrace_rows[k] * class_count + c] = sets[k];
  });

  std::vector<size_t> dirty_position(class_count, SIZE_MAX);
  for (size_t i = 0; i < dirty_index.size(); ++i) dirty_position[dirty_index[i]] = i;
  const size_t base_class_count = base.classes.size();
  for (size_t s = 0; s < source_count; ++s) {
    for (size_t c = 0; c < class_count; ++c) {
      if (mode[c] == ColumnMode::kRetrace) continue;
      if (mode[c] == ColumnMode::kCell && retrace[dirty_position[c]][s] != 0) continue;
      matrix[s * class_count + c] =
          base.matrix[base_row[s] * base_class_count + base_column[c]];
    }
  }

  stats.retraced = retrace_cells;
  stats.spliced = total_cells - retrace_cells;
  record(options, stats);

  ReachabilityResult result;
  result.classes = class_count;
  result.flows = source_count * class_count;
  for (size_t s = 0; s < source_count; ++s) {
    for (size_t c = 0; c < class_count; ++c) {
      const DispositionSet& dispositions = matrix[s * class_count + c];
      if (!row_passes(options, dispositions)) continue;
      result.rows.push_back({sources[s], classes[c], dispositions});
    }
  }
  return result;
}

PairwiseResult incremental_pairwise(const ForwardingGraph& graph,
                                    const QueryOptions& options) {
  IncrementalStats stats;
  auto fall_back = [&](std::string reason) {
    stats.fell_back = true;
    stats.fallback_reason = std::move(reason);
    record(options, stats);
    return pairwise_reachability(graph, cold_options(options));
  };

  Preflight p = preflight(graph, options);
  if (!p.fallback.empty()) return fall_back(p.fallback);
  const IncrementalBase& base = *p.base;

  std::vector<net::NodeName> nodes = graph.nodes();
  const size_t node_count = nodes.size();
  stats.classes = node_count;

  std::vector<size_t> base_row(node_count);
  for (size_t s = 0; s < node_count; ++s) {
    auto it = base.source_index.find(nodes[s]);
    if (it == base.source_index.end()) return fall_back("source-set-delta");
    base_row[s] = it->second;
  }

  // A destination column splices whole when its loopback is unchanged,
  // outside every dirty range (an address outside the ranges provably
  // traces identically on both snapshots), and covered by the base
  // partition. A dirty column whose loopback is unchanged and covered
  // still splices per cell; everything else re-traces whole.
  std::vector<std::optional<net::Ipv4Address>> loopbacks(node_count);
  std::vector<ColumnMode> mode(node_count, ColumnMode::kSplice);
  std::vector<size_t> base_column(node_count, 0);
  std::vector<size_t> dirty_index;
  for (size_t d = 0; d < node_count; ++d) {
    loopbacks[d] = device_loopback(graph.snapshot(), nodes[d]);
    if (!loopbacks[d]) continue;  // column skipped, as in the cold sweep
    std::optional<net::Ipv4Address> base_loopback =
        device_loopback(base.graph->snapshot(), nodes[d]);
    std::optional<size_t> column;
    if (base_loopback == loopbacks[d])
      column = containing_base_class(base, *loopbacks[d], *loopbacks[d]);
    if (column && !p.delta.dirty(*loopbacks[d])) {
      base_column[d] = *column;
      continue;
    }
    mode[d] = column ? ColumnMode::kCell : ColumnMode::kRetrace;
    if (column) base_column[d] = *column;
    dirty_index.push_back(d);
  }
  stats.dirty_classes = dirty_index.size();

  SpliceCloser closer(base, graph);
  std::vector<size_t> source_node(node_count, SIZE_MAX);
  for (size_t s = 0; s < node_count; ++s)
    if (std::optional<size_t> index = closer.index_of(nodes[s]))
      source_node[s] = *index;

  unsigned threads = resolve_threads(options);
  std::vector<std::vector<uint8_t>> retrace(dirty_index.size());
  std::vector<std::vector<uint8_t>> closures(dirty_index.size());
  util::parallel_for_shards(threads, dirty_index.size(), [&](size_t i) {
    size_t d = dirty_index[i];
    if (mode[d] != ColumnMode::kCell) return;
    net::Ipv4Address loopback = *loopbacks[d];
    std::vector<uint8_t> in_closure = closer.closure(
        loopback, base_column[d], dirty_seeds(p.delta, closer, loopback));
    retrace[i].assign(node_count, 0);
    for (size_t s = 0; s < node_count; ++s)
      if (source_node[s] != SIZE_MAX && in_closure[source_node[s]])
        retrace[i][s] = 1;
    closures[i] = std::move(in_closure);
  });

  size_t retrace_cells = 0;
  size_t total_cells = 0;
  bool any_full = false;
  for (size_t d = 0; d < node_count; ++d)
    if (loopbacks[d]) total_cells += node_count - 1;
  for (size_t i = 0; i < dirty_index.size(); ++i) {
    size_t d = dirty_index[i];
    if (mode[d] != ColumnMode::kCell) {
      retrace_cells += node_count - 1;
      any_full = true;
      continue;
    }
    for (size_t s = 0; s < node_count; ++s)
      if (s != d && retrace[i][s] != 0) ++retrace_cells;
  }
  if (total_cells > 0 &&
      static_cast<double>(retrace_cells) >
          options.incremental_max_dirty_fraction * static_cast<double>(total_cells))
    return fall_back("dirty-fraction");
  if (any_full) {
    stats.dirty_nodes = closer.nodes().size();
  } else {
    std::vector<uint8_t> dirty_union(closer.nodes().size(), 0);
    for (const std::vector<uint8_t>& in_closure : closures)
      for (size_t n = 0; n < in_closure.size(); ++n)
        dirty_union[n] |= in_closure[n];
    for (uint8_t bit : dirty_union) stats.dirty_nodes += bit;
  }

  std::vector<uint8_t> reachable(node_count * node_count, 0);
  CacheRef cache(options.cache, graph, options.metrics);
  util::parallel_for_shards(threads, dirty_index.size(), [&](size_t i) {
    size_t d = dirty_index[i];
    net::Ipv4Address loopback = *loopbacks[d];
    if (mode[d] != ColumnMode::kCell) {
      for (size_t s = 0; s < node_count; ++s) {
        if (s == d) continue;
        bool ok =
            (*cache).dispositions(nodes[s], loopback).contains(Disposition::kAccepted);
        reachable[s * node_count + d] = ok ? 1 : 0;
      }
      return;
    }
    std::vector<net::NodeName> retrace_sources;
    std::vector<size_t> retrace_rows;
    for (size_t s = 0; s < node_count; ++s) {
      if (s == d || retrace[i][s] == 0) continue;
      retrace_sources.push_back(nodes[s]);
      retrace_rows.push_back(s);
    }
    if (retrace_sources.empty()) return;
    std::vector<DispositionSet> sets =
        (*cache).dispositions_for(retrace_sources, loopback);
    for (size_t k = 0; k < retrace_rows.size(); ++k)
      reachable[retrace_rows[k] * node_count + d] =
          sets[k].contains(Disposition::kAccepted) ? 1 : 0;
  });

  std::vector<size_t> dirty_position(node_count, SIZE_MAX);
  for (size_t i = 0; i < dirty_index.size(); ++i) dirty_position[dirty_index[i]] = i;
  const size_t base_class_count = base.classes.size();
  for (size_t d = 0; d < node_count; ++d) {
    if (!loopbacks[d] || mode[d] == ColumnMode::kRetrace) continue;
    for (size_t s = 0; s < node_count; ++s) {
      if (s == d) continue;
      if (mode[d] == ColumnMode::kCell && retrace[dirty_position[d]][s] != 0) continue;
      bool ok = base.matrix[base_row[s] * base_class_count + base_column[d]].contains(
          Disposition::kAccepted);
      reachable[s * node_count + d] = ok ? 1 : 0;
    }
  }

  stats.retraced = retrace_cells;
  stats.spliced = total_cells - retrace_cells;
  record(options, stats);

  PairwiseResult result;
  for (size_t s = 0; s < node_count; ++s) {
    for (size_t d = 0; d < node_count; ++d) {
      if (s == d || !loopbacks[d]) continue;
      bool ok = reachable[s * node_count + d] != 0;
      result.cells.push_back({nodes[s], nodes[d], ok});
      ++result.total_pairs;
      if (ok) ++result.reachable_pairs;
    }
  }
  return result;
}

}  // namespace mfv::verify
