// Incremental re-verification: verify the diff, not the world.
//
// A scenario fork (link cut, route withdraw, config replace) changes a
// handful of FIB entries; cold verification nevertheless re-partitions the
// packet space and re-traces every (source, class) flow. This subsystem
// diffs the two compiled dataplanes (FibDelta), computes which destination
// addresses the delta can possibly affect — per node, not just globally —
// and splices at cell granularity: a clean class column comes straight out
// of the base snapshot's captured disposition matrix, and even inside a
// dirty column only the sources whose flows can meet a dirty node (the
// backward closure of the per-class dirty node set over base∪candidate
// forwarding) are re-traced; every other cell splices too
// (DispositionSplicer, splicer.cpp). The splice is provably byte-identical
// to cold re-verification (DESIGN.md §11); whenever the preconditions
// fail — the delta is not expressible as a FIB diff, or the re-trace set
// exceeds a configurable fraction — it falls back to the cold path and
// says why.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "verify/queries.hpp"

namespace mfv::verify {

/// Cached reverse forwarding adjacency of the base graph, built lazily
/// per base class the first time an incremental query's closure touches
/// it (thread-safe: one once_flag per class) and shared read-only by
/// every later query forking from the same base. Sound because base
/// forwarding at a class representative is uniform over the containing
/// base class — every FIB prefix and interface subnet/host range is a
/// partition boundary. Definition is splicer.cpp-internal.
struct SpliceAdjacency;

/// The base snapshot's verify result in splice-ready form: the full
/// sources x classes disposition matrix (no row filter) plus the exact
/// partition and options it was computed under. Captured once per stored
/// snapshot; shared read-only across every incremental query that forks
/// from it (thread-safe by construction: immutable after capture).
struct IncrementalBase {
  /// Base forwarding graph; must outlive this struct (the snapshot store
  /// keeps both in one entry).
  const ForwardingGraph* graph = nullptr;
  /// Resolved source order of the capture (row order of `matrix`).
  std::vector<net::NodeName> sources;
  /// Source name -> row index, for splicing under a different source list.
  std::map<net::NodeName, size_t> source_index;
  std::optional<net::Ipv4Prefix> scope;
  TraceOptions trace;
  /// Base packet-class partition (column order of `matrix`).
  std::vector<PacketClass> classes;
  /// Row-major: matrix[s * classes.size() + c].
  std::vector<DispositionSet> matrix;
  /// Per-base-class reverse adjacency memo (see SpliceAdjacency). Mutable
  /// so closure() can fill it behind a const base; the internal once_flags
  /// make concurrent fills safe.
  mutable std::unique_ptr<SpliceAdjacency> adjacency;

  IncrementalBase();
  // Out-of-line: SpliceAdjacency is incomplete here.
  ~IncrementalBase();
  IncrementalBase(const IncrementalBase&) = delete;
  IncrementalBase& operator=(const IncrementalBase&) = delete;
};

/// Computes the full disposition matrix of `graph` under `options`
/// (ignoring any row filter) for later splicing. Uses options.cache when
/// set, so the capture doubles as a full cache warm-up.
std::unique_ptr<IncrementalBase> capture_incremental_base(
    const ForwardingGraph& graph, const QueryOptions& options = {});

/// What one incremental query did, for tests / metrics / bench reporting.
struct IncrementalStats {
  /// Candidate-side columns considered (packet classes for reachability,
  /// destination devices for pairwise).
  size_t classes = 0;
  /// Columns intersecting the delta's dirty address ranges.
  size_t dirty_classes = 0;
  /// Cells (source x column) served verbatim from the base matrix —
  /// every cell of a clean column, plus the closure-clean cells of dirty
  /// columns.
  size_t spliced = 0;
  /// Cells re-traced on the candidate graph: spliced + retraced covers
  /// every cell of the sweep.
  size_t retraced = 0;
  /// Devices whose forwarding the delta can affect for some dirty
  /// column: the union of the per-column backward closures (plus every
  /// node of columns re-traced whole). Reported for observability.
  size_t dirty_nodes = 0;
  bool fell_back = false;
  /// Why the cold path ran instead ("acl-delta", "dirty-fraction", ...).
  std::string fallback_reason;

  void accumulate(const IncrementalStats& other) {
    classes += other.classes;
    dirty_classes += other.dirty_classes;
    spliced += other.spliced;
    retraced += other.retraced;
    dirty_nodes += other.dirty_nodes;
    if (other.fell_back) {
      fell_back = true;
      if (fallback_reason.empty()) fallback_reason = other.fallback_reason;
    }
  }
};

/// Per-node FIB entry delta counts.
struct NodeDelta {
  size_t added = 0;
  size_t removed = 0;
  size_t changed = 0;
  /// Interface-state deltas (oper_up / address / vrf visibility).
  size_t interfaces = 0;
};

/// The diff of two compiled dataplanes, reduced to the address space it
/// can affect. `dirty_ranges` over-approximates: every destination whose
/// forwarding behaviour could differ between the snapshots lies inside
/// some range (the dirty-set rules are spelled out in DESIGN.md §11); an
/// address outside every range provably traces identically on both.
struct FibDelta {
  /// False when the delta cannot be expressed as dirty address ranges
  /// (ACL changes move packet-filter boundaries, label-table changes
  /// affect traffic addressed anywhere, node add/remove changes the
  /// source set). fallback_reason says which rule fired.
  bool expressible = true;
  std::string fallback_reason;
  /// Nodes with any FIB or interface delta.
  std::map<net::NodeName, NodeDelta> nodes;
  /// Merged, sorted, disjoint inclusive [lo, hi] address-bit intervals.
  std::vector<std::pair<uint32_t, uint32_t>> dirty_ranges;
  /// The same intervals attributed to the node whose FIB or interface
  /// delta produced them; `dirty_ranges` is their union. A node absent
  /// here (or whose ranges miss a class) forwards every address of that
  /// class identically on both snapshots — the per-cell splice hinges on
  /// exactly this (DESIGN.md §11).
  std::map<net::NodeName, std::vector<std::pair<uint32_t, uint32_t>>> node_dirty_ranges;

  /// True if [first, last] intersects any dirty range.
  bool dirty(net::Ipv4Address first, net::Ipv4Address last) const;
  bool dirty(net::Ipv4Address address) const { return dirty(address, address); }
  /// True if [first, last] intersects `node`'s own dirty ranges.
  bool node_dirty(const net::NodeName& node, net::Ipv4Address first,
                  net::Ipv4Address last) const;

  size_t entries_added = 0;
  size_t entries_removed = 0;
  size_t entries_changed = 0;
};

/// Diffs two snapshots' compiled FIBs + interface state. Resolved next-hop
/// comparison is index-insensitive (a fork may renumber hop indices
/// without changing behaviour).
FibDelta diff_fibs(const gnmi::Snapshot& base, const gnmi::Snapshot& candidate);

/// Devices dirty traffic can transit: the nodes named by `delta` closed
/// over candidate-graph forwarding for the dirty class representatives
/// (rerouted traffic newly transiting an untouched node lands here).
std::vector<net::NodeName> close_dirty_nodes(
    const FibDelta& delta, const ForwardingGraph& candidate,
    const std::vector<PacketClass>& dirty_classes);

/// Incremental engines behind reachability() / pairwise_reachability():
/// splice clean columns — and the closure-clean cells of dirty columns —
/// from options.incremental's matrix, re-trace the rest, or fall back to
/// the cold path (options with incremental cleared) when the
/// preconditions fail. Results are byte-identical to the cold call either
/// way. Stats are written to options.incremental_stats and mirrored into
/// options.metrics (verify_incremental_* family).
ReachabilityResult incremental_reachability(const ForwardingGraph& graph,
                                            const QueryOptions& options);
PairwiseResult incremental_pairwise(const ForwardingGraph& graph,
                                    const QueryOptions& options);

}  // namespace mfv::verify
