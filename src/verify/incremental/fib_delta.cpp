// FibDelta: reduce the diff of two compiled dataplanes to the set of
// destination addresses it can affect. The dirty-set rules (and the
// argument that an address outside every dirty range traces identically
// on both snapshots) are documented in DESIGN.md §11.
#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_map>

#include "verify/incremental/incremental.hpp"

namespace mfv::verify {

namespace {

/// Behavioural view of one weighted next hop, deliberately dropping the
/// table index: a fork can renumber hop/group indices without changing
/// forwarding, and index-sensitive comparison would dirty the world.
using HopBehavior = std::tuple<uint64_t /*weight*/, std::optional<net::Ipv4Address>,
                               std::optional<net::InterfaceName>, bool /*drop*/,
                               aft::LabelOp, uint32_t /*label*/>;

std::vector<HopBehavior> resolved_hops(const aft::Aft& aft, uint64_t group_id) {
  std::vector<HopBehavior> hops;
  const aft::NextHopGroup* group = aft.group(group_id);
  if (group == nullptr) return hops;
  for (const auto& [index, weight] : group->next_hops) {
    const aft::NextHop* hop = aft.next_hop(index);
    // Dangling indices are skipped exactly like ForwardingGraph::next_hops.
    if (hop == nullptr) continue;
    hops.emplace_back(weight, hop->ip_address, hop->interface, hop->drop,
                      hop->label_op, hop->label);
  }
  return hops;
}

/// Memoizes resolved_hops per group id for one side of a device: FIB
/// entries overwhelmingly share a handful of groups, and resolving (two
/// vector allocations per entry pair) dominated diff time on wide
/// topologies.
class HopResolver {
 public:
  explicit HopResolver(const aft::Aft& aft) : aft_(aft) {}
  const std::vector<HopBehavior>& resolve(uint64_t group_id) {
    auto [it, inserted] = memo_.try_emplace(group_id);
    if (inserted) it->second = resolved_hops(aft_, group_id);
    return it->second;
  }

 private:
  const aft::Aft& aft_;
  std::unordered_map<uint64_t, std::vector<HopBehavior>> memo_;
};

/// Address-ownership map with the exact ForwardingGraph rule (default
/// instance, up, addressed; device/interface map order with last-wins
/// overwrite), so ownership deltas are judged by what the graph will see.
std::map<uint32_t, net::NodeName> owner_map(const gnmi::Snapshot& snapshot) {
  std::map<uint32_t, net::NodeName> owners;
  for (const auto& [node, device] : snapshot.devices)
    for (const auto& [name, interface] : device.interfaces)
      if (interface.oper_up && interface.address && interface.vrf.empty())
        owners[interface.address->address.bits()] = node;
  return owners;
}

bool partition_visible(const aft::InterfaceState& interface) {
  // Mirrors relevant_prefixes(): an addressed default-instance interface
  // contributes its subnet and host prefixes regardless of oper state.
  return interface.address.has_value() && interface.vrf.empty();
}

bool has_acls(const aft::InterfaceState& interface) {
  return interface.acl_in.has_value() || interface.acl_out.has_value();
}

class RangeCollector {
 public:
  void add(net::Ipv4Prefix prefix) {
    raw_.emplace_back(prefix.first_address().bits(), prefix.last_address().bits());
  }
  void add_interface_ranges(const aft::InterfaceState& interface) {
    if (!partition_visible(interface)) return;
    add(interface.address->subnet);
    add(net::Ipv4Prefix::host(interface.address->address));
  }

  /// Sorted, disjoint, merged intervals (adjacent ranges coalesce).
  std::vector<std::pair<uint32_t, uint32_t>> merged() && {
    std::sort(raw_.begin(), raw_.end());
    std::vector<std::pair<uint32_t, uint32_t>> out;
    for (const auto& [lo, hi] : raw_) {
      if (!out.empty() && lo <= out.back().second) {
        out.back().second = std::max(out.back().second, hi);
      } else if (!out.empty() && out.back().second != UINT32_MAX &&
                 lo == out.back().second + 1) {
        out.back().second = hi;
      } else {
        out.emplace_back(lo, hi);
      }
    }
    return out;
  }

 private:
  std::vector<std::pair<uint32_t, uint32_t>> raw_;
};

FibDelta inexpressible(std::string reason) {
  FibDelta delta;
  delta.expressible = false;
  delta.fallback_reason = std::move(reason);
  return delta;
}

bool ranges_intersect(const std::vector<std::pair<uint32_t, uint32_t>>& ranges,
                      uint32_t first, uint32_t last) {
  // First range that could still cover `first` (ranges are sorted and
  // disjoint, so the candidate is the one with the smallest hi >= first).
  auto it = std::partition_point(
      ranges.begin(), ranges.end(),
      [&](const std::pair<uint32_t, uint32_t>& range) { return range.second < first; });
  return it != ranges.end() && it->first <= last;
}

}  // namespace

bool FibDelta::dirty(net::Ipv4Address first, net::Ipv4Address last) const {
  return ranges_intersect(dirty_ranges, first.bits(), last.bits());
}

bool FibDelta::node_dirty(const net::NodeName& node, net::Ipv4Address first,
                          net::Ipv4Address last) const {
  auto it = node_dirty_ranges.find(node);
  return it != node_dirty_ranges.end() &&
         ranges_intersect(it->second, first.bits(), last.bits());
}

FibDelta diff_fibs(const gnmi::Snapshot& base, const gnmi::Snapshot& candidate) {
  // Device add/remove changes the source set and the trace universe
  // itself; no address range captures that.
  {
    auto b = base.devices.begin();
    auto c = candidate.devices.begin();
    for (; b != base.devices.end() && c != candidate.devices.end(); ++b, ++c)
      if (b->first != c->first) return inexpressible("node-set-delta");
    if (b != base.devices.end() || c != candidate.devices.end())
      return inexpressible("node-set-delta");
  }

  FibDelta delta;
  RangeCollector ranges;
  std::map<uint32_t, net::NodeName> base_owners = owner_map(base);
  std::map<uint32_t, net::NodeName> candidate_owners = owner_map(candidate);
  std::set<uint32_t> ownership_changed;
  for (const auto& [bits, node] : base_owners) {
    auto it = candidate_owners.find(bits);
    if (it == candidate_owners.end() || it->second != node) ownership_changed.insert(bits);
  }
  for (const auto& [bits, node] : candidate_owners)
    if (!base_owners.count(bits)) ownership_changed.insert(bits);

  for (const auto& [node, base_device] : base.devices) {
    const auto& candidate_device = candidate.devices.at(node);
    // Every range is attributed to the node whose delta produced it (the
    // per-cell splice closure keys off this) and unioned globally.
    RangeCollector node_ranges;

    // --- interfaces ---------------------------------------------------
    std::set<net::InterfaceName> interface_names;
    for (const auto& [name, interface] : base_device.interfaces)
      interface_names.insert(name);
    for (const auto& [name, interface] : candidate_device.interfaces)
      interface_names.insert(name);
    for (const net::InterfaceName& name : interface_names) {
      auto b = base_device.interfaces.find(name);
      auto c = candidate_device.interfaces.find(name);
      const aft::InterfaceState* bs =
          b == base_device.interfaces.end() ? nullptr : &b->second;
      const aft::InterfaceState* cs =
          c == candidate_device.interfaces.end() ? nullptr : &c->second;
      // Packet-filter deltas move permit/deny boundaries, which the
      // dirty ranges don't model (filters match independently of the
      // forwarding prefixes we diff).
      std::optional<std::vector<aft::AclRule>> no_acl;
      const auto& b_in = bs ? bs->acl_in : no_acl;
      const auto& c_in = cs ? cs->acl_in : no_acl;
      const auto& b_out = bs ? bs->acl_out : no_acl;
      const auto& c_out = cs ? cs->acl_out : no_acl;
      if (b_in != c_in || b_out != c_out) return inexpressible("acl-delta");

      auto tuple_of = [](const aft::InterfaceState* state) {
        return state == nullptr
                   ? std::make_tuple(std::optional<net::InterfaceAddress>{}, false,
                                     std::string{})
                   : std::make_tuple(state->address, state->oper_up, state->vrf);
      };
      if (tuple_of(bs) == tuple_of(cs)) continue;
      // A moved/re-homed interface that carries filters can change which
      // InterfaceState resolves an ingress check — out of range scope.
      if ((bs && has_acls(*bs)) || (cs && has_acls(*cs)))
        return inexpressible("acl-delta");
      // Exact-address collision on the same device: ingress resolution
      // (interface_owning) is iteration-order sensitive, so a delta on
      // the shadowing interface can silently re-home a filter check to a
      // sibling that carries one — also out of range scope.
      auto shadows_filtered_sibling = [&](const aft::DeviceAft& device,
                                          const aft::InterfaceState* moved) {
        if (moved == nullptr || !moved->address) return false;
        for (const auto& [other_name, other] : device.interfaces)
          if (&other != moved && has_acls(other) && other.address &&
              other.address->address == moved->address->address)
            return true;
        return false;
      };
      if (shadows_filtered_sibling(base_device, bs) ||
          shadows_filtered_sibling(candidate_device, cs))
        return inexpressible("acl-delta");
      ++delta.nodes[node].interfaces;
      if (bs) {
        ranges.add_interface_ranges(*bs);
        node_ranges.add_interface_ranges(*bs);
      }
      if (cs) {
        ranges.add_interface_ranges(*cs);
        node_ranges.add_interface_ranges(*cs);
      }
    }

    // A device whose Aft still shares the base's copy-on-write storage
    // was never recompiled by the fork: its label table and FIB are
    // bit-identical, so the walks below can only find nothing — skip
    // them. Only safe with no ownership moves (those dirty entries whose
    // *contents* didn't change, and label hops to a moved address are
    // inexpressible either way).
    if (ownership_changed.empty() &&
        base_device.aft.shares_tables(candidate_device.aft)) {
      std::vector<std::pair<uint32_t, uint32_t>> merged =
          std::move(node_ranges).merged();
      if (!merged.empty()) delta.node_dirty_ranges.emplace(node, std::move(merged));
      continue;
    }
    HopResolver base_hops(base_device.aft);
    HopResolver candidate_hops(candidate_device.aft);

    // --- MPLS label tables --------------------------------------------
    // Labelled traffic is addressed by label, not destination IP: a label
    // delta (or a label hop whose target's ownership moved) can reroute
    // traffic destined anywhere a push exists, so no range bounds it.
    {
      std::set<uint32_t> labels;
      for (const auto& [label, entry] : base_device.aft.label_entries())
        labels.insert(label);
      for (const auto& [label, entry] : candidate_device.aft.label_entries())
        labels.insert(label);
      for (uint32_t label : labels) {
        const auto& b_entries = base_device.aft.label_entries();
        const auto& c_entries = candidate_device.aft.label_entries();
        auto b_it = b_entries.find(label);
        auto c_it = c_entries.find(label);
        if ((b_it == b_entries.end()) != (c_it == c_entries.end()))
          return inexpressible("label-delta");
        const std::vector<HopBehavior>& b_hops =
            base_hops.resolve(b_it->second.next_hop_group);
        const std::vector<HopBehavior>& c_hops =
            candidate_hops.resolve(c_it->second.next_hop_group);
        if (b_hops != c_hops) return inexpressible("label-delta");
        for (const HopBehavior& hop : c_hops) {
          const auto& address = std::get<1>(hop);
          if (address && ownership_changed.count(address->bits()))
            return inexpressible("label-delta");
        }
      }
    }

    // --- IPv4 FIB entries ---------------------------------------------
    const auto& base_entries = base_device.aft.ipv4_entries();
    const auto& candidate_entries = candidate_device.aft.ipv4_entries();
    auto b = base_entries.begin();
    auto c = candidate_entries.begin();
    auto dirty_entry = [&](const net::Ipv4Prefix& prefix) {
      ranges.add(prefix);
      node_ranges.add(prefix);
    };
    while (b != base_entries.end() || c != candidate_entries.end()) {
      if (c == candidate_entries.end() ||
          (b != base_entries.end() && b->first < c->first)) {
        ++delta.nodes[node].removed;
        ++delta.entries_removed;
        dirty_entry(b->first);
        ++b;
        continue;
      }
      if (b == base_entries.end() || c->first < b->first) {
        ++delta.nodes[node].added;
        ++delta.entries_added;
        dirty_entry(c->first);
        ++c;
        continue;
      }
      const std::vector<HopBehavior>& b_hops =
          base_hops.resolve(b->second.next_hop_group);
      const std::vector<HopBehavior>& c_hops =
          candidate_hops.resolve(c->second.next_hop_group);
      bool changed = b_hops != c_hops || b->second.metric != c->second.metric ||
                     b->second.origin_protocol != c->second.origin_protocol;
      if (!changed) {
        // Same entry, but a hop address whose ownership moved lands the
        // packet on a different device now: dirty the entry's coverage.
        for (const HopBehavior& hop : c_hops) {
          const auto& address = std::get<1>(hop);
          if (address && ownership_changed.count(address->bits())) {
            changed = true;
            break;
          }
        }
      }
      if (changed) {
        ++delta.nodes[node].changed;
        ++delta.entries_changed;
        dirty_entry(c->first);
      }
      ++b;
      ++c;
    }

    std::vector<std::pair<uint32_t, uint32_t>> merged = std::move(node_ranges).merged();
    if (!merged.empty()) delta.node_dirty_ranges.emplace(node, std::move(merged));
  }

  delta.dirty_ranges = std::move(ranges).merged();
  return delta;
}

std::vector<net::NodeName> close_dirty_nodes(
    const FibDelta& delta, const ForwardingGraph& candidate,
    const std::vector<PacketClass>& dirty_classes) {
  std::set<net::NodeName> closed;
  std::vector<net::NodeName> frontier;
  for (const auto& [node, counts] : delta.nodes)
    if (candidate.has_node(node) && closed.insert(node).second) frontier.push_back(node);
  while (!frontier.empty()) {
    net::NodeName node = std::move(frontier.back());
    frontier.pop_back();
    for (const PacketClass& cls : dirty_classes) {
      net::Ipv4Address representative = cls.representative();
      const aft::Ipv4Entry* entry = candidate.lookup(node, representative);
      if (entry == nullptr) continue;
      for (const aft::NextHop& hop : candidate.next_hops(node, *entry)) {
        if (hop.drop) continue;
        std::optional<net::NodeName> next =
            candidate.address_owner(hop.ip_address ? *hop.ip_address : representative);
        if (next && closed.insert(*next).second) frontier.push_back(*next);
      }
    }
  }
  return {closed.begin(), closed.end()};
}

}  // namespace mfv::verify
