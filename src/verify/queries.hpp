// Verification queries over dataplane snapshots — the Pybatfish-style
// question layer of §4.2.
//
// All queries are exhaustive over the destination space: they enumerate the
// packet-class partition and trace one representative per class, so "no
// differences found" is a statement about every possible destination
// address, not a sample.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "verify/packet_classes.hpp"
#include "verify/trace.hpp"

namespace mfv::obs {
class MetricsRegistry;
}

namespace mfv::verify {

class TraceCache;
struct IncrementalBase;
struct IncrementalStats;

/// Engine selection. kAuto picks the memoized sharded engine whenever the
/// query runs multi-threaded and the legacy per-flow walker when
/// threads == 1 (bit-identical to the seed engine). kLegacy / kCached
/// force one path regardless of thread count — e.g. for benchmarking
/// cached-vs-uncached at equal parallelism.
enum class EngineMode { kAuto, kLegacy, kCached };

struct QueryOptions {
  /// Sources to inject at; empty = every device.
  std::vector<net::NodeName> sources;
  /// Restrict the destination space (e.g. to loopback ranges); nullopt =
  /// the full IPv4 space.
  std::optional<net::Ipv4Prefix> scope;
  TraceOptions trace;
  /// Worker threads for the query sweep: 0 = hardware concurrency,
  /// 1 = serial legacy path. Results are identical for every thread
  /// count (shard-indexed result slots; see util::parallel_for_shards).
  unsigned threads = 0;
  EngineMode engine = EngineMode::kAuto;
  /// If non-empty, only rows whose disposition set intersects this filter
  /// are materialized (flow/class counters still cover every flow) — e.g.
  /// detect_loops() filters on kLoop so success rows are never built.
  DispositionSet row_filter;
  /// Long-lived memoization shared across queries (the service keeps one
  /// TraceCache per stored snapshot; api::Session keeps one per named
  /// snapshot). Must be built over the same ForwardingGraph the query runs
  /// on and must outlive the call. nullptr = a query-local cache.
  TraceCache* cache = nullptr;
  /// Candidate-side cache for differential queries (same contract).
  TraceCache* candidate_cache = nullptr;
  /// Pre-resolve every (node, class) LPM into a flat index before the
  /// sweep. A per-query win, but the priming mutates the graph's index and
  /// is not safe against concurrent lookup() from another query on the
  /// same graph — the service disables it and relies on the shared
  /// TraceCache instead, which amortizes the trie walks across requests.
  bool prime_lpm = true;
  /// Optional metrics sink. Sharded sweeps record per-shard wall time
  /// into the `verify_shard_latency_us` histogram, and query-local
  /// TraceCaches mirror their hit/miss counters into the registry.
  /// nullptr = no instrumentation (the hot loops pay one pointer test).
  obs::MetricsRegistry* metrics = nullptr;
  /// Base snapshot's captured verify result (verify/incremental). When
  /// set, reachability() and pairwise_reachability() diff this graph
  /// against the base, re-trace only the (source, class) cells the delta
  /// can actually affect and splice the rest from the base matrix —
  /// byte-identical to the cold sweep, falling back to it whenever the
  /// delta is not expressible as a FIB diff. Must outlive the call (the
  /// snapshot store keeps it alive alongside the base entry).
  const IncrementalBase* incremental = nullptr;
  /// Fall back to cold re-verification once re-traced cells exceed this
  /// fraction of all cells (splicing would no longer pay for the diff).
  double incremental_max_dirty_fraction = 0.5;
  /// Optional out-param: dirty/splice/fallback accounting of the
  /// incremental engine (untouched when `incremental` is null).
  IncrementalStats* incremental_stats = nullptr;
};

// ---------------------------------------------------------------------------
// Reachability

struct ReachabilityRow {
  net::NodeName source;
  PacketClass destination;
  DispositionSet dispositions;
};

struct ReachabilityResult {
  std::vector<ReachabilityRow> rows;
  size_t classes = 0;
  size_t flows = 0;
};

/// Disposition of every (source, destination-class) flow.
ReachabilityResult reachability(const ForwardingGraph& graph,
                                const QueryOptions& options = {});

// ---------------------------------------------------------------------------
// Differential reachability (the paper's E1 query)

struct DifferentialRow {
  net::NodeName source;
  PacketClass destination;
  DispositionSet base;
  DispositionSet candidate;

  std::string to_string() const;
};

struct DifferentialResult {
  std::vector<DifferentialRow> rows;  // only flows whose dispositions differ
  size_t classes = 0;
  size_t flows = 0;

  bool empty() const { return rows.empty(); }
  /// Rows where the base succeeded and the candidate fails — regressions,
  /// the signal operators act on.
  std::vector<DifferentialRow> regressions() const;
};

/// Compares all flows between two snapshots (e.g. pre/post change, or
/// model-based vs. model-free dataplanes for identical configs — E3).
DifferentialResult differential_reachability(const ForwardingGraph& base,
                                             const ForwardingGraph& candidate,
                                             const QueryOptions& options = {});

// ---------------------------------------------------------------------------
// Routes question (Pybatfish `routes()`): tabular FIB view per node

struct RouteRow {
  net::NodeName node;
  net::Ipv4Prefix prefix;
  std::string protocol;
  uint32_t metric = 0;
  /// Rendered next hops ("10.0.0.1 via Ethernet1", "drop", ...).
  std::vector<std::string> next_hops;

  std::string to_string() const;
};

/// All FIB entries of `node` (or every node when empty), in prefix order.
std::vector<RouteRow> routes(const ForwardingGraph& graph,
                             const net::NodeName& node = "");

// ---------------------------------------------------------------------------
// Structural queries

/// (source, class) flows that traverse a forwarding loop.
ReachabilityResult detect_loops(const ForwardingGraph& graph,
                                const QueryOptions& options = {});

/// Loopback-style address of a device: first Loopback/lo interface address,
/// else its lowest interface address.
std::optional<net::Ipv4Address> device_loopback(const gnmi::Snapshot& snapshot,
                                                const net::NodeName& node);

struct PairwiseCell {
  net::NodeName source;
  net::NodeName destination;
  bool reachable = false;
};

struct PairwiseResult {
  std::vector<PairwiseCell> cells;
  size_t reachable_pairs = 0;
  size_t total_pairs = 0;

  bool full_mesh() const { return reachable_pairs == total_pairs && total_pairs > 0; }
};

/// Loopback-to-loopback reachability matrix ("full pair-wise reachability"
/// in §5's Fig. 3 experiment). Sharded by destination device; each
/// destination's trace table is memoized once and shared by all sources.
PairwiseResult pairwise_reachability(const ForwardingGraph& graph,
                                     const QueryOptions& options = {});
/// Convenience overload keeping the historical trace-options signature.
PairwiseResult pairwise_reachability(const ForwardingGraph& graph,
                                     const TraceOptions& options);

}  // namespace mfv::verify
