// Flow dispositions, mirroring Batfish's vocabulary so differential
// reachability output reads like the paper's Pybatfish runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mfv::verify {

enum class Disposition : uint8_t {
  kAccepted,             // delivered to a device owning the destination
  kDeliveredToSubnet,    // forwarded onto a connected subnet with no owner
  kExitsNetwork,         // left the modeled network (e.g. toward an external peer)
  kNoRoute,              // no FIB entry covered the destination
  kNullRouted,           // matched a drop entry
  kNeighborUnreachable,  // next hop address owned by no (up) interface
  kLoop,                 // revisited a device
  kDeniedIn,             // dropped by an ingress packet filter
  kDeniedOut,            // dropped by an egress packet filter
};

std::string disposition_name(Disposition disposition);

/// Small ordered set of dispositions (a multipath flow can end differently
/// on different branches).
class DispositionSet {
 public:
  void add(Disposition d) { bits_ |= bit(d); }
  bool contains(Disposition d) const { return (bits_ & bit(d)) != 0; }
  bool empty() const { return bits_ == 0; }

  /// Union with another set (multipath branches ending differently).
  void merge(const DispositionSet& other) { bits_ |= other.bits_; }
  /// True if the sets share at least one disposition.
  bool intersects(const DispositionSet& other) const {
    return (bits_ & other.bits_) != 0;
  }

  /// True if every branch ends in success (accepted / delivered / exits).
  bool all_success() const;
  /// True if any branch fails (no-route, null-routed, unreachable, loop).
  bool any_failure() const;

  std::vector<Disposition> values() const;
  std::string to_string() const;

  bool operator==(const DispositionSet&) const = default;

 private:
  static uint16_t bit(Disposition d) {
    return static_cast<uint16_t>(1u << static_cast<int>(d));
  }
  uint16_t bits_ = 0;
};

}  // namespace mfv::verify
