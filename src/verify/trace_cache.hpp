// Per-snapshot memoization of trace continuations.
//
// Forwarding of a packet is a function of (current device, packet class)
// only — never of how the packet got there. The legacy engine ignores
// this and re-walks the forwarding graph for every (source x class) pair,
// an O(S*C*pathlen) sweep. TraceCache instead computes, per class, the
// disposition set of *every* node in one depth-first pass over the
// forwarding graph (memoizing each node's continuation), then serves all
// S sources from that table: the S x C trace matrix becomes C
// dynamic-programming passes — an algorithmic win independent of
// threading.
//
// Semantics match the legacy per-flow walker (trace.cpp) exactly, with
// two documented exceptions, both unreachable in realistic snapshots:
//   * path-enumeration truncation (TraceOptions.max_paths) can make the
//     legacy walker *miss* dispositions on flows with > max_paths ECMP
//     branches; the cache always reports the untruncated union;
//   * a simple path longer than max_hops is reported as a loop by the
//     legacy walker and by its true disposition here.
// Loop detection is node-based, like the walker's visited set: a flow
// revisiting a device in *any* label state is a loop. Continuations whose
// loop verdict depends on the path taken (a node revisited in a different
// MPLS label state without a state-graph cycle) are computed per entry
// path and never memoized, so the table stays context-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "verify/disposition.hpp"
#include "verify/forwarding_graph.hpp"

namespace mfv::verify {

/// One memoized continuation in a TraceCache class table (implementation
/// detail, shared with the per-class solver).
struct TraceMemoEntry {
  DispositionSet set;
  /// Node indices the state's subtree traverses. Loop detection is
  /// node-based, so a memoized result is valid for a caller only when
  /// none of these nodes are already on the caller's path — otherwise
  /// the legacy walker would have declared a loop at that node and the
  /// continuation recorded here never runs (found by the
  /// serial-vs-threaded fuzz oracle; regression in tests/fuzz_corpus/).
  std::vector<uint32_t> footprint;
};

class TraceCache {
 public:
  /// `metrics`, when set, mirrors hits/misses/re-expansions into the
  /// trace_cache_* counter family; the local atomics stay authoritative
  /// for the accessors below either way.
  explicit TraceCache(const ForwardingGraph& graph,
                      obs::MetricsRegistry* metrics = nullptr);

  /// Disposition set of the flow injected at `source` destined to
  /// `destination` (any address of a packet class, typically its
  /// representative). Computes the per-node table for that destination on
  /// first use. An unknown source reports NO_ROUTE, like trace_flow.
  DispositionSet dispositions(const net::NodeName& source,
                              net::Ipv4Address destination);

  /// Precomputes the table for `destination`'s class (idempotent).
  void warm(net::Ipv4Address destination);

  /// Partial solve: dispositions for `sources` only (returned in order),
  /// computing just those roots and the continuations they reach instead
  /// of the whole node table. The incremental splicer uses this when a
  /// dirty column needs a handful of re-traced cells — paying solve_all's
  /// O(nodes) there would erase the splice win. Memoized entries land in
  /// the same class table, so a later warm()/dispositions() completes the
  /// remaining roots without repeating work. Unknown sources report
  /// NO_ROUTE, like dispositions().
  std::vector<DispositionSet> dispositions_for(
      const std::vector<net::NodeName>& sources, net::Ipv4Address destination);

  /// Number of distinct destination classes resolved so far.
  size_t classes_cached() const;

  /// Observability for long-lived caches (the service's per-snapshot
  /// caches): a hit is a table_for() that found the class table already
  /// solved, a miss is one that ran the solver. hits/(hits+misses) is the
  /// memoization rate across every request served from this cache.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Memoized continuations found but re-expanded in context because a
  /// footprint node was already on the caller's path (see ClassSolver).
  uint64_t reexpansions() const {
    return reexpansions_.load(std::memory_order_relaxed);
  }

  /// Thread-safety: concurrent calls are safe for any mix of
  /// destinations; each class table is computed exactly once (callers
  /// sharding by class never contend).

 private:
  struct ClassTable {
    /// Guards memo and fully_solved: partial solves append under the
    /// lock, the full solve runs once under it, and after fully_solved
    /// flips the memo is immutable (lock-free reads are safe).
    std::mutex mutex;
    bool fully_solved = false;
    /// state key -> memoized continuation; populated for every node once
    /// fully_solved.
    std::unordered_map<uint64_t, TraceMemoEntry> memo;
  };

  ClassTable& slot_for(net::Ipv4Address destination);
  ClassTable& table_for(net::Ipv4Address destination);

  const ForwardingGraph& graph_;
  /// Stable node -> dense index mapping (for state keys).
  std::map<net::NodeName, uint32_t> node_index_;
  std::vector<net::NodeName> node_names_;

  mutable std::mutex mutex_;
  std::unordered_map<uint32_t, std::unique_ptr<ClassTable>> tables_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> reexpansions_{0};
  /// Optional registry mirrors (null when no registry was injected).
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* reexpansions_counter_ = nullptr;
};

}  // namespace mfv::verify
