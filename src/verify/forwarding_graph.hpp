// Forwarding-graph model of a dataplane snapshot.
//
// Indexes a gnmi::Snapshot for fast per-hop resolution: per-device LPM
// tries over the AFT entries, an address-ownership map (who answers for a
// next-hop IP), and per-device connected subnets (attached delivery). This
// is the "formally model the dataplane" stage of §4.2 — everything the
// trace walker and the exhaustive queries need.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gnmi/gnmi.hpp"
#include "net/prefix_trie.hpp"
#include "verify/packet_classes.hpp"

namespace mfv::verify {

class ForwardingGraph {
 public:
  explicit ForwardingGraph(const gnmi::Snapshot& snapshot);

  const gnmi::Snapshot& snapshot() const { return snapshot_; }

  std::vector<net::NodeName> nodes() const;
  bool has_node(const net::NodeName& node) const {
    return snapshot_.devices.count(node) > 0;
  }

  /// LPM lookup of `destination` in `node`'s AFT.
  const aft::Ipv4Entry* lookup(const net::NodeName& node,
                               net::Ipv4Address destination) const;

  /// MPLS label lookup in `node`'s AFT (LSP following).
  const aft::LabelEntry* lookup_label(const net::NodeName& node, uint32_t label) const;
  std::vector<aft::NextHop> label_next_hops(const net::NodeName& node,
                                            const aft::LabelEntry& entry) const;

  /// Resolved next hops of an entry on a node (empty if the group is
  /// dangling — treated as unreachable by the walker).
  std::vector<aft::NextHop> next_hops(const net::NodeName& node,
                                      const aft::Ipv4Entry& entry) const;

  /// Device owning `address` on an operationally-up interface.
  std::optional<net::NodeName> address_owner(net::Ipv4Address address) const;

  /// True if `node` owns `address` on an up interface.
  bool owns(const net::NodeName& node, net::Ipv4Address address) const;

  /// True if `address` falls in one of `node`'s up connected subnets.
  bool on_connected_subnet(const net::NodeName& node, net::Ipv4Address address) const;

  /// Interface state lookup (packet filters, addresses).
  const aft::InterfaceState* interface_state(const net::NodeName& node,
                                             const net::InterfaceName& interface) const;
  /// The up interface of `node` owning `address` (ingress resolution).
  const aft::InterfaceState* interface_owning(const net::NodeName& node,
                                              net::Ipv4Address address) const;

  /// Applies the egress filter of (node, interface) to `destination`.
  /// True = forward; absent filter permits.
  bool egress_permits(const net::NodeName& node, const net::InterfaceName& interface,
                      net::Ipv4Address destination) const;
  /// Applies the ingress filter of the interface owning `via` on `node`.
  bool ingress_permits(const net::NodeName& node, net::Ipv4Address via,
                       net::Ipv4Address destination) const;

  /// Every distinct prefix that shapes forwarding anywhere: all FIB
  /// prefixes plus all interface subnets and addresses. The packet-class
  /// partition is computed from this set.
  std::vector<net::Ipv4Prefix> relevant_prefixes() const;

  /// Precomputes, for every node, the LPM resolution of each class
  /// representative; lookup() then serves those exact addresses from a
  /// flat hash table instead of descending the trie — the per-hop cost of
  /// a query sweep stops paying the trie walk. Idempotent and cumulative
  /// across partitions (differential queries prime both snapshots with
  /// the union partition). Not safe against concurrent lookup(): prime
  /// before the parallel phase of a query.
  void prime_class_lpm(const std::vector<PacketClass>& classes) const;

 private:
  gnmi::Snapshot snapshot_;
  std::map<net::NodeName, net::PrefixTrie<const aft::Ipv4Entry*>> tries_;
  std::map<uint32_t, net::NodeName> owners_;  // address bits -> node
  std::map<net::NodeName, std::vector<net::Ipv4Prefix>> connected_;
  /// Primed per-representative LPM results (nullptr = cached "no route").
  mutable std::map<net::NodeName,
                   std::unordered_map<uint32_t, const aft::Ipv4Entry*>>
      lpm_index_;
};

}  // namespace mfv::verify
