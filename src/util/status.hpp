// Lightweight Status / Result<T> types (std::expected is C++23; we target
// C++20). Used for recoverable errors such as malformed configuration or
// unknown gNMI paths; programming errors use assertions/exceptions.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mfv::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  // Service-facing codes (mfv::service wire protocol):
  kResourceExhausted,  // admission control rejected the request (queue full)
  kDeadlineExceeded,   // the request's deadline passed before completion
  kUnavailable,        // the service is shutting down / not accepting work
};

/// Error-or-success value without a payload.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status() / ok_status() for success");
  }

  static Status ok_status() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (ok()) return "OK";
    return code_name(code_) + ": " + message_;
  }

  static std::string code_name(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
      case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
      case StatusCode::kUnavailable: return "UNAVAILABLE";
    }
    return "UNKNOWN";
  }

  /// Inverse of code_name (wire decoding); nullopt for unknown names.
  static std::optional<StatusCode> code_from_name(const std::string& name) {
    for (StatusCode code :
         {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
          StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
          StatusCode::kUnimplemented, StatusCode::kInternal,
          StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
          StatusCode::kUnavailable})
      if (code_name(code) == name) return code;
    return std::nullopt;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status invalid_argument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status not_found(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status already_exists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
inline Status failed_precondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
inline Status internal_error(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status resource_exhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status deadline_exceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status unavailable(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

/// Value-or-Status. `value()` throws std::runtime_error on error so misuse
/// fails loudly in tests.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result from OK status has no value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    if (!ok()) throw std::runtime_error("Result::value on error: " + status().to_string());
    return std::get<T>(data_);
  }
  T& value() & {
    if (!ok()) throw std::runtime_error("Result::value on error: " + status().to_string());
    return std::get<T>(data_);
  }
  T&& value() && {
    if (!ok()) throw std::runtime_error("Result::value on error: " + status().to_string());
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (ok()) return Status::ok_status();
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace mfv::util
