// Copy-on-write container wrapper for forkable state.
//
// Emulation::fork() deep-copies every router; for a converged base the
// bulk of that copy is large route tables (BGP Adj-RIBs, decision
// outcomes, compiled FIBs) that most what-if scenarios never touch
// again. Wrapping them in Cow<T> makes the fork itself O(1) per table —
// the fork shares the base's storage and pays for a private copy only on
// its first mutation, which for unchanged tables is never.
//
// Thread-safety: scenario shards run forks of the same base
// concurrently. Shared storage is only ever read; mutate() on a shared
// table clones it into this instance before writing. The use_count()==1
// fast path is sound: this Cow holds one reference, so a count of 1
// proves no other owner exists (a new owner could only appear by copying
// an existing reference, which some owner would have to hold).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

namespace mfv::util {

/// Process-wide count of actual copy-on-write clones — mutate() calls
/// that found shared storage and paid for a private copy. A fork that
/// never triggers clones is the whole point of Cow, so this is the
/// number to watch: the scenario runner samples it around a sweep and
/// reports the delta as `scenario_cow_clones`.
inline std::atomic<uint64_t>& cow_clone_count() {
  static std::atomic<uint64_t> count{0};
  return count;
}

template <typename T>
class Cow {
 public:
  Cow() : data_(std::make_shared<T>()) {}
  Cow(const Cow&) = default;
  Cow(Cow&& other) noexcept : data_(std::move(other.data_)) { other.reset(); }
  Cow& operator=(const Cow&) = default;
  Cow& operator=(Cow&& other) noexcept {
    data_ = std::move(other.data_);
    other.reset();
    return *this;
  }
  /// Replaces the contents wholesale (no copy of the old value).
  Cow& operator=(T value) {
    data_ = std::make_shared<T>(std::move(value));
    return *this;
  }

  const T& operator*() const { return *data_; }
  const T* operator->() const { return data_.get(); }

  /// Mutable access; clones the storage first if it is shared.
  T& mutate() {
    if (data_.use_count() != 1) {
      data_ = std::make_shared<T>(*data_);
      cow_clone_count().fetch_add(1, std::memory_order_relaxed);
    }
    return *data_;
  }

  /// Resets to a default-constructed value (no copy of the old value).
  void reset() { data_ = std::make_shared<T>(); }

 private:
  std::shared_ptr<T> data_;
};

}  // namespace mfv::util
