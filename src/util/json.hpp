// Minimal JSON value type with serializer and parser.
//
// Backs the gNMI-style AFT extraction (mfv::gnmi returns OpenConfig-shaped
// JSON documents) and snapshot persistence. Objects preserve insertion
// order so emitted documents are deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.hpp"

namespace mfv::util {

/// Resource limits for parsing untrusted input (the service wire protocol
/// feeds attacker-controlled bytes straight into the parser). Depth bounds
/// the parser's recursion so deeply nested documents error out instead of
/// overflowing the stack; max_bytes (0 = unlimited) rejects oversized
/// documents before any work is done.
struct JsonParseLimits {
  size_t max_depth = 128;
  size_t max_bytes = 0;
};

class Json;
using JsonArray = std::vector<Json>;
using JsonMember = std::pair<std::string, Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}                  // NOLINT
  Json(bool b) : value_(b) {}                                // NOLINT
  Json(int64_t i) : value_(i) {}                             // NOLINT
  Json(int i) : value_(static_cast<int64_t>(i)) {}           // NOLINT
  Json(uint32_t i) : value_(static_cast<int64_t>(i)) {}      // NOLINT
  Json(uint64_t i) : value_(static_cast<int64_t>(i)) {}      // NOLINT
  Json(double d) : value_(d) {}                              // NOLINT
  Json(std::string s) : value_(std::move(s)) {}              // NOLINT
  Json(const char* s) : value_(std::string(s)) {}            // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}                // NOLINT

  static Json object() {
    Json j;
    j.value_ = std::vector<JsonMember>{};
    return j;
  }
  static Json array() {
    Json j;
    j.value_ = JsonArray{};
    return j;
  }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_object() const { return type() == Type::kObject; }
  bool is_array() const { return type() == Type::kArray; }

  bool as_bool() const { return std::get<bool>(value_); }
  int64_t as_int() const {
    if (type() == Type::kDouble) return static_cast<int64_t>(std::get<double>(value_));
    return std::get<int64_t>(value_);
  }
  double as_double() const {
    if (type() == Type::kInt) return static_cast<double>(std::get<int64_t>(value_));
    return std::get<double>(value_);
  }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  const std::vector<JsonMember>& members() const {
    return std::get<std::vector<JsonMember>>(value_);
  }

  /// Object member access; creates the member on mutable access.
  Json& operator[](std::string_view key);
  /// Const lookup; returns nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  void push_back(Json value) { as_array().push_back(std::move(value)); }

  /// Serializes; `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Parses a JSON document; returns nullopt on syntax error. Enforces the
  /// default JsonParseLimits (so pathological nesting can never crash).
  static std::optional<Json> parse(std::string_view text);

  /// Parses untrusted input: like parse(), but returns a Status describing
  /// the first error (kind + byte offset) and applies caller-chosen limits.
  static Result<Json> parse_checked(std::string_view text,
                                    const JsonParseLimits& limits = {});

  bool operator==(const Json& other) const = default;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, JsonArray,
               std::vector<JsonMember>>
      value_;
};

}  // namespace mfv::util
