#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace mfv::util {

Json& Json::operator[](std::string_view key) {
  auto& object = std::get<std::vector<JsonMember>>(value_);
  for (auto& [k, v] : object)
    if (k == key) return v;
  object.emplace_back(std::string(key), Json());
  return object.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members())
    if (k == key) return &v;
  return nullptr;
}

namespace {

void escape_string(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += as_bool() ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(std::get<int64_t>(value_)); break;
    case Type::kDouble: {
      double d = std::get<double>(value_);
      if (std::isfinite(d)) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.17g", d);
        out += buffer;
      } else {
        out += "null";
      }
      break;
    }
    case Type::kString: escape_string(out, as_string()); break;
    case Type::kArray: {
      const auto& array = as_array();
      if (array.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < array.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(out, indent, depth + 1);
        array[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const auto& object = members();
      if (object.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (size_t i = 0; i < object.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_string(out, object[i].first);
        out += indent > 0 ? ": " : ":";
        object[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, const JsonParseLimits& limits)
      : text_(text), limits_(limits) {}

  std::optional<Json> run() {
    if (limits_.max_bytes != 0 && text_.size() > limits_.max_bytes) {
      fail("input of " + std::to_string(text_.size()) + " bytes exceeds limit of " +
           std::to_string(limits_.max_bytes));
      return std::nullopt;
    }
    auto value = parse_value();
    if (!value) return std::nullopt;
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing garbage");
      return std::nullopt;
    }
    return value;
  }

  /// First error recorded during run(), as "<message> at byte <offset>".
  std::string error() const {
    return error_.empty() ? std::string("malformed JSON")
                          : error_ + " at byte " + std::to_string(error_pos_);
  }

 private:
  /// Records the first failure; later failures (unwinding) keep the
  /// original, most specific message.
  std::nullopt_t fail(std::string message) {
    if (error_.empty()) {
      error_ = std::move(message);
      error_pos_ = pos_;
    }
    return std::nullopt;
  }
  void skip_whitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  bool eat(char c) {
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json(nullptr);
    return parse_number();
  }

  bool enter() {
    if (depth_ >= limits_.max_depth) {
      fail("nesting exceeds depth limit of " + std::to_string(limits_.max_depth));
      return false;
    }
    ++depth_;
    return true;
  }

  std::optional<Json> parse_object() {
    if (!eat('{')) return fail("expected '{'");
    if (!enter()) return std::nullopt;
    Json object = Json::object();
    skip_whitespace();
    if (eat('}')) {
      --depth_;
      return object;
    }
    while (true) {
      skip_whitespace();
      auto key = parse_string();
      if (!key) return std::nullopt;
      if (!eat(':')) return fail("expected ':' after object key");
      auto value = parse_value();
      if (!value) return std::nullopt;
      object[*key] = std::move(*value);
      if (eat(',')) continue;
      if (eat('}')) {
        --depth_;
        return object;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<Json> parse_array() {
    if (!eat('[')) return fail("expected '['");
    if (!enter()) return std::nullopt;
    Json array = Json::array();
    skip_whitespace();
    if (eat(']')) {
      --depth_;
      return array;
    }
    while (true) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      array.push_back(std::move(*value));
      if (eat(',')) continue;
      if (eat(']')) {
        --depth_;
        return array;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  std::optional<std::string> parse_string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return std::nullopt;
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
          return std::nullopt;
        }
        char escape = text_[pos_++];
        switch (escape) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("invalid \\u escape digit");
                return std::nullopt;
              }
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape character");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> parse_number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("invalid value");
    if (!is_double) {
      int64_t value = 0;
      auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) return Json(value);
    }
    double value = 0;
    auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size())
      return fail("invalid number");
    return Json(value);
  }

  std::string_view text_;
  JsonParseLimits limits_;
  size_t pos_ = 0;
  size_t depth_ = 0;
  std::string error_;
  size_t error_pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text, JsonParseLimits{}).run();
}

Result<Json> Json::parse_checked(std::string_view text, const JsonParseLimits& limits) {
  Parser parser(text, limits);
  auto value = parser.run();
  if (!value) return invalid_argument("JSON parse error: " + parser.error());
  return std::move(*value);
}

}  // namespace mfv::util
