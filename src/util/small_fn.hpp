// Small-buffer move-only callable for the event hot path.
//
// std::function is the wrong container for kernel events: a delivery
// lambda capturing a proto::Message (~100 bytes) blows past std::function's
// tiny SBO and heap-allocates on every scheduled message. SmallFn sizes its
// inline buffer for exactly that case, so the emulator's send paths build
// events with zero allocations; captures that do not fit (or whose move
// can throw) fall back to a single heap cell. Move-only on purpose —
// events are consumed exactly once and copying a captured Message would be
// its own hidden cost.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mfv::util {

class SmallFn {
 public:
  /// Sized for the emulator's fattest hot-path event: a link delivery
  /// capturing {Emulation*, LinkEnd*, epoch, proto::Message}. Anything
  /// larger still works, it just heap-allocates like std::function did.
  static constexpr size_t kInlineCapacity = 136;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor): callable adapter
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Decayed) <= kInlineCapacity &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(fn));
      ops_ = &kInlineOps<Decayed>;
    } else {
      ::new (static_cast<void*>(storage_)) Decayed*(new Decayed(std::forward<F>(fn)));
      ops_ = &kHeapOps<Decayed>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  /// True when the callable lives in the inline buffer (no heap cell).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into `to` and destroys the source.
    void (*relocate)(void* to, void* from);
    void (*destroy)(void* storage);
    bool inline_storage;
  };

  template <typename T>
  static T* laundered(void* storage) {
    return std::launder(reinterpret_cast<T*>(storage));
  }

  template <typename Decayed>
  static constexpr Ops kInlineOps = {
      [](void* storage) { (*laundered<Decayed>(storage))(); },
      [](void* to, void* from) {
        Decayed* source = laundered<Decayed>(from);
        ::new (to) Decayed(std::move(*source));
        source->~Decayed();
      },
      [](void* storage) { laundered<Decayed>(storage)->~Decayed(); },
      /*inline_storage=*/true,
  };

  template <typename Decayed>
  static constexpr Ops kHeapOps = {
      [](void* storage) { (**laundered<Decayed*>(storage))(); },
      [](void* to, void* from) {
        ::new (to) Decayed*(*laundered<Decayed*>(from));
      },
      [](void* storage) { delete *laundered<Decayed*>(storage); },
      /*inline_storage=*/false,
  };

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace mfv::util
