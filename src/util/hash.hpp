// Content hashing for the service's content-addressed snapshot store.
//
// FNV-1a over canonical byte strings: not cryptographic, but stable across
// runs and platforms, which is all content addressing inside one trusted
// store needs (keys are derived server-side, never accepted from clients
// as proofs). 64 bits keeps accidental collisions out of realistic store
// sizes (~billions of entries for a 50% chance).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mfv::util {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

constexpr uint64_t fnv1a(std::string_view bytes, uint64_t seed = kFnvOffset) {
  uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Chains a 64-bit value into a running hash (for composing field hashes).
constexpr uint64_t fnv1a_mix(uint64_t value, uint64_t seed = kFnvOffset) {
  uint64_t hash = seed;
  for (int i = 0; i < 8; ++i) {
    hash ^= value & 0xff;
    hash *= kFnvPrime;
    value >>= 8;
  }
  return hash;
}

inline std::string hex64(uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

/// Inverse of hex64; false on non-hex input or wrong length.
inline bool parse_hex64(std::string_view text, uint64_t& out) {
  if (text.size() != 16) return false;
  out = 0;
  for (char c : text) {
    uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint64_t>(c - 'a' + 10);
    else return false;
    out = (out << 4) | digit;
  }
  return true;
}

}  // namespace mfv::util
