// Content hashing for the service's content-addressed snapshot store.
//
// FNV-1a over canonical byte strings: not cryptographic, but stable across
// runs and platforms, which is all content addressing inside one trusted
// store needs (keys are derived server-side, never accepted from clients
// as proofs). 64 bits keeps accidental collisions out of realistic store
// sizes (~billions of entries for a 50% chance).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mfv::util {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

constexpr uint64_t fnv1a(std::string_view bytes, uint64_t seed = kFnvOffset) {
  uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Chains a 64-bit value into a running hash (for composing field hashes).
constexpr uint64_t fnv1a_mix(uint64_t value, uint64_t seed = kFnvOffset) {
  uint64_t hash = seed;
  for (int i = 0; i < 8; ++i) {
    hash ^= value & 0xff;
    hash *= kFnvPrime;
    value >>= 8;
  }
  return hash;
}

/// splitmix64 finalizer: a full-avalanche 64-bit mix with no structural
/// relationship to FNV-1a's multiply-xor chain.
constexpr uint64_t splitmix_mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Second, FNV-independent content hash (splitmix64 avalanche over 8-byte
/// blocks, length-salted). Used where a single 64-bit hash must not be
/// trusted alone — e.g. the snapshot store's dedup verifies content
/// identity with this before treating two entries as the same, so a
/// (vanishingly unlikely, but silently wrong) FNV collision degrades to a
/// counted disambiguation instead of serving one tenant's network for
/// another's.
constexpr uint64_t splitmix_hash(std::string_view bytes,
                                 uint64_t seed = 0x243f6a8885a308d3ull) {
  uint64_t hash = seed;
  uint64_t word = 0;
  int shift = 0;
  for (char c : bytes) {
    word |= static_cast<uint64_t>(static_cast<uint8_t>(c)) << shift;
    shift += 8;
    if (shift == 64) {
      hash = splitmix_mix(hash ^ word);
      word = 0;
      shift = 0;
    }
  }
  return splitmix_mix(hash ^ word ^ (static_cast<uint64_t>(bytes.size()) << 1));
}

inline std::string hex64(uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

/// Inverse of hex64; false on non-hex input or wrong length.
inline bool parse_hex64(std::string_view text, uint64_t& out) {
  if (text.size() != 16) return false;
  out = 0;
  for (char c : text) {
    uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint64_t>(c - 'a' + 10);
    else return false;
    out = (out << 4) | digit;
  }
  return true;
}

}  // namespace mfv::util
