#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace mfv::util {

unsigned ThreadPool::default_threads() {
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

namespace {

/// Workers pull shard indices from a shared counter; results are keyed by
/// shard index in the caller, so the pull order is invisible downstream.
void run_shards(ThreadPool* pool, unsigned inline_threads, size_t shards,
                const std::function<void(size_t)>& fn) {
  if (shards == 0) return;
  unsigned threads = pool ? pool->size() : inline_threads;
  if (threads <= 1 || shards == 1) {
    for (size_t shard = 0; shard < shards; ++shard) fn(shard);
    return;
  }

  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();
  auto drain = [next, error, error_mutex, shards, &fn] {
    for (size_t shard = next->fetch_add(1); shard < shards;
         shard = next->fetch_add(1)) {
      try {
        fn(shard);
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mutex);
        if (!*error) *error = std::current_exception();
      }
    }
  };

  unsigned helpers = threads - 1;  // the caller drains too
  if (static_cast<size_t>(helpers) > shards - 1)
    helpers = static_cast<unsigned>(shards - 1);
  if (pool) {
    for (unsigned i = 0; i < helpers; ++i) pool->submit(drain);
    drain();
    pool->wait_idle();
  } else {
    std::vector<std::thread> crew;
    crew.reserve(helpers);
    for (unsigned i = 0; i < helpers; ++i) crew.emplace_back(drain);
    drain();
    for (std::thread& helper : crew) helper.join();
  }
  if (*error) std::rethrow_exception(*error);
}

}  // namespace

void parallel_for_shards(unsigned threads, size_t shards,
                         const std::function<void(size_t)>& fn) {
  if (threads == 0) threads = ThreadPool::default_threads();
  run_shards(nullptr, threads, shards, fn);
}

void parallel_for_shards(ThreadPool& pool, size_t shards,
                         const std::function<void(size_t)>& fn) {
  run_shards(&pool, 0, shards, fn);
}

}  // namespace mfv::util
