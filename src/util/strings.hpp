// Small string helpers used by the config parsers and CLI renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mfv::util {

/// Splits on `delimiter`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Splits on runs of whitespace, dropping empty fields (tokenization).
std::vector<std::string> split_whitespace(std::string_view text);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view text);

std::string join(const std::vector<std::string>& parts, std::string_view separator);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Number of leading space characters (config indent depth).
int indent_of(std::string_view line);

std::string to_lower(std::string_view text);

/// Parses a non-negative integer; returns false on any non-digit input.
bool parse_uint32(std::string_view text, uint32_t& out);
bool parse_uint64(std::string_view text, uint64_t& out);

}  // namespace mfv::util
