// Minimal leveled logger used across the library.
//
// The emulator runs thousands of routers in-process, so logging must be
// cheap when disabled: the macro checks the level before evaluating the
// message expression.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace mfv::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Applies the MFV_LOG_LEVEL environment variable when set and valid;
/// returns true if the level changed. Daemons call this at startup so log
/// verbosity is controllable without a rebuild (mfvd), but any binary may.
bool init_log_level_from_env();

/// Emits one line to stderr: "[LEVEL] component: message". Thread-safe:
/// the line is assembled first and written with a single write(2), so
/// concurrent loggers never interleave within a line. Filters on
/// log_level() itself, so direct callers get the same gating as MFV_LOG.
void log_line(LogLevel level, std::string_view component, std::string_view message);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace mfv::util

#define MFV_LOG(level, component)                                      \
  if (::mfv::util::LogLevel::level < ::mfv::util::log_level()) {       \
  } else                                                               \
    ::mfv::util::detail::LogMessage(::mfv::util::LogLevel::level, component)
