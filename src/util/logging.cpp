#include "util/logging.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>

#include "util/strings.hpp"

namespace mfv::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower = to_lower(trim(name));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

bool init_log_level_from_env() {
  const char* value = std::getenv("MFV_LOG_LEVEL");
  if (value == nullptr) return false;
  std::optional<LogLevel> level = parse_log_level(value);
  if (!level || *level == log_level()) return false;
  set_log_level(*level);
  return true;
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  // Assemble the full line and emit it with one write(2): writes of a
  // whole line are never interleaved mid-line between threads (atomic for
  // pipes up to PIPE_BUF, and appends for regular files/terminals).
  std::string line;
  line.reserve(16 + component.size() + message.size());
  line += '[';
  line += level_name(level);
  line += "] ";
  line.append(component.data(), component.size());
  line += ": ";
  line.append(message.data(), message.size());
  line += '\n';
  size_t written = 0;
  while (written < line.size()) {
    ssize_t n = ::write(STDERR_FILENO, line.data() + written, line.size() - written);
    if (n <= 0) return;  // stderr gone; nothing useful to do
    written += static_cast<size_t>(n);
  }
}

}  // namespace mfv::util
