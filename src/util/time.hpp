// Virtual time for the discrete-event emulation.
//
// All simulated time is integer microseconds since emulation start. Using a
// dedicated wrapper (not std::chrono) keeps arithmetic explicit and makes
// accidental mixing with wall-clock time a type error.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace mfv::util {

class Duration {
 public:
  constexpr Duration() : micros_(0) {}
  constexpr explicit Duration(int64_t micros) : micros_(micros) {}

  static constexpr Duration micros(int64_t n) { return Duration(n); }
  static constexpr Duration millis(int64_t n) { return Duration(n * 1000); }
  static constexpr Duration seconds(int64_t n) { return Duration(n * 1000000); }
  static constexpr Duration minutes(int64_t n) { return Duration(n * 60000000); }

  constexpr int64_t count_micros() const { return micros_; }
  constexpr double seconds_double() const { return static_cast<double>(micros_) / 1e6; }

  constexpr Duration operator+(Duration other) const { return Duration(micros_ + other.micros_); }
  constexpr Duration operator-(Duration other) const { return Duration(micros_ - other.micros_); }
  constexpr Duration operator*(int64_t factor) const { return Duration(micros_ * factor); }
  constexpr auto operator<=>(const Duration&) const = default;

  std::string to_string() const;

 private:
  int64_t micros_;
};

class TimePoint {
 public:
  constexpr TimePoint() : micros_(0) {}
  constexpr explicit TimePoint(int64_t micros) : micros_(micros) {}

  constexpr int64_t count_micros() const { return micros_; }
  constexpr double seconds_double() const { return static_cast<double>(micros_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(micros_ + d.count_micros()); }
  constexpr Duration operator-(TimePoint other) const { return Duration(micros_ - other.micros_); }
  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string to_string() const;

 private:
  int64_t micros_;
};

inline std::string Duration::to_string() const {
  if (micros_ >= 60000000 && micros_ % 60000000 == 0)
    return std::to_string(micros_ / 60000000) + "min";
  if (micros_ >= 1000000)
    return std::to_string(static_cast<double>(micros_) / 1e6).substr(0, 6) + "s";
  if (micros_ >= 1000) return std::to_string(micros_ / 1000) + "ms";
  return std::to_string(micros_) + "us";
}

inline std::string TimePoint::to_string() const {
  return "t+" + Duration(micros_).to_string();
}

}  // namespace mfv::util
