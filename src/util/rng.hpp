// Deterministic PCG32 random number generator.
//
// All stochastic behaviour in the emulator (boot-time jitter, message
// scheduling jitter, workload generation) draws from seeded instances of
// this generator, so every experiment is reproducible from its seed
// (DESIGN.md §5, "Determinism by default").
#pragma once

#include <cstdint>

namespace mfv::util {

class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed, uint64_t stream = 0x14057B7EF767814Full) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next();
    state_ += seed;
    next();
  }

  /// Uniform 32-bit value.
  uint32_t next() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform value in [0, bound) without modulo bias. bound must be > 0.
  uint32_t next_below(uint32_t bound) {
    uint32_t threshold = (0u - bound) % bound;
    while (true) {
      uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  uint32_t next_in(uint32_t lo, uint32_t hi) { return lo + next_below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double next_double() { return next() * (1.0 / 4294967296.0); }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace mfv::util
