// Worker-thread pool and deterministic sharded-parallelism helper.
//
// The verification engine shards query work (packet classes, destination
// devices) across workers. Determinism-by-default survives because shards
// write into shard-indexed result slots: which worker executes a shard
// never influences any output byte, only wall-clock time.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mfv::util {

/// Fixed-size pool of worker threads. Tasks submitted via submit() run in
/// FIFO order across workers; wait_idle() blocks until every submitted
/// task has completed. Tasks must not throw (use parallel_for_shards for
/// exception propagation).
class ThreadPool {
 public:
  /// threads == 0 picks hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// report 0 on exotic platforms).
  static unsigned default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  size_t in_flight_ = 0;  // queued + executing
  bool stop_ = false;
};

/// Runs fn(shard) for every shard in [0, shards) on up to `threads`
/// workers (0 = hardware concurrency). Each shard executes exactly once;
/// callers store results into shard-indexed slots, so the output is
/// identical for any worker count — the determinism contract of the
/// engine. With threads <= 1 or shards <= 1 everything runs inline on the
/// calling thread in shard order. The first exception thrown by any shard
/// is rethrown on the caller after all workers stop.
void parallel_for_shards(unsigned threads, size_t shards,
                         const std::function<void(size_t)>& fn);

/// Same, reusing an existing pool (the pool's size caps the parallelism).
void parallel_for_shards(ThreadPool& pool, size_t shards,
                         const std::function<void(size_t)>& fn);

}  // namespace mfv::util
