#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace mfv::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

int indent_of(std::string_view line) {
  int indent = 0;
  for (char c : line) {
    if (c == ' ') ++indent;
    else break;
  }
  return indent;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool parse_uint32(std::string_view text, uint32_t& out) {
  uint64_t wide = 0;
  if (!parse_uint64(text, wide) || wide > 0xFFFFFFFFull) return false;
  out = static_cast<uint32_t>(wide);
  return true;
}

bool parse_uint64(std::string_view text, uint64_t& out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

}  // namespace mfv::util
