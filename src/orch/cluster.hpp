// Cluster and pod-scheduling model: the KNE-on-Kubernetes substrate.
//
// Reproduces the resource arithmetic of the paper's scaling experiment
// (§5): each emulated Arista router requests 0.5 vCPU and 1 GB of RAM, so
// a 32-vCPU / 128-GB machine holds up to 60 routers (2 vCPUs reserved for
// system pods), and a 17-node cluster holds 1,000. Also models the one-time
// startup cost (cluster init + image pull + container boot) versus the much
// faster reconfiguration path.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "config/device_config.hpp"
#include "emu/topology.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace mfv::orch {

/// One Kubernetes worker machine.
struct MachineSpec {
  std::string name;
  double vcpus = 32;           // e2-standard-32
  uint64_t memory_mb = 131072; // 128 GB
  /// vCPUs reserved for kubelet/system pods.
  double reserved_vcpus = 2.0;
};

struct ClusterSpec {
  std::vector<MachineSpec> machines;

  /// n identical e2-standard-32 machines (the paper's machine type).
  static ClusterSpec standard(int machine_count);
};

/// Packaging of the router image: the container shift is what made
/// digital-twin scale affordable (§1, §3).
enum class ImageKind { kContainer, kVm };

/// Per-pod resource request for a vendor + packaging.
struct ResourceProfile {
  double vcpus = 0.5;
  uint64_t memory_mb = 1024;
};
ResourceProfile resource_profile(config::Vendor vendor, ImageKind kind);

struct PodSpec {
  std::string name;
  config::Vendor vendor = config::Vendor::kCeos;
  ImageKind image = ImageKind::kContainer;
};

struct Placement {
  /// pod name -> machine name.
  std::map<std::string, std::string> assignment;
  /// Remaining capacity per machine after placement.
  std::map<std::string, ResourceProfile> remaining;
};

/// First-fit-decreasing bin packing by vCPU request. Fails with
/// FAILED_PRECONDITION naming the first unschedulable pod if capacity runs
/// out — this failure boundary *is* the "up to 60 routers per machine"
/// result.
util::Result<Placement> schedule_pods(const ClusterSpec& cluster,
                                      const std::vector<PodSpec>& pods);

/// Maximum number of identical pods one machine can hold.
int machine_capacity(const MachineSpec& machine, const ResourceProfile& profile);

// ---------------------------------------------------------------------------
// Startup-time model

struct BootModelOptions {
  uint64_t seed = 1;
  /// Cluster infrastructure init (control plane, CNI, KNE controllers).
  util::Duration base_init = util::Duration::seconds(420);
  /// One-time image pull per machine (parallel across machines).
  util::Duration image_pull_min = util::Duration::seconds(120);
  util::Duration image_pull_max = util::Duration::seconds(240);
  /// Per-pod router OS boot range (container images).
  util::Duration boot_min = util::Duration::seconds(60);
  util::Duration boot_max = util::Duration::seconds(180);
  /// VM images boot ~3x slower.
  double vm_boot_factor = 3.0;
  /// Concurrent pod boots per machine (boot is CPU/IO bound).
  int boots_per_machine = 16;
};

struct BootPlan {
  /// Per pod: virtual time at which the router OS is up.
  std::map<std::string, util::Duration> ready_at;
  /// Time until the whole deployment is up (max of ready_at + init).
  util::Duration total_startup;
};

/// Computes boot completion times for a placed deployment.
BootPlan plan_boot(const ClusterSpec& cluster, const std::vector<PodSpec>& pods,
                   const Placement& placement, const BootModelOptions& options = {});

// ---------------------------------------------------------------------------
// Orchestrator: topology -> scheduled, booted emulation inputs

struct DeploymentPlan {
  std::vector<PodSpec> pods;
  Placement placement;
  BootPlan boot;
};

/// Plans the deployment of an emulation topology on a cluster: derives pod
/// specs from node vendors, schedules, and computes the boot plan. The
/// caller then feeds `boot.ready_at` into Emulation::start_node_after so
/// control-plane convergence starts when each container is actually up.
util::Result<DeploymentPlan> plan_deployment(const ClusterSpec& cluster,
                                             const emu::Topology& topology,
                                             ImageKind image = ImageKind::kContainer,
                                             const BootModelOptions& options = {});

}  // namespace mfv::orch
