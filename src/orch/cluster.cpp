#include "orch/cluster.hpp"

#include <algorithm>

namespace mfv::orch {

ClusterSpec ClusterSpec::standard(int machine_count) {
  ClusterSpec cluster;
  for (int i = 0; i < machine_count; ++i) {
    MachineSpec machine;
    machine.name = "node-" + std::to_string(i);
    cluster.machines.push_back(std::move(machine));
  }
  return cluster;
}

ResourceProfile resource_profile(config::Vendor vendor, ImageKind kind) {
  ResourceProfile profile;
  switch (vendor) {
    case config::Vendor::kCeos:
      profile = {0.5, 1024};  // the paper's cEOS numbers
      break;
    case config::Vendor::kVjun:
      profile = {1.0, 2048};
      break;
  }
  if (kind == ImageKind::kVm) {
    // VM images carry a full guest kernel + hypervisor overhead.
    profile.vcpus *= 4;
    profile.memory_mb *= 4;
  }
  return profile;
}

int machine_capacity(const MachineSpec& machine, const ResourceProfile& profile) {
  double usable_vcpus = machine.vcpus - machine.reserved_vcpus;
  int by_cpu = profile.vcpus > 0 ? static_cast<int>(usable_vcpus / profile.vcpus) : INT32_MAX;
  int by_mem = profile.memory_mb > 0
                   ? static_cast<int>(machine.memory_mb / profile.memory_mb)
                   : INT32_MAX;
  return std::max(0, std::min(by_cpu, by_mem));
}

util::Result<Placement> schedule_pods(const ClusterSpec& cluster,
                                      const std::vector<PodSpec>& pods) {
  struct MachineState {
    const MachineSpec* machine;
    double vcpus_left;
    uint64_t memory_left;
  };
  std::vector<MachineState> machines;
  machines.reserve(cluster.machines.size());
  for (const MachineSpec& machine : cluster.machines)
    machines.push_back({&machine, machine.vcpus - machine.reserved_vcpus,
                        machine.memory_mb});

  // First-fit-decreasing by vCPU request.
  std::vector<const PodSpec*> order;
  order.reserve(pods.size());
  for (const PodSpec& pod : pods) order.push_back(&pod);
  std::stable_sort(order.begin(), order.end(), [](const PodSpec* a, const PodSpec* b) {
    return resource_profile(a->vendor, a->image).vcpus >
           resource_profile(b->vendor, b->image).vcpus;
  });

  Placement placement;
  for (const PodSpec* pod : order) {
    ResourceProfile need = resource_profile(pod->vendor, pod->image);
    bool placed = false;
    for (MachineState& machine : machines) {
      if (machine.vcpus_left + 1e-9 < need.vcpus || machine.memory_left < need.memory_mb)
        continue;
      machine.vcpus_left -= need.vcpus;
      machine.memory_left -= need.memory_mb;
      placement.assignment[pod->name] = machine.machine->name;
      placed = true;
      break;
    }
    if (!placed)
      return util::failed_precondition(
          "pod '" + pod->name + "' unschedulable: cluster capacity exhausted (" +
          std::to_string(pods.size()) + " pods on " +
          std::to_string(cluster.machines.size()) + " machines)");
  }
  for (const MachineState& machine : machines)
    placement.remaining[machine.machine->name] =
        ResourceProfile{machine.vcpus_left, machine.memory_left};
  return placement;
}

BootPlan plan_boot(const ClusterSpec& cluster, const std::vector<PodSpec>& pods,
                   const Placement& placement, const BootModelOptions& options) {
  util::Pcg32 rng(options.seed);
  auto uniform = [&rng](util::Duration lo, util::Duration hi) {
    int64_t range = hi.count_micros() - lo.count_micros();
    if (range <= 0) return lo;
    // Micro resolution is overkill for boot times; millisecond granularity
    // keeps the RNG draw within 32 bits.
    int64_t ms = range / 1000;
    int64_t draw = ms > 0 ? static_cast<int64_t>(rng.next_below(
                                static_cast<uint32_t>(std::min<int64_t>(ms, UINT32_MAX)))) *
                                1000
                          : 0;
    return lo + util::Duration::micros(draw);
  };

  // Image pull per machine, drawn once.
  std::map<std::string, util::Duration> pull_done;
  for (const MachineSpec& machine : cluster.machines)
    pull_done[machine.name] =
        options.base_init + uniform(options.image_pull_min, options.image_pull_max);

  // Pods boot in waves of `boots_per_machine` on each machine.
  std::map<std::string, std::vector<const PodSpec*>> pods_by_machine;
  for (const PodSpec& pod : pods) {
    auto it = placement.assignment.find(pod.name);
    if (it != placement.assignment.end()) pods_by_machine[it->second].push_back(&pod);
  }

  BootPlan plan;
  plan.total_startup = options.base_init;
  for (const auto& [machine, machine_pods] : pods_by_machine) {
    util::Duration base = pull_done[machine];
    int slot = 0;
    util::Duration wave_offset = util::Duration::seconds(0);
    util::Duration wave_max = util::Duration::seconds(0);
    for (const PodSpec* pod : machine_pods) {
      util::Duration boot = uniform(options.boot_min, options.boot_max);
      if (pod->image == ImageKind::kVm)
        boot = util::Duration::micros(static_cast<int64_t>(
            static_cast<double>(boot.count_micros()) * options.vm_boot_factor));
      util::Duration ready = base + wave_offset + boot;
      plan.ready_at[pod->name] = ready;
      plan.total_startup = std::max(plan.total_startup, ready);
      wave_max = std::max(wave_max, boot);
      if (++slot >= options.boots_per_machine) {
        slot = 0;
        wave_offset = wave_offset + wave_max;
        wave_max = util::Duration::seconds(0);
      }
    }
  }
  return plan;
}

util::Result<DeploymentPlan> plan_deployment(const ClusterSpec& cluster,
                                             const emu::Topology& topology,
                                             ImageKind image,
                                             const BootModelOptions& options) {
  DeploymentPlan plan;
  for (const emu::NodeSpec& node : topology.nodes)
    plan.pods.push_back(PodSpec{node.name, node.vendor, image});
  auto placement = schedule_pods(cluster, plan.pods);
  if (!placement.ok()) return placement.status();
  plan.placement = std::move(placement).value();
  plan.boot = plan_boot(cluster, plan.pods, plan.placement, options);
  return plan;
}

}  // namespace mfv::orch
