// gRIBI-style programmatic route injection.
//
// The paper's API suite (§1, §4.1) includes gRIBI [36] — a gRPC interface
// for injecting routing entries into a device's RIB from an external
// controller. This module models that surface: a client that programs
// IPv4 entries (with one or more next hops) onto emulated routers, with
// gRIBI's add/replace/delete verbs and an election-id-free single-client
// simplification. It is what makes the §3 claim concrete: "emulated
// environments also support applying verification to SDN-based networks,
// as they support running an SDN controller" — see examples/sdn_controller.
//
// Injected entries land in the RIB at administrative distance 5
// (preferred over every routing protocol, below connected/static), so a
// controller can override protocol-learned paths, and everything
// downstream — FIB compilation, gNMI extraction, verification — treats
// them like any other route.
#pragma once

#include <vector>

#include "emu/emulation.hpp"
#include "util/status.hpp"

namespace mfv::gribi {

struct RouteEntry {
  net::Ipv4Prefix prefix;
  /// One or more next-hop addresses (ECMP when several). Must resolve
  /// against the device's RIB (connected subnets, typically).
  std::vector<net::Ipv4Address> next_hops;
};

class GribiClient {
 public:
  explicit GribiClient(emu::Emulation& emulation) : emulation_(emulation) {}

  /// Adds or replaces the entry for `entry.prefix` on `node`.
  util::Status add(const net::NodeName& node, const RouteEntry& entry);

  /// Deletes the injected entry for `prefix` on `node`.
  util::Status remove(const net::NodeName& node, const net::Ipv4Prefix& prefix);

  /// Removes every injected entry on `node` (gRIBI Flush).
  util::Status flush(const net::NodeName& node);

  /// Injected entries currently programmed on `node`.
  std::vector<RouteEntry> get(const net::NodeName& node) const;

 private:
  emu::Emulation& emulation_;
};

}  // namespace mfv::gribi
