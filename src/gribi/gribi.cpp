#include "gribi/gribi.hpp"

namespace mfv::gribi {

util::Status GribiClient::add(const net::NodeName& node, const RouteEntry& entry) {
  vrouter::VirtualRouter* router = emulation_.router(node);
  if (router == nullptr) return util::not_found("no such target '" + node + "'");
  if (entry.next_hops.empty())
    return util::invalid_argument("entry for " + entry.prefix.to_string() +
                                  " has no next hops");
  router->program_route(entry.prefix, entry.next_hops);
  return util::Status::ok_status();
}

util::Status GribiClient::remove(const net::NodeName& node, const net::Ipv4Prefix& prefix) {
  vrouter::VirtualRouter* router = emulation_.router(node);
  if (router == nullptr) return util::not_found("no such target '" + node + "'");
  if (!router->unprogram_route(prefix))
    return util::not_found("no programmed entry for " + prefix.to_string() + " on " + node);
  return util::Status::ok_status();
}

util::Status GribiClient::flush(const net::NodeName& node) {
  vrouter::VirtualRouter* router = emulation_.router(node);
  if (router == nullptr) return util::not_found("no such target '" + node + "'");
  router->unprogram_all();
  return util::Status::ok_status();
}

std::vector<RouteEntry> GribiClient::get(const net::NodeName& node) const {
  std::vector<RouteEntry> entries;
  const vrouter::VirtualRouter* router =
      const_cast<const emu::Emulation&>(emulation_).router(node);
  if (router == nullptr) return entries;
  for (const auto& [prefix, next_hops] : router->programmed_routes())
    entries.push_back({prefix, next_hops});
  return entries;
}

}  // namespace mfv::gribi
