// "Incremental Model Dataplane": the model-based baseline's control-plane
// simulation, analogous to Batfish's IBDP (§2).
//
// Computes a converged dataplane directly from parsed configurations by
// fixed-point iteration — no message exchange, no timing, no vendor code.
// Uses the ReferenceParser (partial coverage) and bakes in the model
// simplifications the paper discusses:
//   * deterministic tie-breaking only (no arrival-order effects, §6),
//   * no MPLS / RSVP-TE (E2),
//   * the switchport ordering assumption via the parser (E3),
//   * only the ceos dialect has a parser at all (multi-vendor coverage gap).
//
// Output is a gnmi::Snapshot — the same type the model-free pipeline
// produces — so the identical verification engine runs on both (the
// augment-don't-replace design of §4.2).
#pragma once

#include <map>
#include <string>

#include "config/diagnostics.hpp"
#include "emu/topology.hpp"
#include "gnmi/gnmi.hpp"
#include "model/reference_parser.hpp"

namespace mfv::model {

struct ModelOptions {
  int max_bgp_rounds = 64;
};

struct ModelResult {
  gnmi::Snapshot snapshot;
  std::map<net::NodeName, ReferenceParseResult> parse_results;
  int bgp_rounds = 0;

  size_t total_unrecognized() const {
    size_t n = 0;
    for (const auto& [node, r] : parse_results)
      n += r.diagnostics.unrecognized_count() + r.diagnostics.error_count();
    return n;
  }
};

/// Runs the full model-based pipeline on a topology: parse (partial),
/// simulate control plane to fixpoint, emit dataplane snapshot.
ModelResult run_model(const emu::Topology& topology, const ModelOptions& options = {});

}  // namespace mfv::model
