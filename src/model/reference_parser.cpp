#include "model/reference_parser.hpp"

#include "util/strings.hpp"

namespace mfv::model {
namespace {

using config::DiagnosticSeverity;

struct Line {
  int number = 0;
  int indent = 0;
  std::string text;
  std::vector<std::string> tokens;
};

class ReferenceParser {
 public:
  explicit ReferenceParser(std::string_view text) {
    int number = 0;
    for (std::string_view raw : util::split(text, '\n')) {
      ++number;
      std::string_view trimmed = util::trim(raw);
      if (trimmed.empty() || trimmed[0] == '!') continue;
      size_t bang = trimmed.find(" !");
      if (bang != std::string_view::npos) trimmed = util::trim(trimmed.substr(0, bang));
      lines_.push_back({number, util::indent_of(raw), std::string(trimmed),
                        util::split_whitespace(trimmed)});
    }
  }

  ReferenceParseResult run() {
    result_.total_lines = static_cast<int>(lines_.size());
    while (pos_ < lines_.size()) parse_top_level();
    return std::move(result_);
  }

 private:
  config::DeviceConfig& cfg() { return result_.config; }

  void unrecognized(const Line& line, const std::string& message, bool material) {
    result_.diagnostics.add(DiagnosticSeverity::kUnrecognized, line.number, line.text,
                            message);
    if (material) ++result_.material_unrecognized;
    else ++result_.cosmetic_unrecognized;
  }

  std::vector<size_t> take_block() {
    std::vector<size_t> block;
    while (pos_ < lines_.size() && lines_[pos_].indent > 0) block.push_back(pos_++);
    return block;
  }

  /// Flags the header and its whole block as unrecognized.
  void skip_block(const Line& header, const std::string& message, bool material) {
    unrecognized(header, message, material);
    for (size_t i : take_block()) unrecognized(lines_[i], message, material);
  }

  void parse_top_level() {
    const Line& line = lines_[pos_++];
    const std::string& head = line.tokens.empty() ? kEmpty : line.tokens[0];

    if (head == "hostname" && line.tokens.size() >= 2) {
      cfg().hostname = line.tokens[1];
    } else if (head == "interface" && line.tokens.size() >= 2) {
      parse_interface(line);
    } else if (head == "router" && line.tokens.size() >= 2 && line.tokens[1] == "isis") {
      parse_router_isis(line);
    } else if (head == "router" && line.tokens.size() >= 2 && line.tokens[1] == "ospf") {
      parse_router_ospf(line);
    } else if (head == "router" && line.tokens.size() >= 2 && line.tokens[1] == "bgp") {
      parse_router_bgp(line);
    } else if (head == "router" && line.tokens.size() >= 2 &&
               line.tokens[1] == "traffic-engineering") {
      // MPLS-TE: simply not in the supported feature subset (§5).
      skip_block(line, "RSVP-TE is not supported by the network model", /*material=*/true);
    } else if (head == "mpls") {
      unrecognized(line, "MPLS is not supported by the network model", /*material=*/true);
    } else if (head == "ip" && line.tokens.size() >= 2) {
      parse_ip(line);
    } else if (head == "route-map") {
      parse_route_map(line);
    } else if (head == "end" || head == "exit") {
      // terminators
    } else if (head == "vrf" && line.tokens.size() >= 3 && line.tokens[1] == "instance") {
      if (!cfg().has_vrf(line.tokens[2])) cfg().vrfs.push_back(line.tokens[2]);
      take_block();
    } else if (head == "daemon" || head == "management" || head == "service" ||
               head == "spanning-tree" || head == "vrf" || head == "aaa" ||
               head == "ntp" || head == "snmp-server" || head == "logging" ||
               head == "clock" || head == "dns" || head == "banner" ||
               head == "username" || head == "transceiver" || head == "queue-monitor" ||
               head == "platform" || head == "hardware" || head == "errdisable" ||
               head == "load-interval" || head == "no") {
      // Management-plane blocks the model has no representation for.
      skip_block(line, "no model support for '" + head + "'", /*material=*/false);
    } else {
      skip_block(line, "unknown top-level command", /*material=*/true);
    }
  }

  void parse_interface(const Line& header) {
    config::InterfaceConfig& iface = cfg().interface(header.tokens[1]);
    bool is_ethernet = util::starts_with(iface.name, "Ethernet");
    if (is_ethernet) iface.switchport = true;

    // THE ORDERING ASSUMPTION (Fig. 3 issue #1): the model applies lines
    // top-to-bottom and only accepts "ip address" if the interface is
    // routed *at that point*. An address appearing before "no switchport"
    // is silently dropped — no diagnostic, which is what makes this class
    // of model bug so pernicious.
    for (size_t i : take_block()) {
      const Line& line = lines_[i];
      const auto& t = line.tokens;
      const std::string& head = t.empty() ? kEmpty : t[0];
      if (head == "ip" && t.size() >= 3 && t[1] == "address") {
        if (!iface.routed()) continue;  // silently ignored
        if (auto address = net::InterfaceAddress::parse(t[2])) iface.address = *address;
      } else if (head == "no" && t.size() >= 2 && t[1] == "switchport") {
        iface.switchport = false;
      } else if (head == "switchport") {
        iface.switchport = true;
      } else if (head == "shutdown") {
        iface.shutdown = true;
      } else if (head == "no" && t.size() >= 2 && t[1] == "shutdown") {
        iface.shutdown = false;
      } else if (head == "description") {
        iface.description = util::join({t.begin() + 1, t.end()}, " ");
      } else if (head == "isis" && t.size() >= 2) {
        if (t[1] == "enable") {
          // Issue #2: the model expects a different syntax and reports
          // this one as invalid — then proceeds anyway (matching the
          // Batfish behaviour in the paper: the line is reported, the
          // dataplane divergence comes from issue #1).
          result_.diagnostics.add(DiagnosticSeverity::kError, line.number, line.text,
                                  "invalid isis syntax (model expects 'isis instance')");
          iface.isis_enabled = true;
          iface.isis_instance = t.size() >= 3 ? t[2] : "default";
        } else if (t[1] == "instance" && t.size() >= 3) {
          iface.isis_enabled = true;
          iface.isis_instance = t[2];
        } else if (t[1] == "passive-interface" || t[1] == "passive") {
          iface.isis_passive = true;
        } else if (t[1] == "metric" && t.size() >= 3) {
          uint32_t metric = 0;
          if (util::parse_uint32(t[2], metric)) iface.isis_metric = metric;
        } else {
          unrecognized(line, "unknown isis interface command", /*material=*/true);
        }
      } else if (head == "mpls") {
        unrecognized(line, "MPLS is not supported by the network model",
                     /*material=*/true);
      } else if (head == "ip" && t.size() >= 4 && t[1] == "access-group") {
        if (t[3] == "in") iface.acl_in = t[2];
        else if (t[3] == "out") iface.acl_out = t[2];
      } else if (head == "ip" && t.size() >= 4 && t[1] == "ospf" && t[2] == "cost") {
        uint32_t cost = 0;
        if (util::parse_uint32(t[3], cost)) iface.ospf_cost = cost;
      } else if (head == "vrf" && t.size() >= 2) {
        iface.vrf = t[1];
      } else {
        unrecognized(line, "unknown interface command", /*material=*/false);
      }
    }
  }

  void parse_router_isis(const Line& header) {
    config::IsisConfig& isis = cfg().isis;
    isis.enabled = true;
    isis.instance = header.tokens.size() >= 3 ? header.tokens[2] : "default";
    for (size_t i : take_block()) {
      const Line& line = lines_[i];
      const auto& t = line.tokens;
      const std::string& head = t.empty() ? kEmpty : t[0];
      if (head == "net" && t.size() >= 2) {
        isis.net = t[1];
      } else if (head == "is-type" && t.size() >= 2) {
        if (t[1] == "level-1") isis.level = config::IsisLevel::kLevel1;
        else if (t[1] == "level-2") isis.level = config::IsisLevel::kLevel2;
        else if (t[1] == "level-1-2") isis.level = config::IsisLevel::kLevel12;
      } else if (head == "address-family" && t.size() >= 2 && t[1] == "ipv4") {
        isis.af_ipv4_unicast = true;
      } else {
        unrecognized(line, "unknown isis command", /*material=*/false);
      }
    }
  }

  void parse_router_ospf(const Line& header) {
    config::OspfConfig& ospf = cfg().ospf;
    uint32_t process_id = 1;
    if (header.tokens.size() >= 3) util::parse_uint32(header.tokens[2], process_id);
    ospf.enabled = true;
    ospf.process_id = process_id;
    for (size_t i : take_block()) {
      const Line& line = lines_[i];
      const auto& t = line.tokens;
      const std::string& head = t.empty() ? kEmpty : t[0];
      if (head == "router-id" && t.size() >= 2) {
        if (auto id = net::Ipv4Address::parse(t[1])) ospf.router_id = *id;
      } else if (head == "network" && t.size() >= 4 && t[2] == "area") {
        if (auto prefix = net::Ipv4Prefix::parse(t[1])) ospf.networks.push_back(*prefix);
      } else if (head == "passive-interface" && t.size() >= 2) {
        ospf.passive_interfaces.push_back(t[1]);
      } else {
        unrecognized(line, "unknown ospf command", /*material=*/false);
      }
    }
  }

  void parse_router_bgp(const Line& header) {
    config::BgpConfig& bgp = cfg().bgp;
    uint32_t asn = 0;
    if (header.tokens.size() < 3 || !util::parse_uint32(header.tokens[2], asn)) {
      skip_block(header, "malformed router bgp", /*material=*/true);
      return;
    }
    bgp.enabled = true;
    bgp.local_as = asn;
    for (size_t i : take_block()) {
      const Line& line = lines_[i];
      const auto& t = line.tokens;
      const std::string& head = t.empty() ? kEmpty : t[0];
      if (head == "router-id" && t.size() >= 2) {
        if (auto id = net::Ipv4Address::parse(t[1])) bgp.router_id = *id;
      } else if (head == "neighbor" && t.size() >= 3) {
        auto peer = net::Ipv4Address::parse(t[1]);
        if (!peer) {
          unrecognized(line, "bad neighbor address", /*material=*/true);
          continue;
        }
        config::BgpNeighborConfig* neighbor = nullptr;
        for (auto& n : bgp.neighbors)
          if (n.peer == *peer) neighbor = &n;
        if (neighbor == nullptr) {
          bgp.neighbors.push_back({});
          neighbor = &bgp.neighbors.back();
          neighbor->peer = *peer;
        }
        const std::string& attr = t[2];
        if (attr == "remote-as" && t.size() >= 4) {
          uint32_t remote = 0;
          if (util::parse_uint32(t[3], remote)) neighbor->remote_as = remote;
        } else if (attr == "update-source" && t.size() >= 4) {
          neighbor->update_source = t[3];
        } else if (attr == "next-hop-self") {
          neighbor->next_hop_self = true;
        } else if (attr == "route-reflector-client") {
          neighbor->route_reflector_client = true;
        } else if (attr == "send-community") {
          neighbor->send_community = true;
        } else if (attr == "shutdown") {
          neighbor->shutdown = true;
        } else if (attr == "route-map" && t.size() >= 5) {
          if (t[4] == "in") neighbor->route_map_in = t[3];
          else if (t[4] == "out") neighbor->route_map_out = t[3];
        } else if (attr == "description") {
          neighbor->description = util::join({t.begin() + 3, t.end()}, " ");
        } else {
          unrecognized(line, "unknown neighbor attribute", /*material=*/false);
        }
      } else if (head == "network" && t.size() >= 2) {
        if (auto prefix = net::Ipv4Prefix::parse(t[1]))
          bgp.networks.push_back({*prefix, std::nullopt});
      } else if (head == "redistribute" && t.size() >= 2) {
        if (t[1] == "connected") bgp.redistribute_connected = true;
        else if (t[1] == "static") bgp.redistribute_static = true;
      } else {
        unrecognized(line, "unknown bgp command", /*material=*/false);
      }
    }
  }

  void parse_ip(const Line& line) {
    const auto& t = line.tokens;
    if (t[1] == "routing") return;
    if (t[1] == "access-list" && t.size() >= 4 && t[2] == "standard") {
      config::Acl& acl = cfg().acls[t[3]];
      acl.name = t[3];
      for (size_t i : take_block()) {
        const Line& entry_line = lines_[i];
        const auto& e = entry_line.tokens;
        config::AclEntry entry;
        size_t index = 0;
        if (index < e.size() && e[index] == "seq" && index + 1 < e.size()) {
          util::parse_uint32(e[index + 1], entry.seq);
          index += 2;
        }
        if (index >= e.size()) continue;
        entry.permit = e[index++] == "permit";
        if (index >= e.size()) continue;
        if (e[index] == "any") {
          entry.destination = net::Ipv4Prefix();
        } else if (e[index] == "host" && index + 1 < e.size()) {
          auto address = net::Ipv4Address::parse(e[index + 1]);
          if (!address) continue;
          entry.destination = net::Ipv4Prefix::host(*address);
        } else if (auto prefix = net::Ipv4Prefix::parse(e[index])) {
          entry.destination = *prefix;
        } else {
          continue;
        }
        if (entry.seq == 0)
          entry.seq = static_cast<uint32_t>(acl.entries.size() + 1) * 10;
        acl.entries.push_back(entry);
      }
      return;
    }
    if (t[1] == "route" && t.size() >= 4) {
      auto prefix = net::Ipv4Prefix::parse(t[2]);
      if (!prefix) return;
      config::StaticRoute route;
      route.prefix = *prefix;
      if (t[3] == "Null0" || t[3] == "null0") route.null_route = true;
      else if (auto nh = net::Ipv4Address::parse(t[3])) route.next_hop = *nh;
      else route.exit_interface = t[3];
      if (t.size() >= 5) {
        uint32_t distance = 0;
        if (util::parse_uint32(t[4], distance) && distance >= 1 && distance <= 255)
          route.distance = static_cast<uint8_t>(distance);
      }
      cfg().static_routes.push_back(route);
      return;
    }
    if (t[1] == "prefix-list" && t.size() >= 6) {
      // ip prefix-list NAME seq N permit PFX [ge X] [le Y]
      config::PrefixListEntry entry;
      size_t index = 2;
      std::string name = t[index++];
      if (t[index] == "seq" && index + 1 < t.size()) {
        util::parse_uint32(t[index + 1], entry.seq);
        index += 2;
      }
      if (index >= t.size()) return;
      entry.permit = t[index++] == "permit";
      if (index >= t.size()) return;
      auto prefix = net::Ipv4Prefix::parse(t[index++]);
      if (!prefix) return;
      entry.prefix = *prefix;
      while (index + 1 < t.size()) {
        uint32_t bound = 0;
        if (t[index] == "ge" && util::parse_uint32(t[index + 1], bound))
          entry.ge = static_cast<uint8_t>(bound);
        else if (t[index] == "le" && util::parse_uint32(t[index + 1], bound))
          entry.le = static_cast<uint8_t>(bound);
        index += 2;
      }
      auto& list = cfg().prefix_lists[name];
      list.name = name;
      list.entries.push_back(entry);
      return;
    }
    if (t[1] == "community-list") {
      // Supported at reduced fidelity: standard lists only.
      if (t.size() >= 5 && t[2] == "standard") {
        auto& list = cfg().community_lists[t[3]];
        list.name = t[3];
        for (size_t i = 5; i < t.size(); ++i)
          if (auto community = config::parse_community(t[i]))
            list.communities.push_back(*community);
        return;
      }
    }
    unrecognized(line, "unknown ip command", /*material=*/false);
  }

  void parse_route_map(const Line& header) {
    const auto& t = header.tokens;
    uint32_t seq = 10;
    if (t.size() < 4 || !util::parse_uint32(t[3], seq)) {
      skip_block(header, "malformed route-map", /*material=*/true);
      return;
    }
    auto& map = cfg().route_maps[t[1]];
    map.name = t[1];
    map.clauses.push_back({});
    config::RouteMapClause& clause = map.clauses.back();
    clause.seq = seq;
    clause.permit = t[2] == "permit";
    for (size_t i : take_block()) {
      const Line& line = lines_[i];
      const auto& lt = line.tokens;
      if (lt.size() >= 5 && lt[0] == "match" && lt[1] == "ip" && lt[3] == "prefix-list") {
        clause.match_prefix_list = lt[4];
      } else if (lt.size() >= 3 && lt[0] == "match" && lt[1] == "community") {
        clause.match_community_list = lt[2];
      } else if (lt.size() >= 3 && lt[0] == "set" && lt[1] == "local-preference") {
        uint32_t pref = 0;
        if (util::parse_uint32(lt[2], pref)) clause.set_local_pref = pref;
      } else if (lt.size() >= 3 && lt[0] == "set" && lt[1] == "metric") {
        uint32_t med = 0;
        if (util::parse_uint32(lt[2], med)) clause.set_med = med;
      } else if (lt.size() >= 3 && lt[0] == "set" && lt[1] == "community") {
        for (size_t k = 2; k < lt.size(); ++k) {
          if (lt[k] == "additive") clause.additive_communities = true;
          else if (auto community = config::parse_community(lt[k]))
            clause.set_communities.push_back(*community);
        }
      } else {
        unrecognized(line, "unknown route-map command", /*material=*/false);
      }
    }
  }

  static inline const std::string kEmpty;
  std::vector<Line> lines_;
  size_t pos_ = 0;
  ReferenceParseResult result_;
};

}  // namespace

ReferenceParseResult reference_parse(std::string_view text) {
  return ReferenceParser(text).run();
}

}  // namespace mfv::model
