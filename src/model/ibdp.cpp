#include "model/ibdp.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "proto/policy.hpp"
#include "rib/rib.hpp"
#include "util/strings.hpp"
#include "vrouter/virtual_router.hpp"

namespace mfv::model {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;
using net::NodeName;

struct ModelNode {
  config::DeviceConfig config;
  rib::Rib rib;
  proto::PolicyContext policy;

  bool interface_up(const config::InterfaceConfig& iface,
                    const std::set<net::InterfaceName>& wired) const {
    if (!iface.vrf.empty()) return false;  // VRFs stay out of the default model
    if (iface.shutdown) return false;
    if (iface.is_loopback()) return true;
    return iface.routed() && wired.count(iface.name) > 0;
  }
};

struct SessionEnd {
  NodeName node;
  const config::BgpNeighborConfig* neighbor;
  Ipv4Address local_address;
  bool is_ibgp = false;
};

struct ModelSession {
  SessionEnd a, b;  // b.node empty for external-peer sessions
  const emu::ExternalPeerSpec* external = nullptr;
};

class Ibdp {
 public:
  Ibdp(const emu::Topology& topology, const ModelOptions& options)
      : topology_(topology), options_(options) {}

  ModelResult run() {
    parse_all();
    install_connected_and_static();
    run_isis();
    run_ospf();
    run_bgp();
    emit_snapshot();
    return std::move(result_);
  }

 private:
  // -- parsing ----------------------------------------------------------------

  void parse_all() {
    for (const emu::NodeSpec& spec : topology_.nodes) {
      ReferenceParseResult parsed;
      if (spec.vendor == config::Vendor::kCeos) {
        parsed = reference_parse(spec.config_text);
      } else {
        // The reference model has no parser for this dialect at all —
        // every line is unsupported (cf. the paper's 1500 production
        // configs all failing in the parsing phase).
        int line_number = 0;
        for (std::string_view raw : util::split(spec.config_text, '\n')) {
          ++line_number;
          std::string_view line = util::trim(raw);
          if (line.empty() || line[0] == '#') continue;
          ++parsed.total_lines;
          ++parsed.material_unrecognized;
          parsed.diagnostics.add(config::DiagnosticSeverity::kUnrecognized, line_number,
                                 std::string(line), "vendor dialect unsupported");
        }
      }
      if (parsed.config.hostname.empty()) parsed.config.hostname = spec.name;
      ModelNode node;
      node.config = parsed.config;
      node.policy.route_maps = nullptr;  // bound after nodes_ stabilizes
      nodes_[spec.name] = std::move(node);
      result_.parse_results[spec.name] = std::move(parsed);
      // Track which interfaces are wired in the layer-1 topology.
      wired_[spec.name] = {};
    }
    for (const emu::LinkSpec& link : topology_.links) {
      wired_[link.a.node].insert(link.a.interface);
      wired_[link.b.node].insert(link.b.interface);
    }
    // External peers wire up the attach interface whose subnet holds the
    // peer address (the model takes advertisements as input, like Batfish).
    for (const emu::ExternalPeerSpec& peer : topology_.external_peers) {
      auto it = nodes_.find(peer.attach_node);
      if (it == nodes_.end()) continue;
      for (const auto& [ifname, iface] : it->second.config.interfaces)
        if (iface.address && !iface.is_loopback() &&
            iface.address->subnet.contains(peer.address))
          wired_[peer.attach_node].insert(ifname);
    }
    for (auto& [name, node] : nodes_) {
      node.policy.route_maps = &node.config.route_maps;
      node.policy.prefix_lists = &node.config.prefix_lists;
      node.policy.community_lists = &node.config.community_lists;
      node.policy.local_as = node.config.bgp.local_as;
      for (const auto& [ifname, iface] : node.config.interfaces)
        if (iface.address && node.interface_up(iface, wired_[name]))
          address_owner_[iface.address->address.bits()] = name;
    }
  }

  // -- connected + static -------------------------------------------------------

  void install_connected_and_static() {
    for (auto& [name, node] : nodes_) {
      for (const auto& [ifname, iface] : node.config.interfaces) {
        if (!iface.address || !node.interface_up(iface, wired_[name])) continue;
        rib::RibRoute connected;
        connected.prefix = iface.address->subnet;
        connected.protocol = rib::Protocol::kConnected;
        connected.interface = ifname;
        connected.source = ifname;
        node.rib.add(connected);
        if (iface.address->subnet.length() < 32) {
          rib::RibRoute local;
          local.prefix = Ipv4Prefix::host(iface.address->address);
          local.protocol = rib::Protocol::kLocal;
          local.interface = ifname;
          local.source = ifname;
          node.rib.add(local);
        }
      }
      for (const config::StaticRoute& route : node.config.static_routes) {
        rib::RibRoute entry;
        entry.prefix = route.prefix;
        entry.protocol = rib::Protocol::kStatic;
        entry.admin_distance = route.distance;
        entry.next_hop = route.next_hop;
        entry.interface = route.exit_interface;
        entry.drop = route.null_route;
        entry.source = "static";
        node.rib.add(entry);
      }
    }
  }

  // -- IS-IS (global graph + per-node Dijkstra) ---------------------------------

  struct IsisAdj {
    NodeName neighbor;
    net::InterfaceName local_interface;
    Ipv4Address neighbor_address;
    uint32_t metric;
  };

  void run_isis() {
    // Build adjacency from the L1 topology: a link is an IS-IS adjacency
    // if both ends are up, addressed (per the *model's* view), enabled,
    // non-passive, and in the same instance.
    std::map<NodeName, std::vector<IsisAdj>> adjacency;
    for (const emu::LinkSpec& link : topology_.links) {
      auto* na = find_node(link.a.node);
      auto* nb = find_node(link.b.node);
      if (na == nullptr || nb == nullptr) continue;
      const config::InterfaceConfig* ia = na->config.find_interface(link.a.interface);
      const config::InterfaceConfig* ib = nb->config.find_interface(link.b.interface);
      if (ia == nullptr || ib == nullptr) continue;
      auto eligible = [&](const ModelNode& node, const config::InterfaceConfig& iface) {
        return node.config.isis.enabled && iface.isis_enabled && !iface.isis_passive &&
               iface.address && node.interface_up(iface, wired_.at(node.config.hostname));
      };
      if (!eligible(*na, *ia) || !eligible(*nb, *ib)) continue;
      adjacency[link.a.node].push_back(
          {link.b.node, link.a.interface, ib->address->address, ia->isis_metric});
      adjacency[link.b.node].push_back(
          {link.a.node, link.b.interface, ia->address->address, ib->isis_metric});
    }

    // Advertised prefixes per node.
    std::map<NodeName, std::vector<std::pair<Ipv4Prefix, uint32_t>>> advertised;
    for (auto& [name, node] : nodes_) {
      if (!node.config.isis.enabled || !node.config.isis.af_ipv4_unicast) continue;
      for (const auto& [ifname, iface] : node.config.interfaces)
        if (iface.isis_enabled && iface.address &&
            node.interface_up(iface, wired_[name]))
          advertised[name].push_back({iface.address->subnet, iface.isis_metric});
    }

    // Per-node Dijkstra over the adjacency graph.
    for (auto& [source, node] : nodes_) {
      if (!node.config.isis.enabled || !node.config.isis.af_ipv4_unicast) continue;
      std::map<NodeName, uint32_t> distance;
      std::map<NodeName, std::set<const IsisAdj*>> first_hop;
      distance[source] = 0;
      using Item = std::pair<uint32_t, NodeName>;
      std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
      queue.push({0, source});
      std::set<NodeName> settled;
      while (!queue.empty()) {
        auto [dist, at] = queue.top();
        queue.pop();
        if (settled.count(at)) continue;
        settled.insert(at);
        auto adj_it = adjacency.find(at);
        if (adj_it == adjacency.end()) continue;
        for (const IsisAdj& edge : adj_it->second) {
          uint32_t candidate = dist + edge.metric;
          std::set<const IsisAdj*> hops;
          if (at == source) hops.insert(&edge);
          else hops = first_hop[at];
          auto d_it = distance.find(edge.neighbor);
          if (d_it == distance.end() || candidate < d_it->second) {
            distance[edge.neighbor] = candidate;
            first_hop[edge.neighbor] = hops;
            queue.push({candidate, edge.neighbor});
          } else if (candidate == d_it->second) {
            first_hop[edge.neighbor].insert(hops.begin(), hops.end());
          }
        }
      }
      for (const auto& [target, items] : advertised) {
        if (target == source) continue;
        auto d_it = distance.find(target);
        if (d_it == distance.end()) continue;
        for (const auto& [prefix, metric] : items) {
          for (const IsisAdj* hop : first_hop[target]) {
            rib::RibRoute route;
            route.prefix = prefix;
            route.protocol = rib::Protocol::kIsis;
            route.admin_distance = rib::default_admin_distance(rib::Protocol::kIsis);
            route.metric = d_it->second + metric;
            route.next_hop = hop->neighbor_address;
            route.interface = hop->local_interface;
            route.source = node.config.isis.instance;
            node.rib.add(route);
          }
        }
      }
    }
  }

  // -- OSPF (same global-graph approach as IS-IS) -------------------------------

  void run_ospf() {
    struct OspfAdj {
      NodeName neighbor;
      net::InterfaceName local_interface;
      Ipv4Address neighbor_address;
      uint32_t cost;
    };
    auto participates = [&](const ModelNode& node, const config::InterfaceConfig& iface) {
      return node.config.ospf.enabled && iface.address &&
             node.config.ospf.covers(iface.address->address) &&
             node.interface_up(iface, wired_.at(node.config.hostname));
    };
    auto active_adjacency = [&](const ModelNode& node,
                                const config::InterfaceConfig& iface) {
      return participates(node, iface) && !iface.is_loopback() &&
             !node.config.ospf.is_passive(iface.name);
    };

    std::map<NodeName, std::vector<OspfAdj>> adjacency;
    for (const emu::LinkSpec& link : topology_.links) {
      auto* na = find_node(link.a.node);
      auto* nb = find_node(link.b.node);
      if (na == nullptr || nb == nullptr) continue;
      const config::InterfaceConfig* ia = na->config.find_interface(link.a.interface);
      const config::InterfaceConfig* ib = nb->config.find_interface(link.b.interface);
      if (ia == nullptr || ib == nullptr) continue;
      if (!active_adjacency(*na, *ia) || !active_adjacency(*nb, *ib)) continue;
      adjacency[link.a.node].push_back(
          {link.b.node, link.a.interface, ib->address->address, ia->ospf_cost});
      adjacency[link.b.node].push_back(
          {link.a.node, link.b.interface, ia->address->address, ib->ospf_cost});
    }

    std::map<NodeName, std::vector<std::pair<Ipv4Prefix, uint32_t>>> advertised;
    for (auto& [name, node] : nodes_)
      for (const auto& [ifname, iface] : node.config.interfaces)
        if (participates(node, iface))
          advertised[name].push_back({iface.address->subnet, iface.ospf_cost});

    for (auto& [source, node] : nodes_) {
      if (!node.config.ospf.enabled) continue;
      std::map<NodeName, uint32_t> distance;
      std::map<NodeName, std::set<const OspfAdj*>> first_hop;
      distance[source] = 0;
      using Item = std::pair<uint32_t, NodeName>;
      std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
      queue.push({0, source});
      std::set<NodeName> settled;
      while (!queue.empty()) {
        auto [dist, at] = queue.top();
        queue.pop();
        if (settled.count(at)) continue;
        settled.insert(at);
        auto adj_it = adjacency.find(at);
        if (adj_it == adjacency.end()) continue;
        for (const OspfAdj& edge : adj_it->second) {
          uint32_t candidate = dist + edge.cost;
          std::set<const OspfAdj*> hops;
          if (at == source) hops.insert(&edge);
          else hops = first_hop[at];
          auto d_it = distance.find(edge.neighbor);
          if (d_it == distance.end() || candidate < d_it->second) {
            distance[edge.neighbor] = candidate;
            first_hop[edge.neighbor] = hops;
            queue.push({candidate, edge.neighbor});
          } else if (candidate == d_it->second) {
            first_hop[edge.neighbor].insert(hops.begin(), hops.end());
          }
        }
      }
      for (const auto& [target, items] : advertised) {
        if (target == source) continue;
        auto d_it = distance.find(target);
        if (d_it == distance.end()) continue;
        for (const auto& [prefix, metric] : items) {
          for (const OspfAdj* hop : first_hop[target]) {
            rib::RibRoute route;
            route.prefix = prefix;
            route.protocol = rib::Protocol::kOspf;
            route.admin_distance = rib::default_admin_distance(rib::Protocol::kOspf);
            route.metric = d_it->second + metric;
            route.next_hop = hop->neighbor_address;
            route.interface = hop->local_interface;
            route.source = std::to_string(node.config.ospf.process_id);
            node.rib.add(route);
          }
        }
      }
    }
  }

  // -- BGP fixed point -------------------------------------------------------------

  struct RibIn {
    proto::BgpRoute route;
    Ipv4Address from_peer;
    bool from_ebgp = false;
    bool from_client = false;  // learned from a route-reflector client
  };

  void run_bgp() {
    // Enumerate sessions: internal (both ends configured and mutually
    // reachable) and external (advertisement injection points).
    std::vector<ModelSession> sessions;
    for (auto& [name, node] : nodes_) {
      for (const config::BgpNeighborConfig& neighbor : node.config.bgp.neighbors) {
        if (!node.config.bgp.enabled || neighbor.shutdown) continue;
        // External peer?
        for (const emu::ExternalPeerSpec& peer : topology_.external_peers) {
          if (peer.attach_node == name && peer.address == neighbor.peer &&
              peer.as_number == neighbor.remote_as) {
            ModelSession session;
            session.a = {name, &neighbor, session_address(name, neighbor), false};
            session.external = &peer;
            sessions.push_back(session);
          }
        }
        // Internal: find the owner of the peer address with a mirror config.
        auto owner_it = address_owner_.find(neighbor.peer.bits());
        if (owner_it == address_owner_.end()) continue;
        const NodeName& peer_node = owner_it->second;
        if (peer_node <= name) continue;  // visit each pair once (a < b)
        ModelNode* other = find_node(peer_node);
        if (other == nullptr || !other->config.bgp.enabled) continue;
        Ipv4Address my_address = session_address(name, neighbor);
        for (const config::BgpNeighborConfig& reverse : other->config.bgp.neighbors) {
          if (reverse.shutdown || reverse.peer != my_address) continue;
          if (neighbor.remote_as != other->config.bgp.local_as) continue;
          if (reverse.remote_as != node.config.bgp.local_as) continue;
          ModelSession session;
          bool ibgp = node.config.bgp.local_as == other->config.bgp.local_as;
          session.a = {name, &neighbor, my_address, ibgp};
          session.b = {peer_node, &reverse, reverse_address(peer_node, reverse), ibgp};
          sessions.push_back(session);
        }
      }
    }

    // Reachability gate: both ends must reach each other in the current
    // RIBs (connected/IGP/static).
    auto reaches = [&](const NodeName& node, Ipv4Address address) {
      ModelNode* n = find_node(node);
      if (n == nullptr) return false;
      if (address_owner_.count(address.bits()) &&
          address_owner_.at(address.bits()) == node)
        return true;
      for (const rib::RibRoute& route : n->rib.longest_match(address))
        if (!route.drop) return true;
      // External peer addresses on a connected subnet.
      for (const rib::RibRoute& route : n->rib.longest_match(address))
        if (route.protocol == rib::Protocol::kConnected) return true;
      return false;
    };
    std::vector<const ModelSession*> live;
    for (const ModelSession& session : sessions) {
      if (session.external != nullptr) {
        if (reaches(session.a.node, session.a.neighbor->peer)) live.push_back(&session);
        continue;
      }
      if (reaches(session.a.node, session.a.neighbor->peer) &&
          reaches(session.b.node, session.b.neighbor->peer))
        live.push_back(&session);
    }

    // Adj-RIB-In per (node, peer-address).
    std::map<NodeName, std::map<Ipv4Prefix, std::vector<RibIn>>> rib_in;

    // Inject external advertisements once.
    for (const ModelSession* session : live) {
      if (session->external == nullptr) continue;
      ModelNode* node = find_node(session->a.node);
      for (const proto::BgpRoute& advert : session->external->routes) {
        proto::BgpRoute route = advert;
        route.attributes.local_pref = node->config.bgp.default_local_pref;
        auto result =
            apply_route_map(node->policy, session->a.neighbor->route_map_in, route);
        if (!result.permitted) continue;
        rib_in[session->a.node][route.prefix].push_back(
            {result.route, session->external->address, true});
      }
    }

    // Locally originated routes.
    std::map<NodeName, std::map<Ipv4Prefix, proto::BgpRoute>> local;
    for (auto& [name, node] : nodes_) {
      if (!node.config.bgp.enabled) continue;
      for (const config::BgpNetwork& network : node.config.bgp.networks) {
        if (node.rib.best(network.prefix).empty()) continue;
        proto::BgpRoute route;
        route.prefix = network.prefix;
        route.attributes.local_pref = node.config.bgp.default_local_pref;
        auto result = apply_route_map(node.policy, network.route_map, route);
        if (result.permitted) local[name][network.prefix] = result.route;
      }
      if (node.config.bgp.redistribute_connected || node.config.bgp.redistribute_static) {
        node.rib.for_each_best([&](const Ipv4Prefix& prefix,
                                   const std::vector<rib::RibRoute>& best) {
          for (const rib::RibRoute& r : best) {
            bool want = (node.config.bgp.redistribute_connected &&
                         r.protocol == rib::Protocol::kConnected) ||
                        (node.config.bgp.redistribute_static &&
                         r.protocol == rib::Protocol::kStatic);
            if (!want) continue;
            proto::BgpRoute route;
            route.prefix = prefix;
            route.attributes.origin = proto::BgpOrigin::kIncomplete;
            route.attributes.local_pref = node.config.bgp.default_local_pref;
            local[node.config.hostname][prefix] = route;
            break;
          }
        });
      }
    }

    // Decision function (deterministic tiebreaks only — the model
    // simplification the paper notes in §6).
    struct Best {
      proto::BgpRoute route;
      bool from_ebgp = false;
      bool local = false;
      bool from_client = false;
      Ipv4Address peer;
    };
    auto decide = [&](const NodeName& name,
                      const std::map<Ipv4Prefix, std::vector<RibIn>>& in)
        -> std::map<Ipv4Prefix, Best> {
      std::map<Ipv4Prefix, Best> best;
      std::set<Ipv4Prefix> prefixes;
      for (const auto& [prefix, routes] : in) prefixes.insert(prefix);
      for (const auto& [prefix, route] : local[name]) prefixes.insert(prefix);
      for (const Ipv4Prefix& prefix : prefixes) {
        std::vector<Best> candidates;
        if (auto it = local[name].find(prefix); it != local[name].end())
          candidates.push_back({it->second, false, true, false, Ipv4Address()});
        if (auto it = in.find(prefix); it != in.end())
          for (const RibIn& r : it->second)
            candidates.push_back({r.route, r.from_ebgp, false, r.from_client, r.from_peer});
        const Best* winner = nullptr;
        for (const Best& c : candidates) {
          if (!c.local && !reaches(name, c.route.attributes.next_hop)) continue;
          if (winner == nullptr) {
            winner = &c;
            continue;
          }
          const auto& a = c.route.attributes;
          const auto& b = winner->route.attributes;
          if (a.local_pref != b.local_pref) {
            if (a.local_pref > b.local_pref) winner = &c;
            continue;
          }
          if (c.local != winner->local) {
            if (c.local) winner = &c;
            continue;
          }
          if (a.as_path.size() != b.as_path.size()) {
            if (a.as_path.size() < b.as_path.size()) winner = &c;
            continue;
          }
          if (a.origin != b.origin) {
            if (a.origin < b.origin) winner = &c;
            continue;
          }
          bool same_first = (a.as_path.empty() && b.as_path.empty()) ||
                            (!a.as_path.empty() && !b.as_path.empty() &&
                             a.as_path.front() == b.as_path.front());
          if (same_first && a.med != b.med) {
            if (a.med < b.med) winner = &c;
            continue;
          }
          if (c.from_ebgp != winner->from_ebgp) {
            if (c.from_ebgp) winner = &c;
            continue;
          }
          if (c.peer < winner->peer) winner = &c;  // deterministic only
        }
        if (winner != nullptr) best[prefix] = *winner;
      }
      return best;
    };

    // Fixed-point iteration of export/import rounds.
    std::map<NodeName, std::map<Ipv4Prefix, Best>> bests;
    for (int round = 0; round < options_.max_bgp_rounds; ++round) {
      result_.bgp_rounds = round + 1;
      // Decide everywhere.
      std::map<NodeName, std::map<Ipv4Prefix, Best>> fresh;
      for (auto& [name, node] : nodes_)
        if (node.config.bgp.enabled) fresh[name] = decide(name, rib_in[name]);

      // Export across internal sessions into next round's rib_in.
      std::map<NodeName, std::map<Ipv4Prefix, std::vector<RibIn>>> next = rib_in;
      auto do_export = [&](const SessionEnd& from, const SessionEnd& to) {
        ModelNode* sender = find_node(from.node);
        ModelNode* receiver = find_node(to.node);
        if (sender == nullptr || receiver == nullptr) return;
        auto& inbox = next[to.node];
        // Remove previous contributions from this peer, then repopulate.
        for (auto& [prefix, routes] : inbox)
          routes.erase(std::remove_if(routes.begin(), routes.end(),
                                      [&](const RibIn& r) {
                                        return r.from_peer == from.local_address;
                                      }),
                       routes.end());
        for (const auto& [prefix, best] : fresh[from.node]) {
          if (!best.local && best.peer == to.neighbor->peer) continue;  // split horizon
          bool ibgp = from.is_ibgp;
          if (ibgp && !best.local && !best.from_ebgp) {
            // Route-reflection rules (same as the emulated engine).
            bool reflect = best.from_client || from.neighbor->route_reflector_client;
            if (!reflect) continue;
          }
          proto::BgpRoute route = best.route;
          auto& attrs = route.attributes;
          if (ibgp) {
            if (from.neighbor->next_hop_self || best.local)
              attrs.next_hop = from.local_address;
          } else {
            attrs.as_path.insert(attrs.as_path.begin(), sender->config.bgp.local_as);
            attrs.next_hop = from.local_address;
            attrs.local_pref = 100;
            attrs.med = 0;
          }
          if (!from.neighbor->send_community) attrs.communities.clear();
          auto out = apply_route_map(sender->policy, from.neighbor->route_map_out, route);
          if (!out.permitted) continue;
          // Receiver-side processing.
          proto::BgpRoute received = out.route;
          if (!ibgp) {
            if (std::find(received.attributes.as_path.begin(),
                          received.attributes.as_path.end(),
                          receiver->config.bgp.local_as) !=
                received.attributes.as_path.end())
              continue;  // loop
            received.attributes.local_pref = receiver->config.bgp.default_local_pref;
          }
          auto in = apply_route_map(receiver->policy, to.neighbor->route_map_in, received);
          if (!in.permitted) continue;
          inbox[received.prefix].push_back(
              {in.route, from.local_address, !ibgp,
               ibgp && to.neighbor->route_reflector_client});
        }
      };
      for (const ModelSession* session : live) {
        if (session->external != nullptr) continue;
        do_export(session->a, session->b);
        do_export(session->b, session->a);
      }

      // Converged once the inboxes stop changing: decisions are a pure
      // function of (inboxes, local routes), so they are stable too.
      bool converged = equal_rib_in(next, rib_in);
      rib_in = std::move(next);
      bests = std::move(fresh);
      if (converged) break;
    }

    // Install winners into RIBs.
    for (auto& [name, best_map] : bests) {
      ModelNode* node = find_node(name);
      for (const auto& [prefix, best] : best_map) {
        if (best.local) continue;
        rib::RibRoute route;
        route.prefix = prefix;
        route.protocol = best.from_ebgp ? rib::Protocol::kBgp : rib::Protocol::kIbgp;
        route.admin_distance = rib::default_admin_distance(route.protocol);
        route.metric = best.route.attributes.med;
        route.next_hop = best.route.attributes.next_hop;
        route.source = "bgp";
        node->rib.add(route);
      }
    }
  }

  // Comparable views for convergence detection.
  using RibInMap = std::map<NodeName, std::map<Ipv4Prefix, std::vector<RibIn>>>;
  static bool equal_rib_in(const RibInMap& x, const RibInMap& y) {
    auto key = [](const RibInMap& m) {
      std::vector<std::tuple<NodeName, std::string, std::string, std::string>> flat;
      for (const auto& [node, prefixes] : m)
        for (const auto& [prefix, routes] : prefixes)
          for (const RibIn& r : routes)
            flat.emplace_back(node, prefix.to_string(), r.from_peer.to_string(),
                              r.route.attributes.next_hop.to_string() + "/" +
                                  std::to_string(r.route.attributes.local_pref) + "/" +
                                  std::to_string(r.route.attributes.as_path.size()));
      std::sort(flat.begin(), flat.end());
      return flat;
    };
    return key(x) == key(y);
  }
  Ipv4Address session_address(const NodeName& name,
                              const config::BgpNeighborConfig& neighbor) {
    ModelNode* node = find_node(name);
    if (node == nullptr) return {};
    if (neighbor.update_source) {
      const config::InterfaceConfig* iface =
          node->config.find_interface(*neighbor.update_source);
      if (iface != nullptr && iface->address) return iface->address->address;
      return {};
    }
    for (const rib::RibRoute& route : node->rib.longest_match(neighbor.peer)) {
      if (!route.interface) continue;
      const config::InterfaceConfig* iface = node->config.find_interface(*route.interface);
      if (iface != nullptr && iface->address) return iface->address->address;
    }
    return {};
  }
  Ipv4Address reverse_address(const NodeName& name,
                              const config::BgpNeighborConfig& neighbor) {
    return session_address(name, neighbor);
  }

  // -- snapshot ----------------------------------------------------------------

  void emit_snapshot() {
    result_.snapshot.name = "model-based";
    for (auto& [name, node] : nodes_) {
      aft::DeviceAft device;
      device.node = name;
      device.aft = rib::compile_fib(node.rib);
      for (const auto& [ifname, iface] : node.config.interfaces) {
        aft::InterfaceState state;
        state.name = ifname;
        state.address = iface.address;
        state.oper_up = node.interface_up(iface, wired_[name]);
        if (iface.acl_in) {
          auto it = node.config.acls.find(*iface.acl_in);
          if (it != node.config.acls.end())
            state.acl_in = vrouter::resolve_acl(it->second);
        }
        if (iface.acl_out) {
          auto it = node.config.acls.find(*iface.acl_out);
          if (it != node.config.acls.end())
            state.acl_out = vrouter::resolve_acl(it->second);
        }
        device.interfaces[ifname] = std::move(state);
      }
      result_.snapshot.devices[name] = std::move(device);
    }
  }

  ModelNode* find_node(const NodeName& name) {
    auto it = nodes_.find(name);
    return it == nodes_.end() ? nullptr : &it->second;
  }

  const emu::Topology& topology_;
  ModelOptions options_;
  std::map<NodeName, ModelNode> nodes_;
  std::map<NodeName, std::set<net::InterfaceName>> wired_;
  std::map<uint32_t, NodeName> address_owner_;
  ModelResult result_;
};

}  // namespace

ModelResult run_model(const emu::Topology& topology, const ModelOptions& options) {
  return Ibdp(topology, options).run();
}

}  // namespace mfv::model
