// The model-based baseline's configuration parser.
//
// This is a deliberately *partial* and *independent* reimplementation of
// ceos config parsing — the architecture the paper critiques (§2): a
// verification tool maintaining its own parsing layer that inevitably lags
// the vendor's. Its coverage gaps and baked-in assumptions are not bugs in
// this repo; they are the reproduction targets:
//
//  * Coverage (E2): management daemons, management APIs (gRPC/gNMI/SSL),
//    platform services, and — materially — MPLS and MPLS-TE are flagged
//    kUnrecognized and ignored. Real configs lose 38-42 lines each.
//  * Ordering assumption (E3, Fig. 3 issue #1): "ip address" on an
//    Ethernet interface is silently dropped unless the interface was
//    already made routed by an *earlier* "no switchport" line. The real
//    device accepts either order.
//  * Syntax gap (E3, Fig. 3 issue #2): "isis enable <instance>" is
//    reported as invalid syntax (the model expects a different form) while
//    processing continues.
#pragma once

#include <string_view>

#include "config/device_config.hpp"
#include "config/diagnostics.hpp"

namespace mfv::model {

struct ReferenceParseResult {
  config::DeviceConfig config;
  config::DiagnosticList diagnostics;
  int total_lines = 0;
  /// Unrecognized lines that plausibly matter to the dataplane (MPLS, TE,
  /// unknown routing commands) versus cosmetic ones (daemons, management).
  int material_unrecognized = 0;
  int cosmetic_unrecognized = 0;
};

/// Parses ceos-dialect text with the reference model's partial coverage.
ReferenceParseResult reference_parse(std::string_view text);

}  // namespace mfv::model
