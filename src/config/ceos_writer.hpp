// Emits ceos-dialect configuration text from the semantic model.
//
// Used by the workload generator (mfv::workload) to produce
// production-complexity configs, and by round-trip property tests
// (parse(write(cfg)) == cfg).
#pragma once

#include <string>

#include "config/device_config.hpp"

namespace mfv::config {

struct CeosWriterOptions {
  /// Emit the management-feature blocks stored in the config (daemons,
  /// gNMI, SSL profiles...). These are the lines a model-based parser
  /// cannot recognize (experiment E2).
  bool include_management = true;
  /// Emit "ip address" BEFORE "no switchport" inside interface blocks.
  /// Both orders are valid on the real device; canonical running-config
  /// output uses switchport-first (the default here). The reversed order
  /// reproduces the hand-written config of the paper's Fig. 3 that trips
  /// the reference model's ordering assumption (issue #1).
  bool address_before_switchport = false;
};

std::string write_ceos(const DeviceConfig& config, const CeosWriterOptions& options = {});

}  // namespace mfv::config
