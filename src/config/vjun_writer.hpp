// Emits vjun-dialect configuration text from the semantic model.
#pragma once

#include <string>

#include "config/device_config.hpp"

namespace mfv::config {

struct VjunWriterOptions {
  bool include_management = true;
};

std::string write_vjun(const DeviceConfig& config, const VjunWriterOptions& options = {});

}  // namespace mfv::config
