#include "config/device_config.hpp"

#include "util/strings.hpp"

namespace mfv::config {

std::string vendor_name(Vendor vendor) {
  switch (vendor) {
    case Vendor::kCeos: return "ceos";
    case Vendor::kVjun: return "vjun";
  }
  return "unknown";
}

std::string community_to_string(Community community) {
  return std::to_string(community >> 16) + ":" + std::to_string(community & 0xFFFF);
}

std::optional<Community> parse_community(std::string_view text) {
  size_t colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  uint32_t asn = 0;
  uint32_t value = 0;
  if (!util::parse_uint32(text.substr(0, colon), asn) ||
      !util::parse_uint32(text.substr(colon + 1), value))
    return std::nullopt;
  if (asn > 0xFFFF || value > 0xFFFF) return std::nullopt;
  return make_community(static_cast<uint16_t>(asn), static_cast<uint16_t>(value));
}

std::optional<net::RouterId> DeviceConfig::effective_router_id() const {
  if (bgp.router_id) return bgp.router_id;
  std::optional<net::RouterId> best;
  // Highest loopback wins; fall back to highest interface address.
  for (const auto& [name, iface] : interfaces) {
    if (!iface.address || !iface.is_loopback()) continue;
    if (!best || iface.address->address > *best) best = iface.address->address;
  }
  if (best) return best;
  for (const auto& [name, iface] : interfaces) {
    if (!iface.address) continue;
    if (!best || iface.address->address > *best) best = iface.address->address;
  }
  return best;
}

}  // namespace mfv::config
