#include "config/vjun_parser.hpp"

#include "util/strings.hpp"

namespace mfv::config {

std::string VjunStatement::text() const { return util::join(words, " "); }

const VjunStatement* VjunStatement::child(std::string_view first_word) const {
  for (const auto& c : children)
    if (!c.words.empty() && c.words[0] == first_word) return &c;
  return nullptr;
}

namespace {

struct Token {
  enum class Kind { kWord, kOpenBrace, kCloseBrace, kSemicolon } kind;
  std::string word;
  int line = 0;
};

std::vector<Token> tokenize(std::string_view text, int& total_lines) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  bool line_has_content = false;
  total_lines = 0;
  auto flush_line = [&] {
    if (line_has_content) ++total_lines;
    line_has_content = false;
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      flush_line();
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') ++i;
    } else if (c == '{') {
      tokens.push_back({Token::Kind::kOpenBrace, "{", line});
      line_has_content = true;
      ++i;
    } else if (c == '}') {
      tokens.push_back({Token::Kind::kCloseBrace, "}", line});
      line_has_content = true;
      ++i;
    } else if (c == ';') {
      tokens.push_back({Token::Kind::kSemicolon, ";", line});
      line_has_content = true;
      ++i;
    } else if (c == '"') {
      size_t end = text.find('"', i + 1);
      if (end == std::string_view::npos) end = text.size();
      tokens.push_back({Token::Kind::kWord, std::string(text.substr(i + 1, end - i - 1)), line});
      line_has_content = true;
      i = end + 1;
    } else {
      size_t start = i;
      while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])) &&
             text[i] != '{' && text[i] != '}' && text[i] != ';' && text[i] != '#')
        ++i;
      tokens.push_back({Token::Kind::kWord, std::string(text.substr(start, i - start)), line});
      line_has_content = true;
    }
  }
  flush_line();
  return tokens;
}

class TreeParser {
 public:
  TreeParser(std::vector<Token> tokens, DiagnosticList& diagnostics)
      : tokens_(std::move(tokens)), diagnostics_(diagnostics) {}

  std::vector<VjunStatement> run() {
    std::vector<VjunStatement> roots = parse_block(/*depth=*/0);
    if (pos_ < tokens_.size())
      diagnostics_.add(DiagnosticSeverity::kError, tokens_[pos_].line, tokens_[pos_].word,
                       "unexpected '}' at top level");
    return roots;
  }

 private:
  std::vector<VjunStatement> parse_block(int depth) {
    std::vector<VjunStatement> statements;
    std::vector<std::string> words;
    int first_line = 0;
    auto reset = [&] {
      words.clear();
      first_line = 0;
    };
    while (pos_ < tokens_.size()) {
      const Token& token = tokens_[pos_];
      switch (token.kind) {
        case Token::Kind::kWord:
          if (words.empty()) first_line = token.line;
          words.push_back(token.word);
          ++pos_;
          break;
        case Token::Kind::kSemicolon: {
          ++pos_;
          if (words.empty()) break;  // stray ';' tolerated
          VjunStatement leaf;
          leaf.words = words;
          leaf.line_number = first_line;
          statements.push_back(std::move(leaf));
          reset();
          break;
        }
        case Token::Kind::kOpenBrace: {
          ++pos_;
          if (words.empty()) {
            diagnosticError(token, "'{' without a statement keyword");
            parse_block(depth + 1);  // skip the orphan block
            break;
          }
          VjunStatement node;
          node.words = words;
          node.line_number = first_line;
          node.children = parse_block(depth + 1);
          statements.push_back(std::move(node));
          reset();
          break;
        }
        case Token::Kind::kCloseBrace:
          if (depth == 0) return statements;  // caller reports the error
          ++pos_;
          if (!words.empty())
            diagnosticError(token, "statement '" + util::join(words, " ") +
                                       "' missing ';' before '}'");
          return statements;
      }
    }
    if (depth > 0 && !tokens_.empty())
      diagnosticError(tokens_.back(), "missing '}' at end of input");
    if (!words.empty() && !tokens_.empty())
      diagnosticError(tokens_.back(),
                      "statement '" + util::join(words, " ") + "' missing ';'");
    return statements;
  }

  void diagnosticError(const Token& token, std::string message) {
    diagnostics_.add(DiagnosticSeverity::kError, token.line, token.word, std::move(message));
  }

  std::vector<Token> tokens_;
  DiagnosticList& diagnostics_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Semantic binding: statement tree -> DeviceConfig

class Binder {
 public:
  Binder(VjunParseResult& result) : result_(result) {}

  void bind(const std::vector<VjunStatement>& roots) {
    cfg().vendor = Vendor::kVjun;
    for (const auto& statement : roots) {
      const std::string& head = statement.words.empty() ? kEmpty : statement.words[0];
      if (head == "system") bind_system(statement);
      else if (head == "interfaces") bind_interfaces(statement);
      else if (head == "routing-options") bind_routing_options(statement);
      else if (head == "protocols") bind_protocols(statement);
      else if (head == "policy-options") bind_policy_options(statement);
      else if (head == "firewall") bind_firewall(statement);
      else if (head == "routing-instances") bind_routing_instances(statement);
      else if (head == "snmp" || head == "chassis" || head == "services" ||
               head == "security" || head == "event-options" || head == "groups" ||
               head == "apply-groups" || head == "version")
        record_management(statement);
      else
        error(statement, "unknown top-level stanza '" + head + "'");
    }
  }

 private:
  static inline const std::string kEmpty;

  DeviceConfig& cfg() { return result_.config; }

  void error(const VjunStatement& s, std::string message) {
    result_.diagnostics.add(DiagnosticSeverity::kError, s.line_number, s.text(),
                            std::move(message));
  }

  void record_management(const VjunStatement& s) {
    ManagementFeature feature;
    feature.name = s.words.empty() ? "unknown" : s.words[0];
    collect_lines(s, feature.lines);
    cfg().management_features.push_back(std::move(feature));
  }

  static void collect_lines(const VjunStatement& s, std::vector<std::string>& lines) {
    lines.push_back(s.text());
    for (const auto& child : s.children) collect_lines(child, lines);
  }

  void bind_system(const VjunStatement& system) {
    for (const auto& child : system.children) {
      if (child.words.size() >= 2 && child.words[0] == "host-name") {
        cfg().hostname = child.words[1];
      } else {
        record_management(child);  // login, services ssh/netconf, syslog...
      }
    }
  }

  // -- interfaces -----------------------------------------------------------

  void bind_interfaces(const VjunStatement& interfaces) {
    for (const auto& ifd : interfaces.children) {
      if (ifd.words.empty()) continue;
      const std::string& device = ifd.words[0];
      for (const auto& sub : ifd.children) {
        if (sub.words.size() >= 2 && sub.words[0] == "unit") {
          bind_unit(device, sub);
        } else if (sub.words.size() >= 2 && sub.words[0] == "description") {
          // Applied to unit 0 by convention once it exists.
          cfg().interface(device + ".0").description = sub.words[1];
        } else if (sub.words[0] == "disable") {
          cfg().interface(device + ".0").shutdown = true;
        }
        // gigether-options, mtu etc. accepted silently.
      }
    }
  }

  void bind_unit(const std::string& device, const VjunStatement& unit) {
    // Logical interface name "<device>.<unit>", e.g. "et-0/0/1.0".
    const std::string name = device + "." + unit.words[1];
    InterfaceConfig& iface = cfg().interface(name);
    iface.switchport = false;  // vjun logical units are always routed
    for (const auto& family : unit.children) {
      if (family.words.empty()) continue;
      if (family.words[0] == "family" && family.words.size() >= 2) {
        const std::string& af = family.words[1];
        if (af == "inet") {
          for (const auto& stmt : family.children) {
            if (stmt.words.size() >= 2 && stmt.words[0] == "address") {
              auto address = net::InterfaceAddress::parse(stmt.words[1]);
              if (!address) error(stmt, "invalid inet address");
              else iface.address = *address;
            } else if (stmt.words[0] == "filter") {
              // filter { input NAME; output NAME; } or inline "filter input NAME;"
              auto apply = [&](const std::vector<std::string>& words) {
                for (size_t i = 0; i + 1 < words.size(); ++i) {
                  if (words[i] == "input") iface.acl_in = words[i + 1];
                  else if (words[i] == "output") iface.acl_out = words[i + 1];
                }
              };
              apply(stmt.words);
              for (const auto& sub : stmt.children) apply(sub.words);
            }
          }
        } else if (af == "iso") {
          for (const auto& stmt : family.children) {
            if (stmt.words.size() >= 2 && stmt.words[0] == "address")
              cfg().isis.net = stmt.words[1];  // NET configured on lo0
          }
        } else if (af == "mpls") {
          iface.mpls_enabled = true;
        } else {
          error(family, "unknown address family '" + af + "'");
        }
      } else if (family.words[0] == "description" && family.words.size() >= 2) {
        iface.description = family.words[1];
      } else if (family.words[0] == "disable") {
        iface.shutdown = true;
      }
    }
  }

  // -- routing-options --------------------------------------------------------

  void bind_routing_options(const VjunStatement& options) {
    for (const auto& child : options.children) {
      if (child.words.empty()) continue;
      if (child.words[0] == "router-id" && child.words.size() >= 2) {
        auto id = net::Ipv4Address::parse(child.words[1]);
        if (!id) error(child, "invalid router-id");
        else cfg().bgp.router_id = *id;
      } else if (child.words[0] == "autonomous-system" && child.words.size() >= 2) {
        uint32_t asn = 0;
        if (!util::parse_uint32(child.words[1], asn) || asn == 0)
          error(child, "invalid autonomous-system");
        else cfg().bgp.local_as = asn;
      } else if (child.words[0] == "static") {
        for (const auto& route : child.children) {
          if (route.words.size() >= 2 && route.words[0] == "route") bind_static_route(route);
        }
      } else {
        record_management(child);
      }
    }
  }

  void bind_static_route(const VjunStatement& route) {
    auto prefix = net::Ipv4Prefix::parse(route.words[1]);
    if (!prefix) {
      error(route, "invalid static route prefix");
      return;
    }
    StaticRoute entry;
    entry.prefix = *prefix;
    entry.distance = 5;  // vjun static preference default
    // Either inline ("route X next-hop Y;") or nested children.
    auto apply = [&](const std::vector<std::string>& words, const VjunStatement& at) {
      for (size_t i = 0; i < words.size(); ++i) {
        if (words[i] == "next-hop" && i + 1 < words.size()) {
          auto nh = net::Ipv4Address::parse(words[i + 1]);
          if (!nh) error(at, "invalid next-hop");
          else entry.next_hop = *nh;
          ++i;
        } else if (words[i] == "discard" || words[i] == "reject") {
          entry.null_route = true;
        } else if (words[i] == "preference" && i + 1 < words.size()) {
          uint32_t pref = 0;
          if (!util::parse_uint32(words[i + 1], pref) || pref == 0 || pref > 255)
            error(at, "invalid preference");
          else entry.distance = static_cast<uint8_t>(pref);
          ++i;
        }
      }
    };
    apply(std::vector<std::string>(route.words.begin() + 2, route.words.end()), route);
    for (const auto& child : route.children) apply(child.words, child);
    if (!entry.next_hop && !entry.null_route) {
      error(route, "static route requires next-hop or discard");
      return;
    }
    cfg().static_routes.push_back(entry);
  }

  // -- protocols ---------------------------------------------------------------

  void bind_protocols(const VjunStatement& protocols) {
    for (const auto& child : protocols.children) {
      if (child.words.empty()) continue;
      if (child.words[0] == "isis") bind_isis(child);
      else if (child.words[0] == "ospf") bind_ospf(child);
      else if (child.words[0] == "bgp") bind_bgp(child);
      else if (child.words[0] == "mpls") bind_mpls(child);
      else if (child.words[0] == "rsvp") cfg().mpls.te_enabled = true;
      else if (child.words[0] == "lldp" || child.words[0] == "layer2-control")
        record_management(child);
      else error(child, "unknown protocol '" + child.words[0] + "'");
    }
  }

  void bind_isis(const VjunStatement& isis) {
    cfg().isis.enabled = true;
    cfg().isis.af_ipv4_unicast = true;  // vjun IS-IS always carries inet
    for (const auto& child : isis.children) {
      if (child.words.empty()) continue;
      if (child.words[0] == "net" && child.words.size() >= 2) {
        cfg().isis.net = child.words[1];
      } else if (child.words[0] == "level" && child.words.size() >= 2) {
        if (child.words[1] == "1") cfg().isis.level = IsisLevel::kLevel1;
        else if (child.words[1] == "2") cfg().isis.level = IsisLevel::kLevel2;
      } else if (child.words[0] == "interface" && child.words.size() >= 2) {
        InterfaceConfig& iface = cfg().interface(child.words[1]);
        iface.isis_enabled = true;
        iface.isis_instance = "default";
        for (const auto& knob : child.children) {
          if (knob.words.empty()) continue;
          if (knob.words[0] == "passive") iface.isis_passive = true;
          else if (knob.words[0] == "metric" && knob.words.size() >= 2) {
            uint32_t metric = 0;
            if (!util::parse_uint32(knob.words[1], metric) || metric == 0)
              error(knob, "invalid isis metric");
            else iface.isis_metric = metric;
          }
        }
      }
      // lsp-lifetime, spf-options etc. accepted.
    }
  }

  void bind_ospf(const VjunStatement& ospf) {
    cfg().ospf.enabled = true;
    for (const auto& area : ospf.children) {
      if (area.words.size() < 2 || area.words[0] != "area") continue;
      if (area.words[1] != "0.0.0.0" && area.words[1] != "0") {
        error(area, "only area 0 is supported");
        continue;
      }
      for (const auto& stmt : area.children) {
        if (stmt.words.size() < 2 || stmt.words[0] != "interface") continue;
        const net::InterfaceName& name = stmt.words[1];
        // vjun attaches interfaces explicitly; the shared IR uses
        // network-statement coverage, so cover this interface's address
        // exactly. Requires the interfaces stanza to precede protocols
        // (standard ordering in practice).
        const InterfaceConfig* iface = cfg().find_interface(name);
        if (iface == nullptr || !iface->address) {
          error(stmt, "ospf interface '" + name + "' has no inet address yet");
          continue;
        }
        cfg().ospf.networks.push_back(net::Ipv4Prefix::host(iface->address->address));
        for (const auto& knob : stmt.children) {
          if (knob.words.empty()) continue;
          if (knob.words[0] == "passive") {
            cfg().ospf.passive_interfaces.push_back(name);
          } else if (knob.words[0] == "metric" && knob.words.size() >= 2) {
            uint32_t cost = 0;
            if (!util::parse_uint32(knob.words[1], cost) || cost == 0)
              error(knob, "invalid ospf metric");
            else cfg().interface(name).ospf_cost = cost;
          }
        }
      }
    }
  }

  void bind_bgp(const VjunStatement& bgp) {
    cfg().bgp.enabled = true;
    for (const auto& group : bgp.children) {
      if (group.words.size() < 2 || group.words[0] != "group") {
        // top-level bgp knobs (log-updown etc.) accepted.
        continue;
      }
      bool external = false;
      bool cluster = false;  // "cluster <id>;" marks the group's peers as RR clients
      std::optional<net::AsNumber> peer_as;
      std::optional<std::string> import_policy;
      std::optional<std::string> export_policy;
      std::optional<net::Ipv4Address> local_address;
      for (const auto& stmt : group.children) {
        if (stmt.words.empty()) continue;
        if (stmt.words[0] == "type" && stmt.words.size() >= 2) {
          external = stmt.words[1] == "external";
        } else if (stmt.words[0] == "peer-as" && stmt.words.size() >= 2) {
          uint32_t asn = 0;
          if (!util::parse_uint32(stmt.words[1], asn) || asn == 0)
            error(stmt, "invalid peer-as");
          else peer_as = asn;
        } else if (stmt.words[0] == "import" && stmt.words.size() >= 2) {
          import_policy = stmt.words[1];
        } else if (stmt.words[0] == "export" && stmt.words.size() >= 2) {
          export_policy = stmt.words[1];
        } else if (stmt.words[0] == "local-address" && stmt.words.size() >= 2) {
          auto addr = net::Ipv4Address::parse(stmt.words[1]);
          if (!addr) error(stmt, "invalid local-address");
          else local_address = *addr;
        } else if (stmt.words[0] == "cluster") {
          cluster = true;
        }
      }
      for (const auto& stmt : group.children) {
        if (stmt.words.size() < 2 || stmt.words[0] != "neighbor") continue;
        auto peer = net::Ipv4Address::parse(stmt.words[1]);
        if (!peer) {
          error(stmt, "invalid neighbor address");
          continue;
        }
        BgpNeighborConfig neighbor;
        neighbor.peer = *peer;
        neighbor.remote_as = external ? peer_as.value_or(0) : cfg().bgp.local_as;
        neighbor.route_map_in = import_policy;
        neighbor.route_map_out = export_policy;
        neighbor.send_community = true;  // vjun sends communities by default
        neighbor.route_reflector_client = cluster && !external;
        if (local_address) {
          // Find the interface owning that address to use as update-source.
          for (const auto& [name, iface] : cfg().interfaces)
            if (iface.address && iface.address->address == *local_address)
              neighbor.update_source = name;
        }
        // Per-neighbor overrides.
        for (const auto& knob : stmt.children) {
          if (knob.words.empty()) continue;
          if (knob.words[0] == "peer-as" && knob.words.size() >= 2) {
            uint32_t asn = 0;
            if (util::parse_uint32(knob.words[1], asn) && asn != 0) neighbor.remote_as = asn;
          } else if (knob.words[0] == "import" && knob.words.size() >= 2) {
            neighbor.route_map_in = knob.words[1];
          } else if (knob.words[0] == "export" && knob.words.size() >= 2) {
            neighbor.route_map_out = knob.words[1];
          } else if (knob.words[0] == "shutdown") {
            neighbor.shutdown = true;
          } else if (knob.words[0] == "next-hop-self") {
            neighbor.next_hop_self = true;
          }
        }
        if (neighbor.remote_as == 0) {
          error(stmt, "neighbor has no peer-as and group is external");
          continue;
        }
        cfg().bgp.neighbors.push_back(std::move(neighbor));
      }
    }
  }

  void bind_mpls(const VjunStatement& mpls) {
    cfg().mpls.enabled = true;
    for (const auto& child : mpls.children) {
      if (child.words.empty()) continue;
      if (child.words[0] == "interface" && child.words.size() >= 2) {
        cfg().interface(child.words[1]).mpls_enabled = true;
      } else if (child.words[0] == "label-switched-path" && child.words.size() >= 2) {
        TeTunnel tunnel;
        tunnel.name = child.words[1];
        for (const auto& stmt : child.children) {
          if (stmt.words.size() >= 2 && stmt.words[0] == "to") {
            auto dest = net::Ipv4Address::parse(stmt.words[1]);
            if (!dest) error(stmt, "invalid LSP destination");
            else tunnel.destination = *dest;
          } else if (stmt.words.size() >= 2 && stmt.words[0] == "bandwidth") {
            uint64_t bps = 0;
            if (util::parse_uint64(stmt.words[1], bps)) tunnel.bandwidth_bps = bps;
          }
        }
        cfg().mpls.te_enabled = true;
        cfg().mpls.tunnels.push_back(std::move(tunnel));
      }
    }
  }

  // -- policy-options ------------------------------------------------------------

  void bind_policy_options(const VjunStatement& policy) {
    for (const auto& child : policy.children) {
      if (child.words.empty()) continue;
      if (child.words[0] == "prefix-list" && child.words.size() >= 2) {
        PrefixList& list = cfg().prefix_lists[child.words[1]];
        list.name = child.words[1];
        for (const auto& stmt : child.children) {
          if (stmt.words.empty()) continue;
          auto prefix = net::Ipv4Prefix::parse(stmt.words[0]);
          if (!prefix) {
            error(stmt, "invalid prefix-list entry");
            continue;
          }
          PrefixListEntry entry;
          entry.seq = static_cast<uint32_t>(list.entries.size() + 1) * 10;
          entry.permit = true;
          entry.prefix = *prefix;
          list.entries.push_back(entry);
        }
      } else if (child.words[0] == "community" && child.words.size() >= 4 &&
                 child.words[2] == "members") {
        CommunityList& list = cfg().community_lists[child.words[1]];
        list.name = child.words[1];
        for (size_t i = 3; i < child.words.size(); ++i) {
          auto community = parse_community(child.words[i]);
          if (!community) error(child, "invalid community member");
          else list.communities.push_back(*community);
        }
      } else if (child.words[0] == "policy-statement" && child.words.size() >= 2) {
        bind_policy_statement(child);
      } else {
        error(child, "unknown policy-options stanza");
      }
    }
  }

  void bind_routing_instances(const VjunStatement& instances) {
    for (const auto& instance : instances.children) {
      if (instance.words.empty()) continue;
      const std::string& name = instance.words[0];
      if (!cfg().has_vrf(name)) cfg().vrfs.push_back(name);
      for (const auto& stmt : instance.children) {
        if (stmt.words.empty()) continue;
        if (stmt.words[0] == "interface" && stmt.words.size() >= 2) {
          cfg().interface(stmt.words[1]).vrf = name;
        } else if (stmt.words[0] == "routing-options") {
          for (const auto& options : stmt.children) {
            if (options.words.empty() || options.words[0] != "static") continue;
            size_t before = cfg().static_routes.size();
            for (const auto& route : options.children)
              if (route.words.size() >= 2 && route.words[0] == "route")
                bind_static_route(route);
            for (size_t i = before; i < cfg().static_routes.size(); ++i)
              cfg().static_routes[i].vrf = name;
          }
        }
        // instance-type / route-distinguisher accepted, unmodelled.
      }
    }
  }

  void bind_firewall(const VjunStatement& firewall) {
    for (const auto& filter : firewall.children) {
      if (filter.words.size() < 2 || filter.words[0] != "filter") {
        error(filter, "firewall stanza supports only filters");
        continue;
      }
      config::Acl& acl = cfg().acls[filter.words[1]];
      acl.name = filter.words[1];
      for (const auto& term : filter.children) {
        if (term.words.size() < 2 || term.words[0] != "term") continue;
        AclEntry entry;
        uint32_t seq = 0;
        if (util::parse_uint32(term.words[1], seq)) entry.seq = seq;
        else entry.seq = static_cast<uint32_t>(acl.entries.size() + 1) * 10;
        entry.destination = net::Ipv4Prefix();  // default: any
        bool discard = false;
        for (const auto& part : term.children) {
          if (part.words.empty()) continue;
          if (part.words[0] == "from") {
            for (const auto& cond : part.children) {
              if (cond.words.size() >= 2 && cond.words[0] == "destination-address") {
                auto prefix = net::Ipv4Prefix::parse(cond.words[1]);
                if (!prefix) error(cond, "invalid destination-address");
                else entry.destination = *prefix;
              }
            }
          } else if (part.words[0] == "then") {
            for (size_t i = 1; i < part.words.size(); ++i)
              if (part.words[i] == "discard" || part.words[i] == "reject") discard = true;
            for (const auto& action : part.children)
              if (!action.words.empty() &&
                  (action.words[0] == "discard" || action.words[0] == "reject"))
                discard = true;
          }
        }
        entry.permit = !discard;
        acl.entries.push_back(entry);
      }
    }
  }

  void bind_policy_statement(const VjunStatement& statement) {
    RouteMap& map = cfg().route_maps[statement.words[1]];
    map.name = statement.words[1];
    for (const auto& term : statement.children) {
      if (term.words.size() < 2 || term.words[0] != "term") continue;
      RouteMapClause clause;
      clause.seq = static_cast<uint32_t>(map.clauses.size() + 1) * 10;
      uint32_t seq = 0;
      if (util::parse_uint32(term.words[1], seq)) clause.seq = seq;
      clause.permit = true;  // resolved by then accept/reject below
      bool has_reject = false;
      for (const auto& part : term.children) {
        if (part.words.empty()) continue;
        if (part.words[0] == "from") {
          for (const auto& cond : part.children) {
            if (cond.words.empty()) continue;
            if (cond.words[0] == "prefix-list" && cond.words.size() >= 2)
              clause.match_prefix_list = cond.words[1];
            else if (cond.words[0] == "community" && cond.words.size() >= 2)
              clause.match_community_list = cond.words[1];
          }
        } else if (part.words[0] == "then") {
          // Inline form: "then reject;" / "then accept;"
          for (size_t i = 1; i < part.words.size(); ++i) {
            if (part.words[i] == "reject") has_reject = true;
          }
          for (const auto& action : part.children) {
            if (action.words.empty()) continue;
            if (action.words[0] == "local-preference" && action.words.size() >= 2) {
              uint32_t pref = 0;
              if (util::parse_uint32(action.words[1], pref)) clause.set_local_pref = pref;
            } else if (action.words[0] == "metric" && action.words.size() >= 2) {
              uint32_t med = 0;
              if (util::parse_uint32(action.words[1], med)) clause.set_med = med;
            } else if (action.words[0] == "community" && action.words.size() >= 3 &&
                       (action.words[1] == "add" || action.words[1] == "set")) {
              clause.additive_communities = action.words[1] == "add";
              // Resolve community-list name to its members at apply time;
              // store as a match on the named list for simplicity: look up now.
              auto it = cfg().community_lists.find(action.words[2]);
              if (it != cfg().community_lists.end())
                clause.set_communities = it->second.communities;
            } else if (action.words[0] == "as-path-prepend" && action.words.size() >= 2) {
              clause.prepend_count =
                  static_cast<uint32_t>(util::split_whitespace(action.words[1]).size());
            } else if (action.words[0] == "next-hop" && action.words.size() >= 2) {
              auto nh = net::Ipv4Address::parse(action.words[1]);
              if (nh) clause.set_next_hop = *nh;
            } else if (action.words[0] == "reject") {
              has_reject = true;
            }
          }
        }
      }
      clause.permit = !has_reject;
      map.clauses.push_back(std::move(clause));
    }
  }

  VjunParseResult& result_;
};

}  // namespace

std::vector<VjunStatement> parse_vjun_tree(std::string_view text, DiagnosticList& diagnostics) {
  int total_lines = 0;
  auto tokens = tokenize(text, total_lines);
  return TreeParser(std::move(tokens), diagnostics).run();
}

VjunParseResult parse_vjun(std::string_view text) {
  VjunParseResult result;
  int total_lines = 0;
  auto tokens = tokenize(text, total_lines);
  result.total_lines = total_lines;
  auto roots = TreeParser(std::move(tokens), result.diagnostics).run();
  Binder(result).bind(roots);
  return result;
}

}  // namespace mfv::config
