#include "config/ceos_writer.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace mfv::config {
namespace {

void emit_interface(std::string& out, const InterfaceConfig& iface,
                    const CeosWriterOptions& options) {
  out += "interface " + iface.name + "\n";
  if (iface.description) out += "   description " + *iface.description + "\n";
  if (!iface.vrf.empty()) out += "   vrf " + iface.vrf + "\n";
  auto emit_address = [&] {
    if (iface.address) out += "   ip address " + iface.address->to_string() + "\n";
  };
  auto emit_switchport = [&] {
    if (!iface.is_loopback()) {
      if (!iface.switchport) out += "   no switchport\n";
      else out += "   switchport\n";
    }
  };
  // Both orders are valid on the device; see CeosWriterOptions.
  if (options.address_before_switchport) {
    emit_address();
    emit_switchport();
  } else {
    emit_switchport();
    emit_address();
  }
  if (iface.shutdown) out += "   shutdown\n";
  if (iface.isis_enabled) {
    out += "   isis enable " +
           (iface.isis_instance.empty() ? std::string("default") : iface.isis_instance) + "\n";
    if (iface.isis_passive) out += "   isis passive-interface default\n";
    if (iface.isis_metric != 10)
      out += "   isis metric " + std::to_string(iface.isis_metric) + "\n";
  }
  if (iface.ospf_cost != 10) out += "   ip ospf cost " + std::to_string(iface.ospf_cost) + "\n";
  if (iface.mpls_enabled) out += "   mpls ip\n";
  if (iface.acl_in) out += "   ip access-group " + *iface.acl_in + " in\n";
  if (iface.acl_out) out += "   ip access-group " + *iface.acl_out + " out\n";
  out += "!\n";
}

void emit_acls(std::string& out, const DeviceConfig& config) {
  for (const auto& [name, acl] : config.acls) {
    out += "ip access-list standard " + name + "\n";
    for (const AclEntry& entry : acl.entries) {
      out += "   seq " + std::to_string(entry.seq) + " " +
             (entry.permit ? "permit " : "deny ");
      if (entry.destination == net::Ipv4Prefix()) out += "any";
      else if (entry.destination.length() == 32)
        out += "host " + entry.destination.address().to_string();
      else out += entry.destination.to_string();
      out += "\n";
    }
    out += "!\n";
  }
}

void emit_isis(std::string& out, const IsisConfig& isis) {
  if (!isis.enabled) return;
  out += "router isis " + isis.instance + "\n";
  if (!isis.net.empty()) out += "   net " + isis.net + "\n";
  switch (isis.level) {
    case IsisLevel::kLevel1: out += "   is-type level-1\n"; break;
    case IsisLevel::kLevel2: out += "   is-type level-2\n"; break;
    case IsisLevel::kLevel12: out += "   is-type level-1-2\n"; break;
  }
  if (isis.af_ipv4_unicast) out += "   address-family ipv4 unicast\n";
  out += "!\n";
}

void emit_ospf(std::string& out, const OspfConfig& ospf) {
  if (!ospf.enabled) return;
  out += "router ospf " + std::to_string(ospf.process_id) + "\n";
  if (ospf.router_id) out += "   router-id " + ospf.router_id->to_string() + "\n";
  for (const auto& network : ospf.networks)
    out += "   network " + network.to_string() + " area 0\n";
  for (const auto& passive : ospf.passive_interfaces)
    out += "   passive-interface " + passive + "\n";
  out += "!\n";
}

void emit_bgp(std::string& out, const BgpConfig& bgp) {
  if (!bgp.enabled) return;
  out += "router bgp " + std::to_string(bgp.local_as) + "\n";
  if (bgp.router_id) out += "   router-id " + bgp.router_id->to_string() + "\n";
  if (bgp.default_local_pref != 100)
    out += "   bgp default local-preference " + std::to_string(bgp.default_local_pref) + "\n";
  if (bgp.maximum_paths > 1)
    out += "   maximum-paths " + std::to_string(bgp.maximum_paths) + "\n";
  for (const auto& n : bgp.neighbors) {
    std::string peer = n.peer.to_string();
    // A neighbor with no remote-as yet (half-configured: some other
    // neighbor line arrived first) renders without the remote-as line,
    // exactly as the device CLI shows it. Emitting "remote-as 0" would
    // produce text the parser rejects (found by the dialect fuzz oracle).
    if (n.remote_as != 0)
      out += "   neighbor " + peer + " remote-as " + std::to_string(n.remote_as) + "\n";
    if (n.description) out += "   neighbor " + peer + " description " + *n.description + "\n";
    if (n.update_source) out += "   neighbor " + peer + " update-source " + *n.update_source + "\n";
    if (n.next_hop_self) out += "   neighbor " + peer + " next-hop-self\n";
    if (n.route_reflector_client)
      out += "   neighbor " + peer + " route-reflector-client\n";
    if (n.send_community) out += "   neighbor " + peer + " send-community\n";
    if (n.ebgp_multihop > 1)
      out += "   neighbor " + peer + " ebgp-multihop " + std::to_string(n.ebgp_multihop) + "\n";
    if (n.route_map_in) out += "   neighbor " + peer + " route-map " + *n.route_map_in + " in\n";
    if (n.route_map_out) out += "   neighbor " + peer + " route-map " + *n.route_map_out + " out\n";
    if (n.shutdown) out += "   neighbor " + peer + " shutdown\n";
  }
  for (const auto& network : bgp.networks) {
    out += "   network " + network.prefix.to_string();
    if (network.route_map) out += " route-map " + *network.route_map;
    out += "\n";
  }
  if (bgp.redistribute_connected) out += "   redistribute connected\n";
  if (bgp.redistribute_static) out += "   redistribute static\n";
  out += "!\n";
}

void emit_policy(std::string& out, const DeviceConfig& config) {
  for (const auto& [name, list] : config.prefix_lists) {
    for (const auto& entry : list.entries) {
      out += "ip prefix-list " + name + " seq " + std::to_string(entry.seq) + " " +
             (entry.permit ? "permit " : "deny ") + entry.prefix.to_string();
      if (entry.ge != 0) out += " ge " + std::to_string(entry.ge);
      if (entry.le != 0) out += " le " + std::to_string(entry.le);
      out += "\n";
    }
  }
  for (const auto& [name, list] : config.community_lists) {
    out += "ip community-list standard " + name + " permit";
    for (Community c : list.communities) out += " " + community_to_string(c);
    out += "\n";
  }
  if (!config.prefix_lists.empty() || !config.community_lists.empty()) out += "!\n";

  for (const auto& [name, map] : config.route_maps) {
    for (const auto& clause : map.clauses) {
      out += "route-map " + name + (clause.permit ? " permit " : " deny ") +
             std::to_string(clause.seq) + "\n";
      if (clause.match_prefix_list)
        out += "   match ip address prefix-list " + *clause.match_prefix_list + "\n";
      if (clause.match_community_list)
        out += "   match community " + *clause.match_community_list + "\n";
      if (clause.match_med) out += "   match metric " + std::to_string(*clause.match_med) + "\n";
      if (clause.set_local_pref)
        out += "   set local-preference " + std::to_string(*clause.set_local_pref) + "\n";
      if (clause.set_med) out += "   set metric " + std::to_string(*clause.set_med) + "\n";
      if (!clause.set_communities.empty()) {
        out += "   set community";
        for (Community c : clause.set_communities) out += " " + community_to_string(c);
        if (clause.additive_communities) out += " additive";
        out += "\n";
      }
      if (clause.prepend_count > 0) {
        out += "   set as-path prepend";
        for (uint32_t i = 0; i < clause.prepend_count; ++i) out += " 0";
        out += "\n";
      }
      if (clause.set_next_hop) out += "   set ip next-hop " + clause.set_next_hop->to_string() + "\n";
      out += "!\n";
    }
  }
}

void emit_statics(std::string& out, const DeviceConfig& config) {
  for (const auto& route : config.static_routes) {
    out += "ip route ";
    if (!route.vrf.empty()) out += "vrf " + route.vrf + " ";
    out += route.prefix.to_string() + " ";
    if (route.null_route) out += "Null0";
    else if (route.next_hop) out += route.next_hop->to_string();
    else if (route.exit_interface) out += *route.exit_interface;
    if (route.distance != 1) out += " " + std::to_string(route.distance);
    out += "\n";
  }
  if (!config.static_routes.empty()) out += "!\n";
}

void emit_mpls(std::string& out, const MplsConfig& mpls) {
  if (!mpls.enabled) return;
  out += "mpls ip\n";
  if (mpls.te_enabled) out += "mpls traffic-engineering\n";
  out += "!\n";
  if (!mpls.tunnels.empty()) {
    out += "router traffic-engineering\n";
    for (const auto& tunnel : mpls.tunnels) {
      out += "   tunnel " + tunnel.name + "\n";
      out += "   destination " + tunnel.destination.to_string() + "\n";
      for (const auto& hop : tunnel.explicit_hops) out += "   hop " + hop.to_string() + "\n";
      if (tunnel.setup_priority != 7 || tunnel.hold_priority != 7)
        out += "   priority " + std::to_string(tunnel.setup_priority) + " " +
               std::to_string(tunnel.hold_priority) + "\n";
      if (tunnel.bandwidth_bps != 0)
        out += "   bandwidth " + std::to_string(tunnel.bandwidth_bps) + "\n";
    }
    out += "!\n";
  }
}

}  // namespace

std::string write_ceos(const DeviceConfig& config, const CeosWriterOptions& options) {
  std::string out;
  out += "hostname " + config.hostname + "\n!\n";
  if (options.include_management) {
    for (const auto& feature : config.management_features) {
      bool first = true;
      for (const auto& line : feature.lines) {
        out += (first ? "" : "   ") + line + "\n";
        first = false;
      }
      out += "!\n";
    }
  }
  out += "ip routing\n!\n";
  for (const std::string& vrf : config.vrfs) out += "vrf instance " + vrf + "\n!\n";
  emit_acls(out, config);
  for (const auto& [name, iface] : config.interfaces)
    emit_interface(out, iface, options);
  emit_isis(out, config.isis);
  emit_ospf(out, config.ospf);
  emit_mpls(out, config.mpls);
  emit_bgp(out, config.bgp);
  emit_policy(out, config);
  emit_statics(out, config);
  out += "end\n";
  return out;
}

}  // namespace mfv::config
