#include "config/vjun_writer.hpp"

#include "util/strings.hpp"

namespace mfv::config {
namespace {

class Emitter {
 public:
  std::string take() { return std::move(out_); }

  void open(const std::string& words) {
    line(words + " {");
    ++depth_;
  }
  void close() {
    --depth_;
    line("}");
  }
  void leaf(const std::string& words) { line(words + ";"); }

 private:
  void line(const std::string& text) {
    out_.append(static_cast<size_t>(depth_) * 4, ' ');
    out_ += text;
    out_ += '\n';
  }
  std::string out_;
  int depth_ = 0;
};

/// Splits "et-0/0/1.0" into device and unit. Interfaces without a dot get
/// unit 0.
std::pair<std::string, std::string> split_unit(const std::string& name) {
  size_t dot = name.rfind('.');
  if (dot == std::string::npos) return {name, "0"};
  return {name.substr(0, dot), name.substr(dot + 1)};
}

}  // namespace

std::string write_vjun(const DeviceConfig& config, const VjunWriterOptions& options) {
  Emitter e;

  e.open("system");
  e.leaf("host-name " + config.hostname);
  if (options.include_management) {
    e.open("services");
    e.leaf("ssh");
    e.leaf("netconf");
    e.close();
  }
  e.close();

  // interfaces — group logical units under their device.
  e.open("interfaces");
  std::map<std::string, std::vector<const InterfaceConfig*>> by_device;
  for (const auto& [name, iface] : config.interfaces)
    by_device[split_unit(name).first].push_back(&iface);
  for (const auto& [device, units] : by_device) {
    e.open(device);
    for (const InterfaceConfig* iface : units) {
      e.open("unit " + split_unit(iface->name).second);
      if (iface->description) e.leaf("description \"" + *iface->description + "\"");
      if (iface->shutdown) e.leaf("disable");
      if (iface->address || iface->acl_in || iface->acl_out) {
        e.open("family inet");
        if (iface->address) e.leaf("address " + iface->address->to_string());
        if (iface->acl_in || iface->acl_out) {
          e.open("filter");
          if (iface->acl_in) e.leaf("input " + *iface->acl_in);
          if (iface->acl_out) e.leaf("output " + *iface->acl_out);
          e.close();
        }
        e.close();
      }
      if (iface->isis_enabled) e.leaf("family iso");
      if (iface->mpls_enabled) e.leaf("family mpls");
      e.close();
    }
    e.close();
  }
  e.close();

  // routing-instances (VRFs)
  if (!config.vrfs.empty()) {
    e.open("routing-instances");
    for (const std::string& vrf : config.vrfs) {
      e.open(vrf);
      e.leaf("instance-type vrf");
      for (const auto& [name, iface] : config.interfaces)
        if (iface.vrf == vrf) e.leaf("interface " + name);
      bool has_static = false;
      for (const auto& route : config.static_routes)
        if (route.vrf == vrf) has_static = true;
      if (has_static) {
        e.open("routing-options");
        e.open("static");
        for (const auto& route : config.static_routes) {
          if (route.vrf != vrf) continue;
          std::string stmt = "route " + route.prefix.to_string();
          if (route.null_route) stmt += " discard";
          else if (route.next_hop) stmt += " next-hop " + route.next_hop->to_string();
          if (route.distance != 5) stmt += " preference " + std::to_string(route.distance);
          e.leaf(stmt);
        }
        e.close();
        e.close();
      }
      e.close();
    }
    e.close();
  }

  // routing-options
  e.open("routing-options");
  if (config.bgp.router_id) e.leaf("router-id " + config.bgp.router_id->to_string());
  if (config.bgp.local_as != 0)
    e.leaf("autonomous-system " + std::to_string(config.bgp.local_as));
  bool has_default_static = false;
  for (const auto& route : config.static_routes)
    if (route.vrf.empty()) has_default_static = true;
  if (has_default_static) {
    e.open("static");
    for (const auto& route : config.static_routes) {
      if (!route.vrf.empty()) continue;  // VRF statics live in their instance
      std::string stmt = "route " + route.prefix.to_string();
      if (route.null_route) stmt += " discard";
      else if (route.next_hop) stmt += " next-hop " + route.next_hop->to_string();
      if (route.distance != 5) stmt += " preference " + std::to_string(route.distance);
      e.leaf(stmt);
    }
    e.close();
  }
  e.close();

  // protocols
  e.open("protocols");
  if (config.isis.enabled) {
    e.open("isis");
    if (!config.isis.net.empty()) e.leaf("net " + config.isis.net);
    if (config.isis.level == IsisLevel::kLevel1) e.leaf("level 1");
    else if (config.isis.level == IsisLevel::kLevel2) e.leaf("level 2");
    for (const auto& [name, iface] : config.interfaces) {
      if (!iface.isis_enabled) continue;
      bool has_knobs = iface.isis_passive || iface.isis_metric != 10;
      if (!has_knobs) {
        e.leaf("interface " + name);
        continue;
      }
      e.open("interface " + name);
      if (iface.isis_passive) e.leaf("passive");
      if (iface.isis_metric != 10) e.leaf("metric " + std::to_string(iface.isis_metric));
      e.close();
    }
    e.close();
  }
  if (config.ospf.enabled) {
    e.open("ospf");
    e.open("area 0.0.0.0");
    for (const auto& [name, iface] : config.interfaces) {
      if (!iface.address || !config.ospf.covers(iface.address->address)) continue;
      bool passive = config.ospf.is_passive(name) || iface.is_loopback();
      bool has_cost = iface.ospf_cost != 10;
      if (!passive && !has_cost) {
        e.leaf("interface " + name);
        continue;
      }
      e.open("interface " + name);
      if (passive) e.leaf("passive");
      if (has_cost) e.leaf("metric " + std::to_string(iface.ospf_cost));
      e.close();
    }
    e.close();
    e.close();
  }
  // Count only neighbors the dialect can express (see the remote-as skip
  // below): if none remain, an empty "bgp { }" block would parse back to
  // zero neighbors and the next write would drop the block — not a
  // fixpoint (found by the dialect fuzz oracle on the minimized
  // half-configured-neighbor repro).
  bool any_expressible_neighbor = false;
  for (const auto& neighbor : config.bgp.neighbors)
    if (neighbor.remote_as != 0) any_expressible_neighbor = true;
  if (config.bgp.enabled && any_expressible_neighbor) {
    e.open("bgp");
    int group_index = 0;
    for (const auto& neighbor : config.bgp.neighbors) {
      // A neighbor with no peer AS resolved cannot be expressed: an
      // external group without peer-as fails the parser's (and a real
      // transactional commit's) validation. Skip it rather than emit
      // text that does not parse back (found by the dialect fuzz
      // oracle).
      if (neighbor.remote_as == 0) continue;
      bool external = neighbor.remote_as != config.bgp.local_as;
      e.open("group " + std::string(external ? "ebgp" : "ibgp") + "-" +
             std::to_string(group_index++));
      e.leaf(std::string("type ") + (external ? "external" : "internal"));
      if (external) e.leaf("peer-as " + std::to_string(neighbor.remote_as));
      if (!external && neighbor.route_reflector_client && config.bgp.router_id)
        e.leaf("cluster " + config.bgp.router_id->to_string());
      if (neighbor.update_source) {
        auto it = config.interfaces.find(*neighbor.update_source);
        if (it != config.interfaces.end() && it->second.address)
          e.leaf("local-address " + it->second.address->address.to_string());
      }
      if (neighbor.route_map_in) e.leaf("import " + *neighbor.route_map_in);
      if (neighbor.route_map_out) e.leaf("export " + *neighbor.route_map_out);
      if (neighbor.shutdown || neighbor.next_hop_self) {
        e.open("neighbor " + neighbor.peer.to_string());
        if (neighbor.next_hop_self) e.leaf("next-hop-self");
        if (neighbor.shutdown) e.leaf("shutdown");
        e.close();
      } else {
        e.leaf("neighbor " + neighbor.peer.to_string());
      }
      e.close();
    }
    e.close();
  }
  if (config.mpls.enabled) {
    e.open("mpls");
    for (const auto& [name, iface] : config.interfaces)
      if (iface.mpls_enabled) e.leaf("interface " + name);
    for (const auto& tunnel : config.mpls.tunnels) {
      e.open("label-switched-path " + tunnel.name);
      e.leaf("to " + tunnel.destination.to_string());
      if (tunnel.bandwidth_bps != 0)
        e.leaf("bandwidth " + std::to_string(tunnel.bandwidth_bps));
      e.close();
    }
    e.close();
    if (config.mpls.te_enabled) {
      e.open("rsvp");
      for (const auto& [name, iface] : config.interfaces)
        if (iface.mpls_enabled) e.leaf("interface " + name);
      e.close();
    }
  }
  e.close();

  // firewall filters
  if (!config.acls.empty()) {
    e.open("firewall");
    for (const auto& [name, acl] : config.acls) {
      e.open("filter " + name);
      for (const AclEntry& entry : acl.entries) {
        e.open("term " + std::to_string(entry.seq));
        if (!(entry.destination == net::Ipv4Prefix())) {
          e.open("from");
          e.leaf("destination-address " + entry.destination.to_string());
          e.close();
        }
        e.open("then");
        e.leaf(entry.permit ? "accept" : "discard");
        e.close();
        e.close();
      }
      e.close();
    }
    e.close();
  }

  // policy-options
  if (!config.prefix_lists.empty() || !config.route_maps.empty() ||
      !config.community_lists.empty()) {
    e.open("policy-options");
    for (const auto& [name, list] : config.prefix_lists) {
      e.open("prefix-list " + name);
      for (const auto& entry : list.entries) e.leaf(entry.prefix.to_string());
      e.close();
    }
    for (const auto& [name, list] : config.community_lists) {
      std::string members;
      for (Community c : list.communities) members += " " + community_to_string(c);
      e.leaf("community " + name + " members" + members);
    }
    for (const auto& [name, map] : config.route_maps) {
      e.open("policy-statement " + name);
      for (const auto& clause : map.clauses) {
        e.open("term " + std::to_string(clause.seq));
        if (clause.match_prefix_list || clause.match_community_list) {
          e.open("from");
          if (clause.match_prefix_list) e.leaf("prefix-list " + *clause.match_prefix_list);
          if (clause.match_community_list) e.leaf("community " + *clause.match_community_list);
          e.close();
        }
        e.open("then");
        if (clause.set_local_pref)
          e.leaf("local-preference " + std::to_string(*clause.set_local_pref));
        if (clause.set_med) e.leaf("metric " + std::to_string(*clause.set_med));
        if (clause.set_next_hop) e.leaf("next-hop " + clause.set_next_hop->to_string());
        e.leaf(clause.permit ? "accept" : "reject");
        e.close();
        e.close();
      }
      e.close();
    }
    e.close();
  }

  return e.take();
}

}  // namespace mfv::config
