// Semantic device configuration model (the IR shared by all dialects).
//
// Vendor dialect parsers (ceos_parser, vjun_parser) translate native
// config text into this structure; the virtual-router control plane
// (mfv::vrouter) consumes it. The *model-based* baseline in mfv::model
// deliberately does NOT use these parsers — it has its own partial parser,
// mirroring how Batfish maintains an independent parsing layer (§2 of the
// paper).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/ipv4.hpp"
#include "net/types.hpp"

namespace mfv::config {

enum class Vendor {
  kCeos,  // section/indent CLI dialect (Arista-EOS-flavored)
  kVjun,  // hierarchical brace dialect (Junos-flavored)
};

std::string vendor_name(Vendor vendor);

// ---------------------------------------------------------------------------
// Interfaces

struct InterfaceConfig {
  net::InterfaceName name;
  std::optional<net::InterfaceAddress> address;
  /// ceos semantics: Ethernet interfaces default to L2 switchport; "no
  /// switchport" makes them routed. Loopbacks are always routed. The real
  /// router accepts "ip address" in any order relative to "no switchport"
  /// (the ordering assumption is a *model* bug — Fig. 3 issue #1).
  bool switchport = false;
  bool shutdown = false;
  std::optional<std::string> description;

  bool isis_enabled = false;
  std::string isis_instance;  // e.g. "default"
  bool isis_passive = false;
  uint32_t isis_metric = 10;

  /// OSPF link cost (participation comes from OspfConfig::networks).
  uint32_t ospf_cost = 10;

  bool mpls_enabled = false;

  /// Packet filters applied to traffic entering / leaving this interface.
  std::optional<std::string> acl_in;
  std::optional<std::string> acl_out;

  /// VRF binding; empty = the default instance. Interfaces in a non-default
  /// VRF have their connected routes isolated in that instance and do not
  /// participate in the default-instance routing protocols (the classic
  /// management-VRF pattern).
  std::string vrf;

  bool is_loopback() const { return name.rfind("Loopback", 0) == 0 || name.rfind("lo", 0) == 0; }

  /// True if this interface can hold an L3 address and participate in
  /// routing: loopbacks always; others unless operating as L2 switchport.
  bool routed() const { return is_loopback() || !switchport; }
};

// ---------------------------------------------------------------------------
// IS-IS

enum class IsisLevel { kLevel1, kLevel2, kLevel12 };

struct IsisConfig {
  bool enabled = false;
  std::string instance = "default";
  /// ISO NET, e.g. "49.0001.1010.1040.1030.00". The system-id portion
  /// (middle 6 bytes) must be unique per router.
  std::string net;
  IsisLevel level = IsisLevel::kLevel2;
  bool af_ipv4_unicast = false;
  /// Redistribute everything passive interfaces cover; always true on the
  /// emulated router (matches EOS defaults for passive loopbacks).
  bool advertise_passive = true;
};

// ---------------------------------------------------------------------------
// OSPF (v2, single area 0, point-to-point links)

struct OspfConfig {
  bool enabled = false;
  uint32_t process_id = 1;
  std::optional<net::RouterId> router_id;
  /// Classic network-statement attachment: an interface participates when
  /// its address falls inside one of these prefixes (all area 0).
  std::vector<net::Ipv4Prefix> networks;
  /// Interfaces that advertise their subnet but form no adjacency.
  /// Loopbacks are implicitly passive.
  std::vector<net::InterfaceName> passive_interfaces;

  bool covers(net::Ipv4Address address) const {
    for (const net::Ipv4Prefix& network : networks)
      if (network.contains(address)) return true;
    return false;
  }
  bool is_passive(const net::InterfaceName& name) const {
    for (const net::InterfaceName& passive : passive_interfaces)
      if (passive == name) return true;
    return false;
  }
};

// ---------------------------------------------------------------------------
// BGP

struct BgpNeighborConfig {
  net::Ipv4Address peer;
  net::AsNumber remote_as = 0;
  std::optional<std::string> route_map_in;
  std::optional<std::string> route_map_out;
  bool next_hop_self = false;
  /// Interface whose address sources the session (typically Loopback0 for
  /// iBGP). Empty means the egress interface address is used.
  std::optional<net::InterfaceName> update_source;
  bool send_community = false;
  bool shutdown = false;
  std::optional<std::string> description;
  /// eBGP sessions between non-adjacent addresses require multihop.
  uint8_t ebgp_multihop = 1;
  /// iBGP route reflection: routes from this client are reflected to all
  /// iBGP peers, and routes from non-clients are reflected to clients —
  /// lifting the full-mesh requirement (RFC 4456 semantics, without
  /// cluster-list loop detection at this model's scale).
  bool route_reflector_client = false;
};

struct BgpNetwork {
  net::Ipv4Prefix prefix;
  std::optional<std::string> route_map;
};

struct BgpConfig {
  bool enabled = false;
  net::AsNumber local_as = 0;
  std::optional<net::RouterId> router_id;
  std::vector<BgpNeighborConfig> neighbors;
  std::vector<BgpNetwork> networks;
  bool redistribute_connected = false;
  bool redistribute_static = false;
  uint32_t default_local_pref = 100;
  /// BGP multipath: install up to this many equal candidates (equal through
  /// the IGP-metric step of the decision process) as an ECMP set.
  uint32_t maximum_paths = 1;
};

// ---------------------------------------------------------------------------
// Policy (route-maps + prefix-lists + community-lists)

struct PrefixListEntry {
  uint32_t seq = 0;
  bool permit = true;
  net::Ipv4Prefix prefix;
  /// Optional ge/le length bounds (0 = unset; standard semantics).
  uint8_t ge = 0;
  uint8_t le = 0;

  bool matches(const net::Ipv4Prefix& candidate) const {
    if (!prefix.contains(candidate)) return false;
    uint8_t lo = ge != 0 ? ge : prefix.length();
    uint8_t hi = le != 0 ? le : (ge != 0 ? 32 : prefix.length());
    return candidate.length() >= lo && candidate.length() <= hi;
  }
};

struct PrefixList {
  std::string name;
  std::vector<PrefixListEntry> entries;

  /// First matching entry decides; no match => deny (standard semantics).
  bool permits(const net::Ipv4Prefix& candidate) const {
    for (const auto& entry : entries)
      if (entry.matches(candidate)) return entry.permit;
    return false;
  }
};

// ---------------------------------------------------------------------------
// Access lists (destination-prefix packet filters)

struct AclEntry {
  uint32_t seq = 0;
  bool permit = true;
  /// Destination match; 0.0.0.0/0 = "any".
  net::Ipv4Prefix destination;
};

struct Acl {
  std::string name;
  std::vector<AclEntry> entries;

  /// First matching entry decides; no match = implicit deny.
  bool permits(net::Ipv4Address destination) const {
    for (const AclEntry& entry : entries)
      if (entry.destination.contains(destination)) return entry.permit;
    return false;
  }
};

/// Standard community encoded as 32-bit (asn << 16 | value).
using Community = uint32_t;

inline Community make_community(uint16_t asn, uint16_t value) {
  return (uint32_t(asn) << 16) | value;
}
std::string community_to_string(Community community);
std::optional<Community> parse_community(std::string_view text);

struct CommunityList {
  std::string name;
  std::vector<Community> communities;  // matches if route has any of these
};

struct RouteMapClause {
  uint32_t seq = 10;
  bool permit = true;

  // Match conditions (all present conditions must hold).
  std::optional<std::string> match_prefix_list;
  std::optional<std::string> match_community_list;
  std::optional<uint32_t> match_med;

  // Set actions (applied if the clause matches and permits).
  std::optional<uint32_t> set_local_pref;
  std::optional<uint32_t> set_med;
  std::vector<Community> set_communities;
  bool additive_communities = false;
  uint32_t prepend_count = 0;  // prepend own AS N extra times
  std::optional<net::Ipv4Address> set_next_hop;
};

struct RouteMap {
  std::string name;
  std::vector<RouteMapClause> clauses;  // evaluated in seq order
};

// ---------------------------------------------------------------------------
// Static routes & MPLS

struct StaticRoute {
  net::Ipv4Prefix prefix;
  /// Exactly one of next_hop / exit_interface / null_route.
  std::optional<net::Ipv4Address> next_hop;
  std::optional<net::InterfaceName> exit_interface;
  bool null_route = false;
  uint8_t distance = 1;
  /// VRF the route lives in; empty = default instance.
  std::string vrf;
};

struct TeTunnel {
  std::string name;
  net::Ipv4Address destination;       // tail-end router-id
  std::vector<net::Ipv4Address> explicit_hops;  // optional ERO
  uint32_t setup_priority = 7;
  uint32_t hold_priority = 7;
  uint64_t bandwidth_bps = 0;
};

struct MplsConfig {
  bool enabled = false;
  bool te_enabled = false;
  std::vector<TeTunnel> tunnels;
};

// ---------------------------------------------------------------------------
// Management-plane features.
//
// These are the configuration lines the paper found Batfish flags as
// unrecognized but that a real router accepts: management daemons
// (PowerManager, LedPolicy, Thermostat...), management APIs (gRPC, gNMI),
// SSL profiles, etc. They have no dataplane effect but the emulated router
// must *accept* them — feature coverage is exactly what E2 measures.

struct ManagementFeature {
  std::string name;          // e.g. "gnmi", "daemon PowerManager"
  std::vector<std::string> lines;  // raw accepted config lines
};

// ---------------------------------------------------------------------------

struct DeviceConfig {
  net::NodeName hostname;
  Vendor vendor = Vendor::kCeos;

  std::map<net::InterfaceName, InterfaceConfig> interfaces;
  IsisConfig isis;
  OspfConfig ospf;
  BgpConfig bgp;
  std::vector<StaticRoute> static_routes;
  std::map<std::string, RouteMap> route_maps;
  std::map<std::string, PrefixList> prefix_lists;
  std::map<std::string, CommunityList> community_lists;
  std::map<std::string, Acl> acls;
  /// Declared non-default VRF instances.
  std::vector<std::string> vrfs;
  MplsConfig mpls;

  bool has_vrf(const std::string& name) const {
    for (const std::string& vrf : vrfs)
      if (vrf == name) return true;
    return false;
  }
  std::vector<ManagementFeature> management_features;

  const InterfaceConfig* find_interface(const net::InterfaceName& name) const {
    auto it = interfaces.find(name);
    return it == interfaces.end() ? nullptr : &it->second;
  }
  InterfaceConfig& interface(const net::InterfaceName& name) {
    auto [it, inserted] = interfaces.try_emplace(name);
    if (inserted) it->second.name = name;
    return it->second;
  }

  /// The address a router uses as its identity: explicit BGP router-id,
  /// else highest loopback address, else highest interface address.
  std::optional<net::RouterId> effective_router_id() const;
};

}  // namespace mfv::config
