// Vendor-dialect dispatch: parse or emit a configuration in any supported
// dialect, with auto-detection from the text shape.
#pragma once

#include <string>
#include <string_view>

#include "config/device_config.hpp"
#include "config/diagnostics.hpp"

namespace mfv::config {

struct ParseResult {
  DeviceConfig config;
  DiagnosticList diagnostics;
  int total_lines = 0;
};

/// Guesses the dialect: brace-structured text is vjun, otherwise ceos.
Vendor detect_vendor(std::string_view text);

/// Parses `text` in the given dialect.
ParseResult parse_config(std::string_view text, Vendor vendor);

/// Parses with auto-detection.
ParseResult parse_config(std::string_view text);

/// Emits `config` in its own dialect (config.vendor).
std::string write_config(const DeviceConfig& config, bool include_management = true);

}  // namespace mfv::config
