// Parser diagnostics shared by the vendor dialects and the model-based
// baseline parser. The baseline's "unrecognized line" diagnostics are the
// measurement underlying experiment E2.
#pragma once

#include <string>
#include <vector>

namespace mfv::config {

enum class DiagnosticSeverity {
  kError,         // line rejected; config invalid on a real device
  kUnrecognized,  // line silently ignored (model-based parser coverage gap)
  kWarning,       // accepted but suspicious
};

struct ParseDiagnostic {
  DiagnosticSeverity severity = DiagnosticSeverity::kWarning;
  int line_number = 0;  // 1-based
  std::string line;     // offending text (trimmed)
  std::string message;

  std::string to_string() const {
    const char* tag = severity == DiagnosticSeverity::kError          ? "error"
                      : severity == DiagnosticSeverity::kUnrecognized ? "unrecognized"
                                                                      : "warning";
    return std::string(tag) + " at line " + std::to_string(line_number) + ": " + message +
           " [" + line + "]";
  }
};

struct DiagnosticList {
  std::vector<ParseDiagnostic> items;

  void add(DiagnosticSeverity severity, int line_number, std::string line,
           std::string message) {
    items.push_back({severity, line_number, std::move(line), std::move(message)});
  }

  size_t count(DiagnosticSeverity severity) const {
    size_t n = 0;
    for (const auto& d : items)
      if (d.severity == severity) ++n;
    return n;
  }
  size_t error_count() const { return count(DiagnosticSeverity::kError); }
  size_t unrecognized_count() const { return count(DiagnosticSeverity::kUnrecognized); }
  bool has_errors() const { return error_count() > 0; }
};

}  // namespace mfv::config
