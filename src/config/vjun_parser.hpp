// Parser for the "vjun" dialect: a hierarchical brace-structured
// configuration language in the style of Junos. Provides the second vendor
// implementation needed for multi-vendor topologies (93% of surveyed
// operators run multi-vendor networks — §2 of the paper).
//
// Parsing happens in two stages: a generic statement-tree parse of the
// brace syntax, then a semantic walk binding known subtrees into the shared
// DeviceConfig IR. Unknown management subtrees (system services, snmp, ...)
// are accepted and recorded as management features, like on a real device.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "config/device_config.hpp"
#include "config/diagnostics.hpp"

namespace mfv::config {

/// Generic node of the brace-syntax tree: `words { children }` or
/// `words ;` (leaf).
struct VjunStatement {
  std::vector<std::string> words;
  std::vector<VjunStatement> children;
  int line_number = 0;

  std::string text() const;
  const VjunStatement* child(std::string_view first_word) const;
};

struct VjunParseResult {
  DeviceConfig config;
  DiagnosticList diagnostics;
  int total_lines = 0;
};

/// Stage 1 only: parse brace syntax into a statement tree. Exposed for
/// tests; `diagnostics` receives syntax errors (unbalanced braces etc.).
std::vector<VjunStatement> parse_vjun_tree(std::string_view text, DiagnosticList& diagnostics);

/// Full parse: text -> DeviceConfig.
VjunParseResult parse_vjun(std::string_view text);

}  // namespace mfv::config
