#include "config/ceos_parser.hpp"

#include <functional>

#include "util/strings.hpp"

namespace mfv::config {
namespace {

using util::split_whitespace;
using util::trim;

/// One physical config line plus parse position.
struct Line {
  int number = 0;        // 1-based
  int indent = 0;        // leading spaces
  std::string text;      // trimmed
  std::vector<std::string> tokens;
};

/// Cursor over the token list of one line.
class Tokens {
 public:
  explicit Tokens(const Line& line) : line_(&line) {}

  bool done() const { return index_ >= line_->tokens.size(); }
  size_t remaining() const { return line_->tokens.size() - index_; }

  /// Consumes and returns the next token, or "" when exhausted.
  std::string next() { return done() ? std::string() : line_->tokens[index_++]; }
  const std::string& peek(size_t ahead = 0) const {
    static const std::string kEmpty;
    size_t i = index_ + ahead;
    return i < line_->tokens.size() ? line_->tokens[i] : kEmpty;
  }
  /// Consumes the next token iff it equals `word`.
  bool eat(std::string_view word) {
    if (done() || line_->tokens[index_] != word) return false;
    ++index_;
    return true;
  }
  /// Remaining tokens re-joined (for free-text like descriptions).
  std::string rest() {
    std::vector<std::string> out(line_->tokens.begin() + static_cast<long>(index_),
                                 line_->tokens.end());
    index_ = line_->tokens.size();
    return util::join(out, " ");
  }

 private:
  const Line* line_;
  size_t index_ = 0;
};

class CeosParser {
 public:
  explicit CeosParser(std::string_view text) {
    int number = 0;
    for (std::string_view raw : util::split(text, '\n')) {
      ++number;
      std::string_view trimmed = trim(raw);
      if (trimmed.empty() || trimmed[0] == '!') continue;  // comment/separator
      // Strip a trailing "! comment".
      size_t bang = trimmed.find(" !");
      if (bang != std::string_view::npos) trimmed = trim(trimmed.substr(0, bang));
      Line line;
      line.number = number;
      line.indent = util::indent_of(raw);
      line.text = std::string(trimmed);
      line.tokens = split_whitespace(trimmed);
      lines_.push_back(std::move(line));
    }
  }

  CeosParseResult run() {
    result_.total_lines = static_cast<int>(lines_.size());
    while (pos_ < lines_.size()) parse_top_level();
    return std::move(result_);
  }

 private:
  DeviceConfig& cfg() { return result_.config; }

  void error(const Line& line, std::string message) {
    result_.diagnostics.add(DiagnosticSeverity::kError, line.number, line.text,
                            std::move(message));
  }
  void warn(const Line& line, std::string message) {
    result_.diagnostics.add(DiagnosticSeverity::kWarning, line.number, line.text,
                            std::move(message));
  }

  /// Collects the indented block following lines_[pos_-1] (the section
  /// header already consumed). Returns indices into lines_.
  std::vector<size_t> take_block() {
    std::vector<size_t> block;
    while (pos_ < lines_.size() && lines_[pos_].indent > 0) block.push_back(pos_++);
    return block;
  }

  /// Consumes an indented block, recording every line under a management
  /// feature (accepted, dataplane-irrelevant).
  void take_management_block(const std::string& feature_name, const Line& header) {
    ManagementFeature feature;
    feature.name = feature_name;
    feature.lines.push_back(header.text);
    for (size_t i : take_block()) feature.lines.push_back(lines_[i].text);
    cfg().management_features.push_back(std::move(feature));
  }

  void parse_top_level() {
    const Line& line = lines_[pos_++];
    Tokens t(line);
    std::string head = t.next();

    if (head == "hostname") {
      cfg().hostname = t.rest();
    } else if (head == "interface") {
      parse_interface(line, t);
    } else if (head == "router") {
      std::string kind = t.next();
      if (kind == "isis") parse_router_isis(line, t);
      else if (kind == "ospf") parse_router_ospf(line, t);
      else if (kind == "bgp") parse_router_bgp(line, t);
      else if (kind == "traffic-engineering") parse_router_te(line);
      else {
        error(line, "unsupported routing process '" + kind + "'");
        take_block();
      }
    } else if (head == "ip") {
      parse_ip_command(line, t);
    } else if (head == "route-map") {
      parse_route_map(line, t);
    } else if (head == "mpls") {
      std::string sub = t.next();
      if (sub == "ip") {
        cfg().mpls.enabled = true;
      } else if (sub == "traffic-engineering") {
        cfg().mpls.enabled = true;
        cfg().mpls.te_enabled = true;
      } else {
        error(line, "invalid mpls command");
      }
    } else if (head == "daemon") {
      take_management_block("daemon " + t.rest(), line);
    } else if (head == "management") {
      take_management_block("management " + t.rest(), line);
    } else if (head == "vrf") {
      if (t.eat("instance")) {
        std::string name = t.next();
        if (name.empty()) error(line, "vrf instance requires a name");
        else if (!cfg().has_vrf(name)) cfg().vrfs.push_back(name);
        take_block();  // rd / description knobs accepted, unmodelled
      } else {
        error(line, "% Invalid input: expected 'vrf instance NAME'");
        take_block();
      }
    } else if (head == "service" || head == "spanning-tree" ||
               head == "aaa" || head == "ntp" || head == "snmp-server" ||
               head == "logging" || head == "clock" || head == "dns" ||
               head == "banner" || head == "username" || head == "transceiver" ||
               head == "queue-monitor" || head == "platform" || head == "hardware" ||
               head == "errdisable" || head == "load-interval") {
      // Accepted platform/management features with no dataplane relevance.
      take_management_block(head + " " + t.rest(), line);
    } else if (head == "end" || head == "exit") {
      // No-op terminators.
    } else if (head == "no") {
      // Top-level "no ..." defaults (e.g. "no aaa root") — accepted.
      take_management_block(line.text, line);
    } else {
      error(line, "% Invalid input: unknown command '" + head + "'");
      take_block();  // skip any block belonging to the bad command
    }
  }

  // -- interface ------------------------------------------------------------

  void parse_interface(const Line& header, Tokens& t) {
    std::string name = t.next();
    if (name.empty()) {
      error(header, "interface requires a name");
      take_block();
      return;
    }
    InterfaceConfig& iface = cfg().interface(name);
    // ceos default: Ethernet ports boot as L2 switchports; routed ports and
    // loopbacks do not have the concept.
    if (util::starts_with(name, "Ethernet") && !iface.address) iface.switchport = true;

    for (size_t i : take_block()) {
      const Line& line = lines_[i];
      Tokens lt(line);
      std::string head = lt.next();
      if (head == "ip" && lt.peek() == "access-group") {
        lt.next();
        std::string name = lt.next();
        std::string direction = lt.next();
        if (name.empty() || (direction != "in" && direction != "out")) {
          error(line, "ip access-group requires NAME in|out");
        } else if (direction == "in") {
          iface.acl_in = name;
        } else {
          iface.acl_out = name;
        }
      } else if (head == "ip" && lt.eat("address")) {
        auto address = net::InterfaceAddress::parse(lt.next());
        if (!address) {
          error(line, "invalid interface address");
          continue;
        }
        // The real device accepts "ip address" regardless of current
        // switchport mode and applies it once the port is routed. (The
        // order-sensitivity here is the model bug of Fig. 3, issue #1 —
        // deliberately NOT reproduced in this parser.)
        iface.address = *address;
      } else if (head == "no" && lt.peek() == "switchport") {
        iface.switchport = false;
      } else if (head == "switchport") {
        iface.switchport = true;
      } else if (head == "vrf") {
        std::string name = lt.next();
        if (name.empty()) error(line, "vrf requires a name");
        else iface.vrf = name;
      } else if (head == "description") {
        iface.description = lt.rest();
      } else if (head == "shutdown") {
        iface.shutdown = true;
      } else if (head == "no" && lt.peek() == "shutdown") {
        iface.shutdown = false;
      } else if (head == "isis") {
        std::string sub = lt.next();
        if (sub == "enable") {
          // "isis enable default" — valid EOS syntax the Batfish model
          // rejects (Fig. 3, issue #2).
          iface.isis_enabled = true;
          iface.isis_instance = lt.next();
          if (iface.isis_instance.empty()) iface.isis_instance = "default";
        } else if (sub == "passive-interface" || sub == "passive") {
          iface.isis_passive = true;
        } else if (sub == "metric") {
          uint32_t metric = 0;
          if (!util::parse_uint32(lt.next(), metric) || metric == 0)
            error(line, "invalid isis metric");
          else
            iface.isis_metric = metric;
        } else {
          error(line, "% Invalid input: unknown isis interface command");
        }
      } else if (head == "ip" && lt.peek() == "ospf") {
        lt.next();
        if (lt.eat("cost")) {
          uint32_t cost = 0;
          if (!util::parse_uint32(lt.next(), cost) || cost == 0)
            error(line, "invalid ospf cost");
          else
            iface.ospf_cost = cost;
        } else {
          error(line, "% Invalid input: unknown ip ospf command");
        }
      } else if (head == "mpls" && lt.peek() == "ip") {
        iface.mpls_enabled = true;
      } else if (head == "mtu" || head == "speed" || head == "bandwidth" ||
                 head == "load-interval" || head == "logging" || head == "lldp" ||
                 head == "flowcontrol" || head == "storm-control" ||
                 head == "spanning-tree" || head == "channel-group" ||
                 head == "traffic-loopback" || head == "error-correction") {
        // Accepted L1/L2 knobs without dataplane-model relevance.
      } else {
        error(line, "% Invalid input: unknown interface command '" + head + "'");
      }
    }
  }

  // -- router isis ----------------------------------------------------------

  void parse_router_isis(const Line& header, Tokens& t) {
    IsisConfig& isis = cfg().isis;
    isis.enabled = true;
    isis.instance = t.next();
    if (isis.instance.empty()) {
      error(header, "router isis requires an instance name");
      isis.instance = "default";
    }
    for (size_t i : take_block()) {
      const Line& line = lines_[i];
      Tokens lt(line);
      std::string head = lt.next();
      if (head == "net") {
        isis.net = lt.next();
        if (isis.net.empty()) error(line, "net requires an ISO address");
      } else if (head == "is-type") {
        std::string level = lt.next();
        if (level == "level-1") isis.level = IsisLevel::kLevel1;
        else if (level == "level-2") isis.level = IsisLevel::kLevel2;
        else if (level == "level-1-2") isis.level = IsisLevel::kLevel12;
        else error(line, "invalid is-type");
      } else if (head == "address-family") {
        if (lt.peek() == "ipv4") isis.af_ipv4_unicast = true;
        // other AFs accepted, unmodelled
      } else if (head == "log-adjacency-changes" || head == "set-overload-bit" ||
                 head == "spf-interval" || head == "timers") {
        // Accepted tuning knobs.
      } else {
        error(line, "% Invalid input: unknown isis command '" + head + "'");
      }
    }
  }

  // -- router ospf -----------------------------------------------------------

  void parse_router_ospf(const Line& header, Tokens& t) {
    OspfConfig& ospf = cfg().ospf;
    uint32_t process_id = 0;
    if (!util::parse_uint32(t.next(), process_id) || process_id == 0) {
      error(header, "router ospf requires a process id");
      take_block();
      return;
    }
    ospf.enabled = true;
    ospf.process_id = process_id;
    for (size_t i : take_block()) {
      const Line& line = lines_[i];
      Tokens lt(line);
      std::string head = lt.next();
      if (head == "router-id") {
        auto id = net::Ipv4Address::parse(lt.next());
        if (!id) error(line, "invalid router-id");
        else ospf.router_id = *id;
      } else if (head == "network") {
        auto prefix = net::Ipv4Prefix::parse(lt.next());
        if (!prefix) {
          error(line, "invalid network prefix");
          continue;
        }
        std::string area_kw = lt.next();
        std::string area = lt.next();
        if (area_kw != "area" || (area != "0" && area != "0.0.0.0")) {
          error(line, "only area 0 is supported");
          continue;
        }
        ospf.networks.push_back(*prefix);
      } else if (head == "passive-interface") {
        std::string name = lt.next();
        if (name.empty()) error(line, "passive-interface requires a name");
        else ospf.passive_interfaces.push_back(name);
      } else if (head == "max-lsa" || head == "timers" || head == "log-adjacency-changes") {
        // Accepted tuning knobs.
      } else {
        error(line, "% Invalid input: unknown ospf command '" + head + "'");
      }
    }
  }

  // -- router bgp -----------------------------------------------------------

  void parse_router_bgp(const Line& header, Tokens& t) {
    BgpConfig& bgp = cfg().bgp;
    uint32_t asn = 0;
    if (!util::parse_uint32(t.next(), asn) || asn == 0) {
      error(header, "router bgp requires an AS number");
      take_block();
      return;
    }
    bgp.enabled = true;
    bgp.local_as = asn;

    for (size_t i : take_block()) {
      const Line& line = lines_[i];
      Tokens lt(line);
      std::string head = lt.next();
      if (head == "router-id") {
        auto id = net::Ipv4Address::parse(lt.next());
        if (!id) error(line, "invalid router-id");
        else bgp.router_id = *id;
      } else if (head == "neighbor") {
        parse_bgp_neighbor_line(line, lt);
      } else if (head == "network") {
        auto prefix = net::Ipv4Prefix::parse(lt.next());
        if (!prefix) {
          error(line, "invalid network prefix");
          continue;
        }
        BgpNetwork network{*prefix, std::nullopt};
        if (lt.eat("route-map")) network.route_map = lt.next();
        bgp.networks.push_back(network);
      } else if (head == "redistribute") {
        std::string what = lt.next();
        if (what == "connected") bgp.redistribute_connected = true;
        else if (what == "static") bgp.redistribute_static = true;
        else error(line, "unsupported redistribute source '" + what + "'");
      } else if (head == "bgp") {
        std::string sub = lt.next();
        if (sub == "default" && lt.peek() == "local-preference") {
          lt.next();
          uint32_t pref = 0;
          if (util::parse_uint32(lt.next(), pref)) bgp.default_local_pref = pref;
          else error(line, "invalid local-preference");
        }
        // other "bgp ..." knobs accepted.
      } else if (head == "maximum-paths") {
        uint32_t paths = 0;
        if (!util::parse_uint32(lt.next(), paths) || paths == 0 || paths > 128)
          error(line, "invalid maximum-paths");
        else
          bgp.maximum_paths = paths;
      } else if (head == "timers" || head == "address-family" ||
                 head == "graceful-restart" || head == "update" || head == "distance") {
        // Accepted tuning knobs.
      } else {
        error(line, "% Invalid input: unknown bgp command '" + head + "'");
      }
    }
  }

  BgpNeighborConfig& neighbor_for(net::Ipv4Address peer) {
    for (auto& n : cfg().bgp.neighbors)
      if (n.peer == peer) return n;
    cfg().bgp.neighbors.push_back(BgpNeighborConfig{});
    cfg().bgp.neighbors.back().peer = peer;
    return cfg().bgp.neighbors.back();
  }

  void parse_bgp_neighbor_line(const Line& line, Tokens& lt) {
    auto peer = net::Ipv4Address::parse(lt.next());
    if (!peer) {
      error(line, "invalid neighbor address");
      return;
    }
    BgpNeighborConfig& neighbor = neighbor_for(*peer);
    std::string attr = lt.next();
    if (attr == "remote-as") {
      uint32_t asn = 0;
      if (!util::parse_uint32(lt.next(), asn) || asn == 0)
        error(line, "invalid remote-as");
      else
        neighbor.remote_as = asn;
    } else if (attr == "route-map") {
      std::string name = lt.next();
      std::string direction = lt.next();
      if (direction == "in") neighbor.route_map_in = name;
      else if (direction == "out") neighbor.route_map_out = name;
      else error(line, "route-map direction must be in|out");
    } else if (attr == "next-hop-self") {
      neighbor.next_hop_self = true;
    } else if (attr == "update-source") {
      neighbor.update_source = lt.next();
    } else if (attr == "send-community") {
      neighbor.send_community = true;
    } else if (attr == "shutdown") {
      neighbor.shutdown = true;
    } else if (attr == "description") {
      neighbor.description = lt.rest();
    } else if (attr == "route-reflector-client") {
      neighbor.route_reflector_client = true;
    } else if (attr == "ebgp-multihop") {
      uint32_t hops = 0;
      if (!util::parse_uint32(lt.next(), hops) || hops == 0 || hops > 255)
        error(line, "invalid ebgp-multihop");
      else
        neighbor.ebgp_multihop = static_cast<uint8_t>(hops);
    } else if (attr == "timers" || attr == "password" || attr == "maximum-routes" ||
               attr == "soft-reconfiguration") {
      // Accepted session knobs.
    } else {
      error(line, "% Invalid input: unknown neighbor attribute '" + attr + "'");
    }
  }

  // -- router traffic-engineering (RSVP-TE tunnels) --------------------------

  void parse_router_te(const Line& header) {
    (void)header;
    cfg().mpls.enabled = true;
    cfg().mpls.te_enabled = true;
    TeTunnel* tunnel = nullptr;
    for (size_t i : take_block()) {
      const Line& line = lines_[i];
      Tokens lt(line);
      std::string head = lt.next();
      if (head == "tunnel") {
        cfg().mpls.tunnels.push_back(TeTunnel{});
        tunnel = &cfg().mpls.tunnels.back();
        tunnel->name = lt.next();
        if (tunnel->name.empty()) error(line, "tunnel requires a name");
      } else if (tunnel == nullptr) {
        error(line, "traffic-engineering command outside tunnel");
      } else if (head == "destination") {
        auto dest = net::Ipv4Address::parse(lt.next());
        if (!dest) error(line, "invalid tunnel destination");
        else tunnel->destination = *dest;
      } else if (head == "hop") {
        auto hop = net::Ipv4Address::parse(lt.next());
        if (!hop) error(line, "invalid explicit hop");
        else tunnel->explicit_hops.push_back(*hop);
      } else if (head == "priority") {
        uint32_t setup = 0;
        uint32_t hold = 0;
        if (util::parse_uint32(lt.next(), setup) && util::parse_uint32(lt.next(), hold) &&
            setup <= 7 && hold <= 7) {
          tunnel->setup_priority = setup;
          tunnel->hold_priority = hold;
        } else {
          error(line, "invalid priority (0-7 0-7)");
        }
      } else if (head == "bandwidth") {
        uint64_t bps = 0;
        if (util::parse_uint64(lt.next(), bps)) tunnel->bandwidth_bps = bps;
        else error(line, "invalid bandwidth");
      } else {
        error(line, "% Invalid input: unknown tunnel command '" + head + "'");
      }
    }
  }

  // -- ip ... ----------------------------------------------------------------

  void parse_ip_command(const Line& line, Tokens& t) {
    std::string sub = t.next();
    if (sub == "routing") {
      // Always on in this model.
    } else if (sub == "access-list") {
      parse_access_list(line, t);
    } else if (sub == "route") {
      parse_static_route(line, t);
    } else if (sub == "prefix-list") {
      parse_prefix_list_line(line, t);
    } else if (sub == "community-list") {
      parse_community_list_line(line, t);
    } else if (sub == "name-server" || sub == "domain-name" || sub == "host" ||
               sub == "http" || sub == "ssh" || sub == "tacacs") {
      ManagementFeature feature;
      feature.name = "ip " + sub;
      feature.lines.push_back(line.text);
      cfg().management_features.push_back(std::move(feature));
    } else {
      error(line, "% Invalid input: unknown ip command '" + sub + "'");
    }
  }

  void parse_access_list(const Line& header, Tokens& t) {
    if (!t.eat("standard")) {
      error(header, "only standard access-lists are supported");
      take_block();
      return;
    }
    std::string name = t.next();
    if (name.empty()) {
      error(header, "access-list requires a name");
      take_block();
      return;
    }
    Acl& acl = cfg().acls[name];
    acl.name = name;
    for (size_t i : take_block()) {
      const Line& line = lines_[i];
      Tokens lt(line);
      AclEntry entry;
      if (lt.eat("seq")) {
        if (!util::parse_uint32(lt.next(), entry.seq)) {
          error(line, "invalid access-list sequence");
          continue;
        }
      }
      std::string action = lt.next();
      if (action == "permit") entry.permit = true;
      else if (action == "deny") entry.permit = false;
      else {
        error(line, "access-list entry must be permit|deny");
        continue;
      }
      std::string target = lt.next();
      if (target == "any") {
        entry.destination = net::Ipv4Prefix();
      } else if (target == "host") {
        auto address = net::Ipv4Address::parse(lt.next());
        if (!address) {
          error(line, "invalid host address");
          continue;
        }
        entry.destination = net::Ipv4Prefix::host(*address);
      } else if (auto prefix = net::Ipv4Prefix::parse(target)) {
        entry.destination = *prefix;
      } else {
        error(line, "access-list entry requires any|host A.B.C.D|PREFIX");
        continue;
      }
      if (entry.seq == 0) entry.seq = static_cast<uint32_t>(acl.entries.size() + 1) * 10;
      acl.entries.push_back(entry);
    }
  }

  void parse_static_route(const Line& line, Tokens& t) {
    StaticRoute route;
    if (t.eat("vrf")) {
      route.vrf = t.next();
      if (route.vrf.empty()) {
        error(line, "ip route vrf requires a name");
        return;
      }
    }
    auto prefix = net::Ipv4Prefix::parse(t.next());
    if (!prefix) {
      error(line, "invalid static route prefix");
      return;
    }
    route.prefix = *prefix;
    std::string target = t.next();
    if (target == "Null0" || target == "null0") {
      route.null_route = true;
    } else if (auto nh = net::Ipv4Address::parse(target)) {
      route.next_hop = *nh;
    } else if (!target.empty() && !(target[0] >= '0' && target[0] <= '9')) {
      route.exit_interface = target;
    } else {
      error(line, "static route requires next-hop, interface, or Null0");
      return;
    }
    if (!t.done()) {
      uint32_t distance = 0;
      if (!util::parse_uint32(t.next(), distance) || distance == 0 || distance > 255) {
        error(line, "invalid administrative distance");
        return;
      }
      route.distance = static_cast<uint8_t>(distance);
    }
    cfg().static_routes.push_back(route);
  }

  void parse_prefix_list_line(const Line& line, Tokens& t) {
    std::string name = t.next();
    if (name.empty()) {
      error(line, "prefix-list requires a name");
      return;
    }
    PrefixListEntry entry;
    if (t.eat("seq")) {
      if (!util::parse_uint32(t.next(), entry.seq)) {
        error(line, "invalid prefix-list sequence");
        return;
      }
    }
    std::string action = t.next();
    if (action == "permit") entry.permit = true;
    else if (action == "deny") entry.permit = false;
    else {
      error(line, "prefix-list action must be permit|deny");
      return;
    }
    auto prefix = net::Ipv4Prefix::parse(t.next());
    if (!prefix) {
      error(line, "invalid prefix-list prefix");
      return;
    }
    entry.prefix = *prefix;
    while (!t.done()) {
      std::string kw = t.next();
      uint32_t len = 0;
      if ((kw != "ge" && kw != "le") || !util::parse_uint32(t.next(), len) || len > 32) {
        error(line, "invalid prefix-list ge/le");
        return;
      }
      if (kw == "ge") entry.ge = static_cast<uint8_t>(len);
      else entry.le = static_cast<uint8_t>(len);
    }
    auto& list = cfg().prefix_lists[name];
    list.name = name;
    if (entry.seq == 0) entry.seq = static_cast<uint32_t>(list.entries.size() + 1) * 10;
    list.entries.push_back(entry);
  }

  void parse_community_list_line(const Line& line, Tokens& t) {
    if (!t.eat("standard")) {
      error(line, "only standard community-lists are supported");
      return;
    }
    std::string name = t.next();
    if (name.empty() || !t.eat("permit")) {
      error(line, "community-list requires: standard NAME permit COMM...");
      return;
    }
    auto& list = cfg().community_lists[name];
    list.name = name;
    while (!t.done()) {
      auto community = parse_community(t.next());
      if (!community) {
        error(line, "invalid community value");
        return;
      }
      list.communities.push_back(*community);
    }
  }

  // -- route-map --------------------------------------------------------------

  void parse_route_map(const Line& header, Tokens& t) {
    std::string name = t.next();
    std::string action = t.next();
    uint32_t seq = 0;
    if (name.empty() || (action != "permit" && action != "deny") ||
        !util::parse_uint32(t.next(), seq)) {
      error(header, "route-map requires: NAME permit|deny SEQ");
      take_block();
      return;
    }
    auto& map = cfg().route_maps[name];
    map.name = name;
    map.clauses.push_back(RouteMapClause{});
    RouteMapClause& clause = map.clauses.back();
    clause.seq = seq;
    clause.permit = action == "permit";

    for (size_t i : take_block()) {
      const Line& line = lines_[i];
      Tokens lt(line);
      std::string head = lt.next();
      if (head == "match") {
        std::string what = lt.next();
        if (what == "ip" && lt.eat("address") && lt.eat("prefix-list")) {
          clause.match_prefix_list = lt.next();
        } else if (what == "community") {
          clause.match_community_list = lt.next();
        } else if (what == "metric") {
          uint32_t med = 0;
          if (util::parse_uint32(lt.next(), med)) clause.match_med = med;
          else error(line, "invalid match metric");
        } else {
          error(line, "% Invalid input: unknown match condition");
        }
      } else if (head == "set") {
        std::string what = lt.next();
        if (what == "local-preference") {
          uint32_t pref = 0;
          if (util::parse_uint32(lt.next(), pref)) clause.set_local_pref = pref;
          else error(line, "invalid local-preference");
        } else if (what == "metric") {
          uint32_t med = 0;
          if (util::parse_uint32(lt.next(), med)) clause.set_med = med;
          else error(line, "invalid metric");
        } else if (what == "community") {
          while (!lt.done()) {
            std::string word = lt.next();
            if (word == "additive") {
              clause.additive_communities = true;
            } else if (auto community = parse_community(word)) {
              clause.set_communities.push_back(*community);
            } else {
              error(line, "invalid community value '" + word + "'");
              break;
            }
          }
        } else if (what == "as-path" && lt.eat("prepend")) {
          uint32_t count = 0;
          while (!lt.done() && util::parse_uint32(lt.peek(), count)) {
            lt.next();
            ++clause.prepend_count;
          }
          if (clause.prepend_count == 0) error(line, "as-path prepend requires AS numbers");
        } else if (what == "ip" && lt.eat("next-hop")) {
          auto nh = net::Ipv4Address::parse(lt.next());
          if (nh) clause.set_next_hop = *nh;
          else error(line, "invalid next-hop");
        } else {
          error(line, "% Invalid input: unknown set action");
        }
      } else {
        error(line, "% Invalid input: unknown route-map command");
      }
    }
  }

  std::vector<Line> lines_;
  size_t pos_ = 0;
  CeosParseResult result_;
};

}  // namespace

CeosParseResult parse_ceos(std::string_view text) { return CeosParser(text).run(); }

}  // namespace mfv::config
