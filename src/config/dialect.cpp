#include "config/dialect.hpp"

#include "config/ceos_parser.hpp"
#include "config/ceos_writer.hpp"
#include "config/vjun_parser.hpp"
#include "config/vjun_writer.hpp"
#include "util/strings.hpp"

namespace mfv::config {

Vendor detect_vendor(std::string_view text) {
  // vjun configs open a brace on the first content line; ceos never uses
  // braces.
  for (std::string_view raw : util::split(text, '\n')) {
    std::string_view line = util::trim(raw);
    if (line.empty() || line[0] == '!' || line[0] == '#') continue;
    if (line.find('{') != std::string_view::npos || util::ends_with(line, ";"))
      return Vendor::kVjun;
    return Vendor::kCeos;
  }
  return Vendor::kCeos;
}

ParseResult parse_config(std::string_view text, Vendor vendor) {
  ParseResult result;
  switch (vendor) {
    case Vendor::kCeos: {
      CeosParseResult ceos = parse_ceos(text);
      result.config = std::move(ceos.config);
      result.diagnostics = std::move(ceos.diagnostics);
      result.total_lines = ceos.total_lines;
      result.config.vendor = Vendor::kCeos;
      break;
    }
    case Vendor::kVjun: {
      VjunParseResult vjun = parse_vjun(text);
      result.config = std::move(vjun.config);
      result.diagnostics = std::move(vjun.diagnostics);
      result.total_lines = vjun.total_lines;
      result.config.vendor = Vendor::kVjun;
      break;
    }
  }
  return result;
}

ParseResult parse_config(std::string_view text) {
  return parse_config(text, detect_vendor(text));
}

std::string write_config(const DeviceConfig& config, bool include_management) {
  switch (config.vendor) {
    case Vendor::kCeos: {
      CeosWriterOptions options;
      options.include_management = include_management;
      return write_ceos(config, options);
    }
    case Vendor::kVjun: {
      VjunWriterOptions options;
      options.include_management = include_management;
      return write_vjun(config, options);
    }
  }
  return {};
}

}  // namespace mfv::config
