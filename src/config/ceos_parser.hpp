// Parser for the "ceos" dialect: a section/indent CLI configuration
// language in the style of Arista EOS, the vendor used in the paper's
// evaluation (§5, cEOS 4.34.0F).
//
// This parser plays the role of the *vendor implementation*: it accepts the
// full feature set a real device accepts — including management daemons,
// gRPC/gNMI services, SSL profiles, MPLS and MPLS-TE — and, like a router
// CLI, rejects genuinely invalid commands with an error ("% Invalid input")
// while still loading the rest of the configuration. Contrast with
// mfv::model::ReferenceParser, the deliberately partial model-based parser.
#pragma once

#include <string_view>

#include "config/device_config.hpp"
#include "config/diagnostics.hpp"

namespace mfv::config {

struct CeosParseResult {
  DeviceConfig config;
  DiagnosticList diagnostics;
  int total_lines = 0;  // non-blank, non-comment lines seen
};

/// Parses a full ceos configuration file.
CeosParseResult parse_ceos(std::string_view text);

}  // namespace mfv::config
