#include "scenario/scenario.hpp"

#include <functional>

#include "util/cow.hpp"
#include "util/thread_pool.hpp"

namespace mfv::scenario {

std::string perturbation_to_string(const Perturbation& perturbation) {
  return std::visit(
      [](const auto& p) -> std::string {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, LinkCut>) {
          return "cut " + p.a.to_string() + " <-> " + p.b.to_string();
        } else if constexpr (std::is_same_v<T, LinkRestore>) {
          return "restore " + p.a.to_string() + " <-> " + p.b.to_string();
        } else if constexpr (std::is_same_v<T, ConfigReplace>) {
          return "replace config of " + p.node;
        } else {
          std::string text = "withdraw from " + p.peer;
          if (p.prefixes.empty()) return text + " (all routes)";
          text += ":";
          for (const net::Ipv4Prefix& prefix : p.prefixes) text += " " + prefix.to_string();
          return text;
        }
      },
      perturbation);
}

namespace {

util::Json port_to_json(const net::PortRef& port) {
  util::Json j = util::Json::object();
  j["node"] = port.node;
  j["interface"] = port.interface;
  return j;
}

util::Result<net::PortRef> port_from_json(const util::Json* json, const char* field) {
  if (json == nullptr || !json->is_object())
    return util::invalid_argument(std::string("perturbation missing port object '") +
                                  field + "'");
  const util::Json* node = json->find("node");
  const util::Json* interface = json->find("interface");
  if (node == nullptr || node->type() != util::Json::Type::kString ||
      interface == nullptr || interface->type() != util::Json::Type::kString)
    return util::invalid_argument(std::string("port '") + field +
                                  "' needs string members 'node' and 'interface'");
  return net::PortRef{node->as_string(), interface->as_string()};
}

}  // namespace

util::Json perturbation_to_json(const Perturbation& perturbation) {
  util::Json j = util::Json::object();
  std::visit(
      [&j](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, LinkCut>) {
          j["kind"] = "link_cut";
          j["a"] = port_to_json(p.a);
          j["b"] = port_to_json(p.b);
        } else if constexpr (std::is_same_v<T, LinkRestore>) {
          j["kind"] = "link_restore";
          j["a"] = port_to_json(p.a);
          j["b"] = port_to_json(p.b);
        } else if constexpr (std::is_same_v<T, ConfigReplace>) {
          j["kind"] = "config_replace";
          j["node"] = p.node;
          j["vendor"] = config::vendor_name(p.vendor);
          j["config"] = p.config_text;
        } else {
          j["kind"] = "route_withdraw";
          j["peer"] = p.peer;
          util::Json prefixes = util::Json::array();
          for (const net::Ipv4Prefix& prefix : p.prefixes)
            prefixes.push_back(prefix.to_string());
          j["prefixes"] = std::move(prefixes);
        }
      },
      perturbation);
  return j;
}

util::Result<Perturbation> perturbation_from_json(const util::Json& json) {
  if (!json.is_object()) return util::invalid_argument("perturbation must be an object");
  const util::Json* kind = json.find("kind");
  if (kind == nullptr || kind->type() != util::Json::Type::kString)
    return util::invalid_argument("perturbation needs a string 'kind'");
  const std::string& name = kind->as_string();

  if (name == "link_cut" || name == "link_restore") {
    auto a = port_from_json(json.find("a"), "a");
    if (!a.ok()) return a.status();
    auto b = port_from_json(json.find("b"), "b");
    if (!b.ok()) return b.status();
    if (name == "link_cut") return Perturbation(LinkCut{*a, *b});
    return Perturbation(LinkRestore{*a, *b});
  }
  if (name == "config_replace") {
    const util::Json* node = json.find("node");
    const util::Json* text = json.find("config");
    if (node == nullptr || node->type() != util::Json::Type::kString ||
        text == nullptr || text->type() != util::Json::Type::kString)
      return util::invalid_argument("config_replace needs string 'node' and 'config'");
    ConfigReplace replace{node->as_string(), text->as_string(), config::Vendor::kCeos};
    if (const util::Json* vendor = json.find("vendor")) {
      if (vendor->type() != util::Json::Type::kString)
        return util::invalid_argument("config_replace 'vendor' must be a string");
      if (vendor->as_string() == "vjun") replace.vendor = config::Vendor::kVjun;
      else if (vendor->as_string() == "ceos") replace.vendor = config::Vendor::kCeos;
      else
        return util::invalid_argument("unknown vendor '" + vendor->as_string() + "'");
    }
    return Perturbation(std::move(replace));
  }
  if (name == "route_withdraw") {
    const util::Json* peer = json.find("peer");
    if (peer == nullptr || peer->type() != util::Json::Type::kString)
      return util::invalid_argument("route_withdraw needs a string 'peer'");
    RouteWithdraw withdraw{peer->as_string(), {}};
    if (const util::Json* prefixes = json.find("prefixes")) {
      if (!prefixes->is_array())
        return util::invalid_argument("route_withdraw 'prefixes' must be an array");
      for (const util::Json& entry : prefixes->as_array()) {
        if (entry.type() != util::Json::Type::kString)
          return util::invalid_argument("route_withdraw prefixes must be strings");
        auto prefix = net::Ipv4Prefix::parse(entry.as_string());
        if (!prefix)
          return util::invalid_argument("bad prefix '" + entry.as_string() + "'");
        withdraw.prefixes.push_back(*prefix);
      }
    }
    return Perturbation(std::move(withdraw));
  }
  return util::invalid_argument("unknown perturbation kind '" + name + "'");
}

util::Result<std::vector<Perturbation>> perturbations_from_json(const util::Json& json) {
  if (!json.is_array())
    return util::invalid_argument("perturbations must be a JSON array");
  std::vector<Perturbation> out;
  for (const util::Json& entry : json.as_array()) {
    auto perturbation = perturbation_from_json(entry);
    if (!perturbation.ok()) return perturbation.status();
    out.push_back(std::move(*perturbation));
  }
  return out;
}

bool ScenarioRunner::apply(emu::Emulation& emulation, const Perturbation& perturbation) {
  return std::visit(
      [&emulation](const auto& p) -> bool {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, LinkCut>) {
          return emulation.set_link_up(p.a, p.b, false);
        } else if constexpr (std::is_same_v<T, LinkRestore>) {
          return emulation.set_link_up(p.a, p.b, true);
        } else if constexpr (std::is_same_v<T, ConfigReplace>) {
          return emulation.apply_config_text(p.node, p.config_text, p.vendor).ok();
        } else {
          return emulation.withdraw_external_routes(p.peer, p.prefixes);
        }
      },
      perturbation);
}

ScenarioRunner::ScenarioRunner(const emu::Emulation& base, ScenarioRunnerOptions options)
    : base_(base),
      options_(options),
      base_idle_(base.kernel().idle()),
      base_snapshot_(gnmi::Snapshot::capture(base, "base")),
      base_graph_(base_snapshot_) {
  if (options_.pairwise) {
    base_pairwise_ = verify::pairwise_reachability(base_graph_, options_.verify);
    for (const verify::PairwiseCell& cell : base_pairwise_.cells)
      if (cell.reachable) base_reachable_.insert({cell.source, cell.destination});
  }
  if (options_.incremental)
    incremental_base_ = verify::capture_incremental_base(base_graph_, options_.verify);
}

util::Result<std::vector<ScenarioResult>> ScenarioRunner::run(
    const std::vector<Scenario>& scenarios) const {
  if (!base_idle_)
    return util::invalid_argument(
        "scenario base is not quiescent: run it to convergence before forking");

  // Sweep-level instruments, resolved once (all null when no registry).
  // Counters and histograms are atomic, so shards update them freely.
  obs::Counter* forks_counter = nullptr;
  obs::Counter* events_counter = nullptr;
  obs::Counter* cow_clones_counter = nullptr;
  obs::Histogram* fork_depth = nullptr;
  obs::Histogram* reconvergence_us = nullptr;
  if (options_.metrics != nullptr) {
    forks_counter = &options_.metrics->counter("scenario_forks");
    events_counter = &options_.metrics->counter("scenario_events");
    cow_clones_counter = &options_.metrics->counter("scenario_cow_clones");
    fork_depth = &options_.metrics->histogram(
        "scenario_fork_depth", {1, 2, 4, 8, 16, 32});
    reconvergence_us = &options_.metrics->latency_histogram_us(
        "scenario_reconvergence_virtual_us");
  }
  const uint64_t cow_clones_before = util::cow_clone_count().load();

  std::vector<ScenarioResult> results(scenarios.size());
  util::parallel_for_shards(options_.threads, scenarios.size(), [&](size_t index) {
    const Scenario& scenario = scenarios[index];
    ScenarioResult& result = results[index];
    result.name = scenario.name;

    std::unique_ptr<emu::Emulation> fork = base_.fork();
    if (fork == nullptr) return;  // base went non-idle underneath us
    if (forks_counter != nullptr) {
      forks_counter->add(1);
      fork_depth->observe(static_cast<int64_t>(scenario.perturbations.size()));
    }

    util::TimePoint forked_at = fork->kernel().now();
    uint64_t events_before = fork->kernel().executed();
    result.applied = true;
    for (const Perturbation& perturbation : scenario.perturbations)
      if (!apply(*fork, perturbation)) result.applied = false;
    result.converged = fork->run_to_convergence(options_.max_events);
    result.reconvergence = fork->kernel().now() - forked_at;
    result.events = fork->kernel().executed() - events_before;
    if (events_counter != nullptr) {
      events_counter->add(result.events);
      reconvergence_us->observe(result.reconvergence.count_micros());
    }

    gnmi::Snapshot snapshot = gnmi::Snapshot::capture(*fork, scenario.name);
    if (options_.pairwise) {
      verify::ForwardingGraph graph(snapshot);
      verify::QueryOptions verify_options = options_.verify;
      if (incremental_base_ != nullptr) {
        // Shared read-only across shards; diff + splice are const over it.
        verify_options.incremental = incremental_base_.get();
        verify_options.incremental_stats = &result.incremental;
      }
      result.pairwise = verify::pairwise_reachability(graph, verify_options);
      for (const verify::PairwiseCell& cell : result.pairwise.cells)
        if (!cell.reachable && base_reachable_.count({cell.source, cell.destination}) > 0)
          ++result.broken_pairs;
    }
    if (options_.keep_snapshots || options_.differential)
      result.snapshot = std::move(snapshot);
  });

  // Differentials aggregate against the shared base graph, whose lazily
  // primed class-LPM index tolerates no concurrent writers — serial phase.
  if (options_.differential) {
    for (ScenarioResult& result : results) {
      if (!result.converged) continue;
      verify::ForwardingGraph graph(result.snapshot);
      result.differential =
          verify::differential_reachability(base_graph_, graph, options_.verify);
      if (!options_.keep_snapshots) result.snapshot = gnmi::Snapshot{};
    }
  }
  // Process-wide delta, so clones by a concurrent unrelated sweep can
  // leak in; within one service the broker serializes sweeps enough for
  // this to be the number operators want (copies this sweep paid for).
  if (cow_clones_counter != nullptr)
    cow_clones_counter->add(util::cow_clone_count().load() - cow_clones_before);
  return results;
}

// ---------------------------------------------------------------------------
// Sweep builders

std::vector<Scenario> single_link_cuts(const emu::Topology& topology) {
  return k_link_cuts(topology, 1);
}

std::vector<Scenario> k_link_cuts(const emu::Topology& topology, size_t k) {
  std::vector<Scenario> scenarios;
  const std::vector<emu::LinkSpec>& links = topology.links;
  if (k == 0 || links.size() < k) return scenarios;

  std::vector<size_t> picked(k);
  std::function<void(size_t, size_t)> descend = [&](size_t start, size_t depth) {
    if (depth == k) {
      Scenario scenario;
      for (size_t index : picked) {
        const emu::LinkSpec& link = links[index];
        if (!scenario.name.empty()) scenario.name += " + ";
        scenario.name += link.a.to_string() + "<->" + link.b.to_string();
        scenario.perturbations.push_back(LinkCut{link.a, link.b});
      }
      scenario.name = "cut " + scenario.name;
      scenarios.push_back(std::move(scenario));
      return;
    }
    for (size_t i = start; i + (k - depth) <= links.size(); ++i) {
      picked[depth] = i;
      descend(i + 1, depth + 1);
    }
  };
  descend(0, 0);
  return scenarios;
}

}  // namespace mfv::scenario
