// Scenario engine: incremental what-if sweeps from a converged base.
//
// The paper's headline limitation (§6) is that exhaustive what-if search is
// "overly compute intensive": one emulation per scenario, each re-booted
// and re-converged from a cold start. But scenarios share almost all of
// that work — the converged base. This engine snapshots the base once,
// then per scenario forks the full emulation state (Emulation::fork),
// applies a perturbation delta, runs only the *incremental* re-convergence,
// and feeds the resulting gnmi::Snapshot to the verification queries.
// Scenarios shard across util::ThreadPool workers; every fork is an
// independent emulation, so workers share nothing mutable.
//
// The soundness argument — a forked-and-reconverged snapshot is
// byte-identical to a cold boot that reaches the same converged state and
// then takes the same perturbation — is proven per perturbation kind in
// tests/test_scenario_fork.cpp and spelled out in DESIGN.md.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "emu/emulation.hpp"
#include "emu/topology.hpp"
#include "gnmi/gnmi.hpp"
#include "obs/metrics.hpp"
#include "util/status.hpp"
#include "verify/forwarding_graph.hpp"
#include "verify/incremental/incremental.hpp"
#include "verify/queries.hpp"

namespace mfv::scenario {

/// Takes one link down.
struct LinkCut {
  net::PortRef a;
  net::PortRef b;
};

/// Brings a link back up (one cut earlier in the same scenario, or down in
/// the base).
struct LinkRestore {
  net::PortRef a;
  net::PortRef b;
};

/// Replaces one node's running configuration (the E1 "config delta" case).
struct ConfigReplace {
  net::NodeName node;
  std::string config_text;
  config::Vendor vendor = config::Vendor::kCeos;
};

/// An external BGP peer withdraws routes (empty = everything it advertised).
struct RouteWithdraw {
  std::string peer;
  std::vector<net::Ipv4Prefix> prefixes;
};

using Perturbation = std::variant<LinkCut, LinkRestore, ConfigReplace, RouteWithdraw>;

std::string perturbation_to_string(const Perturbation& perturbation);

/// Wire forms for the service protocol (mfv::service fork_scenario verb).
/// The JSON round-trip is lossless — unlike perturbation_to_string, it
/// carries full content (config text, vendor, prefix lists), so it is also
/// the canonical byte string the snapshot store hashes into delta keys.
util::Json perturbation_to_json(const Perturbation& perturbation);
util::Result<Perturbation> perturbation_from_json(const util::Json& json);
/// Parses a JSON array of perturbations; fails on the first invalid one.
util::Result<std::vector<Perturbation>> perturbations_from_json(const util::Json& json);

/// One what-if scenario: a named list of deltas applied to the base.
struct Scenario {
  std::string name;
  std::vector<Perturbation> perturbations;
};

struct ScenarioResult {
  std::string name;
  /// False when a perturbation target did not exist (unknown link, node,
  /// or peer). The scenario still ran on whatever did apply.
  bool applied = false;
  /// False when re-convergence exceeded the event budget.
  bool converged = false;
  /// Virtual time the incremental re-convergence took (fork → quiescence).
  util::Duration reconvergence;
  /// Events executed during re-convergence (the work a cold boot repeats).
  uint64_t events = 0;
  /// Perturbed dataplane (empty when keep_snapshots is off).
  gnmi::Snapshot snapshot;
  /// Loopback-to-loopback matrix of the perturbed network (pairwise on).
  verify::PairwiseResult pairwise;
  /// Base-reachable pairs this scenario breaks (pairwise on).
  size_t broken_pairs = 0;
  /// Full flow-space diff vs the base (differential on; serial phase).
  verify::DifferentialResult differential;
  /// Dirty/splice/fallback accounting of the incremental verify engine
  /// (zeroed unless ScenarioRunnerOptions.incremental is on).
  verify::IncrementalStats incremental;
};

struct ScenarioRunnerOptions {
  /// Worker threads for the scenario sweep: 0 = hardware concurrency,
  /// 1 = serial. Results are identical for every thread count (scenarios
  /// write into shard-indexed slots; see util::parallel_for_shards).
  unsigned threads = 0;
  /// Event budget per scenario re-convergence.
  uint64_t max_events = 100000000ull;
  /// Compute the per-scenario pairwise matrix and broken_pairs.
  bool pairwise = true;
  /// Compute the full differential-reachability vs base per scenario.
  /// This phase runs serially after the sharded sweep: differential
  /// queries prime the shared base ForwardingGraph, whose class-LPM index
  /// is not safe against concurrent mutation.
  bool differential = false;
  /// Keep each scenario's snapshot in its result (turn off for very large
  /// sweeps where only the verdict matters).
  bool keep_snapshots = true;
  /// Verify each fork incrementally against the base's captured result:
  /// the runner captures one IncrementalBase up front and every
  /// scenario's pairwise query splices clean columns from it instead of
  /// re-tracing the world (byte-identical either way; see
  /// verify/incremental). Per-scenario accounting lands in
  /// ScenarioResult.incremental.
  bool incremental = false;
  /// Engine options for the per-scenario verify queries. One thread per
  /// query by default: parallelism comes from scenario sharding, and
  /// nesting pools inside workers oversubscribes the machine. The memoized
  /// engine is forced (kAuto would fall back to the legacy walker at one
  /// thread) — per-class memoization pays off within a single pairwise
  /// sweep regardless of thread count.
  verify::QueryOptions verify = [] {
    verify::QueryOptions options;
    options.threads = 1;
    options.engine = verify::EngineMode::kCached;
    return options;
  }();
  /// Optional metrics sink for the scenario_* family: forks taken,
  /// fork depth (perturbations per scenario) and reconvergence virtual
  /// time as histograms, re-convergence events, and the process-wide
  /// CoW clone delta across the sweep. nullptr = no instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Forks a converged base emulation per scenario and verifies the results.
class ScenarioRunner {
 public:
  /// Snapshots and indexes the converged base. The base must be quiescent
  /// (kernel idle) — run() fails otherwise — and must outlive the runner
  /// and stay untouched while sweeps execute.
  explicit ScenarioRunner(const emu::Emulation& base, ScenarioRunnerOptions options = {});

  const gnmi::Snapshot& base_snapshot() const { return base_snapshot_; }
  const verify::PairwiseResult& base_pairwise() const { return base_pairwise_; }

  /// Forks, perturbs, re-converges, and verifies every scenario, sharded
  /// across workers. Slot i of the returned vector is scenario i.
  util::Result<std::vector<ScenarioResult>> run(const std::vector<Scenario>& scenarios) const;

  /// Applies one perturbation to an emulation; false if its target does
  /// not exist. Shared with the cold-boot paths (benches, the equivalence
  /// test) so both pipelines perturb identically.
  static bool apply(emu::Emulation& emulation, const Perturbation& perturbation);

 private:
  const emu::Emulation& base_;
  ScenarioRunnerOptions options_;
  bool base_idle_ = false;
  gnmi::Snapshot base_snapshot_;
  verify::ForwardingGraph base_graph_;
  verify::PairwiseResult base_pairwise_;
  /// Base-reachable (source, destination) pairs, for broken_pairs.
  std::set<std::pair<net::NodeName, net::NodeName>> base_reachable_;
  /// Base verify result in splice-ready form (incremental option only);
  /// immutable after the constructor, shared read-only across shards.
  std::unique_ptr<verify::IncrementalBase> incremental_base_;
};

// ---------------------------------------------------------------------------
// Sweep builders

/// One scenario per link: the A3 single-cut sweep.
std::vector<Scenario> single_link_cuts(const emu::Topology& topology);

/// Every k-combination of link cuts — the exponential sweep the paper
/// calls "overly compute intensive" per cold-boot scenario; tractable when
/// each combination is a fork plus an incremental re-convergence.
std::vector<Scenario> k_link_cuts(const emu::Topology& topology, size_t k);

}  // namespace mfv::scenario
