// gNMI-style management access to the emulated routers.
//
// Models the vendor-agnostic extraction step of §4.1: after convergence,
// the pipeline issues Get requests against OpenConfig-shaped paths on every
// device and assembles a Snapshot — the dataplane input handed to the
// verification engine in place of a model-derived dataplane. Transport is
// in-process (no gRPC), but path semantics and JSON payload shapes follow
// the OpenConfig AFT model.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "aft/aft.hpp"
#include "emu/emulation.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace mfv::gnmi {

/// Read-only Get service over a running emulation.
class GnmiService {
 public:
  explicit GnmiService(const emu::Emulation& emulation) : emulation_(emulation) {}

  /// Supported paths:
  ///   /network-instances/network-instance[name=default]/afts
  ///   /afts                      (shorthand for the above)
  ///   /afts/ipv4-unicast
  ///   /afts/next-hop-groups
  ///   /afts/next-hops
  ///   /afts/mpls
  ///   /interfaces
  ///   /interfaces/interface[name=<ifname>]/state
  util::Result<util::Json> get(const net::NodeName& node, std::string_view path) const;

  /// Device list (the management-plane inventory).
  std::vector<net::NodeName> list_targets() const { return emulation_.node_names(); }

 private:
  const emu::Emulation& emulation_;
};

// ---------------------------------------------------------------------------
// Subscriptions (gNMI Subscribe: SAMPLE / ON_CHANGE)

enum class SubscriptionMode {
  kSample,    // emit the payload at every poll interval
  kOnChange,  // emit only when the payload differs from the previous poll
};

struct SubscriptionUpdate {
  util::TimePoint timestamp;
  net::NodeName node;
  std::string path;
  util::Json payload;
};

/// Collects streaming telemetry from the emulated devices: registers
/// (node, path, mode) subscriptions and drives virtual time forward in
/// poll intervals, recording updates — the telemetry-collection analogue
/// of the paper's gNMI usage. Polling happens from the outside (like a
/// real collector), so it composes with any emulation state.
class GnmiSubscriber {
 public:
  explicit GnmiSubscriber(emu::Emulation& emulation)
      : emulation_(emulation), service_(emulation) {}

  /// Registers a subscription. Unknown nodes/paths surface as errors at
  /// run() time, matching gNMI's per-update error semantics.
  void add(const net::NodeName& node, std::string path,
           SubscriptionMode mode = SubscriptionMode::kOnChange);

  /// Advances the emulation by `duration`, polling every `interval`.
  /// Returns the updates collected during this run (also appended to
  /// `updates()`).
  std::vector<SubscriptionUpdate> run(util::Duration duration, util::Duration interval);

  const std::vector<SubscriptionUpdate>& updates() const { return updates_; }

 private:
  struct Entry {
    net::NodeName node;
    std::string path;
    SubscriptionMode mode;
    std::optional<std::string> last_payload;  // dump() digest for on-change
  };

  emu::Emulation& emulation_;
  GnmiService service_;
  std::vector<Entry> entries_;
  std::vector<SubscriptionUpdate> updates_;
};

/// A converged-dataplane snapshot: what the verification stage consumes.
struct Snapshot {
  std::string name;
  std::map<net::NodeName, aft::DeviceAft> devices;

  /// Pulls AFTs + interface state from every device via the gNMI paths.
  static Snapshot capture(const emu::Emulation& emulation, std::string name = "snapshot");

  size_t total_entries() const;

  util::Json to_json() const;
  static util::Result<Snapshot> from_json(const util::Json& json);
  static util::Result<Snapshot> from_json_text(std::string_view text);
};

}  // namespace mfv::gnmi
