#include "gnmi/gnmi.hpp"

#include "util/strings.hpp"

namespace mfv::gnmi {

namespace {

/// Extracts "Ethernet1" from "interface[name=Ethernet1]".
std::optional<std::string> key_of(std::string_view segment) {
  size_t open = segment.find("[name=");
  if (open == std::string_view::npos) return std::nullopt;
  size_t close = segment.find(']', open);
  if (close == std::string_view::npos) return std::nullopt;
  return std::string(segment.substr(open + 6, close - open - 6));
}

}  // namespace

util::Result<util::Json> GnmiService::get(const net::NodeName& node,
                                          std::string_view path) const {
  const vrouter::VirtualRouter* router = emulation_.router(node);
  if (router == nullptr) return util::not_found("no such target '" + node + "'");

  // Normalize: extract the network-instance name if present.
  std::string normalized(path);
  std::string instance = "default";
  const std::string ni_prefix = "/network-instances/network-instance[name=";
  if (util::starts_with(normalized, ni_prefix)) {
    size_t close = normalized.find(']', ni_prefix.size());
    if (close == std::string::npos)
      return util::invalid_argument("malformed network-instance path");
    instance = normalized.substr(ni_prefix.size(), close - ni_prefix.size());
    normalized = normalized.substr(close + 1);
  }
  if (normalized.empty()) normalized = "/afts";

  std::vector<std::string> segments;
  for (const std::string& segment : util::split(normalized, '/'))
    if (!segment.empty()) segments.push_back(segment);
  if (segments.empty()) return util::invalid_argument("empty path");

  aft::DeviceAft device = router->device_aft();

  if (segments[0] == "afts") {
    const aft::Aft* aft = &device.aft;
    if (instance != "default") {
      auto it = device.instances.find(instance);
      if (it == device.instances.end())
        return util::not_found("no network instance '" + instance + "' on '" + node + "'");
      aft = &it->second;
    }
    util::Json afts = aft->to_json();
    if (segments.size() == 1) return afts;
    const util::Json* subtree = afts.find(segments[1]);
    if (subtree == nullptr)
      return util::not_found("unknown afts subtree '" + segments[1] + "'");
    return *subtree;
  }

  if (segments[0] == "interfaces") {
    util::Json all = device.to_json();
    const util::Json* interfaces = all.find("interfaces");
    if (segments.size() == 1) return *interfaces;
    auto key = key_of(segments[1]);
    if (!key) return util::invalid_argument("expected interface[name=...]");
    for (const util::Json& iface : interfaces->as_array()) {
      const util::Json* name = iface.find("name");
      if (name != nullptr && name->as_string() == *key) return iface;
    }
    return util::not_found("no interface '" + *key + "' on '" + node + "'");
  }

  return util::unimplemented("unsupported path '" + std::string(path) + "'");
}

void GnmiSubscriber::add(const net::NodeName& node, std::string path,
                         SubscriptionMode mode) {
  entries_.push_back({node, std::move(path), mode, std::nullopt});
}

std::vector<SubscriptionUpdate> GnmiSubscriber::run(util::Duration duration,
                                                    util::Duration interval) {
  std::vector<SubscriptionUpdate> collected;
  util::TimePoint end = emulation_.kernel().now() + duration;
  while (emulation_.kernel().now() < end) {
    emulation_.kernel().run_for(interval);
    for (Entry& entry : entries_) {
      auto payload = service_.get(entry.node, entry.path);
      if (!payload.ok()) continue;  // node gone / bad path: skip this poll
      std::string digest = payload->dump();
      if (entry.mode == SubscriptionMode::kOnChange && entry.last_payload == digest)
        continue;
      entry.last_payload = digest;
      SubscriptionUpdate update;
      update.timestamp = emulation_.kernel().now();
      update.node = entry.node;
      update.path = entry.path;
      update.payload = std::move(payload).value();
      collected.push_back(update);
      updates_.push_back(std::move(update));
    }
  }
  return collected;
}

Snapshot Snapshot::capture(const emu::Emulation& emulation, std::string name) {
  Snapshot snapshot;
  snapshot.name = std::move(name);
  for (aft::DeviceAft& device : emulation.dump_afts())
    snapshot.devices[device.node] = std::move(device);
  return snapshot;
}

size_t Snapshot::total_entries() const {
  size_t total = 0;
  for (const auto& [node, device] : devices) total += device.aft.entry_count();
  return total;
}

util::Json Snapshot::to_json() const {
  util::Json j = util::Json::object();
  j["name"] = name;
  util::Json devices_json = util::Json::array();
  for (const auto& [node, device] : devices) devices_json.push_back(device.to_json());
  j["devices"] = std::move(devices_json);
  return j;
}

util::Result<Snapshot> Snapshot::from_json(const util::Json& json) {
  if (!json.is_object()) return util::invalid_argument("snapshot must be an object");
  Snapshot snapshot;
  if (const util::Json* name = json.find("name")) snapshot.name = name->as_string();
  const util::Json* devices = json.find("devices");
  if (devices == nullptr || !devices->is_array())
    return util::invalid_argument("snapshot missing devices array");
  for (const util::Json& d : devices->as_array()) {
    auto device = aft::DeviceAft::from_json(d);
    if (!device.ok()) return device.status();
    snapshot.devices[device->node] = std::move(device).value();
  }
  return snapshot;
}

util::Result<Snapshot> Snapshot::from_json_text(std::string_view text) {
  auto json = util::Json::parse(text);
  if (!json) return util::invalid_argument("snapshot JSON syntax error");
  return from_json(*json);
}

}  // namespace mfv::gnmi
