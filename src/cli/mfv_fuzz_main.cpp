// mfv-fuzz: differential fuzzing driver.
//
//   mfv-fuzz --seed-range 0:500            sweep seeds through all oracles
//   mfv-fuzz --seed 17 --oracle engines    one seed, one oracle family
//   mfv-fuzz --replay repro.json           re-run a saved repro
//
// Every divergence is delta-debugged down to a minimal case and written
// to --out as a self-contained JSON repro; the exit code is nonzero iff
// any oracle disagreed. --time-budget-sec bounds a sweep for CI smoke
// runs (seeds simply stop early; exit code still reflects failures).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/oracles.hpp"

namespace {

struct Options {
  uint64_t seed_begin = 0;
  uint64_t seed_end = 100;  // exclusive
  uint32_t oracle_mask = mfv::fuzz::kOracleAll;
  std::string out_dir = "fuzz_out";
  std::optional<std::string> replay_file;
  double time_budget_sec = 0;  // 0 = unbounded
  bool minimize = true;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed-range A:B | --seed N] [--oracle "
               "engines|fork|store|dialect|sharded|all]\n"
               "          [--out DIR] [--time-budget-sec S] [--no-minimize] "
               "[--replay FILE]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--seed-range") {
      const char* text = value();
      if (text == nullptr) return false;
      uint64_t begin = 0, end = 0;
      if (std::sscanf(text, "%llu:%llu", (unsigned long long*)&begin,
                      (unsigned long long*)&end) != 2 ||
          end <= begin)
        return false;
      options.seed_begin = begin;
      options.seed_end = end;
    } else if (arg == "--seed") {
      const char* text = value();
      if (text == nullptr) return false;
      options.seed_begin = std::strtoull(text, nullptr, 10);
      options.seed_end = options.seed_begin + 1;
    } else if (arg == "--oracle") {
      const char* text = value();
      if (text == nullptr) return false;
      auto mask = mfv::fuzz::parse_oracle(text);
      if (!mask) return false;
      options.oracle_mask = *mask;
    } else if (arg == "--out") {
      const char* text = value();
      if (text == nullptr) return false;
      options.out_dir = text;
    } else if (arg == "--time-budget-sec") {
      const char* text = value();
      if (text == nullptr) return false;
      options.time_budget_sec = std::strtod(text, nullptr);
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--replay") {
      const char* text = value();
      if (text == nullptr) return false;
      options.replay_file = text;
    } else {
      return false;
    }
  }
  return true;
}

int replay(const Options& options) {
  std::ifstream in(*options.replay_file);
  if (!in) {
    std::fprintf(stderr, "mfv-fuzz: cannot read %s\n", options.replay_file->c_str());
    return 2;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto loaded = mfv::fuzz::FuzzCase::from_json_text(text);
  if (!loaded.ok()) {
    std::fprintf(stderr, "mfv-fuzz: %s: %s\n", options.replay_file->c_str(),
                 loaded.status().message().c_str());
    return 2;
  }
  int failures = 0;
  for (const mfv::fuzz::Verdict& verdict :
       mfv::fuzz::run_oracles(loaded.value(), options.oracle_mask)) {
    std::printf("  %-8s %s%s%s\n", mfv::fuzz::oracle_name(verdict.oracle).c_str(),
                verdict.ok ? "ok" : "FAIL", verdict.detail.empty() ? "" : ": ",
                verdict.detail.c_str());
    failures += verdict.ok ? 0 : 1;
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return usage(argv[0]);
  if (options.replay_file) return replay(options);

  const auto started = std::chrono::steady_clock::now();
  auto elapsed_sec = [&started] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
        .count();
  };

  uint64_t executed = 0;
  int failures = 0;
  bool out_dir_ready = false;
  for (uint64_t seed = options.seed_begin; seed < options.seed_end; ++seed) {
    if (options.time_budget_sec > 0 && elapsed_sec() >= options.time_budget_sec) {
      std::printf("time budget reached after seed %llu\n",
                  (unsigned long long)(seed - 1));
      break;
    }
    mfv::fuzz::FuzzCase c = mfv::fuzz::generate_case(seed);
    ++executed;
    std::optional<mfv::fuzz::Verdict> failure =
        mfv::fuzz::first_failure(c, options.oracle_mask);
    if (!failure) continue;

    ++failures;
    std::printf("seed %llu (%s): %s FAILED: %s\n", (unsigned long long)seed,
                mfv::fuzz::mode_name(c.mode).c_str(),
                mfv::fuzz::oracle_name(failure->oracle).c_str(),
                failure->detail.c_str());
    if (options.minimize) {
      mfv::fuzz::MinimizeStats stats;
      c = mfv::fuzz::minimize_for_oracle(c, failure->oracle, &stats);
      std::printf("  minimized in %zu attempts (%zu reductions kept)\n",
                  stats.attempts, stats.accepted);
      if (auto minimized_failure = mfv::fuzz::first_failure(c, failure->oracle))
        failure = minimized_failure;  // repro carries the minimized detail
    }
    if (!out_dir_ready) {
      std::error_code ec;
      std::filesystem::create_directories(options.out_dir, ec);
      out_dir_ready = true;
    }
    std::string path = options.out_dir + "/repro-" +
                       mfv::fuzz::oracle_name(failure->oracle) + "-seed" +
                       std::to_string(seed) + ".json";
    std::ofstream out(path);
    out << c.to_json().dump(2) << "\n";
    std::printf("  repro written to %s\n", path.c_str());
  }

  double seconds = elapsed_sec();
  std::printf("%llu case(s) in %.1fs (%.1f cases/sec), %d failure(s)\n",
              (unsigned long long)executed, seconds,
              seconds > 0 ? executed / seconds : 0.0, failures);
  return failures > 0 ? 1 : 0;
}
