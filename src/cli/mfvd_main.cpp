// mfvd — the verification service daemon.
//
// Serves the mfv::service wire protocol on a unix-domain socket (default)
// or loopback TCP. All state is in-memory; stopping the daemon drops the
// snapshot store.
//
//   mfvd --socket /tmp/mfvd.sock
//   mfvd --tcp 7471 --threads 4 --queue 128 --budget-mb 512
//
// SIGINT/SIGTERM trigger the graceful drain: in-flight requests finish
// and their responses are delivered before the process exits.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.hpp"
#include "service/service.hpp"
#include "util/logging.hpp"

namespace {

volatile sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH | --tcp PORT] [--threads N] [--queue N]\n"
               "          [--budget-mb N] [--query-threads N] [--max-rows N] [--shards N]\n"
               "          [--tenant-queue-cap N] [--tenant-weight NAME=W]\n"
               "          [--tenant-budget-mb N]\n"
               "\n"
               "  --socket PATH      unix-domain socket to listen on (default\n"
               "                     /tmp/mfvd.sock)\n"
               "  --tcp PORT         listen on 127.0.0.1:PORT instead (0 = ephemeral)\n"
               "  --threads N        broker worker threads (0 = hardware)\n"
               "  --queue N          admission queue capacity (default 64)\n"
               "  --budget-mb N      snapshot store byte budget in MiB (default 512)\n"
               "  --query-threads N  threads per individual query (default 1)\n"
               "  --max-rows N       row cap for non-full query answers\n"
               "  --shards N         event-loop shards per emulation (default 1 =\n"
               "                     serial kernel; results are bit-identical)\n"
               "\n"
               "Multi-tenant knobs:\n"
               "  --tenant-queue-cap N   per-tenant pending-request cap (0 = the\n"
               "                         global --queue value; a saturating tenant\n"
               "                         is rejected alone)\n"
               "  --tenant-weight NAME=W fair-share weight for tenant NAME (default 1;\n"
               "                         repeatable)\n"
               "  --tenant-budget-mb N   per-tenant snapshot-store quota in MiB\n"
               "                         (0 = no per-tenant quota)\n"
               "\n"
               "Log verbosity comes from MFV_LOG_LEVEL (debug|info|warn|error|off).\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  mfv::util::init_log_level_from_env();

  mfv::service::ServiceOptions service_options;
  mfv::service::ServerOptions server_options;
  server_options.unix_path = "/tmp/mfvd.sock";
  bool tcp = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      server_options.unix_path = next();
      tcp = false;
    } else if (arg == "--tcp") {
      server_options.tcp_port = static_cast<uint16_t>(std::atoi(next()));
      tcp = true;
    } else if (arg == "--threads") {
      service_options.broker.threads = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--queue") {
      service_options.broker.queue_capacity = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--budget-mb") {
      service_options.store.byte_budget = static_cast<size_t>(std::atol(next())) << 20;
    } else if (arg == "--query-threads") {
      service_options.query_threads = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--max-rows") {
      service_options.max_rows = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--shards") {
      service_options.emulation.shards = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--tenant-queue-cap") {
      service_options.broker.tenant_queue_cap = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--tenant-weight") {
      const std::string spec = next();
      const size_t eq = spec.find('=');
      const std::string name = spec.substr(0, eq == std::string::npos ? spec.size() : eq);
      const long weight = eq == std::string::npos ? 0 : std::atol(spec.c_str() + eq + 1);
      if (!mfv::service::valid_tenant_name(name) || weight <= 0) {
        std::fprintf(stderr, "mfvd: bad --tenant-weight '%s' (want NAME=W, W >= 1)\n",
                     spec.c_str());
        return 2;
      }
      service_options.broker.tenant_weights[name] = static_cast<uint32_t>(weight);
    } else if (arg == "--tenant-budget-mb") {
      service_options.store.tenant_byte_budget =
          static_cast<size_t>(std::atol(next())) << 20;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (tcp) server_options.unix_path.clear();

  mfv::service::VerificationService service(service_options);
  mfv::service::Server server(service, server_options);
  mfv::util::Status status = server.start();
  if (!status.ok()) {
    std::fprintf(stderr, "mfvd: %s\n", status.to_string().c_str());
    return 1;
  }
  if (tcp) std::printf("mfvd: listening on 127.0.0.1:%u\n", server.port());
  else std::printf("mfvd: listening on %s\n", server.unix_path().c_str());
  std::fflush(stdout);

  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  while (!g_stop) pause();

  std::printf("mfvd: draining...\n");
  std::fflush(stdout);
  server.stop();
  std::printf("mfvd: bye\n");
  return 0;
}
