// mfvc — command-line client for the mfvd verification service.
//
//   mfvc demo-topology --routers 8 > topo.json      (local, no daemon)
//   mfvc upload topo.json                           -> submission id
//   mfvc snapshot <submission>                      converge / reuse
//   mfvc query <snapshot> --kind pairwise
//   mfvc query <snapshot> --kind differential --base <other>
//   mfvc fork <base> perturbations.json             what-if snapshot
//   mfvc explore <submission|snapshot> [perturbations.json]
//        enumerate every converged state under delivery nondeterminism;
//        --max-runs/--max-states cap the search, --scope narrows the
//        property sweep, --no-properties skips it
//   mfvc stats
//   mfvc metrics [--json] [--spans N]               registry snapshot
//
// Connection flags (before the verb): --socket PATH (default
// /tmp/mfvd.sock), --tcp PORT [--host 127.0.0.1], or --cluster
// EP1,EP2,... (unix paths and/or host:port pairs — requests route to the
// instance owning the snapshot key on the consistent-hash ring, with
// failover to the ring successor). Request flags: --tenant NAME,
// --priority interactive|batch|background, --deadline-ms N, --pretty.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/client.hpp"
#include "service/cluster_client.hpp"
#include "service/protocol.hpp"
#include "util/logging.hpp"
#include "workload/generator.hpp"

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "mfvc: %s\n", message.c_str());
  return 1;
}

bool read_input(const std::string& path, std::string& out) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    out = buffer.str();
    return true;
  }
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

struct Options {
  std::string socket_path = "/tmp/mfvd.sock";
  std::string host = "127.0.0.1";
  uint16_t tcp_port = 0;
  bool tcp = false;
  bool pretty = false;
  std::string tenant;
  /// Comma-separated --cluster endpoints; non-empty = ring routing.
  std::vector<mfv::service::ClusterEndpoint> cluster;
  mfv::service::Priority priority = mfv::service::Priority::kBatch;
  int64_t deadline_ms = 0;
  /// When set, print this string field of the result raw instead of the
  /// whole result as JSON (mfvc metrics' default text exposition).
  std::string print_field;
};

int run_call(const Options& options, mfv::service::Request request) {
  request.id = 1;
  request.priority = options.priority;
  request.deadline_ms = options.deadline_ms;
  request.tenant = options.tenant;

  mfv::util::Result<mfv::service::Response> response = [&] {
    if (!options.cluster.empty()) {
      mfv::service::ClusterClientOptions cluster_options;
      cluster_options.endpoints = options.cluster;
      mfv::service::ClusterClient cluster(std::move(cluster_options));
      return cluster.call(std::move(request));
    }
    mfv::service::Client client;
    mfv::util::Status status =
        options.tcp ? client.connect_tcp(options.host, options.tcp_port)
                    : client.connect_unix(options.socket_path);
    if (!status.ok()) return mfv::util::Result<mfv::service::Response>(status);
    return client.call(request);
  }();
  if (!response.ok()) return fail(response.status().to_string());
  if (!response->ok()) return fail(response->status().to_string());
  if (!options.print_field.empty()) {
    const mfv::util::Json* field = response->result.find(options.print_field);
    if (field != nullptr && field->type() == mfv::util::Json::Type::kString) {
      std::printf("%s", field->as_string().c_str());
      return 0;
    }
  }
  std::printf("%s\n", response->result.dump(options.pretty ? 2 : 0).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  mfv::util::init_log_level_from_env();

  Options options;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  // Peel connection/request flags; what remains is verb + operands.
  std::vector<std::string> operands;
  std::string kind, scope, base, node;
  bool full = false;
  bool json = false;
  int routers = 6;
  int64_t spans = -1;
  int64_t max_runs = 0, max_states = 0;
  bool no_properties = false;
  bool from_snapshot = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "mfvc: flag %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--socket") options.socket_path = next();
    else if (arg == "--tcp") { options.tcp_port = static_cast<uint16_t>(std::atoi(next().c_str())); options.tcp = true; }
    else if (arg == "--host") options.host = next();
    else if (arg == "--tenant") {
      options.tenant = next();
      if (!mfv::service::valid_tenant_name(options.tenant))
        return fail("tenant names are [A-Za-z0-9_-]{1,64}");
    } else if (arg == "--cluster") {
      std::string list = next();
      for (size_t start = 0; start <= list.size();) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        auto endpoint = mfv::service::ClusterEndpoint::parse(
            std::string_view(list).substr(start, comma - start));
        if (!endpoint.ok()) return fail(endpoint.status().to_string());
        options.cluster.push_back(std::move(*endpoint));
        start = comma + 1;
      }
    }
    else if (arg == "--pretty") options.pretty = true;
    else if (arg == "--priority") {
      auto priority = mfv::service::priority_from_name(next());
      if (!priority) return fail("priority must be interactive|batch|background");
      options.priority = *priority;
    } else if (arg == "--deadline-ms") options.deadline_ms = std::atol(next().c_str());
    else if (arg == "--kind") kind = next();
    else if (arg == "--scope") scope = next();
    else if (arg == "--base") base = next();
    else if (arg == "--node") node = next();
    else if (arg == "--full") full = true;
    else if (arg == "--json") json = true;
    else if (arg == "--spans") spans = std::atol(next().c_str());
    else if (arg == "--routers") routers = std::atoi(next().c_str());
    else if (arg == "--max-runs") max_runs = std::atol(next().c_str());
    else if (arg == "--max-states") max_states = std::atol(next().c_str());
    else if (arg == "--no-properties") no_properties = true;
    else if (arg == "--snapshot") from_snapshot = true;
    else operands.push_back(arg);
  }

  if (operands.empty())
    return fail("usage: mfvc [flags] demo-topology|upload|snapshot|query|fork|explore|stats|metrics ...");
  const std::string verb = operands[0];

  if (verb == "demo-topology") {
    mfv::workload::WanOptions wan;
    wan.routers = routers;
    std::printf("%s\n", mfv::workload::wan_topology(wan).to_json().dump(2).c_str());
    return 0;
  }

  mfv::service::Request request;
  request.params = mfv::util::Json::object();
  if (verb == "upload") {
    if (operands.size() != 2) return fail("usage: mfvc upload <topology.json|->");
    std::string text;
    if (!read_input(operands[1], text)) return fail("cannot read " + operands[1]);
    mfv::util::Result<mfv::util::Json> topology = mfv::util::Json::parse_checked(text);
    if (!topology.ok()) return fail(topology.status().to_string());
    request.verb = "upload_configs";
    request.params["topology"] = std::move(*topology);
  } else if (verb == "snapshot") {
    if (operands.size() != 2) return fail("usage: mfvc snapshot <submission>");
    request.verb = "snapshot";
    request.params["submission"] = operands[1];
  } else if (verb == "query") {
    if (operands.size() != 2) return fail("usage: mfvc query <snapshot> [--kind K]");
    request.verb = "query";
    request.params["snapshot"] = operands[1];
    if (!kind.empty()) request.params["kind"] = kind;
    if (!scope.empty()) request.params["scope"] = scope;
    if (!base.empty()) request.params["base"] = base;
    if (!node.empty()) request.params["node"] = node;
    if (full) request.params["full"] = true;
  } else if (verb == "fork") {
    if (operands.size() != 3) return fail("usage: mfvc fork <base> <perturbations.json|->");
    std::string text;
    if (!read_input(operands[2], text)) return fail("cannot read " + operands[2]);
    mfv::util::Result<mfv::util::Json> perturbations = mfv::util::Json::parse_checked(text);
    if (!perturbations.ok()) return fail(perturbations.status().to_string());
    request.verb = "fork_scenario";
    request.params["base"] = operands[1];
    request.params["perturbations"] = std::move(*perturbations);
  } else if (verb == "explore") {
    if (operands.size() < 2 || operands.size() > 3)
      return fail("usage: mfvc explore <submission> | mfvc explore --snapshot "
                  "<snapshot> [perturbations.json|-]");
    request.verb = "explore";
    if (from_snapshot || operands.size() == 3) {
      request.params["snapshot"] = operands[1];
      if (operands.size() == 3) {
        std::string text;
        if (!read_input(operands[2], text)) return fail("cannot read " + operands[2]);
        mfv::util::Result<mfv::util::Json> perturbations =
            mfv::util::Json::parse_checked(text);
        if (!perturbations.ok()) return fail(perturbations.status().to_string());
        request.params["perturbations"] = std::move(*perturbations);
      }
    } else {
      request.params["submission"] = operands[1];
    }
    if (max_runs > 0) request.params["max_runs"] = max_runs;
    if (max_states > 0) request.params["max_states"] = max_states;
    if (!scope.empty()) request.params["scope"] = scope;
    if (no_properties) request.params["properties"] = false;
  } else if (verb == "stats") {
    request.verb = "stats";
  } else if (verb == "metrics") {
    request.verb = "metrics";
    if (spans >= 0) request.params["spans"] = spans;
    if (!json) {
      request.params["text"] = true;
      options.print_field = "text";
    }
  } else {
    return fail("unknown verb '" + verb + "'");
  }

  return run_call(options, std::move(request));
}
