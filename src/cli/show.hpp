// Operator CLI: vendor-style "show" command rendering over live emulated
// routers.
//
// §5's under-appreciated benefit: when verification reports something odd,
// the operator can poke at the emulated control plane with the same
// commands they use in production. These renderers produce EOS-flavored
// output from a VirtualRouter's live state; `run_command` dispatches a
// command line the way an SSH session would.
#pragma once

#include <string>
#include <string_view>

#include "util/status.hpp"
#include "vrouter/virtual_router.hpp"

namespace mfv::cli {

std::string show_ip_route(const vrouter::VirtualRouter& router);
std::string show_ip_route_vrf(const vrouter::VirtualRouter& router,
                              const std::string& vrf);
std::string show_isis_neighbors(const vrouter::VirtualRouter& router);
std::string show_isis_database(const vrouter::VirtualRouter& router);
std::string show_ospf_neighbors(const vrouter::VirtualRouter& router);
std::string show_ospf_database(const vrouter::VirtualRouter& router);
std::string show_ip_bgp_summary(const vrouter::VirtualRouter& router);
std::string show_interfaces(const vrouter::VirtualRouter& router);
std::string show_mpls_tunnels(const vrouter::VirtualRouter& router);
std::string show_ip_access_lists(const vrouter::VirtualRouter& router);
std::string show_running_config(const vrouter::VirtualRouter& router);

/// Dispatches a command line ("show ip route", "show isis database", ...).
/// Unknown commands return INVALID_ARGUMENT with a "% Invalid input"
/// message, like a router CLI.
util::Result<std::string> run_command(const vrouter::VirtualRouter& router,
                                      std::string_view command);

}  // namespace mfv::cli
