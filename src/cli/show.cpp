#include "cli/show.hpp"

#include <algorithm>
#include <sstream>

#include "config/dialect.hpp"
#include "util/strings.hpp"

namespace mfv::cli {

namespace {

char protocol_letter(rib::Protocol protocol) {
  switch (protocol) {
    case rib::Protocol::kConnected: return 'C';
    case rib::Protocol::kLocal: return 'L';
    case rib::Protocol::kStatic: return 'S';
    case rib::Protocol::kGribi: return 'G';
    case rib::Protocol::kOspf: return 'O';
    case rib::Protocol::kIsis: return 'I';
    case rib::Protocol::kBgp: return 'B';
    case rib::Protocol::kIbgp: return 'B';
    case rib::Protocol::kTe: return 'T';
  }
  return '?';
}

}  // namespace

namespace {
std::string render_routes(const rib::Rib& rib, const std::string& vrf_name);
}

std::string show_ip_route(const vrouter::VirtualRouter& router) {
  return render_routes(router.routing_table(), "default");
}

std::string show_ip_route_vrf(const vrouter::VirtualRouter& router,
                              const std::string& vrf) {
  const rib::Rib* rib = router.vrf_routing_table(vrf);
  if (rib == nullptr) return "% VRF '" + vrf + "' has no routing table\n";
  return render_routes(*rib, vrf);
}

namespace {
std::string render_routes(const rib::Rib& rib, const std::string& vrf_name) {
  std::ostringstream out;
  out << "VRF: " << vrf_name << "\n"
      << "Codes: C - connected, S - static, G - gRIBI, O - OSPF, I - IS-IS,\n"
      << "       B - BGP, T - TE, L - local\n\n";
  rib.for_each_best(
      [&](const net::Ipv4Prefix& prefix, const std::vector<rib::RibRoute>& best) {
        bool first = true;
        for (const rib::RibRoute& route : best) {
          if (first) {
            out << " " << protocol_letter(route.protocol) << (route.protocol == rib::Protocol::kIbgp ? " I" : "  ")
                << " " << prefix.to_string() << " [" << int(route.admin_distance) << "/"
                << route.metric << "]";
            first = false;
          } else {
            out << "\n      " << prefix.to_string();
          }
          if (route.drop) out << " is directly connected, Null0";
          else if (route.next_hop && route.interface)
            out << " via " << route.next_hop->to_string() << ", " << *route.interface;
          else if (route.next_hop)
            out << " via " << route.next_hop->to_string();
          else if (route.interface)
            out << " is directly connected, " << *route.interface;
          if (route.push_label) out << ", label " << *route.push_label;
        }
        out << "\n";
      });
  return out.str();
}
}  // namespace

std::string show_isis_neighbors(const vrouter::VirtualRouter& router) {
  std::ostringstream out;
  out << "IS-IS Instance: " << (router.isis() != nullptr ? router.isis()->instance() : "-")
      << "\n";
  if (router.isis() == nullptr || !router.isis()->active()) {
    out << "IS-IS is not running\n";
    return out.str();
  }
  out << "  System Id       Interface     State  Address\n";
  for (const auto& [interface, adjacency] : router.isis()->adjacencies()) {
    out << "  " << adjacency.neighbor.to_string() << "  " << interface << "  "
        << (adjacency.state == proto::IsisAdjacency::State::kUp ? "UP   " : "INIT ") << " "
        << adjacency.neighbor_address.to_string() << "\n";
  }
  return out.str();
}

std::string show_isis_database(const vrouter::VirtualRouter& router) {
  std::ostringstream out;
  if (router.isis() == nullptr || !router.isis()->active()) {
    out << "IS-IS is not running\n";
    return out.str();
  }
  out << "IS-IS Instance: " << router.isis()->instance() << " Level-2 Link State Database\n";
  for (const auto& [origin, lsp] : router.isis()->database()) {
    out << "  LSPID " << origin.to_string() << ".00-00  Seq " << lsp.sequence << "\n";
    for (const auto& neighbor : lsp.neighbors)
      out << "    IS Neighbor    " << neighbor.system_id.to_string() << "  Metric "
          << neighbor.metric << "\n";
    for (const auto& prefix : lsp.prefixes)
      out << "    IP Reachability " << prefix.prefix.to_string() << "  Metric "
          << prefix.metric << "\n";
  }
  return out.str();
}

std::string show_ospf_neighbors(const vrouter::VirtualRouter& router) {
  std::ostringstream out;
  if (router.ospf() == nullptr || !router.ospf()->active()) {
    out << "OSPF is not running\n";
    return out.str();
  }
  out << "OSPF Process " << router.ospf()->process_id() << ", Router ID "
      << router.ospf()->router_id().to_string() << "\n"
      << "  Neighbor ID      Interface     State  Address\n";
  for (const auto& [interface, adjacency] : router.ospf()->adjacencies()) {
    out << "  " << adjacency.neighbor.to_string() << "  " << interface << "  "
        << (adjacency.state == proto::OspfAdjacency::State::kFull ? "FULL " : "INIT ")
        << " " << adjacency.neighbor_address.to_string() << "\n";
  }
  return out.str();
}

std::string show_ospf_database(const vrouter::VirtualRouter& router) {
  std::ostringstream out;
  if (router.ospf() == nullptr || !router.ospf()->active()) {
    out << "OSPF is not running\n";
    return out.str();
  }
  out << "OSPF Router Link States (Area 0)\n";
  for (const auto& [origin, lsa] : router.ospf()->database()) {
    out << "  LSA " << origin.to_string() << "  Seq " << lsa.sequence << "\n";
    for (const auto& neighbor : lsa.neighbors)
      out << "    Neighbor " << neighbor.router_id.to_string() << "  Metric "
          << neighbor.metric << "\n";
    for (const auto& prefix : lsa.prefixes)
      out << "    Prefix " << prefix.prefix.to_string() << "  Metric " << prefix.metric
          << "\n";
  }
  return out.str();
}

std::string show_ip_bgp_summary(const vrouter::VirtualRouter& router) {
  std::ostringstream out;
  if (router.bgp() == nullptr || !router.bgp()->active()) {
    out << "BGP is not running\n";
    return out.str();
  }
  out << "BGP summary information for VRF default\n"
      << "Router identifier " << router.bgp()->router_id().to_string() << ", local AS number "
      << router.bgp()->local_as() << "\n"
      << "  Neighbor         AS      State        PfxRcd  PfxSent\n";
  for (const proto::BgpSession& session : router.bgp()->sessions()) {
    out << "  " << session.config.peer.to_string() << "  " << session.config.remote_as
        << "  " << proto::session_state_name(session.state);
    if (session.config.shutdown) out << " (Admin)";
    out << "  " << session.adj_rib_in->size() << "  " << session.adj_rib_out->size() << "\n";
  }
  return out.str();
}

std::string show_interfaces(const vrouter::VirtualRouter& router) {
  std::ostringstream out;
  for (const proto::InterfaceView& interface : router.interfaces()) {
    out << interface.name << " is " << (interface.up ? "up" : "down") << "\n";
    if (interface.address)
      out << "  Internet address is " << interface.address->to_string() << "\n";
    if (interface.isis_enabled)
      out << "  IS-IS enabled" << (interface.isis_passive ? " (passive)" : "") << ", metric "
          << interface.isis_metric << "\n";
    if (interface.mpls_enabled) out << "  MPLS enabled\n";
  }
  return out.str();
}

std::string show_mpls_tunnels(const vrouter::VirtualRouter& router) {
  std::ostringstream out;
  if (router.te() == nullptr || !router.te()->active()) {
    out << "MPLS is not running\n";
    return out.str();
  }
  out << "RSVP-TE tunnels:\n";
  for (const auto& [name, tunnel] : router.te()->tunnels()) {
    out << "  " << name << " -> " << tunnel.config.destination.to_string() << "  "
        << proto::tunnel_state_name(tunnel.state);
    if (tunnel.state == proto::TunnelState::kUp)
      out << "  label " << tunnel.push_label << " via " << tunnel.downstream.to_string();
    out << "\n";
  }
  out << "Label bindings:\n";
  for (const auto& [label, binding] : router.te()->label_bindings()) {
    out << "  in " << binding.in_label << " -> ";
    if (binding.out_label) out << "swap " << *binding.out_label;
    else out << "pop";
    out << "  (" << binding.session_name << ")\n";
  }
  return out.str();
}

std::string show_ip_access_lists(const vrouter::VirtualRouter& router) {
  std::ostringstream out;
  const config::DeviceConfig& config = router.configuration();
  if (config.acls.empty()) {
    out << "No access lists configured\n";
    return out.str();
  }
  for (const auto& [name, acl] : config.acls) {
    out << "Standard IP access list " << name << "\n";
    for (const auto& entry : acl.entries) {
      out << "  " << entry.seq << " " << (entry.permit ? "permit " : "deny ");
      if (entry.destination == net::Ipv4Prefix()) out << "any";
      else out << entry.destination.to_string();
      out << "\n";
    }
    // Attachment points.
    for (const auto& [ifname, iface] : config.interfaces) {
      if (iface.acl_in == name) out << "  applied: " << ifname << " in\n";
      if (iface.acl_out == name) out << "  applied: " << ifname << " out\n";
    }
  }
  return out.str();
}

std::string show_running_config(const vrouter::VirtualRouter& router) {
  return config::write_config(router.configuration());
}

util::Result<std::string> run_command(const vrouter::VirtualRouter& router,
                                      std::string_view command) {
  std::vector<std::string> words = util::split_whitespace(command);
  auto is = [&](std::initializer_list<std::string_view> expected) {
    if (words.size() != expected.size()) return false;
    size_t i = 0;
    for (std::string_view word : expected)
      if (words[i++] != word) return false;
    return true;
  };
  if (is({"show", "ip", "route"})) return show_ip_route(router);
  if (words.size() == 5 && words[0] == "show" && words[1] == "ip" &&
      words[2] == "route" && words[3] == "vrf")
    return show_ip_route_vrf(router, words[4]);
  if (is({"show", "isis", "neighbors"})) return show_isis_neighbors(router);
  if (is({"show", "isis", "database"})) return show_isis_database(router);
  if (is({"show", "ip", "ospf", "neighbor"})) return show_ospf_neighbors(router);
  if (is({"show", "ip", "ospf", "database"})) return show_ospf_database(router);
  if (is({"show", "ip", "bgp", "summary"})) return show_ip_bgp_summary(router);
  if (is({"show", "interfaces"})) return show_interfaces(router);
  if (is({"show", "mpls", "tunnels"})) return show_mpls_tunnels(router);
  if (is({"show", "ip", "access-lists"})) return show_ip_access_lists(router);
  if (is({"show", "running-config"})) return show_running_config(router);
  return util::invalid_argument("% Invalid input: '" + std::string(command) + "'");
}

}  // namespace mfv::cli
