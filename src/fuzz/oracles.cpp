#include "fuzz/oracles.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "config/dialect.hpp"
#include "explore/explore.hpp"
#include "util/hash.hpp"
#include "service/protocol.hpp"
#include "service/snapshot_store.hpp"
#include "verify/forwarding_graph.hpp"
#include "verify/incremental/incremental.hpp"
#include "verify/queries.hpp"
#include "verify/trace_cache.hpp"

namespace mfv::fuzz {

namespace {

/// Generous truncation budgets: the legacy walker's max_paths/max_hops
/// truncation is a *documented* divergence from the exhaustive memoized
/// engine, so the oracle lifts the caps far above anything the generated
/// cases can produce and compares only genuine semantics.
verify::TraceOptions oracle_trace_options() {
  verify::TraceOptions options;
  options.max_hops = 64;
  options.max_paths = 4096;
  return options;
}

Verdict pass(uint32_t oracle, std::string detail = "") {
  return Verdict{oracle, true, std::move(detail)};
}

Verdict fail(uint32_t oracle, std::string detail) {
  if (detail.size() > 2000) detail.resize(2000);
  return Verdict{oracle, false, std::move(detail)};
}

util::Result<gnmi::Snapshot> converge_snapshot(const emu::Topology& topology) {
  emu::Emulation emulation;
  util::Status status = emulation.add_topology(topology);
  if (!status.ok()) return status;
  emulation.start_all();
  if (!emulation.run_to_convergence())
    return util::internal_error("topology did not converge within the event budget");
  return gnmi::Snapshot::capture(emulation, "snap");
}

std::vector<std::string> render_rows(const verify::ReachabilityResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const verify::ReachabilityRow& row : result.rows)
    rows.push_back(row.source + "|" + row.destination.to_string() + "|" +
                   row.dispositions.to_string());
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string first_diff(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  size_t limit = std::min(a.size(), b.size());
  for (size_t i = 0; i < limit; ++i)
    if (a[i] != b[i]) return "serial='" + a[i] + "' threaded='" + b[i] + "'";
  if (a.size() != b.size())
    return "row counts differ: serial=" + std::to_string(a.size()) +
           " threaded=" + std::to_string(b.size());
  return "";
}

// -- oracle 1: serial legacy walker vs threaded memoized engine -------------

Verdict check_engines(const FuzzCase& c) {
  gnmi::Snapshot snapshot;
  if (c.mode == Mode::kSynthetic) {
    snapshot = c.snapshot;
  } else {
    util::Result<gnmi::Snapshot> converged = converge_snapshot(c.topology);
    if (!converged.ok())
      return pass(kOracleEngines, "skipped: " + converged.status().message());
    snapshot = std::move(converged.value());
  }
  verify::ForwardingGraph graph(snapshot);

  verify::QueryOptions serial;
  serial.threads = 1;
  serial.engine = verify::EngineMode::kLegacy;
  serial.trace = oracle_trace_options();

  verify::QueryOptions threaded;
  threaded.threads = 4;
  threaded.engine = verify::EngineMode::kCached;
  threaded.trace = oracle_trace_options();

  std::vector<std::string> serial_rows = render_rows(verify::reachability(graph, serial));
  std::vector<std::string> threaded_rows =
      render_rows(verify::reachability(graph, threaded));
  if (std::string diff = first_diff(serial_rows, threaded_rows); !diff.empty())
    return fail(kOracleEngines, "reachability diverged: " + diff);

  std::vector<std::string> serial_loops = render_rows(verify::detect_loops(graph, serial));
  std::vector<std::string> threaded_loops =
      render_rows(verify::detect_loops(graph, threaded));
  if (std::string diff = first_diff(serial_loops, threaded_loops); !diff.empty())
    return fail(kOracleEngines, "detect_loops diverged: " + diff);

  return pass(kOracleEngines);
}

// -- oracle 2: fork + re-converge vs cold boot ------------------------------

Verdict check_fork(const FuzzCase& c) {
  emu::Emulation cold;
  if (!cold.add_topology(c.topology).ok())
    return pass(kOracleFork, "skipped: topology rejected");
  cold.start_all();
  if (!cold.run_to_convergence()) return pass(kOracleFork, "skipped: unconverged");

  emu::Emulation base;
  if (!base.add_topology(c.topology).ok())
    return pass(kOracleFork, "skipped: topology rejected");
  base.start_all();
  if (!base.run_to_convergence()) return pass(kOracleFork, "skipped: unconverged");

  // Two boots of the same bytes must agree before any perturbation — the
  // determinism precondition everything else builds on.
  std::string cold_json = gnmi::Snapshot::capture(cold, "snap").to_json().dump();
  std::string base_json = gnmi::Snapshot::capture(base, "snap").to_json().dump();
  if (cold_json != base_json)
    return fail(kOracleFork, "two cold boots of the same topology diverged");

  std::unique_ptr<emu::Emulation> fork = base.fork();
  if (fork == nullptr) return fail(kOracleFork, "converged base refused to fork");

  for (const scenario::Perturbation& perturbation : c.perturbations) {
    bool cold_applied = scenario::ScenarioRunner::apply(cold, perturbation);
    bool fork_applied = scenario::ScenarioRunner::apply(*fork, perturbation);
    if (cold_applied != fork_applied)
      return fail(kOracleFork, "perturbation applied to one pipeline only: " +
                                   scenario::perturbation_to_string(perturbation));
  }
  if (!cold.run_to_convergence() || !fork->run_to_convergence())
    return pass(kOracleFork, "skipped: perturbed network did not re-converge");

  std::string cold_after = gnmi::Snapshot::capture(cold, "snap").to_json().dump();
  std::string fork_after = gnmi::Snapshot::capture(*fork, "snap").to_json().dump();
  if (cold_after != fork_after)
    return fail(kOracleFork, "forked dataplane diverged from cold boot after " +
                                 std::to_string(c.perturbations.size()) +
                                 " perturbation(s)");

  // The fork must not write through into the base it copied.
  if (gnmi::Snapshot::capture(base, "snap").to_json().dump() != base_json)
    return fail(kOracleFork, "perturbing the fork mutated the base emulation");

  return pass(kOracleFork);
}

// -- oracle 3: snapshot-store hit vs independent rebuild --------------------

util::Result<std::unique_ptr<service::StoredSnapshot>> build_base_entry(
    const emu::Topology& topology) {
  auto entry = std::make_unique<service::StoredSnapshot>();
  auto emulation = std::make_unique<emu::Emulation>();
  util::Status status = emulation->add_topology(topology);
  if (!status.ok()) return status;
  emulation->start_all();
  if (!emulation->run_to_convergence())
    return util::internal_error("did not converge");
  entry->snapshot = gnmi::Snapshot::capture(*emulation, "snap");
  entry->emulation = std::move(emulation);
  entry->graph = std::make_unique<verify::ForwardingGraph>(entry->snapshot);
  entry->cache = std::make_unique<verify::TraceCache>(*entry->graph);
  return entry;
}

Verdict check_store(const FuzzCase& c) {
  service::SnapshotStore store;
  service::SnapshotKey key = service::key_for_topology(c.topology);
  auto builder = [&c]() { return build_base_entry(c.topology); };

  util::Result<service::SnapshotStore::Lease> first = store.get_or_build(service::kDefaultTenant, key, builder);
  if (!first.ok()) return pass(kOracleStore, "skipped: " + first.status().message());
  util::Result<service::SnapshotStore::Lease> second = store.get_or_build(service::kDefaultTenant, key, builder);
  if (!second.ok()) return fail(kOracleStore, "hit path failed after successful build");
  if (!second->hit) return fail(kOracleStore, "second lookup of one key was a miss");

  util::Result<std::unique_ptr<service::StoredSnapshot>> rebuilt = builder();
  if (!rebuilt.ok()) return fail(kOracleStore, "independent rebuild failed after hit");
  if (second->entry->snapshot.to_json().dump() !=
      (*rebuilt)->snapshot.to_json().dump())
    return fail(kOracleStore, "cached base snapshot differs from a rebuild");

  if (c.perturbations.empty()) return pass(kOracleStore);

  // Forked key: cache the fork, hit it, compare against a cold boot that
  // applies the same perturbations.
  service::SnapshotKey fork_key = service::key_for_fork(key, c.perturbations);
  auto fork_builder = [&]() -> util::Result<std::unique_ptr<service::StoredSnapshot>> {
    std::unique_ptr<emu::Emulation> fork = first->entry->emulation->fork();
    if (fork == nullptr) return util::internal_error("base refused to fork");
    for (const scenario::Perturbation& perturbation : c.perturbations)
      if (!scenario::ScenarioRunner::apply(*fork, perturbation))
        return util::not_found("perturbation target missing");
    if (!fork->run_to_convergence()) return util::internal_error("did not re-converge");
    auto entry = std::make_unique<service::StoredSnapshot>();
    entry->snapshot = gnmi::Snapshot::capture(*fork, "snap");
    entry->emulation = std::move(fork);
    entry->graph = std::make_unique<verify::ForwardingGraph>(entry->snapshot);
    entry->cache = std::make_unique<verify::TraceCache>(*entry->graph);
    return entry;
  };
  util::Result<service::SnapshotStore::Lease> forked =
      store.get_or_build(service::kDefaultTenant, fork_key, fork_builder);
  if (!forked.ok()) return pass(kOracleStore, "skipped: " + forked.status().message());
  util::Result<service::SnapshotStore::Lease> forked_hit =
      store.get_or_build(service::kDefaultTenant, fork_key, fork_builder);
  if (!forked_hit.ok() || !forked_hit->hit)
    return fail(kOracleStore, "second lookup of fork key was not a hit");

  emu::Emulation cold;
  if (!cold.add_topology(c.topology).ok())
    return pass(kOracleStore, "skipped: topology rejected");
  cold.start_all();
  if (!cold.run_to_convergence()) return pass(kOracleStore, "skipped: unconverged");
  for (const scenario::Perturbation& perturbation : c.perturbations)
    if (!scenario::ScenarioRunner::apply(cold, perturbation))
      return pass(kOracleStore, "skipped: perturbation target missing on cold boot");
  if (!cold.run_to_convergence())
    return pass(kOracleStore, "skipped: cold boot did not re-converge");
  if (forked_hit->entry->snapshot.to_json().dump() !=
      gnmi::Snapshot::capture(cold, "snap").to_json().dump())
    return fail(kOracleStore,
                "cached forked snapshot differs from a cold-booted equivalent");

  return pass(kOracleStore);
}

// -- oracle 4: dialect round-trips + literal canonicalization ---------------

/// Rewrites a config into the other dialect's interface namespace, fixing
/// every cross-reference that names an interface.
config::DeviceConfig to_vendor(const config::DeviceConfig& in, config::Vendor target) {
  auto rename = [target](const net::InterfaceName& name) -> net::InterfaceName {
    if (target == config::Vendor::kVjun) {
      if (name.rfind("Ethernet", 0) == 0) return "et-0/0/" + name.substr(8) + ".0";
      if (name.rfind("Loopback", 0) == 0) return "lo0.0";
    } else {
      if (name.rfind("et-", 0) == 0) {
        size_t slash = name.rfind('/');
        size_t dot = name.rfind('.');
        if (slash != std::string::npos && dot != std::string::npos && dot > slash)
          return "Ethernet" + name.substr(slash + 1, dot - slash - 1);
      }
      if (name.rfind("lo", 0) == 0) return "Loopback0";
    }
    return name;
  };
  config::DeviceConfig out = in;
  out.vendor = target;
  // Management features are raw native-dialect lines; they have no
  // cross-dialect rendering, so the rewrite drops them (same-dialect
  // round-trips still cover them).
  out.management_features.clear();
  out.interfaces.clear();
  for (const auto& [name, iface] : in.interfaces) {
    config::InterfaceConfig copy = iface;
    copy.name = rename(name);
    out.interfaces[copy.name] = copy;
  }
  for (net::InterfaceName& passive : out.ospf.passive_interfaces)
    passive = rename(passive);
  for (config::StaticRoute& route : out.static_routes)
    if (route.exit_interface) route.exit_interface = rename(*route.exit_interface);
  for (config::BgpNeighborConfig& neighbor : out.bgp.neighbors)
    if (neighbor.update_source) neighbor.update_source = rename(*neighbor.update_source);
  return out;
}

/// write∘parse must be a fixpoint: text the writer emits parses cleanly
/// and re-emits byte-identically.
std::string check_fixpoint(const config::DeviceConfig& config, const std::string& who) {
  std::string text1 = config::write_config(config);
  config::ParseResult parsed = config::parse_config(text1, config.vendor);
  if (parsed.diagnostics.error_count() > 0)
    return who + ": writer emitted text its own parser rejects (" +
           std::to_string(parsed.diagnostics.error_count()) + " errors)";
  std::string text2 = config::write_config(parsed.config);
  if (text1 != text2) return who + ": write/parse/write is not a fixpoint";
  return "";
}

/// Any dotted-quad (or prefix) literal the parser ACCEPTS must render
/// back to the exact accepted text; accepted-but-normalized literals mean
/// the verifier silently checks a different network than the operator
/// wrote ("10.0.0.01" as 10.0.0.1, "/032" as /32).
std::string check_canonical(const std::string& token) {
  size_t slash = token.find('/');
  if (slash == std::string::npos) {
    if (auto address = net::Ipv4Address::parse(token);
        address && address->to_string() != token)
      return "address '" + token + "' accepted but renders as '" +
             address->to_string() + "'";
    return "";
  }
  if (auto iface = net::InterfaceAddress::parse(token);
      iface && iface->to_string() != token)
    return "interface address '" + token + "' accepted but renders as '" +
           iface->to_string() + "'";
  if (auto prefix = net::Ipv4Prefix::parse(token)) {
    // Host bits are normalized away by design, so compare the parts that
    // must survive: the mask text and the address literal itself.
    std::string mask_text(token.substr(slash + 1));
    if (mask_text != std::to_string(prefix->length()))
      return "prefix '" + token + "' accepted with non-canonical mask text";
    std::string addr_text(token.substr(0, slash));
    auto address = net::Ipv4Address::parse(addr_text);
    if (!address || address->to_string() != addr_text)
      return "prefix '" + token + "' accepted with non-canonical address text";
  }
  return "";
}

std::string scan_literals(const std::string& text) {
  std::istringstream stream(text);
  std::string token;
  while (stream >> token)
    if (std::string problem = check_canonical(token); !problem.empty()) return problem;
  return "";
}

Verdict check_dialect(const FuzzCase& c) {
  for (const std::string& literal : c.literals)
    if (std::string problem = check_canonical(literal); !problem.empty())
      return fail(kOracleDialect, problem);

  for (const emu::NodeSpec& node : c.topology.nodes) {
    if (std::string problem = scan_literals(node.config_text); !problem.empty())
      return fail(kOracleDialect, node.name + ": " + problem);

    config::ParseResult parsed = config::parse_config(node.config_text, node.vendor);
    if (std::string problem = check_fixpoint(parsed.config, node.name + "/native");
        !problem.empty())
      return fail(kOracleDialect, problem);

    config::Vendor other = node.vendor == config::Vendor::kCeos
                               ? config::Vendor::kVjun
                               : config::Vendor::kCeos;
    if (std::string problem =
            check_fixpoint(to_vendor(parsed.config, other), node.name + "/cross");
        !problem.empty())
      return fail(kOracleDialect, problem);
  }

  for (const scenario::Perturbation& perturbation : c.perturbations)
    if (const auto* replace = std::get_if<scenario::ConfigReplace>(&perturbation))
      if (std::string problem = scan_literals(replace->config_text); !problem.empty())
        return fail(kOracleDialect, replace->node + "/replace: " + problem);

  return pass(kOracleDialect);
}

// -- oracle 5: sharded kernel vs serial kernel ------------------------------

/// Boots the case's topology, applies its perturbation sequence, and
/// re-converges after each one, all under `options`. Returns the snapshot
/// JSON plus the counters the sharded kernel promises to preserve, or
/// empty on skip (rejection / non-convergence).
std::string run_case_observables(const FuzzCase& c, emu::EmulationOptions options) {
  emu::Emulation emulation(options);
  if (!emulation.add_topology(c.topology).ok()) return "";
  emulation.start_all();
  if (!emulation.run_to_convergence()) return "";
  for (const scenario::Perturbation& perturbation : c.perturbations) {
    scenario::ScenarioRunner::apply(emulation, perturbation);
    if (!emulation.run_to_convergence()) return "";
  }
  return gnmi::Snapshot::capture(emulation, "snap").to_json().dump() +
         "|delivered=" + std::to_string(emulation.messages_delivered()) +
         "|dropped=" + std::to_string(emulation.messages_dropped()) +
         "|executed=" + std::to_string(emulation.kernel().executed()) +
         "|now=" + std::to_string(emulation.kernel().now().count_micros());
}

Verdict check_sharded(const FuzzCase& c) {
  std::string serial = run_case_observables(c, {});
  if (serial.empty()) return pass(kOracleSharded, "skipped: serial run did not settle");
  for (uint32_t shards : {2u, 4u}) {
    emu::EmulationOptions options;
    options.shards = shards;
    std::string sharded = run_case_observables(c, options);
    if (sharded != serial)
      return fail(kOracleSharded,
                  std::to_string(shards) + "-shard run diverged from serial after " +
                      std::to_string(c.perturbations.size()) + " perturbation(s)");
  }
  return pass(kOracleSharded);
}

// -- oracle 6: incremental re-verification vs cold --------------------------

std::string render_cells(const verify::PairwiseResult& result) {
  std::string out;
  for (const verify::PairwiseCell& cell : result.cells)
    out += cell.source + "|" + cell.destination + "|" + (cell.reachable ? "1" : "0") + "\n";
  out += std::to_string(result.reachable_pairs) + "/" + std::to_string(result.total_pairs);
  return out;
}

Verdict check_incremental(const FuzzCase& c) {
  emu::Emulation base;
  if (!base.add_topology(c.topology).ok())
    return pass(kOracleIncremental, "skipped: topology rejected");
  base.start_all();
  if (!base.run_to_convergence())
    return pass(kOracleIncremental, "skipped: unconverged");

  gnmi::Snapshot base_snapshot = gnmi::Snapshot::capture(base, "base");
  verify::ForwardingGraph base_graph(base_snapshot);
  verify::QueryOptions options;
  options.threads = 4;
  options.engine = verify::EngineMode::kCached;
  options.trace = oracle_trace_options();
  std::unique_ptr<verify::IncrementalBase> verify_base =
      verify::capture_incremental_base(base_graph, options);

  std::unique_ptr<emu::Emulation> fork = base.fork();
  if (fork == nullptr)
    return fail(kOracleIncremental, "converged base refused to fork");
  for (const scenario::Perturbation& perturbation : c.perturbations)
    scenario::ScenarioRunner::apply(*fork, perturbation);
  if (!fork->run_to_convergence())
    return pass(kOracleIncremental, "skipped: perturbed network did not re-converge");

  gnmi::Snapshot candidate_snapshot = gnmi::Snapshot::capture(*fork, "candidate");
  verify::ForwardingGraph candidate(candidate_snapshot);

  // Never fall back on size: a huge dirty set must still splice correctly
  // (the fallback path is trivially identical — it *is* the cold path).
  verify::IncrementalStats stats;
  verify::QueryOptions incremental = options;
  incremental.incremental = verify_base.get();
  incremental.incremental_max_dirty_fraction = 1.0;
  incremental.incremental_stats = &stats;

  std::vector<std::string> cold_rows =
      render_rows(verify::reachability(candidate, options));
  std::vector<std::string> spliced_rows =
      render_rows(verify::reachability(candidate, incremental));
  if (std::string diff = first_diff(cold_rows, spliced_rows); !diff.empty())
    return fail(kOracleIncremental,
                "incremental reachability diverged from cold (spliced=" +
                    std::to_string(stats.spliced) + " retraced=" +
                    std::to_string(stats.retraced) +
                    (stats.fell_back ? " fallback=" + stats.fallback_reason : "") +
                    "): " + diff);

  std::string cold_cells = render_cells(verify::pairwise_reachability(candidate, options));
  std::string spliced_cells =
      render_cells(verify::pairwise_reachability(candidate, incremental));
  if (cold_cells != spliced_cells)
    return fail(kOracleIncremental,
                "incremental pairwise diverged from cold after " +
                    std::to_string(c.perturbations.size()) + " perturbation(s)" +
                    (stats.fell_back ? " (fallback=" + stats.fallback_reason + ")" : ""));

  return pass(kOracleIncremental);
}

// -- oracle 7: exploration soundness (sampled ⊆ exhaustive) -----------------

Verdict check_explore(const FuzzCase& c) {
  // Exploration is exponential in co-pending deliveries; gate it to small
  // topologies and tight caps, and treat every truncation as a skip —
  // membership is only a theorem for complete enumerations.
  if (c.topology.nodes.size() > 6)
    return pass(kOracleExplore, "skipped: topology too large to enumerate");

  emu::Emulation base;
  if (!base.add_topology(c.topology).ok())
    return pass(kOracleExplore, "skipped: topology rejected");

  explore::ExploreInput input;
  input.base = &base;
  input.start = true;
  explore::ExploreOptions options;
  options.max_runs = 128;
  options.max_states = 64;
  options.max_choice_points = 12;
  options.verify_properties = false;
  options.keep_state_bytes = true;  // byte-exact membership below
  util::Result<explore::ExploreResult> result = explore::explore(input, options);
  if (!result.ok())
    return pass(kOracleExplore, "skipped: " + result.status().message());
  if (!result->complete)
    return pass(kOracleExplore, "skipped: exploration truncated by caps");

  // Jitter below the addressed-message latency can only flip deliveries
  // that are co-pending — exactly the pairs the exploration branches on —
  // so every jitter-sampled converged state must be in the explored set.
  for (uint64_t sample_seed = 1; sample_seed <= 4; ++sample_seed) {
    emu::EmulationOptions sample_options;
    sample_options.seed = sample_seed;
    sample_options.message_jitter_micros = 500;
    emu::Emulation sampled(sample_options);
    if (!sampled.add_topology(c.topology).ok())
      return pass(kOracleExplore, "skipped: topology rejected");
    sampled.start_all();
    if (!sampled.run_to_convergence())
      return pass(kOracleExplore, "skipped: jittered boot did not converge");
    explore::CanonicalState state = explore::canonicalize(sampled);
    if (!result->contains(state))
      return fail(kOracleExplore,
                  "jitter seed " + std::to_string(sample_seed) +
                      " converged to a state outside the exhaustive set (hash " +
                      util::hex64(state.hash) + "; explored " +
                      std::to_string(result->unique_states) + " states over " +
                      std::to_string(result->runs) + " runs)");
  }
  return pass(kOracleExplore);
}

}  // namespace

std::vector<Verdict> run_oracles(const FuzzCase& c, uint32_t mask) {
  uint32_t applicable = mask & c.oracles();
  std::vector<Verdict> verdicts;
  if (applicable & kOracleEngines) verdicts.push_back(check_engines(c));
  if (applicable & kOracleFork) verdicts.push_back(check_fork(c));
  if (applicable & kOracleStore) verdicts.push_back(check_store(c));
  if (applicable & kOracleDialect) verdicts.push_back(check_dialect(c));
  if (applicable & kOracleSharded) verdicts.push_back(check_sharded(c));
  if (applicable & kOracleIncremental) verdicts.push_back(check_incremental(c));
  if (applicable & kOracleExplore) verdicts.push_back(check_explore(c));
  return verdicts;
}

std::optional<Verdict> first_failure(const FuzzCase& c, uint32_t mask) {
  for (Verdict& verdict : run_oracles(c, mask))
    if (!verdict.ok) return std::move(verdict);
  return std::nullopt;
}

}  // namespace mfv::fuzz
