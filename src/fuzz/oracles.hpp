// The five differential oracles. Each one computes the same artifact two
// independent ways and demands byte-for-byte agreement; a Verdict carries
// the first observed divergence so repros are self-explaining.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"

namespace mfv::fuzz {

struct Verdict {
  uint32_t oracle = 0;
  bool ok = true;
  /// First divergence (or skip reason), human-readable.
  std::string detail;
};

/// Runs every oracle in `mask` that the case can exercise (see
/// FuzzCase::oracles()); one verdict per oracle run.
std::vector<Verdict> run_oracles(const FuzzCase& c, uint32_t mask = kOracleAll);

/// Convenience: the first failing verdict, if any.
std::optional<Verdict> first_failure(const FuzzCase& c, uint32_t mask = kOracleAll);

}  // namespace mfv::fuzz
