#include "fuzz/minimize.hpp"

#include <map>
#include <utility>

#include "fuzz/oracles.hpp"
#include "util/strings.hpp"

namespace mfv::fuzz {

namespace {

/// Copies an Aft, optionally dropping one IPv4 or label entry. Next-hop
/// and group indices are re-assigned; dangling references are preserved
/// as-is (the walker already treats them as unreachable).
aft::Aft copy_aft_excluding(const aft::Aft& in, const net::Ipv4Prefix* drop_prefix,
                            const uint32_t* drop_label) {
  aft::Aft out;
  std::map<uint64_t, uint64_t> hop_map;
  for (const auto& [index, hop] : in.next_hops()) hop_map[index] = out.add_next_hop(hop);
  std::map<uint64_t, uint64_t> group_map;
  for (const auto& [id, group] : in.groups()) {
    std::vector<std::pair<uint64_t, uint64_t>> members;
    for (const auto& [hop, weight] : group.next_hops) {
      auto it = hop_map.find(hop);
      members.emplace_back(it != hop_map.end() ? it->second : hop, weight);
    }
    group_map[id] = out.add_group(std::move(members));
  }
  auto mapped_group = [&group_map](uint64_t id) {
    auto it = group_map.find(id);
    return it != group_map.end() ? it->second : id;
  };
  for (const auto& [prefix, entry] : in.ipv4_entries()) {
    if (drop_prefix != nullptr && prefix == *drop_prefix) continue;
    aft::Ipv4Entry copy = entry;
    copy.next_hop_group = mapped_group(entry.next_hop_group);
    out.set_ipv4_entry(copy);
  }
  for (const auto& [label, entry] : in.label_entries()) {
    if (drop_label != nullptr && label == *drop_label) continue;
    aft::LabelEntry copy = entry;
    copy.next_hop_group = mapped_group(entry.next_hop_group);
    out.set_label_entry(copy);
  }
  return out;
}

class Reducer {
 public:
  Reducer(FuzzCase current, const std::function<bool(const FuzzCase&)>& still_fails,
          MinimizeStats& stats, size_t budget)
      : current_(std::move(current)), still_fails_(still_fails), stats_(stats),
        budget_(budget) {}

  FuzzCase run() {
    bool progressed = true;
    while (progressed && stats_.attempts < budget_) {
      progressed = false;
      progressed |= shrink_perturbations();
      progressed |= shrink_peers();
      progressed |= shrink_nodes();
      progressed |= shrink_links();
      progressed |= shrink_config_lines();
      progressed |= shrink_devices();
      progressed |= shrink_aft_entries();
      progressed |= shrink_literals();
    }
    return std::move(current_);
  }

 private:
  /// Commits `candidate` if the failure survives it.
  bool accept(FuzzCase candidate) {
    if (stats_.attempts >= budget_) return false;
    ++stats_.attempts;
    if (!still_fails_(candidate)) return false;
    current_ = std::move(candidate);
    ++stats_.accepted;
    return true;
  }

  bool shrink_perturbations() {
    bool progressed = false;
    if (!current_.perturbations.empty()) {
      FuzzCase candidate = current_;
      candidate.perturbations.clear();
      progressed |= accept(std::move(candidate));
    }
    for (size_t i = 0; i < current_.perturbations.size();) {
      FuzzCase candidate = current_;
      candidate.perturbations.erase(candidate.perturbations.begin() +
                                    static_cast<ptrdiff_t>(i));
      if (accept(std::move(candidate)))
        progressed = true;
      else
        ++i;
    }
    return progressed;
  }

  bool shrink_peers() {
    bool progressed = false;
    for (size_t i = 0; i < current_.topology.external_peers.size();) {
      FuzzCase candidate = current_;
      candidate.topology.external_peers.erase(
          candidate.topology.external_peers.begin() + static_cast<ptrdiff_t>(i));
      if (accept(std::move(candidate)))
        progressed = true;
      else
        ++i;
    }
    return progressed;
  }

  bool shrink_nodes() {
    bool progressed = false;
    for (size_t i = 0; i < current_.topology.nodes.size();) {
      FuzzCase candidate = current_;
      net::NodeName victim = candidate.topology.nodes[i].name;
      candidate.topology.nodes.erase(candidate.topology.nodes.begin() +
                                     static_cast<ptrdiff_t>(i));
      std::erase_if(candidate.topology.links, [&victim](const emu::LinkSpec& link) {
        return link.a.node == victim || link.b.node == victim;
      });
      std::erase_if(candidate.topology.external_peers,
                    [&victim](const emu::ExternalPeerSpec& peer) {
                      return peer.attach_node == victim;
                    });
      if (accept(std::move(candidate)))
        progressed = true;
      else
        ++i;
    }
    return progressed;
  }

  bool shrink_links() {
    bool progressed = false;
    for (size_t i = 0; i < current_.topology.links.size();) {
      FuzzCase candidate = current_;
      candidate.topology.links.erase(candidate.topology.links.begin() +
                                     static_cast<ptrdiff_t>(i));
      if (accept(std::move(candidate)))
        progressed = true;
      else
        ++i;
    }
    return progressed;
  }

  bool shrink_config_lines() {
    bool progressed = false;
    for (size_t n = 0; n < current_.topology.nodes.size(); ++n) {
      std::vector<std::string> lines =
          util::split(current_.topology.nodes[n].config_text, '\n');
      for (size_t i = 0; i < lines.size();) {
        std::string joined;
        for (size_t j = 0; j < lines.size(); ++j) {
          if (j == i) continue;
          joined += lines[j];
          joined += '\n';
        }
        FuzzCase candidate = current_;
        candidate.topology.nodes[n].config_text = joined;
        if (accept(std::move(candidate))) {
          lines.erase(lines.begin() + static_cast<ptrdiff_t>(i));
          progressed = true;
        } else {
          ++i;
        }
      }
    }
    return progressed;
  }

  bool shrink_devices() {
    bool progressed = false;
    for (auto it = current_.snapshot.devices.begin();
         it != current_.snapshot.devices.end();) {
      FuzzCase candidate = current_;
      candidate.snapshot.devices.erase(it->first);
      if (accept(std::move(candidate))) {
        it = current_.snapshot.devices.begin();
        progressed = true;
      } else {
        ++it;
      }
    }
    return progressed;
  }

  bool shrink_aft_entries() {
    bool progressed = false;
    // Name lists are materialized up front: accept() replaces current_,
    // invalidating any iterator into it.
    std::vector<net::NodeName> nodes;
    for (const auto& [node, device] : current_.snapshot.devices) nodes.push_back(node);
    for (const net::NodeName& node : nodes) {
      std::vector<net::Ipv4Prefix> prefixes;
      for (const auto& [prefix, entry] :
           current_.snapshot.devices.at(node).aft.ipv4_entries())
        prefixes.push_back(prefix);
      for (const net::Ipv4Prefix& prefix : prefixes) {
        FuzzCase candidate = current_;
        candidate.snapshot.devices[node].aft =
            copy_aft_excluding(current_.snapshot.devices.at(node).aft, &prefix, nullptr);
        progressed |= accept(std::move(candidate));
      }
      std::vector<uint32_t> labels;
      for (const auto& [label, entry] :
           current_.snapshot.devices.at(node).aft.label_entries())
        labels.push_back(label);
      for (uint32_t label : labels) {
        FuzzCase candidate = current_;
        candidate.snapshot.devices[node].aft =
            copy_aft_excluding(current_.snapshot.devices.at(node).aft, nullptr, &label);
        progressed |= accept(std::move(candidate));
      }
      // Filters off, one interface at a time.
      std::vector<net::InterfaceName> filtered;
      for (const auto& [name, iface] : current_.snapshot.devices.at(node).interfaces)
        if (iface.acl_in || iface.acl_out) filtered.push_back(name);
      for (const net::InterfaceName& name : filtered) {
        FuzzCase candidate = current_;
        aft::InterfaceState& target = candidate.snapshot.devices[node].interfaces[name];
        target.acl_in.reset();
        target.acl_out.reset();
        progressed |= accept(std::move(candidate));
      }
    }
    return progressed;
  }

  bool shrink_literals() {
    bool progressed = false;
    for (size_t i = 0; i < current_.literals.size();) {
      FuzzCase candidate = current_;
      candidate.literals.erase(candidate.literals.begin() + static_cast<ptrdiff_t>(i));
      if (accept(std::move(candidate)))
        progressed = true;
      else
        ++i;
    }
    return progressed;
  }

  FuzzCase current_;
  const std::function<bool(const FuzzCase&)>& still_fails_;
  MinimizeStats& stats_;
  size_t budget_;
};

}  // namespace

FuzzCase minimize(const FuzzCase& failing,
                  const std::function<bool(const FuzzCase&)>& still_fails,
                  MinimizeStats* stats, size_t budget) {
  MinimizeStats local;
  Reducer reducer(failing, still_fails, stats != nullptr ? *stats : local, budget);
  return reducer.run();
}

FuzzCase minimize_for_oracle(const FuzzCase& failing, uint32_t oracle_mask,
                             MinimizeStats* stats, size_t budget) {
  return minimize(
      failing,
      [oracle_mask](const FuzzCase& candidate) {
        return first_failure(candidate, oracle_mask).has_value();
      },
      stats, budget);
}

}  // namespace mfv::fuzz
