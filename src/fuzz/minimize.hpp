// Delta-debugging reducer for failing fuzz cases.
//
// Greedy structural shrinking to a fixpoint: drop perturbations, external
// peers, links, nodes, config lines, synthetic devices and their AFT
// entries, and literals — keeping any reduction under which the case
// still fails the same oracle. The result is the small, human-readable
// repro that goes into tests/fuzz_corpus/.
#pragma once

#include <functional>

#include "fuzz/fuzz.hpp"

namespace mfv::fuzz {

struct MinimizeStats {
  /// Oracle (or predicate) evaluations spent.
  size_t attempts = 0;
  /// Reductions that kept the failure and were committed.
  size_t accepted = 0;
};

/// Shrinks `failing` while `still_fails` holds. `still_fails(failing)`
/// must be true on entry; the returned case also satisfies it. Evaluation
/// count is capped by `budget`.
FuzzCase minimize(const FuzzCase& failing,
                  const std::function<bool(const FuzzCase&)>& still_fails,
                  MinimizeStats* stats = nullptr, size_t budget = 600);

/// Oracle-driven convenience: shrinks while the case still fails any
/// oracle in `oracle_mask`.
FuzzCase minimize_for_oracle(const FuzzCase& failing, uint32_t oracle_mask,
                             MinimizeStats* stats = nullptr, size_t budget = 600);

}  // namespace mfv::fuzz
