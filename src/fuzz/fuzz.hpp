// Differential fuzzing harness: seed-replayable random cases driven
// against the pipeline's equivalence oracles.
//
// The verifier's trustworthiness rests on a stack of "these two ways of
// computing the same thing agree" claims: the threaded memoized engine
// matches the serial legacy walker, a forked emulation matches a cold
// boot, a snapshot-store hit matches a rebuild, and a written config
// parses back to the text that was written. Each claim is proven on
// hand-picked examples in the unit tests; this module hunts for the
// examples nobody picked. A FuzzCase is fully materialized — topology
// with config bytes, perturbation sequence, or a synthetic adversarial
// dataplane — so any case (and any minimized repro) replays exactly from
// its JSON form with no dependence on generator internals.
//
// See DESIGN.md §8 for the oracle definitions and the minimizer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "emu/topology.hpp"
#include "gnmi/gnmi.hpp"
#include "scenario/scenario.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace mfv::fuzz {

/// How the case's network came to be.
enum class Mode {
  /// Generated WAN topology, emulated to convergence. Exercises the
  /// emulation-dependent oracles (fork, store) and the config dialects.
  kWan,
  /// Directly constructed adversarial dataplane snapshot — forwarding
  /// loops, multi-label MPLS cycles, ECMP fans, ACL drops — with no
  /// emulation behind it. Orders of magnitude faster per iteration and
  /// reaches dataplane shapes a converged control plane never emits.
  kSynthetic,
};

std::string mode_name(Mode mode);

/// Oracle bits (maskable so the CLI can run one family in isolation).
enum Oracle : uint32_t {
  /// reachability + detect_loops: serial legacy walker vs threaded
  /// memoized engine must produce identical row sets.
  kOracleEngines = 1u << 0,
  /// Emulation::fork + perturb + re-converge vs cold boot + identical
  /// perturbations: byte-identical snapshot JSON.
  kOracleFork = 1u << 1,
  /// SnapshotStore cache hit vs independent rebuild of the same key:
  /// byte-identical snapshot JSON, for base and forked keys.
  kOracleStore = 1u << 2,
  /// Config dialect round-trips (write∘parse fixpoint in both dialects)
  /// plus address-literal canonicalization: any literal the parser
  /// accepts must round-trip byte-identically through to_string().
  kOracleDialect = 1u << 3,
  /// Sharded event kernel vs serial kernel: boot + perturb + re-converge
  /// with EmulationOptions::shards > 1 must produce byte-identical
  /// snapshot JSON and identical message/event/clock counters.
  kOracleSharded = 1u << 4,
  /// Incremental re-verification vs cold: after fork + perturb +
  /// re-converge, the splicing engine (verify/incremental, seeded with
  /// the base's captured disposition matrix) must reproduce the cold
  /// reachability rows and pairwise cells byte for byte.
  kOracleIncremental = 1u << 5,
  /// Exhaustive exploration soundness (src/explore): jitter-sampled
  /// converged states of the case's topology must canonicalize into the
  /// exhaustively explored, deduped state set. Sampled jitter stays below
  /// the addressed-message latency, so sampling can only flip delivery
  /// pairs the exploration branches on. Skips (passes) when the topology
  /// is too large or the exploration hit a cap — membership is only a
  /// theorem for complete enumerations.
  kOracleExplore = 1u << 6,

  kOracleAll = kOracleEngines | kOracleFork | kOracleStore | kOracleDialect |
               kOracleSharded | kOracleIncremental | kOracleExplore,
};

std::string oracle_name(uint32_t oracle);
/// Parses "engines" / "fork" / "store" / "dialect" / "sharded" / "all".
std::optional<uint32_t> parse_oracle(std::string_view name);

/// One self-contained fuzz case. Exactly one of topology/snapshot is
/// populated (by mode); literals ride along in either mode.
struct FuzzCase {
  uint64_t seed = 0;
  Mode mode = Mode::kSynthetic;

  /// kWan: materialized topology (config bytes included) and the
  /// perturbation sequence applied on top of the converged base.
  emu::Topology topology;
  std::vector<scenario::Perturbation> perturbations;

  /// kSynthetic: the adversarial dataplane.
  gnmi::Snapshot snapshot;

  /// Address/prefix literal strings for the canonicalization check.
  std::vector<std::string> literals;

  /// Oracles this case can exercise, judged by content (a literals-only
  /// case reports just the dialect oracle, etc.).
  uint32_t oracles() const;

  util::Json to_json() const;
  static util::Result<FuzzCase> from_json(const util::Json& json);
  static util::Result<FuzzCase> from_json_text(std::string_view text);
};

/// Deterministically expands `seed` into a case: same seed, same bytes.
FuzzCase generate_case(uint64_t seed);

/// The synthetic adversarial snapshot generator (exposed for tests):
/// random AFTs over a small device set with IP next-hop cycles, MPLS
/// push/swap/pop label cycles, ECMP groups, drops, unresolvable
/// next-hops, and interface ACLs.
gnmi::Snapshot synth_snapshot(uint64_t seed);

}  // namespace mfv::fuzz
