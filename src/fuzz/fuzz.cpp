#include "fuzz/fuzz.hpp"

#include <utility>

#include "config/dialect.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace mfv::fuzz {

namespace {

/// Dedicated RNG streams so adding draws to one generation stage never
/// shifts another stage's bytes for the same seed.
constexpr uint64_t kStreamShape = 0xF022;
constexpr uint64_t kStreamLiterals = 0xF023;
constexpr uint64_t kStreamPerturb = 0xF024;
constexpr uint64_t kStreamSynth = 0xF025;

std::string random_quad(util::Pcg32& rng) {
  return std::to_string(rng.next_below(256)) + "." + std::to_string(rng.next_below(256)) +
         "." + std::to_string(rng.next_below(256)) + "." +
         std::to_string(rng.next_below(256));
}

/// A literal that is usually canonical but sometimes carries one of the
/// classic parser traps: leading-zero octets (octal ambiguity),
/// out-of-range octets, non-canonical or overflowing mask text, trailing
/// garbage, embedded sign characters.
std::string mutate_literal(util::Pcg32& rng) {
  std::string text = random_quad(rng);
  switch (rng.next_below(8)) {
    case 0:  // leading zero on one octet: "10.0.0.01"
      for (size_t i = 0, dot = rng.next_below(4), seen = 0; i <= text.size(); ++i)
        if (i == 0 || i == text.size() || text[i] == '.') {
          if (seen++ == dot) {
            text.insert(i == 0 ? 0 : i + 1, "0");
            break;
          }
        }
      break;
    case 1:  // out-of-range octet
      text = std::to_string(256 + rng.next_below(744)) + text.substr(text.find('.'));
      break;
    case 2:  // non-canonical mask
      text += rng.next_below(2) ? "/032" : "/00";
      break;
    case 3:  // overflowing or empty mask
      text += rng.next_below(2) ? "/4294967298" : "/";
      break;
    case 4:  // trailing garbage
      text += rng.next_below(2) ? " " : ".";
      break;
    case 5:  // sign characters parse_uint-style readers may tolerate
      text.insert(rng.next_below(text.size()), "+");
      break;
    case 6:  // canonical prefix form
      text += "/" + std::to_string(rng.next_below(33));
      break;
    default:  // canonical plain address
      break;
  }
  return text;
}

/// Picks the first usable Ethernet-side interface address of a node, by
/// parsing its config in its own dialect. nullopt when the node has none.
std::optional<net::Ipv4Address> node_interface_address(const emu::NodeSpec& node) {
  config::ParseResult parsed = config::parse_config(node.config_text, node.vendor);
  for (const auto& [name, iface] : parsed.config.interfaces)
    if (!iface.is_loopback() && iface.address) return iface.address->address;
  return std::nullopt;
}

/// Injects a mutual static-route loop between two routers: both claim the
/// same dark prefix and point it at each other. A converged control plane
/// rarely produces forwarding loops on its own; this plants the loop bug
/// surface (multi-node cycles, cache taint) into emulated dataplanes.
void inject_static_loop(emu::Topology& topology, util::Pcg32& rng) {
  if (topology.nodes.size() < 2) return;
  size_t a = rng.next_below(static_cast<uint32_t>(topology.nodes.size()));
  size_t b = rng.next_below(static_cast<uint32_t>(topology.nodes.size()));
  if (a == b) b = (b + 1) % topology.nodes.size();
  auto addr_a = node_interface_address(topology.nodes[a]);
  auto addr_b = node_interface_address(topology.nodes[b]);
  if (!addr_a || !addr_b) return;
  auto dark = net::Ipv4Prefix::parse("203.0.113.0/24");
  auto add_route = [&](emu::NodeSpec& node, net::Ipv4Address via) {
    config::ParseResult parsed = config::parse_config(node.config_text, node.vendor);
    config::StaticRoute route;
    route.prefix = *dark;
    route.next_hop = via;
    parsed.config.static_routes.push_back(route);
    node.config_text = config::write_config(parsed.config);
  };
  add_route(topology.nodes[a], *addr_b);
  add_route(topology.nodes[b], *addr_a);
}

/// Prepends a '0' to one address octet somewhere in the config text — the
/// accepted-but-reinterpreted literal a strict parser must reject. The
/// mutation lands in the raw bytes, so the canonicalization scan sees it
/// whether or not the dialect parser keeps the line.
void mutate_config_literal(std::string& text, util::Pcg32& rng) {
  std::vector<size_t> spots;
  for (size_t i = 3; i + 1 < text.size(); ++i)
    if (text[i] == '.' && text[i + 1] >= '1' && text[i + 1] <= '9' &&
        text[i - 1] >= '0' && text[i - 1] <= '9')
      spots.push_back(i + 1);
  if (spots.empty()) return;
  text.insert(spots[rng.next_below(static_cast<uint32_t>(spots.size()))], "0");
}

std::vector<scenario::Perturbation> random_perturbations(const emu::Topology& topology,
                                                         util::Pcg32& rng) {
  std::vector<scenario::Perturbation> out;
  size_t count = rng.next_below(4);  // 0..3
  bool have_cut = false;
  scenario::LinkCut last_cut;
  for (size_t i = 0; i < count; ++i) {
    switch (rng.next_below(4)) {
      case 0: {
        if (topology.links.empty()) break;
        const emu::LinkSpec& link =
            topology.links[rng.next_below(static_cast<uint32_t>(topology.links.size()))];
        last_cut = scenario::LinkCut{link.a, link.b};
        have_cut = true;
        out.push_back(last_cut);
        break;
      }
      case 1: {
        if (!have_cut) break;  // restores only make sense after a cut
        out.push_back(scenario::LinkRestore{last_cut.a, last_cut.b});
        break;
      }
      case 2: {
        if (topology.nodes.empty()) break;
        const emu::NodeSpec& node =
            topology.nodes[rng.next_below(static_cast<uint32_t>(topology.nodes.size()))];
        config::ParseResult parsed = config::parse_config(node.config_text, node.vendor);
        config::StaticRoute route;
        route.prefix = net::Ipv4Prefix(net::Ipv4Address(198, 18, rng.next_below(256), 0), 24);
        route.null_route = true;
        parsed.config.static_routes.push_back(route);
        out.push_back(scenario::ConfigReplace{node.name,
                                              config::write_config(parsed.config),
                                              node.vendor});
        break;
      }
      default: {
        if (topology.external_peers.empty()) break;
        const emu::ExternalPeerSpec& peer = topology.external_peers[rng.next_below(
            static_cast<uint32_t>(topology.external_peers.size()))];
        out.push_back(scenario::RouteWithdraw{peer.name, {}});
        break;
      }
    }
  }
  return out;
}

FuzzCase generate_wan_case(uint64_t seed, util::Pcg32& rng) {
  FuzzCase out;
  out.seed = seed;
  out.mode = Mode::kWan;

  workload::WanOptions options;
  options.seed = seed;
  options.routers = static_cast<int>(3 + rng.next_below(4));  // 3..6
  options.extra_chords = static_cast<int>(rng.next_below(3));
  options.line = rng.next_below(4) == 0;
  uint32_t dialect_mix = rng.next_below(3);
  options.vjun_fraction = dialect_mix == 0 ? 0.0 : (dialect_mix == 1 ? 0.5 : 1.0);
  options.mpls = rng.next_below(2) == 1;
  options.igp = rng.next_below(2) == 1 ? workload::WanOptions::Igp::kOspf
                                       : workload::WanOptions::Igp::kIsis;
  if (rng.next_below(3) == 0) {
    options.border_count = 1;
    options.routes_per_peer = 4 + rng.next_below(13);
    options.ibgp_mesh = true;
  }
  out.topology = workload::wan_topology(options);

  if (rng.next_below(2) == 1) inject_static_loop(out.topology, rng);
  if (rng.next_below(3) == 0 && !out.topology.nodes.empty()) {
    emu::NodeSpec& victim = out.topology.nodes[rng.next_below(
        static_cast<uint32_t>(out.topology.nodes.size()))];
    mutate_config_literal(victim.config_text, rng);
  }

  util::Pcg32 perturb_rng(seed, kStreamPerturb);
  out.perturbations = random_perturbations(out.topology, perturb_rng);
  return out;
}

}  // namespace

std::string mode_name(Mode mode) {
  return mode == Mode::kWan ? "wan" : "synthetic";
}

std::string oracle_name(uint32_t oracle) {
  switch (oracle) {
    case kOracleEngines:
      return "engines";
    case kOracleFork:
      return "fork";
    case kOracleStore:
      return "store";
    case kOracleDialect:
      return "dialect";
    case kOracleSharded:
      return "sharded";
    case kOracleIncremental:
      return "incremental";
    case kOracleExplore:
      return "explore";
    case kOracleAll:
      return "all";
    default:
      return "oracle-" + std::to_string(oracle);
  }
}

std::optional<uint32_t> parse_oracle(std::string_view name) {
  if (name == "engines") return kOracleEngines;
  if (name == "fork") return kOracleFork;
  if (name == "store") return kOracleStore;
  if (name == "dialect") return kOracleDialect;
  if (name == "sharded") return kOracleSharded;
  if (name == "incremental") return kOracleIncremental;
  if (name == "explore") return kOracleExplore;
  if (name == "all") return kOracleAll;
  return std::nullopt;
}

uint32_t FuzzCase::oracles() const {
  uint32_t mask = 0;
  if (!snapshot.devices.empty() || !topology.nodes.empty()) mask |= kOracleEngines;
  if (!topology.nodes.empty())
    mask |= kOracleFork | kOracleStore | kOracleDialect | kOracleSharded |
            kOracleIncremental | kOracleExplore;
  if (!literals.empty()) mask |= kOracleDialect;
  return mask;
}

util::Json FuzzCase::to_json() const {
  util::Json json = util::Json::object();
  json["seed"] = static_cast<uint64_t>(seed);
  json["mode"] = mode_name(mode);
  if (!topology.nodes.empty()) json["topology"] = topology.to_json();
  if (!perturbations.empty()) {
    util::Json list = util::Json::array();
    for (const scenario::Perturbation& perturbation : perturbations)
      list.push_back(scenario::perturbation_to_json(perturbation));
    json["perturbations"] = std::move(list);
  }
  if (!snapshot.devices.empty()) json["snapshot"] = snapshot.to_json();
  if (!literals.empty()) {
    util::Json list = util::Json::array();
    for (const std::string& literal : literals) list.push_back(literal);
    json["literals"] = std::move(list);
  }
  return json;
}

util::Result<FuzzCase> FuzzCase::from_json(const util::Json& json) {
  if (!json.is_object()) return util::invalid_argument("fuzz case must be an object");
  FuzzCase out;
  if (const util::Json* seed = json.find("seed"); seed != nullptr)
    out.seed = static_cast<uint64_t>(seed->as_int());
  if (const util::Json* mode = json.find("mode"); mode != nullptr)
    out.mode = mode->as_string() == "wan" ? Mode::kWan : Mode::kSynthetic;
  if (const util::Json* topology = json.find("topology"); topology != nullptr) {
    auto parsed = emu::Topology::from_json(*topology);
    if (!parsed.ok()) return parsed.status();
    out.topology = std::move(parsed.value());
  }
  if (const util::Json* perturbations = json.find("perturbations");
      perturbations != nullptr) {
    auto parsed = scenario::perturbations_from_json(*perturbations);
    if (!parsed.ok()) return parsed.status();
    out.perturbations = std::move(parsed.value());
  }
  if (const util::Json* snapshot = json.find("snapshot"); snapshot != nullptr) {
    auto parsed = gnmi::Snapshot::from_json(*snapshot);
    if (!parsed.ok()) return parsed.status();
    out.snapshot = std::move(parsed.value());
  }
  if (const util::Json* literals = json.find("literals");
      literals != nullptr && literals->is_array()) {
    for (const util::Json& literal : literals->as_array())
      out.literals.push_back(literal.as_string());
  }
  return out;
}

util::Result<FuzzCase> FuzzCase::from_json_text(std::string_view text) {
  auto json = util::Json::parse_checked(text);
  if (!json.ok()) return json.status();
  return from_json(json.value());
}

gnmi::Snapshot synth_snapshot(uint64_t seed) {
  util::Pcg32 rng(seed, kStreamSynth);
  gnmi::Snapshot snapshot;
  snapshot.name = "snap";

  uint32_t device_count = 3 + rng.next_below(4);  // 3..6
  bool labels = rng.next_below(5) != 0;           // most cases carry MPLS state
  uint32_t label_count = 2 + rng.next_below(3);   // labels 1..label_count

  std::vector<net::NodeName> names;
  std::vector<net::Ipv4Address> addresses;
  for (uint32_t i = 0; i < device_count; ++i) {
    names.push_back("d" + std::to_string(i));
    addresses.push_back(net::Ipv4Address(10, 0, 0, static_cast<uint8_t>(i + 1)));
  }
  // One device may own the probe destination; when none does, every path
  // ends in no-route/subnet/loop outcomes — also worth checking.
  std::optional<uint32_t> sink;
  if (rng.next_below(10) < 7) sink = rng.next_below(device_count);

  const net::Ipv4Address destination(99, 0, 0, 1);
  const std::vector<net::Ipv4Prefix> prefix_pool = {
      net::Ipv4Prefix(net::Ipv4Address(99, 0, 0, 0), 8),
      net::Ipv4Prefix(net::Ipv4Address(99, 0, 0, 0), 16),
      net::Ipv4Prefix(destination, 32),
      net::Ipv4Prefix(net::Ipv4Address(0, 0, 0, 0), 0),
  };

  for (uint32_t i = 0; i < device_count; ++i) {
    aft::DeviceAft device;
    device.node = names[i];

    aft::InterfaceState eth;
    eth.name = "Ethernet0";
    eth.address = net::InterfaceAddress{addresses[i],
                                        net::Ipv4Prefix(net::Ipv4Address(10, 0, 0, 0), 24)};
    eth.oper_up = rng.next_below(10) != 0;  // occasionally down
    if (rng.next_below(10) < 3) {
      // Random egress/ingress filter over the probe space.
      std::vector<aft::AclRule> rules;
      rules.push_back(aft::AclRule{rng.next_below(2) == 0,
                                   net::Ipv4Prefix(net::Ipv4Address(99, 0, 0, 0), 8)});
      rules.push_back(aft::AclRule{true, net::Ipv4Prefix()});  // any
      if (rng.next_below(2) == 0)
        eth.acl_out = rules;
      else
        eth.acl_in = rules;
    }
    device.interfaces[eth.name] = eth;

    aft::InterfaceState loop;
    loop.name = "Loopback0";
    loop.address = net::InterfaceAddress{
        net::Ipv4Address(10, 255, 0, static_cast<uint8_t>(i + 1)),
        net::Ipv4Prefix(net::Ipv4Address(10, 255, 0, static_cast<uint8_t>(i + 1)), 32)};
    device.interfaces[loop.name] = loop;

    if (sink && *sink == i) {
      aft::InterfaceState owner;
      owner.name = "Loopback1";
      owner.address =
          net::InterfaceAddress{destination, net::Ipv4Prefix(destination, 32)};
      device.interfaces[owner.name] = owner;
    }

    // Random IP entries over the probe prefixes. Next hops point at other
    // devices (sometimes pushing a label), drop, dangle, or go attached.
    uint32_t entry_count = 1 + rng.next_below(3);
    for (uint32_t e = 0; e < entry_count; ++e) {
      const net::Ipv4Prefix& prefix =
          prefix_pool[rng.next_below(static_cast<uint32_t>(prefix_pool.size()))];
      uint32_t fan = 1 + rng.next_below(2);
      std::vector<std::pair<uint64_t, uint64_t>> members;
      for (uint32_t h = 0; h < fan; ++h) {
        aft::NextHop hop;
        uint32_t kind = rng.next_below(10);
        if (kind == 0) {
          hop.drop = true;
        } else if (kind == 1) {
          hop.interface = "Ethernet0";  // attached, no resolved address
        } else if (kind == 2) {
          hop.ip_address = net::Ipv4Address(172, 16, 0, 9);  // nobody owns this
          hop.interface = "Ethernet0";
        } else {
          hop.ip_address = addresses[rng.next_below(device_count)];
          hop.interface = "Ethernet0";
          if (labels && rng.next_below(10) < 4) {
            hop.label_op = aft::LabelOp::kPush;
            hop.label = 1 + rng.next_below(label_count);
          }
        }
        members.emplace_back(device.aft.add_next_hop(hop), 1);
      }
      aft::Ipv4Entry entry;
      entry.prefix = prefix;
      entry.next_hop_group = device.aft.add_group(std::move(members));
      entry.origin_protocol = "STATIC";
      device.aft.set_ipv4_entry(entry);
    }

    // Random label table: swap chains between devices with occasional
    // pops. Pops resume IP forwarding on the same node, so IP entries and
    // label entries compose into cycles spanning multiple label states.
    if (labels) {
      for (uint32_t label = 1; label <= label_count; ++label) {
        if (rng.next_below(10) >= 7) continue;
        aft::NextHop hop;
        if (rng.next_below(10) < 3) {
          hop.label_op = aft::LabelOp::kPop;
          hop.interface = "Ethernet0";
        } else {
          hop.label_op = aft::LabelOp::kSwap;
          hop.label = 1 + rng.next_below(label_count);
          hop.ip_address = addresses[rng.next_below(device_count)];
          hop.interface = "Ethernet0";
        }
        aft::LabelEntry entry;
        entry.label = label;
        entry.next_hop_group = device.aft.add_group(device.aft.add_next_hop(hop));
        device.aft.set_label_entry(entry);
      }
    }

    snapshot.devices[device.node] = std::move(device);
  }
  return snapshot;
}

FuzzCase generate_case(uint64_t seed) {
  util::Pcg32 rng(seed, kStreamShape);
  FuzzCase out;
  if (rng.next_below(2) == 0) {
    out.seed = seed;
    out.mode = Mode::kSynthetic;
    out.snapshot = synth_snapshot(seed);
  } else {
    out = generate_wan_case(seed, rng);
  }
  util::Pcg32 literal_rng(seed, kStreamLiterals);
  uint32_t literal_count = 4 + literal_rng.next_below(5);
  for (uint32_t i = 0; i < literal_count; ++i)
    out.literals.push_back(mutate_literal(literal_rng));
  return out;
}

}  // namespace mfv::fuzz
