#include "workload/scenarios.hpp"

#include "config/ceos_writer.hpp"
#include "config/device_config.hpp"

namespace mfv::workload {

namespace {

using config::DeviceConfig;
using net::Ipv4Address;

/// The management-plane blocks production configs carry: daemons,
/// management APIs, platform services. The emulated device accepts all of
/// them; the reference model recognizes none (experiment E2's unparsed
/// lines).
void add_management_padding(DeviceConfig& config) {
  auto block = [&](std::string name, std::vector<std::string> lines) {
    config.management_features.push_back({std::move(name), std::move(lines)});
  };
  block("daemon PowerManager",
        {"daemon PowerManager", "exec /usr/bin/power-manager", "no shutdown"});
  block("daemon LedPolicy", {"daemon LedPolicy", "exec /usr/bin/led-policy", "no shutdown"});
  block("daemon Thermostat",
        {"daemon Thermostat", "exec /usr/bin/thermostat --interval 30", "no shutdown"});
  block("daemon TerminAttr",
        {"daemon TerminAttr", "exec /usr/bin/TerminAttr -cvaddr=203.0.113.50:9910",
         "no shutdown"});
  block("management api gnmi",
        {"management api gnmi", "transport grpc default", "no shutdown"});
  block("management api http-commands",
        {"management api http-commands", "protocol https", "no shutdown"});
  block("management ssl profile default",
        {"management ssl profile default",
         "certificate mgmt.crt key mgmt.key"});
  block("management security",
        {"management security", "password minimum-length 12"});
  block("service routing protocols model multi-agent",
        {"service routing protocols model multi-agent"});
  block("spanning-tree mode mstp", {"spanning-tree mode mstp"});
  block("no aaa root", {"no aaa root"});
  block("ntp server", {"ntp server 203.0.113.10 iburst"});
  block("logging host", {"logging host 203.0.113.20"});
  block("snmp-server", {"snmp-server community netops ro"});
  block("queue-monitor length", {"queue-monitor length"});
  block("hardware speed-group", {"hardware speed-group 1 serdes 10g"});
  block("clock timezone", {"clock timezone UTC"});
  block("transceiver qsfp", {"transceiver qsfp default-mode 4x10g"});
  block("errdisable recovery", {"errdisable recovery interval 300"});
}

/// Extra telemetry daemons carried by edge roles (R1/R5 in the Fig. 2
/// network) — more of the same class of lines the model cannot parse.
void add_edge_telemetry_padding(DeviceConfig& config, bool with_netconf) {
  config.management_features.push_back(
      {"daemon SlaMonitor",
       {"daemon SlaMonitor", "exec /usr/bin/sla-monitor --probe icmp", "no shutdown"}});
  if (with_netconf)
    config.management_features.push_back(
        {"management api netconf", {"management api netconf", "transport ssh default"}});
}

/// A spare, administratively-down port (present in production configs for
/// future capacity). Parsed fine by both parsers — recognized lines.
void add_spare_port(DeviceConfig& config, int index) {
  config::InterfaceConfig& iface = config.interface("Ethernet" + std::to_string(index));
  iface.switchport = false;
  iface.shutdown = true;
  iface.description = "spare capacity";
}

/// Border export policy (prefix-list + route-map), attached outbound on an
/// eBGP session. Recognized by both the vendor parser and the model.
void add_border_export_policy(DeviceConfig& config, const std::string& own_loopback) {
  config::PrefixList list;
  list.name = "PL-EXPORT";
  list.entries.push_back(
      {10, true, *net::Ipv4Prefix::parse(own_loopback + "/32"), 0, 0});
  list.entries.push_back({20, true, *net::Ipv4Prefix::parse("192.0.2.0/24"), 0, 24});
  config.prefix_lists[list.name] = std::move(list);

  config::RouteMap map;
  map.name = "RM-EXPORT";
  config::RouteMapClause permit;
  permit.seq = 10;
  permit.permit = true;
  permit.match_prefix_list = "PL-EXPORT";
  permit.set_med = 50;
  map.clauses.push_back(permit);
  config::RouteMapClause deny;
  deny.seq = 20;
  deny.permit = false;
  map.clauses.push_back(deny);
  config.route_maps[map.name] = std::move(map);
}

config::InterfaceConfig& add_loopback(DeviceConfig& config, const std::string& address,
                                      bool isis) {
  config::InterfaceConfig& loopback = config.interface("Loopback0");
  loopback.address = net::InterfaceAddress::parse(address + "/32");
  loopback.switchport = false;
  if (isis) {
    loopback.isis_enabled = true;
    loopback.isis_instance = "default";
    loopback.isis_passive = true;
  }
  return loopback;
}

config::InterfaceConfig& add_ethernet(DeviceConfig& config, int index,
                                      const std::string& cidr, bool isis,
                                      bool mpls = false) {
  config::InterfaceConfig& iface = config.interface("Ethernet" + std::to_string(index));
  iface.address = net::InterfaceAddress::parse(cidr);
  iface.switchport = false;
  if (isis) {
    iface.isis_enabled = true;
    iface.isis_instance = "default";
  }
  iface.mpls_enabled = mpls;
  return iface;
}

void enable_isis(DeviceConfig& config, int system_index) {
  config.isis.enabled = true;
  config.isis.instance = "default";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "49.0001.0000.0000.%04d.00", system_index);
  config.isis.net = buffer;
  config.isis.level = config::IsisLevel::kLevel2;
  config.isis.af_ipv4_unicast = true;
}

void add_ibgp(DeviceConfig& config, const std::string& peer_loopback, bool next_hop_self) {
  config::BgpNeighborConfig neighbor;
  neighbor.peer = *Ipv4Address::parse(peer_loopback);
  neighbor.remote_as = config.bgp.local_as;
  neighbor.update_source = "Loopback0";
  neighbor.next_hop_self = next_hop_self;
  neighbor.send_community = true;
  config.bgp.neighbors.push_back(std::move(neighbor));
}

void add_ebgp(DeviceConfig& config, const std::string& peer_address, net::AsNumber remote_as,
              bool shutdown = false) {
  config::BgpNeighborConfig neighbor;
  neighbor.peer = *Ipv4Address::parse(peer_address);
  neighbor.remote_as = remote_as;
  neighbor.shutdown = shutdown;
  config.bgp.neighbors.push_back(std::move(neighbor));
}

void advertise_loopback(DeviceConfig& config, const std::string& loopback) {
  config.bgp.networks.push_back(
      {*net::Ipv4Prefix::parse(loopback + "/32"), std::nullopt});
}

emu::NodeSpec to_node(const DeviceConfig& config) {
  return {config.hostname, config::Vendor::kCeos, config::write_ceos(config)};
}

}  // namespace

// ---------------------------------------------------------------------------
// Fig. 3

emu::Topology fig3_line_topology() {
  emu::Topology topology;
  for (int i = 1; i <= 3; ++i) {
    DeviceConfig config;
    config.hostname = "R" + std::to_string(i);
    enable_isis(config, i);
    std::string octet = std::to_string(i);
    add_loopback(config, "2.2.2." + octet, /*isis=*/true);
    // Link subnets 100.64.0.0/31 (R1-R2) and 100.64.0.2/31 (R2-R3) —
    // matching the Fig. 3 snippet's 100.64.0.1/31 on R1's Ethernet2.
    if (i == 1) add_ethernet(config, 2, "100.64.0.1/31", /*isis=*/true);
    if (i == 2) {
      add_ethernet(config, 1, "100.64.0.0/31", /*isis=*/true);
      add_ethernet(config, 2, "100.64.0.2/31", /*isis=*/true);
    }
    if (i == 3) add_ethernet(config, 1, "100.64.0.3/31", /*isis=*/true);
    // The paper's hand-written R1 config (Fig. 3) puts "ip address" before
    // "no switchport" — issue #1's trigger. R2/R3 use canonical order.
    config::CeosWriterOptions writer;
    writer.address_before_switchport = (i == 1);
    topology.nodes.push_back(
        {config.hostname, config::Vendor::kCeos, config::write_ceos(config, writer)});
  }
  topology.links.push_back({{"R1", "Ethernet2"}, {"R2", "Ethernet1"}, 1000});
  topology.links.push_back({{"R2", "Ethernet2"}, {"R3", "Ethernet1"}, 1000});
  return topology;
}

// ---------------------------------------------------------------------------
// Fig. 2

std::string fig2_loopback(int router_index) {
  return "10.0.0." + std::to_string(router_index);
}

emu::Topology fig2_topology(bool ebgp_session_down) {
  constexpr net::AsNumber kAs1 = 65001;
  constexpr net::AsNumber kAs2 = 65002;
  constexpr net::AsNumber kAs3 = 65003;

  emu::Topology topology;

  // R1 (AS1): single border router, no IGP.
  {
    DeviceConfig config;
    config.hostname = "R1";
    add_management_padding(config);
    add_edge_telemetry_padding(config, /*with_netconf=*/true);
    add_loopback(config, fig2_loopback(1), /*isis=*/false);
    add_ethernet(config, 1, "100.64.12.0/31", /*isis=*/false);
    add_spare_port(config, 9);
    config.bgp.enabled = true;
    config.bgp.local_as = kAs1;
    config.bgp.router_id = Ipv4Address::parse(fig2_loopback(1));
    add_border_export_policy(config, fig2_loopback(1));
    add_ebgp(config, "100.64.12.1", kAs2);
    config.bgp.neighbors.back().route_map_out = "RM-EXPORT";
    advertise_loopback(config, fig2_loopback(1));
    // A customer aggregate originated at the AS1 edge.
    config.static_routes.push_back(
        {*net::Ipv4Prefix::parse("192.0.2.0/24"), std::nullopt, std::nullopt, true, 1});
    config.bgp.networks.push_back({*net::Ipv4Prefix::parse("192.0.2.0/24"), std::nullopt});
    topology.nodes.push_back(to_node(config));
  }

  // R2 (AS2 border): eBGP to R1 and R3, iBGP to R5, IS-IS toward R5.
  {
    DeviceConfig config;
    config.hostname = "R2";
    add_management_padding(config);
    enable_isis(config, 2);
    add_loopback(config, fig2_loopback(2), /*isis=*/true);
    add_ethernet(config, 1, "100.64.12.1/31", /*isis=*/false, /*mpls=*/true);
    add_ethernet(config, 2, "100.64.23.0/31", /*isis=*/false, /*mpls=*/true);
    add_ethernet(config, 3, "100.64.25.0/31", /*isis=*/true, /*mpls=*/true);
    config.mpls.enabled = true;
    config.bgp.enabled = true;
    config.bgp.local_as = kAs2;
    config.bgp.router_id = Ipv4Address::parse(fig2_loopback(2));
    add_ebgp(config, "100.64.12.0", kAs1);
    add_ebgp(config, "100.64.23.1", kAs3, /*shutdown=*/ebgp_session_down);
    add_ibgp(config, fig2_loopback(5), /*next_hop_self=*/true);
    advertise_loopback(config, fig2_loopback(2));
    topology.nodes.push_back(to_node(config));
  }

  // R3 (AS3 border): eBGP to R2, iBGP mesh to R4/R6, IS-IS inside AS3.
  {
    DeviceConfig config;
    config.hostname = "R3";
    add_management_padding(config);
    enable_isis(config, 3);
    add_loopback(config, fig2_loopback(3), /*isis=*/true);
    add_ethernet(config, 1, "100.64.23.1/31", /*isis=*/false, /*mpls=*/true);
    add_ethernet(config, 2, "100.64.34.0/31", /*isis=*/true, /*mpls=*/true);
    add_ethernet(config, 3, "100.64.36.0/31", /*isis=*/true, /*mpls=*/true);
    config.mpls.enabled = true;
    config.bgp.enabled = true;
    config.bgp.local_as = kAs3;
    config.bgp.router_id = Ipv4Address::parse(fig2_loopback(3));
    add_ebgp(config, "100.64.23.0", kAs2, /*shutdown=*/ebgp_session_down);
    add_ibgp(config, fig2_loopback(4), /*next_hop_self=*/true);
    add_ibgp(config, fig2_loopback(6), /*next_hop_self=*/true);
    advertise_loopback(config, fig2_loopback(3));
    topology.nodes.push_back(to_node(config));
  }

  // R4 (AS3 core).
  {
    DeviceConfig config;
    config.hostname = "R4";
    add_management_padding(config);
    enable_isis(config, 4);
    add_loopback(config, fig2_loopback(4), /*isis=*/true);
    add_ethernet(config, 1, "100.64.34.1/31", /*isis=*/true, /*mpls=*/true);
    add_ethernet(config, 2, "100.64.46.0/31", /*isis=*/true, /*mpls=*/true);
    config.mpls.enabled = true;
    config.bgp.enabled = true;
    config.bgp.local_as = kAs3;
    config.bgp.router_id = Ipv4Address::parse(fig2_loopback(4));
    add_ibgp(config, fig2_loopback(3), /*next_hop_self=*/false);
    add_ibgp(config, fig2_loopback(6), /*next_hop_self=*/false);
    advertise_loopback(config, fig2_loopback(4));
    topology.nodes.push_back(to_node(config));
  }

  // R5 (AS2 core).
  {
    DeviceConfig config;
    config.hostname = "R5";
    add_management_padding(config);
    add_edge_telemetry_padding(config, /*with_netconf=*/false);
    add_spare_port(config, 9);
    enable_isis(config, 5);
    add_loopback(config, fig2_loopback(5), /*isis=*/true);
    add_ethernet(config, 1, "100.64.25.1/31", /*isis=*/true, /*mpls=*/true);
    config.mpls.enabled = true;
    config.bgp.enabled = true;
    config.bgp.local_as = kAs2;
    config.bgp.router_id = Ipv4Address::parse(fig2_loopback(5));
    add_ibgp(config, fig2_loopback(2), /*next_hop_self=*/false);
    advertise_loopback(config, fig2_loopback(5));
    topology.nodes.push_back(to_node(config));
  }

  // R6 (AS3 core).
  {
    DeviceConfig config;
    config.hostname = "R6";
    add_management_padding(config);
    enable_isis(config, 6);
    add_loopback(config, fig2_loopback(6), /*isis=*/true);
    add_ethernet(config, 1, "100.64.36.1/31", /*isis=*/true, /*mpls=*/true);
    add_ethernet(config, 2, "100.64.46.1/31", /*isis=*/true, /*mpls=*/true);
    config.mpls.enabled = true;
    config.bgp.enabled = true;
    config.bgp.local_as = kAs3;
    config.bgp.router_id = Ipv4Address::parse(fig2_loopback(6));
    add_ibgp(config, fig2_loopback(3), /*next_hop_self=*/false);
    add_ibgp(config, fig2_loopback(4), /*next_hop_self=*/false);
    advertise_loopback(config, fig2_loopback(6));
    topology.nodes.push_back(to_node(config));
  }

  topology.links.push_back({{"R1", "Ethernet1"}, {"R2", "Ethernet1"}, 1000});
  topology.links.push_back({{"R2", "Ethernet2"}, {"R3", "Ethernet1"}, 1000});
  topology.links.push_back({{"R2", "Ethernet3"}, {"R5", "Ethernet1"}, 1000});
  topology.links.push_back({{"R3", "Ethernet2"}, {"R4", "Ethernet1"}, 1000});
  topology.links.push_back({{"R3", "Ethernet3"}, {"R6", "Ethernet1"}, 1000});
  topology.links.push_back({{"R4", "Ethernet2"}, {"R6", "Ethernet2"}, 1000});
  return topology;
}

}  // namespace mfv::workload
