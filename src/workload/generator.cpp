#include "workload/generator.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "config/dialect.hpp"
#include "util/rng.hpp"

namespace mfv::workload {

namespace {

using config::DeviceConfig;
using net::Ipv4Address;

std::string loopback_address(int index) {
  return "10.1." + std::to_string(index / 256) + "." + std::to_string(index % 256);
}

std::string isis_net(int index) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "49.0001.0000.%04x.%04x.00",
                (index >> 16) & 0xFFFF, index & 0xFFFF);
  return buffer;
}

/// Link k's /31 is carved sequentially out of 100.64.0.0/10.
std::string link_address(int link_index, int side) {
  uint32_t base = ((uint32_t(100) << 24) | (uint32_t(64) << 16)) +
                  uint32_t(link_index) * 2 + static_cast<uint32_t>(side);
  return Ipv4Address(base).to_string();
}

}  // namespace

std::string interface_name(config::Vendor vendor, int index) {
  switch (vendor) {
    case config::Vendor::kCeos: return "Ethernet" + std::to_string(index);
    case config::Vendor::kVjun: return "et-0/0/" + std::to_string(index) + ".0";
  }
  return "Ethernet" + std::to_string(index);
}

std::string loopback_name(config::Vendor vendor) {
  return vendor == config::Vendor::kVjun ? "lo0.0" : "Loopback0";
}

emu::Topology wan_topology(const WanOptions& options) {
  util::Pcg32 rng(options.seed);
  const int n = options.routers;
  int chords = options.extra_chords >= 0 ? options.extra_chords : n / 4;

  // Vendors: deterministically sprinkle vjun routers.
  std::vector<config::Vendor> vendors(static_cast<size_t>(n), config::Vendor::kCeos);
  int vjun_count = static_cast<int>(options.vjun_fraction * n);
  for (int i = 0; i < vjun_count; ++i)
    vendors[static_cast<size_t>(i) * static_cast<size_t>(n) /
            std::max(1, vjun_count) % static_cast<size_t>(n)] = config::Vendor::kVjun;

  // Edge list: line or ring, plus chords (dedup, no self-loops).
  std::set<std::pair<int, int>> edges;
  if (n > 1) {
    int ring_links = options.line ? n - 1 : n;
    for (int i = 0; i < ring_links; ++i)
      edges.insert({std::min(i, (i + 1) % n), std::max(i, (i + 1) % n)});
  }
  if (options.line) chords = 0;
  const size_t base_links = edges.size();
  int attempts = 0;
  while (edges.size() < base_links + static_cast<size_t>(chords) &&
         attempts < chords * 20) {
    ++attempts;
    int a = static_cast<int>(rng.next_below(static_cast<uint32_t>(n)));
    int b = static_cast<int>(rng.next_below(static_cast<uint32_t>(n)));
    if (a == b) continue;
    edges.insert({std::min(a, b), std::max(a, b)});
  }

  // Per-router interface allocation.
  std::vector<DeviceConfig> configs(static_cast<size_t>(n));
  std::vector<int> next_port(static_cast<size_t>(n), 1);
  const bool use_ospf = options.igp == WanOptions::Igp::kOspf;
  for (int i = 0; i < n; ++i) {
    DeviceConfig& config = configs[static_cast<size_t>(i)];
    config.hostname = "wan" + std::to_string(i);
    config.vendor = vendors[static_cast<size_t>(i)];
    if (use_ospf) {
      config.ospf.enabled = true;
      config.ospf.networks.push_back(*net::Ipv4Prefix::parse("10.1.0.0/16"));
      config.ospf.networks.push_back(*net::Ipv4Prefix::parse("100.64.0.0/10"));
    } else {
      config.isis.enabled = true;
      config.isis.instance = "default";
      config.isis.net = isis_net(i);
      config.isis.af_ipv4_unicast = true;
    }
    auto& loopback = config.interface(loopback_name(config.vendor));
    loopback.switchport = false;
    loopback.address = net::InterfaceAddress::parse(loopback_address(i) + "/32");
    if (!use_ospf) {
      loopback.isis_enabled = true;
      loopback.isis_passive = true;
      loopback.isis_instance = "default";
    }
  }

  emu::Topology topology;
  int link_index = 0;
  for (const auto& [a, b] : edges) {
    int port_a = next_port[static_cast<size_t>(a)]++;
    int port_b = next_port[static_cast<size_t>(b)]++;
    std::string if_a = interface_name(vendors[static_cast<size_t>(a)], port_a);
    std::string if_b = interface_name(vendors[static_cast<size_t>(b)], port_b);
    for (int side = 0; side < 2; ++side) {
      DeviceConfig& config = configs[static_cast<size_t>(side == 0 ? a : b)];
      auto& iface = config.interface(side == 0 ? if_a : if_b);
      iface.switchport = false;
      iface.address =
          net::InterfaceAddress::parse(link_address(link_index, side) + "/31");
      if (!use_ospf) {
        iface.isis_enabled = true;
        iface.isis_instance = "default";
      }
      iface.mpls_enabled = options.mpls;
      if (options.mpls) config.mpls.enabled = true;
    }
    topology.links.push_back({{"wan" + std::to_string(a), if_a},
                              {"wan" + std::to_string(b), if_b},
                              1000});
    ++link_index;
  }

  // BGP: optional full iBGP mesh + border routers with external peers.
  std::vector<int> borders;
  for (int i = 0; i < options.border_count && i < n; ++i)
    borders.push_back(i * std::max(1, n / std::max(1, options.border_count)));

  if (options.ibgp_mesh || !borders.empty()) {
    for (int i = 0; i < n; ++i) {
      DeviceConfig& config = configs[static_cast<size_t>(i)];
      config.bgp.enabled = true;
      config.bgp.local_as = options.core_as;
      config.bgp.router_id = Ipv4Address::parse(loopback_address(i));
    }
  }
  if (options.ibgp_mesh) {
    for (int i = 0; i < n; ++i) {
      DeviceConfig& config = configs[static_cast<size_t>(i)];
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        config::BgpNeighborConfig neighbor;
        neighbor.peer = *Ipv4Address::parse(loopback_address(j));
        neighbor.remote_as = options.core_as;
        neighbor.update_source = loopback_name(config.vendor);
        neighbor.next_hop_self =
            std::find(borders.begin(), borders.end(), i) != borders.end();
        config.bgp.neighbors.push_back(std::move(neighbor));
      }
    }
  }

  // External peers: one per border, on a dedicated /31.
  for (size_t b = 0; b < borders.size(); ++b) {
    int router = borders[b];
    DeviceConfig& config = configs[static_cast<size_t>(router)];
    int port = next_port[static_cast<size_t>(router)]++;
    std::string ifname = interface_name(config.vendor, port);
    std::string router_address = "100.127." + std::to_string(b) + ".0";
    std::string peer_address = "100.127." + std::to_string(b) + ".1";
    auto& iface = config.interface(ifname);
    iface.switchport = false;
    iface.address = net::InterfaceAddress::parse(router_address + "/31");

    net::AsNumber peer_as = 64900 + static_cast<net::AsNumber>(b);
    config::BgpNeighborConfig neighbor;
    neighbor.peer = *Ipv4Address::parse(peer_address);
    neighbor.remote_as = peer_as;
    config.bgp.neighbors.push_back(std::move(neighbor));

    emu::ExternalPeerSpec peer;
    peer.name = "peer" + std::to_string(b);
    peer.attach_node = config.hostname;
    peer.address = *Ipv4Address::parse(peer_address);
    peer.as_number = peer_as;
    peer.routes = synth_route_feed(options.routes_per_peer, peer_as, peer.address,
                                   options.seed + b + 1);
    topology.external_peers.push_back(std::move(peer));
  }

  for (const DeviceConfig& config : configs)
    topology.nodes.push_back(
        {config.hostname, config.vendor, config::write_config(config)});
  return topology;
}

std::vector<emu::NodeSpec> production_corpus(size_t count, double vjun_fraction,
                                             uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<emu::NodeSpec> corpus;
  corpus.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    config::Vendor vendor = rng.next_double() < vjun_fraction ? config::Vendor::kVjun
                                                              : config::Vendor::kCeos;
    DeviceConfig config;
    config.vendor = vendor;
    int role = static_cast<int>(rng.next_below(3));  // 0 core, 1 edge, 2 peering
    const char* role_name[] = {"core", "edge", "peer"};
    config.hostname = std::string(role_name[role]) + std::to_string(i);

    auto& loopback = config.interface(loopback_name(vendor));
    loopback.switchport = false;
    loopback.address = net::InterfaceAddress::parse(
        "10.2." + std::to_string(i / 256) + "." + std::to_string(i % 256) + "/32");
    config.isis.enabled = true;
    config.isis.instance = "default";
    config.isis.net = isis_net(static_cast<int>(i) + 1);
    config.isis.af_ipv4_unicast = true;
    loopback.isis_enabled = true;
    loopback.isis_passive = true;

    int ports = role == 0 ? 4 + static_cast<int>(rng.next_below(4))
                          : 2 + static_cast<int>(rng.next_below(3));
    for (int p = 1; p <= ports; ++p) {
      auto& iface = config.interface(interface_name(vendor, p));
      iface.switchport = false;
      iface.address = net::InterfaceAddress::parse(
          "100.96." + std::to_string((i * 8 + static_cast<size_t>(p)) % 256) + "." +
          std::to_string(rng.next_below(128) * 2) + "/31");
      iface.isis_enabled = true;
      iface.isis_instance = "default";
      // Production reality: MPLS on core-facing links — the material
      // coverage gap of E2.
      iface.mpls_enabled = true;
      config.mpls.enabled = true;
    }
    if (role == 0 && rng.next_below(2) == 0) {
      config.mpls.te_enabled = true;
      config::TeTunnel tunnel;
      tunnel.name = "TE-" + config.hostname;
      tunnel.destination = net::Ipv4Address(0x0A020000u + rng.next_below(65536));
      config.mpls.tunnels.push_back(tunnel);
    }
    if (role != 0) {
      config.bgp.enabled = true;
      config.bgp.local_as = 65000;
      config.bgp.router_id = loopback.address->address;
      config::BgpNeighborConfig neighbor;
      neighbor.peer = net::Ipv4Address(0x0A020000u + rng.next_below(65536));
      neighbor.remote_as = role == 2 ? 64000 + rng.next_below(1000) : 65000;
      if (neighbor.remote_as == 65000) neighbor.update_source = loopback_name(vendor);
      config.bgp.neighbors.push_back(neighbor);
    }

    // Management-plane blocks (for ceos via the writer's feature list; the
    // vjun writer emits system services itself).
    if (vendor == config::Vendor::kCeos) {
      config.management_features.push_back(
          {"daemon TerminAttr",
           {"daemon TerminAttr", "exec /usr/bin/TerminAttr -cvaddr=203.0.113.50:9910",
            "no shutdown"}});
      config.management_features.push_back(
          {"management api gnmi",
           {"management api gnmi", "transport grpc default", "no shutdown"}});
      config.management_features.push_back(
          {"management ssl profile default",
           {"management ssl profile default", "certificate mgmt.crt key mgmt.key"}});
    }
    corpus.push_back({config.hostname, vendor, config::write_config(config)});
  }
  return corpus;
}

std::vector<proto::BgpRoute> synth_route_feed(size_t count, net::AsNumber origin_as,
                                              net::Ipv4Address next_hop, uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<proto::BgpRoute> routes;
  routes.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    proto::BgpRoute route;
    // Distinct /24s carved from 32.0.0.0/3 (room for ~64M).
    uint32_t base = (uint32_t(32) << 24) + static_cast<uint32_t>(k) * 256;
    route.prefix = net::Ipv4Prefix(Ipv4Address(base), 24);
    route.attributes.next_hop = next_hop;
    route.attributes.origin = proto::BgpOrigin::kIgp;
    route.attributes.med = rng.next_below(100);
    int path_len = 1 + static_cast<int>(rng.next_below(4));
    route.attributes.as_path.push_back(origin_as);
    for (int h = 1; h < path_len; ++h)
      route.attributes.as_path.push_back(64000 + rng.next_below(500));
    routes.push_back(std::move(route));
  }
  return routes;
}

}  // namespace mfv::workload
