// Parameterized workload generation for the scaling experiments (E4) and
// ablations: WAN-style topologies of arbitrary size, optional multi-vendor
// mix, border routers with external BGP peers, and synthetic full-table
// route feeds ("millions of routes from each BGP peer", §5).
#pragma once

#include <cstdint>
#include <vector>

#include "emu/topology.hpp"
#include "proto/messages.hpp"

namespace mfv::workload {

struct WanOptions {
  int routers = 30;
  uint64_t seed = 1;
  /// Ring + this many random chord links (0 keeps a plain ring).
  int extra_chords = -1;  // -1 = routers / 4
  /// Line (chain) instead of ring: every link is a bridge, so any single
  /// cut partitions the network (used by failure-injection sweeps).
  bool line = false;
  /// Fraction of routers configured in the vjun dialect (multi-vendor).
  double vjun_fraction = 0.0;
  /// Routers that terminate eBGP sessions from external peers.
  int border_count = 0;
  /// Advertisements injected by each external peer.
  size_t routes_per_peer = 0;
  /// Full iBGP mesh over loopbacks (needed to spread injected routes to
  /// every router; O(n^2) sessions, so default off for very large runs).
  bool ibgp_mesh = false;
  /// Enable MPLS on core links (exercise the feature the model lacks).
  bool mpls = false;
  /// Interior gateway protocol for the core.
  enum class Igp { kIsis, kOspf } igp = Igp::kIsis;
  net::AsNumber core_as = 65000;
};

/// Generates a connected WAN topology with per-router native-dialect
/// configuration text, deterministic in `seed`.
emu::Topology wan_topology(const WanOptions& options);

/// Synthetic BGP advertisement feed: `count` distinct /24s from the
/// 32.0.0.0/3 space with varied AS-path lengths and MEDs.
std::vector<proto::BgpRoute> synth_route_feed(size_t count, net::AsNumber origin_as,
                                              net::Ipv4Address next_hop, uint64_t seed);

/// Production-style config corpus for parser-coverage studies: `count`
/// configs across roles (core / edge / peering), all carrying the
/// management-plane blocks and MPLS features real deployments have, with
/// `vjun_fraction` in the second dialect. Reproduces the shape of the
/// paper's 1500-production-config experiment ("all of them failed in the
/// parsing phase due to unsupported features in the model").
std::vector<emu::NodeSpec> production_corpus(size_t count, double vjun_fraction,
                                             uint64_t seed);

/// Interface naming per vendor dialect ("Ethernet3" vs "et-0/0/3.0").
std::string interface_name(config::Vendor vendor, int index);
/// Loopback naming per vendor dialect ("Loopback0" vs "lo0.0").
std::string loopback_name(config::Vendor vendor);

}  // namespace mfv::workload
