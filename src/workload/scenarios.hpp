// The paper's evaluation scenarios (§5), reconstructed as topology
// builders. Shared by tests, examples, and benchmarks so every consumer
// exercises the same inputs.
#pragma once

#include <string>

#include "emu/topology.hpp"

namespace mfv::workload {

/// Fig. 3: the 3-node line R1 <> R2 <> R3 running IS-IS, with unique
/// addresses per interface. Each config writes "ip address" before
/// "no switchport" and uses "isis enable default" — both valid on the real
/// device, both tripping the reference model (issues #1 and #2).
emu::Topology fig3_line_topology();

/// Fig. 2: the 6-node test network distilled from production configs:
///   AS1 = {R1}, AS2 = {R2, R5}, AS3 = {R3, R4, R6}
///   eBGP: R1-R2 and R2-R3 (inter-AS), iBGP inside AS2 and AS3 (loopback
///   sessions with next-hop-self at the borders), IS-IS as the IGP inside
///   each multi-router AS. Configs include the management-plane and MPLS
///   blocks real production configs carry (62-82 lines each; the reference
///   model fails to recognize 38-42 of them — experiment E2).
///
/// `ebgp_session_down` applies the E1 bug: the R2-R3 eBGP session is
/// administratively shut down, severing AS3 from AS2/AS1.
emu::Topology fig2_topology(bool ebgp_session_down = false);

/// Per-router loopback address used by the Fig. 2 network ("10.0.0.<i>").
std::string fig2_loopback(int router_index);

}  // namespace mfv::workload
