// Abstract Forwarding Table (AFT) data model, shaped after the OpenConfig
// `network-instances/network-instance/afts` subtree.
//
// This is the vendor-agnostic dataplane snapshot format of the paper's
// pipeline: the emulation stage dumps per-device AFTs over the gNMI-style
// API (§4.1), and the verification stage consumes them in place of a
// model-derived dataplane (§4.2). Mirrors OpenConfig's indirection:
// ipv4-unicast entries reference next-hop-groups, which reference
// next-hops.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"
#include "net/types.hpp"
#include "util/cow.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace mfv::aft {

/// MPLS label operations carried by a next-hop.
enum class LabelOp { kNone, kPush, kSwap, kPop };

struct NextHop {
  uint64_t index = 0;
  /// Resolved adjacent next-hop address; absent for directly attached or
  /// drop next-hops.
  std::optional<net::Ipv4Address> ip_address;
  /// Egress interface; absent only for drop.
  std::optional<net::InterfaceName> interface;
  bool drop = false;
  LabelOp label_op = LabelOp::kNone;
  uint32_t label = 0;

  bool operator==(const NextHop&) const = default;
};

struct NextHopGroup {
  uint64_t id = 0;
  /// next-hop index -> weight (ECMP/WCMP).
  std::vector<std::pair<uint64_t, uint64_t>> next_hops;

  bool operator==(const NextHopGroup&) const = default;
};

struct Ipv4Entry {
  net::Ipv4Prefix prefix;
  uint64_t next_hop_group = 0;
  /// Origin protocol as reported by the device ("BGP", "ISIS", "STATIC",
  /// "CONNECTED", "LOCAL", "TE").
  std::string origin_protocol;
  uint32_t metric = 0;

  bool operator==(const Ipv4Entry&) const = default;
};

struct LabelEntry {
  uint32_t label = 0;
  uint64_t next_hop_group = 0;

  bool operator==(const LabelEntry&) const = default;
};

/// AFT of one network instance (we model the default VRF).
///
/// Copies are O(1): the table storage is copy-on-write (shared until one
/// side mutates). A snapshot capture or emulation fork therefore shares
/// the router's compiled tables instead of deep-copying thousands of map
/// nodes; whoever mutates first pays for the clone.
class Aft {
 public:
  Aft() = default;
  // Copying shares the tables and resets only the lazily built lookup
  // trie (it holds pointers scoped to this instance's view of the
  // storage). Moves keep it.
  Aft(const Aft& other) : tables_(other.tables_) {}
  Aft& operator=(const Aft& other) {
    if (this != &other) {
      tables_ = other.tables_;
      trie_.clear();
      trie_valid_ = false;
    }
    return *this;
  }
  Aft(Aft&&) = default;
  Aft& operator=(Aft&&) = default;

  /// Adds a next-hop, assigning the next free index. Returns the index.
  uint64_t add_next_hop(NextHop next_hop);
  /// Adds a group over existing next-hop indices. Returns the group id.
  uint64_t add_group(std::vector<std::pair<uint64_t, uint64_t>> weighted_next_hops);
  /// Convenience: one-next-hop group.
  uint64_t add_group(uint64_t next_hop_index) {
    return add_group({{next_hop_index, 1}});
  }

  void set_ipv4_entry(Ipv4Entry entry);
  void set_label_entry(LabelEntry entry);

  const std::map<uint64_t, NextHop>& next_hops() const { return tables_->next_hops; }
  const std::map<uint64_t, NextHopGroup>& groups() const { return tables_->groups; }
  const std::map<net::Ipv4Prefix, Ipv4Entry>& ipv4_entries() const {
    return tables_->ipv4_entries;
  }
  const std::map<uint32_t, LabelEntry>& label_entries() const {
    return tables_->label_entries;
  }

  const NextHop* next_hop(uint64_t index) const;
  const NextHopGroup* group(uint64_t id) const;
  const Ipv4Entry* ipv4_entry(const net::Ipv4Prefix& prefix) const;

  /// Longest-prefix match over the ipv4 entries. Builds the lookup trie
  /// lazily; mutation invalidates it.
  const Ipv4Entry* longest_match(net::Ipv4Address destination) const;

  /// Resolved forwarding action for a destination: the (possibly multiple,
  /// for ECMP) next hops of the LPM entry. Empty if no route.
  std::vector<NextHop> forward(net::Ipv4Address destination) const;

  size_t entry_count() const { return tables_->ipv4_entries.size(); }
  bool operator==(const Aft& other) const {
    if (&*tables_ == &*other.tables_) return true;  // shared storage
    return tables_->next_hops == other.tables_->next_hops &&
           tables_->groups == other.tables_->groups &&
           tables_->ipv4_entries == other.tables_->ipv4_entries &&
           tables_->label_entries == other.tables_->label_entries;
  }

  /// O(1) equality witness: true when both sides still share the same
  /// copy-on-write storage block. False only means "unknown" — a fork
  /// that rewrote identical contents no longer shares. diff_fibs uses
  /// this to skip whole devices a fork never recompiled.
  bool shares_tables(const Aft& other) const { return &*tables_ == &*other.tables_; }

  /// Structural equality of *forwarding behaviour*: same prefixes mapping
  /// to the same resolved next-hop sets (indices may differ). This is the
  /// predicate the convergence detector polls (§5: "we detect convergence
  /// once we observe the dataplane to stabilize at all routers").
  bool forwarding_equal(const Aft& other) const;

  util::Json to_json() const;
  static util::Result<Aft> from_json(const util::Json& json);

 private:
  /// The copy-on-write storage unit. Kept as one block so a mutation
  /// clones all tables together (their index spaces are interdependent).
  struct Tables {
    std::map<uint64_t, NextHop> next_hops;
    std::map<uint64_t, NextHopGroup> groups;
    std::map<net::Ipv4Prefix, Ipv4Entry> ipv4_entries;
    std::map<uint32_t, LabelEntry> label_entries;
    uint64_t next_hop_counter = 1;
    uint64_t group_counter = 1;
  };

  /// Mutable table access; clones shared storage and drops the trie (its
  /// entry pointers may target the storage being replaced).
  Tables& mutate() {
    trie_valid_ = false;
    return tables_.mutate();
  }

  void rebuild_trie() const;

  util::Cow<Tables> tables_;

  mutable net::PrefixTrie<const Ipv4Entry*> trie_;
  mutable bool trie_valid_ = false;
};

/// One resolved packet-filter rule (destination match only, like the
/// config-level ACLs this model supports).
struct AclRule {
  bool permit = true;
  net::Ipv4Prefix destination;  // 0.0.0.0/0 = any

  bool operator==(const AclRule&) const = default;
};

/// First match decides; no match = implicit deny. An empty rule list means
/// "no filter attached" (permit everything) — distinguished by the caller.
bool acl_permits(const std::vector<AclRule>& rules, net::Ipv4Address destination);

/// Interface operational state reported alongside the AFT (needed by the
/// verification engine to resolve egress edges and apply packet filters).
struct InterfaceState {
  net::InterfaceName name;
  std::optional<net::InterfaceAddress> address;
  bool oper_up = true;
  /// VRF binding; empty = default instance. The verification engine only
  /// treats default-instance interfaces as part of the default forwarding
  /// graph.
  std::string vrf;
  /// Resolved ingress/egress filters; nullopt = no filter attached.
  std::optional<std::vector<AclRule>> acl_in;
  std::optional<std::vector<AclRule>> acl_out;

  bool operator==(const InterfaceState&) const = default;
};

/// The full dataplane dump of one device.
struct DeviceAft {
  net::NodeName node;
  /// Default network instance.
  Aft aft;
  /// Non-default network instances (VRFs), keyed by name.
  std::map<std::string, Aft> instances;
  std::map<net::InterfaceName, InterfaceState> interfaces;

  util::Json to_json() const;
  static util::Result<DeviceAft> from_json(const util::Json& json);
};

std::string label_op_name(LabelOp op);
std::optional<LabelOp> parse_label_op(std::string_view name);

}  // namespace mfv::aft
