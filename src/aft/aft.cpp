#include "aft/aft.hpp"

#include <algorithm>
#include <set>

namespace mfv::aft {

uint64_t Aft::add_next_hop(NextHop next_hop) {
  Tables& tables = mutate();
  uint64_t index = tables.next_hop_counter++;
  next_hop.index = index;
  tables.next_hops[index] = std::move(next_hop);
  return index;
}

uint64_t Aft::add_group(std::vector<std::pair<uint64_t, uint64_t>> weighted_next_hops) {
  Tables& tables = mutate();
  uint64_t id = tables.group_counter++;
  NextHopGroup group;
  group.id = id;
  group.next_hops = std::move(weighted_next_hops);
  tables.groups[id] = std::move(group);
  return id;
}

void Aft::set_ipv4_entry(Ipv4Entry entry) {
  Tables& tables = mutate();
  tables.ipv4_entries[entry.prefix] = std::move(entry);
}

void Aft::set_label_entry(LabelEntry entry) { mutate().label_entries[entry.label] = entry; }

const NextHop* Aft::next_hop(uint64_t index) const {
  auto it = tables_->next_hops.find(index);
  return it == tables_->next_hops.end() ? nullptr : &it->second;
}

const NextHopGroup* Aft::group(uint64_t id) const {
  auto it = tables_->groups.find(id);
  return it == tables_->groups.end() ? nullptr : &it->second;
}

const Ipv4Entry* Aft::ipv4_entry(const net::Ipv4Prefix& prefix) const {
  auto it = tables_->ipv4_entries.find(prefix);
  return it == tables_->ipv4_entries.end() ? nullptr : &it->second;
}

void Aft::rebuild_trie() const {
  trie_.clear();
  for (const auto& [prefix, entry] : tables_->ipv4_entries) trie_.insert(prefix, &entry);
  trie_valid_ = true;
}

const Ipv4Entry* Aft::longest_match(net::Ipv4Address destination) const {
  if (!trie_valid_) rebuild_trie();
  auto match = trie_.longest_match(destination);
  return match ? *match->second : nullptr;
}

std::vector<NextHop> Aft::forward(net::Ipv4Address destination) const {
  const Ipv4Entry* entry = longest_match(destination);
  if (entry == nullptr) return {};
  const NextHopGroup* nhg = group(entry->next_hop_group);
  if (nhg == nullptr) return {};
  std::vector<NextHop> hops;
  for (const auto& [index, weight] : nhg->next_hops) {
    const NextHop* nh = next_hop(index);
    if (nh != nullptr) hops.push_back(*nh);
  }
  return hops;
}

bool Aft::forwarding_equal(const Aft& other) const {
  if (&*tables_ == &*other.tables_) return true;  // shared storage
  if (tables_->ipv4_entries.size() != other.tables_->ipv4_entries.size()) return false;
  if (tables_->label_entries.size() != other.tables_->label_entries.size()) return false;
  auto resolved = [](const Aft& aft, uint64_t group_id) {
    // Canonical, index-free view of one entry's action set.
    std::set<std::tuple<std::string, std::string, bool, int, uint32_t>> actions;
    const NextHopGroup* nhg = aft.group(group_id);
    if (nhg == nullptr) return actions;
    for (const auto& [index, weight] : nhg->next_hops) {
      const NextHop* nh = aft.next_hop(index);
      if (nh == nullptr) continue;
      actions.emplace(nh->ip_address ? nh->ip_address->to_string() : "",
                      nh->interface.value_or(""), nh->drop,
                      static_cast<int>(nh->label_op), nh->label);
    }
    return actions;
  };
  for (const auto& [prefix, entry] : tables_->ipv4_entries) {
    const Ipv4Entry* theirs = other.ipv4_entry(prefix);
    if (theirs == nullptr) return false;
    if (resolved(*this, entry.next_hop_group) != resolved(other, theirs->next_hop_group))
      return false;
  }
  for (const auto& [label, entry] : tables_->label_entries) {
    auto it = other.tables_->label_entries.find(label);
    if (it == other.tables_->label_entries.end()) return false;
    if (resolved(*this, entry.next_hop_group) !=
        resolved(other, it->second.next_hop_group))
      return false;
  }
  return true;
}

std::string label_op_name(LabelOp op) {
  switch (op) {
    case LabelOp::kNone: return "NONE";
    case LabelOp::kPush: return "PUSH";
    case LabelOp::kSwap: return "SWAP";
    case LabelOp::kPop: return "POP";
  }
  return "NONE";
}

std::optional<LabelOp> parse_label_op(std::string_view name) {
  if (name == "NONE") return LabelOp::kNone;
  if (name == "PUSH") return LabelOp::kPush;
  if (name == "SWAP") return LabelOp::kSwap;
  if (name == "POP") return LabelOp::kPop;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// JSON (OpenConfig-shaped)

util::Json Aft::to_json() const {
  using util::Json;
  Json afts = Json::object();

  Json next_hops = Json::array();
  for (const auto& [index, nh] : tables_->next_hops) {
    Json j = Json::object();
    j["index"] = nh.index;
    if (nh.ip_address) j["ip-address"] = nh.ip_address->to_string();
    if (nh.interface) j["interface-ref"] = *nh.interface;
    if (nh.drop) j["drop"] = true;
    if (nh.label_op != LabelOp::kNone) {
      j["label-op"] = label_op_name(nh.label_op);
      j["label"] = nh.label;
    }
    next_hops.push_back(std::move(j));
  }
  afts["next-hops"] = std::move(next_hops);

  Json groups = Json::array();
  for (const auto& [id, group] : tables_->groups) {
    Json j = Json::object();
    j["id"] = group.id;
    Json members = Json::array();
    for (const auto& [index, weight] : group.next_hops) {
      Json member = Json::object();
      member["index"] = index;
      member["weight"] = weight;
      members.push_back(std::move(member));
    }
    j["next-hops"] = std::move(members);
    groups.push_back(std::move(j));
  }
  afts["next-hop-groups"] = std::move(groups);

  Json entries = Json::array();
  for (const auto& [prefix, entry] : tables_->ipv4_entries) {
    Json j = Json::object();
    j["prefix"] = prefix.to_string();
    j["next-hop-group"] = entry.next_hop_group;
    j["origin-protocol"] = entry.origin_protocol;
    j["metric"] = entry.metric;
    entries.push_back(std::move(j));
  }
  afts["ipv4-unicast"] = std::move(entries);

  Json labels = Json::array();
  for (const auto& [label, entry] : tables_->label_entries) {
    Json j = Json::object();
    j["label"] = entry.label;
    j["next-hop-group"] = entry.next_hop_group;
    labels.push_back(std::move(j));
  }
  afts["mpls"] = std::move(labels);

  return afts;
}

util::Result<Aft> Aft::from_json(const util::Json& json) {
  if (!json.is_object()) return util::invalid_argument("AFT document must be an object");
  Aft aft;
  Tables& tables = aft.mutate();

  if (const util::Json* next_hops = json.find("next-hops"); next_hops && next_hops->is_array()) {
    for (const util::Json& j : next_hops->as_array()) {
      NextHop nh;
      const util::Json* index = j.find("index");
      if (index == nullptr) return util::invalid_argument("next-hop missing index");
      nh.index = static_cast<uint64_t>(index->as_int());
      if (const util::Json* ip = j.find("ip-address")) {
        auto address = net::Ipv4Address::parse(ip->as_string());
        if (!address) return util::invalid_argument("bad next-hop ip-address");
        nh.ip_address = *address;
      }
      if (const util::Json* iface = j.find("interface-ref")) nh.interface = iface->as_string();
      if (const util::Json* drop = j.find("drop")) nh.drop = drop->as_bool();
      if (const util::Json* op = j.find("label-op")) {
        auto parsed = parse_label_op(op->as_string());
        if (!parsed) return util::invalid_argument("bad label-op");
        nh.label_op = *parsed;
        if (const util::Json* label = j.find("label"))
          nh.label = static_cast<uint32_t>(label->as_int());
      }
      tables.next_hops[nh.index] = nh;
      tables.next_hop_counter = std::max(tables.next_hop_counter, nh.index + 1);
    }
  }

  if (const util::Json* groups = json.find("next-hop-groups"); groups && groups->is_array()) {
    for (const util::Json& j : groups->as_array()) {
      NextHopGroup group;
      const util::Json* id = j.find("id");
      if (id == nullptr) return util::invalid_argument("next-hop-group missing id");
      group.id = static_cast<uint64_t>(id->as_int());
      if (const util::Json* members = j.find("next-hops"); members && members->is_array()) {
        for (const util::Json& member : members->as_array()) {
          const util::Json* index = member.find("index");
          const util::Json* weight = member.find("weight");
          if (index == nullptr) return util::invalid_argument("group member missing index");
          group.next_hops.emplace_back(
              static_cast<uint64_t>(index->as_int()),
              weight ? static_cast<uint64_t>(weight->as_int()) : 1);
        }
      }
      tables.groups[group.id] = std::move(group);
      tables.group_counter = std::max(tables.group_counter, tables.groups.rbegin()->first + 1);
    }
  }

  if (const util::Json* entries = json.find("ipv4-unicast"); entries && entries->is_array()) {
    for (const util::Json& j : entries->as_array()) {
      Ipv4Entry entry;
      const util::Json* prefix = j.find("prefix");
      const util::Json* nhg = j.find("next-hop-group");
      if (prefix == nullptr || nhg == nullptr)
        return util::invalid_argument("ipv4 entry missing prefix or next-hop-group");
      auto parsed = net::Ipv4Prefix::parse(prefix->as_string());
      if (!parsed) return util::invalid_argument("bad ipv4 entry prefix");
      entry.prefix = *parsed;
      entry.next_hop_group = static_cast<uint64_t>(nhg->as_int());
      if (const util::Json* origin = j.find("origin-protocol"))
        entry.origin_protocol = origin->as_string();
      if (const util::Json* metric = j.find("metric"))
        entry.metric = static_cast<uint32_t>(metric->as_int());
      tables.ipv4_entries[entry.prefix] = std::move(entry);
    }
  }

  if (const util::Json* labels = json.find("mpls"); labels && labels->is_array()) {
    for (const util::Json& j : labels->as_array()) {
      LabelEntry entry;
      const util::Json* label = j.find("label");
      const util::Json* nhg = j.find("next-hop-group");
      if (label == nullptr || nhg == nullptr)
        return util::invalid_argument("label entry missing label or next-hop-group");
      entry.label = static_cast<uint32_t>(label->as_int());
      entry.next_hop_group = static_cast<uint64_t>(nhg->as_int());
      tables.label_entries[entry.label] = entry;
    }
  }

  return aft;
}

bool acl_permits(const std::vector<AclRule>& rules, net::Ipv4Address destination) {
  for (const AclRule& rule : rules)
    if (rule.destination.contains(destination)) return rule.permit;
  return false;
}

namespace {
util::Json acl_to_json(const std::vector<AclRule>& rules) {
  util::Json array = util::Json::array();
  for (const AclRule& rule : rules) {
    util::Json j = util::Json::object();
    j["permit"] = rule.permit;
    j["destination"] = rule.destination.to_string();
    array.push_back(std::move(j));
  }
  return array;
}

util::Result<std::vector<AclRule>> acl_from_json(const util::Json& json) {
  std::vector<AclRule> rules;
  if (!json.is_array()) return util::invalid_argument("acl must be an array");
  for (const util::Json& j : json.as_array()) {
    AclRule rule;
    const util::Json* permit = j.find("permit");
    const util::Json* destination = j.find("destination");
    if (permit == nullptr || destination == nullptr)
      return util::invalid_argument("acl rule missing permit/destination");
    rule.permit = permit->as_bool();
    auto prefix = net::Ipv4Prefix::parse(destination->as_string());
    if (!prefix) return util::invalid_argument("bad acl destination");
    rule.destination = *prefix;
    rules.push_back(rule);
  }
  return rules;
}
}  // namespace

util::Json DeviceAft::to_json() const {
  using util::Json;
  Json j = Json::object();
  j["node"] = node;
  Json interfaces_json = Json::array();
  for (const auto& [name, state] : interfaces) {
    Json iface = Json::object();
    iface["name"] = state.name;
    if (state.address) iface["address"] = state.address->to_string();
    iface["oper-status"] = state.oper_up ? "UP" : "DOWN";
    if (!state.vrf.empty()) iface["vrf"] = state.vrf;
    if (state.acl_in) iface["acl-in"] = acl_to_json(*state.acl_in);
    if (state.acl_out) iface["acl-out"] = acl_to_json(*state.acl_out);
    interfaces_json.push_back(std::move(iface));
  }
  j["interfaces"] = std::move(interfaces_json);
  j["afts"] = aft.to_json();
  if (!instances.empty()) {
    Json instances_json = Json::object();
    for (const auto& [name, instance_aft] : instances)
      instances_json[name] = instance_aft.to_json();
    j["instances"] = std::move(instances_json);
  }
  return j;
}

util::Result<DeviceAft> DeviceAft::from_json(const util::Json& json) {
  if (!json.is_object()) return util::invalid_argument("device AFT must be an object");
  DeviceAft device;
  const util::Json* node = json.find("node");
  if (node == nullptr) return util::invalid_argument("device AFT missing node");
  device.node = node->as_string();
  if (const util::Json* interfaces = json.find("interfaces"); interfaces && interfaces->is_array()) {
    for (const util::Json& j : interfaces->as_array()) {
      InterfaceState state;
      const util::Json* name = j.find("name");
      if (name == nullptr) return util::invalid_argument("interface missing name");
      state.name = name->as_string();
      if (const util::Json* address = j.find("address")) {
        auto parsed = net::InterfaceAddress::parse(address->as_string());
        if (!parsed) return util::invalid_argument("bad interface address");
        state.address = *parsed;
      }
      if (const util::Json* status = j.find("oper-status"))
        state.oper_up = status->as_string() == "UP";
      if (const util::Json* vrf = j.find("vrf")) state.vrf = vrf->as_string();
      if (const util::Json* acl = j.find("acl-in")) {
        auto rules = acl_from_json(*acl);
        if (!rules.ok()) return rules.status();
        state.acl_in = std::move(rules).value();
      }
      if (const util::Json* acl = j.find("acl-out")) {
        auto rules = acl_from_json(*acl);
        if (!rules.ok()) return rules.status();
        state.acl_out = std::move(rules).value();
      }
      device.interfaces[state.name] = std::move(state);
    }
  }
  const util::Json* afts = json.find("afts");
  if (afts == nullptr) return util::invalid_argument("device AFT missing afts");
  auto aft = Aft::from_json(*afts);
  if (!aft.ok()) return aft.status();
  device.aft = std::move(aft).value();
  if (const util::Json* instances = json.find("instances"); instances && instances->is_object()) {
    for (const auto& [name, value] : instances->members()) {
      auto instance_aft = Aft::from_json(value);
      if (!instance_aft.ok()) return instance_aft.status();
      device.instances[name] = std::move(instance_aft).value();
    }
  }
  return device;
}

}  // namespace mfv::aft
