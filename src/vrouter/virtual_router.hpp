// VirtualRouter: the emulated device.
//
// Plays the role of a vendor router container in the paper's KNE cluster:
// it takes a parsed vendor configuration, runs the real protocol engines
// (IS-IS, OSPF, BGP, RSVP-TE) against the shared RIB (plus per-VRF RIBs
// for non-default network instances), and continuously compiles the
// converged state into OpenConfig-shaped AFTs that the gNMI layer
// exports. The control-plane code path is identical regardless of which
// vendor dialect produced the DeviceConfig — differences live in parsing
// and in per-vendor behaviour knobs (boot time, TE signaling timers).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aft/aft.hpp"
#include "config/device_config.hpp"
#include "proto/bgp.hpp"
#include "proto/env.hpp"
#include "proto/isis.hpp"
#include "proto/mpls.hpp"
#include "proto/ospf.hpp"
#include "rib/rib.hpp"
#include "util/time.hpp"

namespace mfv::vrouter {

/// Resolves a named config ACL into the flat rule list carried in AFT
/// interface state (entries in sequence order). Shared by the emulated
/// router and the model baseline so both backends export filters the same
/// way.
std::vector<aft::AclRule> resolve_acl(const config::Acl& acl);

/// Transport + timer services the emulation layer provides to routers.
class Fabric {
 public:
  virtual ~Fabric() = default;
  /// Delivers a link-scoped message out of (node, interface) to whatever is
  /// connected at the far end.
  virtual void send_on_interface(const net::NodeName& node,
                                 const net::InterfaceName& interface,
                                 const proto::Message& message) = 0;
  /// Delivers an addressed message from `node` toward `destination`.
  virtual void send_addressed(const net::NodeName& node, net::Ipv4Address destination,
                              const proto::Message& message) = 0;
  /// Schedules a timer on behalf of `node`. The node attribution is what
  /// lets the sharded kernel place the callback on the node's own shard
  /// (and order it deterministically); every router timer self-attributes.
  virtual void schedule(const net::NodeName& node, util::Duration delay,
                        std::function<void()> fn) = 0;
  virtual util::TimePoint now() const = 0;
};

struct VirtualRouterOptions {
  proto::BgpEngineOptions bgp;
  proto::TeOptions te;
};

class VirtualRouter final : public proto::RouterEnv {
 public:
  VirtualRouter(config::DeviceConfig config, Fabric& fabric,
                VirtualRouterOptions options = {});
  ~VirtualRouter() override;

  VirtualRouter(const VirtualRouter&) = delete;
  VirtualRouter& operator=(const VirtualRouter&) = delete;

  /// Deep copy of the entire device onto a new fabric: configuration, all
  /// RIBs/FIBs, and every protocol engine's session/adjacency/LSDB state.
  /// Only valid while no callbacks are pending on the owning fabric (the
  /// emulation kernel is idle), because scheduled callbacks are not — and
  /// cannot be — cloned. The copy continues exactly where the original
  /// would: this is the per-router half of Emulation::fork().
  std::unique_ptr<VirtualRouter> fork(Fabric& fabric) const;

  /// Boots the control plane: installs connected/local/static routes and
  /// starts the protocol engines.
  void start();

  /// Replaces the running configuration (control plane restarts with the
  /// new config; the paper notes re-configuration converges much faster
  /// than initial bring-up because containers stay up).
  void apply_config(config::DeviceConfig config);

  /// Link state changes driven by the emulation (topology wiring, link
  /// cuts). `connected` means the far end exists and the link is up.
  void set_link_state(const net::InterfaceName& interface, bool connected);

  /// Programmatic (gRIBI-style) route injection: installs `prefix` with
  /// the given next hops at admin distance 5, replacing any previously
  /// programmed entry for the prefix. Used by SDN controllers.
  void program_route(const net::Ipv4Prefix& prefix,
                     const std::vector<net::Ipv4Address>& next_hops);
  /// Removes a programmed entry; returns false if none existed.
  bool unprogram_route(const net::Ipv4Prefix& prefix);
  /// Removes every programmed entry; returns how many routes were dropped.
  size_t unprogram_all();
  /// Currently programmed entries (prefix -> next hops).
  std::map<net::Ipv4Prefix, std::vector<net::Ipv4Address>> programmed_routes() const;

  /// Message ingress from the fabric.
  void deliver_on_interface(const net::InterfaceName& interface,
                            const proto::Message& message);
  void deliver_addressed(const proto::Message& message);

  /// True if `address` is one of this router's own interface addresses.
  bool owns_address(net::Ipv4Address address) const;

  // -- dataplane export (gNMI-facing) --
  const aft::Aft& fib() const { return *fib_; }
  aft::DeviceAft device_aft() const;
  /// Monotonic counter bumped whenever forwarding behaviour changes.
  uint64_t fib_version() const { return fib_version_; }
  util::TimePoint last_fib_change() const { return last_fib_change_; }

  // -- observability / CLI --
  const config::DeviceConfig& configuration() const { return config_; }
  const rib::Rib& routing_table() const { return rib_; }
  /// Non-default VRF routing table; nullptr when the VRF has no routes.
  const rib::Rib* vrf_routing_table(const std::string& vrf) const {
    auto it = vrf_ribs_.find(vrf);
    return it == vrf_ribs_.end() ? nullptr : &it->second;
  }
  const proto::IsisEngine* isis() const { return isis_.get(); }
  const proto::OspfEngine* ospf() const { return ospf_.get(); }
  const proto::BgpEngine* bgp() const { return bgp_.get(); }
  const proto::TeEngine* te() const { return te_.get(); }

  // -- proto::RouterEnv --
  const net::NodeName& node_name() const override { return config_.hostname; }
  std::vector<proto::InterfaceView> interfaces() const override;
  void send_on_interface(const net::InterfaceName& interface,
                         const proto::Message& message) override;
  void send_addressed(net::Ipv4Address destination, const proto::Message& message) override;
  void schedule(util::Duration delay, std::function<void()> fn) override;
  util::TimePoint now() const override { return fabric_.now(); }
  rib::Rib& rib() override { return rib_; }
  void notify_rib_changed() override;
  bool reachable(net::Ipv4Address address) const override;

 private:
  VirtualRouter(const VirtualRouter& other, Fabric& fabric);

  bool interface_up(const config::InterfaceConfig& interface) const;
  void install_connected_routes();
  void install_static_routes();
  void schedule_fib_compile();
  void compile_fib_now();
  /// Fans the current RIB state out to engines that react to RIB changes.
  void propagate_rib_change();

  config::DeviceConfig config_;
  Fabric& fabric_;
  VirtualRouterOptions options_;
  bool started_ = false;
  /// Guards against being destroyed while callbacks are pending.
  std::shared_ptr<bool> alive_;
  /// Bumped by apply_config: callbacks scheduled by the previous control
  /// plane (whose engines are destroyed) must not fire.
  std::shared_ptr<uint64_t> generation_;

  rib::Rib rib_;
  /// Per-VRF routing tables (non-default instances).
  std::map<std::string, rib::Rib> vrf_ribs_;
  std::unique_ptr<proto::IsisEngine> isis_;
  std::unique_ptr<proto::OspfEngine> ospf_;
  std::unique_ptr<proto::BgpEngine> bgp_;
  std::unique_ptr<proto::TeEngine> te_;

  std::map<net::InterfaceName, bool> link_connected_;

  // Shared, immutable once compiled: compile_fib_now() swaps in a fresh
  // Aft instead of mutating, so forks share the base's compiled FIB until
  // their first recompile (and forever if the scenario never touches this
  // router's RIB).
  std::shared_ptr<const aft::Aft> fib_ = std::make_shared<aft::Aft>();
  std::map<std::string, aft::Aft> vrf_fibs_;
  uint64_t fib_version_ = 0;
  util::TimePoint last_fib_change_;
  bool fib_compile_pending_ = false;
  bool propagating_ = false;
};

}  // namespace mfv::vrouter
