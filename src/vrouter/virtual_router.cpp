#include "vrouter/virtual_router.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace mfv::vrouter {

namespace {
constexpr util::Duration kFibCompileDelay = util::Duration::millis(20);
}

std::vector<aft::AclRule> resolve_acl(const config::Acl& acl) {
  std::vector<const config::AclEntry*> ordered;
  ordered.reserve(acl.entries.size());
  for (const config::AclEntry& entry : acl.entries) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const config::AclEntry* a, const config::AclEntry* b) {
              return a->seq < b->seq;
            });
  std::vector<aft::AclRule> rules;
  rules.reserve(ordered.size());
  for (const config::AclEntry* entry : ordered)
    rules.push_back({entry->permit, entry->destination});
  return rules;
}

VirtualRouter::VirtualRouter(config::DeviceConfig config, Fabric& fabric,
                             VirtualRouterOptions options)
    : config_(std::move(config)),
      fabric_(fabric),
      options_(options),
      alive_(std::make_shared<bool>(true)),
      generation_(std::make_shared<uint64_t>(0)) {}

VirtualRouter::~VirtualRouter() { *alive_ = false; }

VirtualRouter::VirtualRouter(const VirtualRouter& other, Fabric& fabric)
    : config_(other.config_),
      fabric_(fabric),
      options_(other.options_),
      started_(other.started_),
      alive_(std::make_shared<bool>(true)),
      generation_(std::make_shared<uint64_t>(*other.generation_)),
      rib_(other.rib_),
      vrf_ribs_(other.vrf_ribs_),
      link_connected_(other.link_connected_),
      fib_(other.fib_),
      vrf_fibs_(other.vrf_fibs_),
      fib_version_(other.fib_version_),
      last_fib_change_(other.last_fib_change_),
      fib_compile_pending_(other.fib_compile_pending_) {
  // Engines are forked against *this* router's env so their callbacks and
  // RIB writes land in the clone. BGP rebinds its policy pointers to our
  // config copy.
  if (other.isis_) isis_ = other.isis_->fork(*this);
  if (other.ospf_) ospf_ = other.ospf_->fork(*this);
  if (other.bgp_) bgp_ = other.bgp_->fork(*this, config_);
  if (other.te_) te_ = other.te_->fork(*this);
}

std::unique_ptr<VirtualRouter> VirtualRouter::fork(Fabric& fabric) const {
  return std::unique_ptr<VirtualRouter>(new VirtualRouter(*this, fabric));
}

bool VirtualRouter::interface_up(const config::InterfaceConfig& interface) const {
  if (interface.shutdown) return false;
  if (interface.is_loopback()) return true;
  if (!interface.routed()) return false;  // L2 switchport: no L3 presence
  auto it = link_connected_.find(interface.name);
  return it != link_connected_.end() && it->second;
}

std::vector<proto::InterfaceView> VirtualRouter::interfaces() const {
  std::vector<proto::InterfaceView> views;
  views.reserve(config_.interfaces.size());
  for (const auto& [name, interface] : config_.interfaces) {
    proto::InterfaceView view;
    view.name = name;
    view.address = interface.address;
    view.up = interface_up(interface);
    view.isis_enabled = interface.isis_enabled;
    view.isis_passive = interface.isis_passive;
    view.isis_metric = interface.isis_metric;
    view.mpls_enabled = interface.mpls_enabled;
    view.vrf = interface.vrf;
    views.push_back(std::move(view));
  }
  return views;
}

void VirtualRouter::install_connected_routes() {
  rib_.clear_protocol(rib::Protocol::kConnected);
  rib_.clear_protocol(rib::Protocol::kLocal);
  for (auto& [vrf, vrf_rib] : vrf_ribs_) {
    vrf_rib.clear_protocol(rib::Protocol::kConnected);
    vrf_rib.clear_protocol(rib::Protocol::kLocal);
  }
  for (const auto& [name, interface] : config_.interfaces) {
    if (!interface.address || !interface_up(interface)) continue;
    rib::Rib& rib = interface.vrf.empty() ? rib_ : vrf_ribs_[interface.vrf];
    rib::RibRoute connected;
    connected.prefix = interface.address->subnet;
    connected.protocol = rib::Protocol::kConnected;
    connected.admin_distance = 0;
    connected.interface = name;
    connected.source = name;
    rib.add(connected);

    if (interface.address->subnet.length() < 32) {
      rib::RibRoute local;
      local.prefix = net::Ipv4Prefix::host(interface.address->address);
      local.protocol = rib::Protocol::kLocal;
      local.admin_distance = 0;
      local.interface = name;
      local.source = name;
      rib.add(local);
    }
  }
}

void VirtualRouter::install_static_routes() {
  rib_.clear_protocol(rib::Protocol::kStatic);
  for (auto& [vrf, vrf_rib] : vrf_ribs_) vrf_rib.clear_protocol(rib::Protocol::kStatic);
  for (const config::StaticRoute& route : config_.static_routes) {
    if (!route.vrf.empty() && !config_.has_vrf(route.vrf)) {
      MFV_LOG(kWarn, "vrouter") << config_.hostname << ": static route references "
                                << "undeclared vrf '" << route.vrf << "', skipped";
      continue;
    }
    rib::RibRoute entry;
    entry.prefix = route.prefix;
    entry.protocol = rib::Protocol::kStatic;
    entry.admin_distance = route.distance;
    entry.next_hop = route.next_hop;
    entry.interface = route.exit_interface;
    entry.drop = route.null_route;
    entry.source = "static";
    (route.vrf.empty() ? rib_ : vrf_ribs_[route.vrf]).add(entry);
  }
}

void VirtualRouter::start() {
  started_ = true;
  install_connected_routes();
  install_static_routes();

  isis_ = std::make_unique<proto::IsisEngine>(*this, config_.isis);
  ospf_ = std::make_unique<proto::OspfEngine>(*this, config_);
  bgp_ = std::make_unique<proto::BgpEngine>(*this, config_, options_.bgp);
  te_ = std::make_unique<proto::TeEngine>(*this, config_, options_.te);

  isis_->start();
  ospf_->start();
  bgp_->start();
  te_->start();
  notify_rib_changed();
}

void VirtualRouter::apply_config(config::DeviceConfig config) {
  // Graceful control-plane teardown: purge our IS-IS LSP so neighbors
  // withdraw routes through us (the event-driven model has no LSP aging;
  // the restart will re-originate immediately anyway).
  if (isis_ != nullptr && isis_->active()) isis_->shutdown();
  if (ospf_ != nullptr && ospf_->active()) ospf_->shutdown();
  config_ = std::move(config);
  rib_ = rib::Rib();
  vrf_ribs_.clear();
  ++*generation_;  // orphan callbacks scheduled by the outgoing engines
  fib_compile_pending_ = false;
  if (started_) start();
}

void VirtualRouter::program_route(const net::Ipv4Prefix& prefix,
                                  const std::vector<net::Ipv4Address>& next_hops) {
  unprogram_route(prefix);  // gRIBI replace semantics
  for (net::Ipv4Address next_hop : next_hops) {
    rib::RibRoute route;
    route.prefix = prefix;
    route.protocol = rib::Protocol::kGribi;
    route.admin_distance = rib::default_admin_distance(rib::Protocol::kGribi);
    route.next_hop = next_hop;
    route.source = "gribi";
    rib_.add(route);
  }
  if (started_) notify_rib_changed();
}

bool VirtualRouter::unprogram_route(const net::Ipv4Prefix& prefix) {
  bool removed = false;
  for (const rib::RibRoute& route : rib_.candidates(prefix)) {
    if (route.protocol != rib::Protocol::kGribi) continue;
    rib_.remove(route);
    removed = true;
  }
  if (removed && started_) notify_rib_changed();
  return removed;
}

size_t VirtualRouter::unprogram_all() {
  size_t removed = rib_.clear_protocol(rib::Protocol::kGribi);
  if (removed > 0 && started_) notify_rib_changed();
  return removed;
}

std::map<net::Ipv4Prefix, std::vector<net::Ipv4Address>>
VirtualRouter::programmed_routes() const {
  std::map<net::Ipv4Prefix, std::vector<net::Ipv4Address>> programmed;
  rib_.for_each_best([&](const net::Ipv4Prefix& prefix,
                         const std::vector<rib::RibRoute>& best) {
    for (const rib::RibRoute& route : rib_.candidates(prefix))
      if (route.protocol == rib::Protocol::kGribi && route.next_hop)
        programmed[prefix].push_back(*route.next_hop);
  });
  return programmed;
}

void VirtualRouter::set_link_state(const net::InterfaceName& interface, bool connected) {
  bool& state = link_connected_[interface];
  if (state == connected) return;
  state = connected;
  if (!started_) return;
  install_connected_routes();
  if (isis_) isis_->interfaces_changed();
  if (ospf_) ospf_->interfaces_changed();
  notify_rib_changed();
}

void VirtualRouter::deliver_on_interface(const net::InterfaceName& interface,
                                         const proto::Message& message) {
  if (!started_) return;
  // Link-scoped messages: IGP traffic. Each engine ignores the other's
  // message types.
  if (isis_) isis_->handle(interface, message);
  if (ospf_) ospf_->handle(interface, message);
}

void VirtualRouter::deliver_addressed(const proto::Message& message) {
  if (!started_) return;
  if (std::holds_alternative<proto::BgpOpen>(message) ||
      std::holds_alternative<proto::BgpUpdate>(message) ||
      std::holds_alternative<proto::BgpKeepalive>(message) ||
      std::holds_alternative<proto::BgpNotification>(message)) {
    if (bgp_) bgp_->handle(message);
  } else if (te_) {
    te_->handle(message);
  }
}

bool VirtualRouter::owns_address(net::Ipv4Address address) const {
  for (const auto& [name, interface] : config_.interfaces)
    if (interface.address && interface.address->address == address &&
        interface_up(interface))
      return true;
  return false;
}

void VirtualRouter::send_on_interface(const net::InterfaceName& interface,
                                      const proto::Message& message) {
  fabric_.send_on_interface(config_.hostname, interface, message);
}

void VirtualRouter::send_addressed(net::Ipv4Address destination,
                                   const proto::Message& message) {
  fabric_.send_addressed(config_.hostname, destination, message);
}

void VirtualRouter::schedule(util::Duration delay, std::function<void()> fn) {
  fabric_.schedule(config_.hostname, delay,
                   [alive = alive_, generation = generation_,
                    expected = *generation_, fn = std::move(fn)] {
                     if (*alive && *generation == expected) fn();
                   });
}

bool VirtualRouter::reachable(net::Ipv4Address address) const {
  if (owns_address(address)) return true;
  for (const rib::RibRoute& route : rib_.longest_match(address))
    if (!route.drop) return true;
  return false;
}

void VirtualRouter::notify_rib_changed() {
  schedule_fib_compile();
  propagate_rib_change();
}

void VirtualRouter::propagate_rib_change() {
  if (propagating_) return;  // engines notifying during propagation: coalesce
  propagating_ = true;
  if (bgp_) bgp_->rib_changed();
  if (te_) te_->rib_changed();
  propagating_ = false;
}

void VirtualRouter::schedule_fib_compile() {
  if (fib_compile_pending_) return;
  fib_compile_pending_ = true;
  schedule(kFibCompileDelay, [this] {
    fib_compile_pending_ = false;
    compile_fib_now();
  });
}

void VirtualRouter::compile_fib_now() {
  aft::Aft fresh = rib::compile_fib(rib_);
  std::map<std::string, aft::Aft> fresh_vrf;
  for (const auto& [vrf, vrf_rib] : vrf_ribs_) fresh_vrf[vrf] = rib::compile_fib(vrf_rib);
  // MPLS forwarding state: RSVP-TE transit/tail bindings become label
  // entries (swap toward the recorded downstream, or pop at the tail).
  if (te_ != nullptr) {
    for (const auto& [label, binding] : te_->label_bindings()) {
      aft::NextHop hop;
      if (binding.out_label) {
        hop.label_op = aft::LabelOp::kSwap;
        hop.label = *binding.out_label;
        hop.ip_address = binding.downstream;
        if (binding.downstream)
          for (const rib::RibRoute& route : rib_.longest_match(*binding.downstream))
            if (route.interface) {
              hop.interface = route.interface;
              break;
            }
      } else {
        hop.label_op = aft::LabelOp::kPop;
      }
      uint64_t group = fresh.add_group(fresh.add_next_hop(hop));
      fresh.set_label_entry({binding.in_label, group});
    }
  }
  bool vrf_equal = fresh_vrf.size() == vrf_fibs_.size();
  if (vrf_equal)
    for (const auto& [vrf, aft] : fresh_vrf) {
      auto it = vrf_fibs_.find(vrf);
      if (it == vrf_fibs_.end() || !aft.forwarding_equal(it->second)) {
        vrf_equal = false;
        break;
      }
    }
  if (fresh.forwarding_equal(*fib_) && vrf_equal) return;
  fib_ = std::make_shared<const aft::Aft>(std::move(fresh));
  vrf_fibs_ = std::move(fresh_vrf);
  ++fib_version_;
  last_fib_change_ = fabric_.now();
}

aft::DeviceAft VirtualRouter::device_aft() const {
  aft::DeviceAft device;
  device.node = config_.hostname;
  device.aft = *fib_;
  device.instances = vrf_fibs_;
  for (const auto& [name, interface] : config_.interfaces) {
    aft::InterfaceState state;
    state.name = name;
    state.address = interface.address;
    state.oper_up = interface_up(interface);
    state.vrf = interface.vrf;
    // Attach resolved packet filters. A dangling access-group reference
    // behaves like no filter on the real device, so it is left off.
    if (interface.acl_in) {
      auto it = config_.acls.find(*interface.acl_in);
      if (it != config_.acls.end()) state.acl_in = resolve_acl(it->second);
    }
    if (interface.acl_out) {
      auto it = config_.acls.find(*interface.acl_out);
      if (it != config_.acls.end()) state.acl_out = resolve_acl(it->second);
    }
    device.interfaces[name] = std::move(state);
  }
  return device;
}

}  // namespace mfv::vrouter
