#include "net/ipv4.hpp"

namespace mfv::net {

namespace {

/// Canonical prefix-length text: 1-2 digits, no leading zero ("0" is fine,
/// "00"/"032" are not), value <= 32. Stricter than util::parse_uint32 on
/// purpose — a mask that does not round-trip byte-identically is a silent
/// divergence between what an operator wrote and what we verify (and "08"
/// is octal to some real-device parsers).
bool parse_mask(std::string_view text, uint32_t& out) {
  if (text.empty() || text.size() > 2) return false;
  if (text.size() > 1 && text[0] == '0') return false;
  uint32_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  if (value > 32) return false;
  out = value;
  return true;
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  uint32_t bits = 0;
  int octets = 0;
  size_t i = 0;
  while (octets < 4) {
    if (i >= text.size()) return std::nullopt;
    uint32_t value = 0;
    size_t digits = 0;
    size_t start = i;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      value = value * 10 + static_cast<uint32_t>(text[i] - '0');
      if (value > 255) return std::nullopt;
      ++i;
      ++digits;
    }
    if (digits == 0 || digits > 3) return std::nullopt;
    // Leading zeros ("01", "007") are rejected: inet_aton-style parsers
    // treat them as octal, so accepting them silently re-interprets what a
    // real device would load — and the text no longer round-trips.
    if (digits > 1 && text[start] == '0') return std::nullopt;
    bits = (bits << 8) | value;
    ++octets;
    if (octets < 4) {
      if (i >= text.size() || text[i] != '.') return std::nullopt;
      ++i;
    }
  }
  if (i != text.size()) return std::nullopt;
  return Ipv4Address(bits);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((bits_ >> shift) & 0xFF);
    if (shift != 0) out += '.';
  }
  return out;
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto address = Ipv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  uint32_t length = 0;
  if (!parse_mask(text.substr(slash + 1), length)) return std::nullopt;
  return Ipv4Prefix(*address, static_cast<uint8_t>(length));
}

std::string Ipv4Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

std::optional<InterfaceAddress> InterfaceAddress::parse(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto address = Ipv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  uint32_t length = 0;
  if (!parse_mask(text.substr(slash + 1), length)) return std::nullopt;
  return InterfaceAddress{*address, Ipv4Prefix(*address, static_cast<uint8_t>(length))};
}

std::string InterfaceAddress::to_string() const {
  return address.to_string() + "/" + std::to_string(subnet.length());
}

}  // namespace mfv::net
