#include "net/ipv4.hpp"

#include "util/strings.hpp"

namespace mfv::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  uint32_t bits = 0;
  int octets = 0;
  size_t i = 0;
  while (octets < 4) {
    if (i >= text.size()) return std::nullopt;
    uint32_t value = 0;
    size_t digits = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      value = value * 10 + static_cast<uint32_t>(text[i] - '0');
      if (value > 255) return std::nullopt;
      ++i;
      ++digits;
    }
    if (digits == 0 || digits > 3) return std::nullopt;
    bits = (bits << 8) | value;
    ++octets;
    if (octets < 4) {
      if (i >= text.size() || text[i] != '.') return std::nullopt;
      ++i;
    }
  }
  if (i != text.size()) return std::nullopt;
  return Ipv4Address(bits);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((bits_ >> shift) & 0xFF);
    if (shift != 0) out += '.';
  }
  return out;
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto address = Ipv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  uint32_t length = 0;
  if (!util::parse_uint32(text.substr(slash + 1), length) || length > 32) return std::nullopt;
  return Ipv4Prefix(*address, static_cast<uint8_t>(length));
}

std::string Ipv4Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

std::optional<InterfaceAddress> InterfaceAddress::parse(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto address = Ipv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  uint32_t length = 0;
  if (!util::parse_uint32(text.substr(slash + 1), length) || length > 32) return std::nullopt;
  return InterfaceAddress{*address, Ipv4Prefix(*address, static_cast<uint8_t>(length))};
}

std::string InterfaceAddress::to_string() const {
  return address.to_string() + "/" + std::to_string(subnet.length());
}

}  // namespace mfv::net
