// Binary prefix trie keyed on Ipv4Prefix with longest-prefix-match lookup.
//
// This one structure backs three different users:
//   * per-router FIBs (LPM for forwarding),
//   * the RIB (exact-prefix route tables with covering-route queries),
//   * the verification engine's packet-class partitioning (walk of all
//     match boundaries across every FIB in a snapshot).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"

namespace mfv::net {

template <typename V>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or replaces the value at `prefix`. Returns true if the prefix
  /// was newly inserted (false if replaced).
  bool insert(const Ipv4Prefix& prefix, V value) {
    Node* node = descend_or_create(prefix);
    bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Removes the value at exactly `prefix`. Returns true if it existed.
  bool erase(const Ipv4Prefix& prefix) {
    Node* node = descend(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-prefix lookup.
  const V* find(const Ipv4Prefix& prefix) const {
    const Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }
  V* find(const Ipv4Prefix& prefix) {
    Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }

  /// Longest-prefix match for a destination address. Returns the matched
  /// prefix and value, or nullopt if nothing covers the address.
  std::optional<std::pair<Ipv4Prefix, const V*>> longest_match(Ipv4Address address) const {
    const Node* node = root_.get();
    const Node* best = node->value.has_value() ? node : nullptr;
    uint8_t best_len = 0;
    uint8_t depth = 0;
    uint32_t bits = address.bits();
    while (depth < 32) {
      int bit = (bits >> (31 - depth)) & 1;
      const Node* child = node->children[bit].get();
      if (child == nullptr) break;
      node = child;
      ++depth;
      if (node->value.has_value()) {
        best = node;
        best_len = depth;
      }
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(Ipv4Prefix(address, best_len), &*best->value);
  }

  /// All values whose prefix covers `address`, shortest first.
  std::vector<std::pair<Ipv4Prefix, const V*>> all_matches(Ipv4Address address) const {
    std::vector<std::pair<Ipv4Prefix, const V*>> matches;
    const Node* node = root_.get();
    if (node->value.has_value()) matches.emplace_back(Ipv4Prefix(address, 0), &*node->value);
    uint8_t depth = 0;
    uint32_t bits = address.bits();
    while (depth < 32) {
      int bit = (bits >> (31 - depth)) & 1;
      const Node* child = node->children[bit].get();
      if (child == nullptr) break;
      node = child;
      ++depth;
      if (node->value.has_value())
        matches.emplace_back(Ipv4Prefix(address, depth), &*node->value);
    }
    return matches;
  }

  /// Visits every (prefix, value) pair in trie (preorder, i.e. shortest
  /// prefixes first along each branch).
  void for_each(const std::function<void(const Ipv4Prefix&, const V&)>& visit) const {
    walk(root_.get(), 0, 0, visit);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<V> value;
    std::unique_ptr<Node> children[2];
  };

  Node* descend_or_create(const Ipv4Prefix& prefix) {
    Node* node = root_.get();
    uint32_t bits = prefix.address().bits();
    for (uint8_t depth = 0; depth < prefix.length(); ++depth) {
      int bit = (bits >> (31 - depth)) & 1;
      if (!node->children[bit]) node->children[bit] = std::make_unique<Node>();
      node = node->children[bit].get();
    }
    return node;
  }

  const Node* descend(const Ipv4Prefix& prefix) const {
    const Node* node = root_.get();
    uint32_t bits = prefix.address().bits();
    for (uint8_t depth = 0; depth < prefix.length(); ++depth) {
      int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (node == nullptr) return nullptr;
    }
    return node;
  }
  Node* descend(const Ipv4Prefix& prefix) {
    return const_cast<Node*>(static_cast<const PrefixTrie*>(this)->descend(prefix));
  }

  void walk(const Node* node, uint32_t bits, uint8_t depth,
            const std::function<void(const Ipv4Prefix&, const V&)>& visit) const {
    if (node->value.has_value())
      visit(Ipv4Prefix(Ipv4Address(bits), depth), *node->value);
    for (int bit = 0; bit < 2; ++bit) {
      const Node* child = node->children[bit].get();
      if (child == nullptr) continue;
      uint32_t child_bits = bits;
      if (bit == 1) child_bits |= (uint32_t(1) << (31 - depth));
      walk(child, child_bits, depth + 1, visit);
    }
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace mfv::net
