// Shared identifier types for the routing and emulation layers.
#pragma once

#include <cstdint>
#include <string>

#include "net/ipv4.hpp"

namespace mfv::net {

/// 4-byte autonomous system number.
using AsNumber = uint32_t;

/// BGP/OSPF-style router id; by convention the loopback address.
using RouterId = Ipv4Address;

/// Device hostname; unique within a topology.
using NodeName = std::string;

/// Interface name as written in configs (e.g. "Ethernet2", "Loopback0").
using InterfaceName = std::string;

/// Fully qualified interface: node + interface name.
struct PortRef {
  NodeName node;
  InterfaceName interface;

  auto operator<=>(const PortRef&) const = default;

  std::string to_string() const { return node + ":" + interface; }
};

}  // namespace mfv::net
