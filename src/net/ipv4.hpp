// IPv4 address and prefix value types.
//
// Addresses are host-order uint32 wrappers; prefixes are (address, length)
// pairs normalized so that host bits are zero. Both are cheap to copy and
// totally ordered, so they can key std::map/std::set directly.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mfv::net {

class Ipv4Address {
 public:
  constexpr Ipv4Address() : bits_(0) {}
  constexpr explicit Ipv4Address(uint32_t bits) : bits_(bits) {}
  constexpr Ipv4Address(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : bits_((uint32_t(a) << 24) | (uint32_t(b) << 16) | (uint32_t(c) << 8) | d) {}

  /// Parses dotted-quad "a.b.c.d". Rejects out-of-range octets, leading
  /// zeros ("01" — octal to inet_aton-style parsers), and trailing garbage.
  /// Accepted text always round-trips byte-identically through to_string().
  static std::optional<Ipv4Address> parse(std::string_view text);

  constexpr uint32_t bits() const { return bits_; }
  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  uint32_t bits_;
};

class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() : address_(), length_(0) {}

  /// Normalizes: host bits below `length` are masked off.
  constexpr Ipv4Prefix(Ipv4Address address, uint8_t length)
      : address_(Ipv4Address(mask_bits(address.bits(), length))), length_(length) {}

  /// Parses "a.b.c.d/len". Rejects length > 32 and non-canonical mask text
  /// (empty, leading zeros, overflow, trailing garbage).
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  /// A /32 host route for `address`.
  static Ipv4Prefix host(Ipv4Address address) { return Ipv4Prefix(address, 32); }

  constexpr Ipv4Address address() const { return address_; }
  constexpr uint8_t length() const { return length_; }

  constexpr uint32_t netmask() const {
    return length_ == 0 ? 0u : (~uint32_t(0)) << (32 - length_);
  }

  constexpr bool contains(Ipv4Address addr) const {
    return (addr.bits() & netmask()) == address_.bits();
  }
  constexpr bool contains(const Ipv4Prefix& other) const {
    return other.length_ >= length_ && contains(other.address_);
  }
  constexpr bool overlaps(const Ipv4Prefix& other) const {
    return contains(other) || other.contains(*this);
  }

  /// First and last address covered by this prefix.
  constexpr Ipv4Address first_address() const { return address_; }
  constexpr Ipv4Address last_address() const {
    return Ipv4Address(address_.bits() | ~netmask());
  }

  /// Number of addresses covered (2^(32-len)), as uint64 to hold /0.
  constexpr uint64_t size() const { return uint64_t(1) << (32 - length_); }

  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Prefix&) const = default;

 private:
  static constexpr uint32_t mask_bits(uint32_t bits, uint8_t length) {
    return length == 0 ? 0u : bits & ((~uint32_t(0)) << (32 - length));
  }

  Ipv4Address address_;
  uint8_t length_;
};

/// Parses "a.b.c.d/len" treating the address part as an interface address:
/// returns both the exact address and the enclosing subnet prefix.
struct InterfaceAddress {
  Ipv4Address address;
  Ipv4Prefix subnet;

  static std::optional<InterfaceAddress> parse(std::string_view text);
  std::string to_string() const;

  auto operator<=>(const InterfaceAddress&) const = default;
};

}  // namespace mfv::net
