#include "rib/rib.hpp"

#include <algorithm>
#include <set>

namespace mfv::rib {

std::string protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kConnected: return "CONNECTED";
    case Protocol::kLocal: return "LOCAL";
    case Protocol::kStatic: return "STATIC";
    case Protocol::kGribi: return "GRIBI";
    case Protocol::kOspf: return "OSPF";
    case Protocol::kIsis: return "ISIS";
    case Protocol::kBgp: return "BGP";
    case Protocol::kIbgp: return "IBGP";
    case Protocol::kTe: return "TE";
  }
  return "UNKNOWN";
}

uint8_t default_admin_distance(Protocol protocol) {
  switch (protocol) {
    case Protocol::kConnected: return 0;
    case Protocol::kLocal: return 0;
    case Protocol::kStatic: return 1;
    case Protocol::kGribi: return 5;
    case Protocol::kTe: return 2;
    case Protocol::kBgp: return 20;
    case Protocol::kOspf: return 110;
    case Protocol::kIsis: return 115;
    case Protocol::kIbgp: return 200;
  }
  return 255;
}

void Rib::prefix_added(const net::Ipv4Prefix& prefix) {
  // Keep a valid trie valid: one insert beats a full rebuild on the next
  // longest_match (SPF/BGP churn interleaves mutation with LPM lookups).
  if (trie_valid_) trie_.insert(prefix, true);
}

void Rib::prefix_removed(const net::Ipv4Prefix& prefix) {
  if (trie_valid_) trie_.erase(prefix);
}

bool Rib::add(RibRoute route) {
  auto it = routes_.find(route.prefix);
  if (it == routes_.end()) {
    prefix_added(route.prefix);
    it = routes_.emplace(route.prefix, std::vector<RibRoute>{}).first;
  }
  auto& slot = it->second;
  std::vector<RibRoute> before = select_best(slot);
  bool replaced = false;
  for (auto& existing : slot) {
    if (existing.same_slot(route)) {
      existing = route;
      replaced = true;
      break;
    }
  }
  if (!replaced) slot.push_back(std::move(route));
  return select_best(slot) != before;
}

bool Rib::remove(const RibRoute& route) {
  auto it = routes_.find(route.prefix);
  if (it == routes_.end()) return false;
  auto& slot = it->second;
  std::vector<RibRoute> before = select_best(slot);
  auto removed = std::remove_if(slot.begin(), slot.end(),
                                [&](const RibRoute& r) { return r.same_slot(route); });
  if (removed == slot.end()) return false;
  slot.erase(removed, slot.end());
  bool changed;
  if (slot.empty()) {
    prefix_removed(it->first);
    routes_.erase(it);
    changed = !before.empty();
  } else {
    changed = select_best(slot) != before;
  }
  return changed;
}

size_t Rib::clear_protocol(Protocol protocol, const std::string& source) {
  size_t removed = 0;
  for (auto it = routes_.begin(); it != routes_.end();) {
    auto& slot = it->second;
    size_t before = slot.size();
    slot.erase(std::remove_if(slot.begin(), slot.end(),
                              [&](const RibRoute& r) {
                                return r.protocol == protocol &&
                                       (source.empty() || r.source == source);
                              }),
               slot.end());
    removed += before - slot.size();
    if (slot.empty()) {
      prefix_removed(it->first);
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

bool Rib::replace_protocol(Protocol protocol, const std::string& source,
                           std::vector<RibRoute> fresh) {
  // Group incoming routes by prefix with add()'s same-slot semantics
  // (later route replaces an earlier one occupying the same slot).
  std::map<net::Ipv4Prefix, std::vector<RibRoute>> incoming;
  for (RibRoute& route : fresh) {
    auto& slot = incoming[route.prefix];
    bool replaced = false;
    for (RibRoute& existing : slot) {
      if (existing.same_slot(route)) {
        existing = std::move(route);
        replaced = true;
        break;
      }
    }
    if (!replaced) slot.push_back(std::move(route));
  }

  auto matches = [&](const RibRoute& r) {
    return r.protocol == protocol && (source.empty() || r.source == source);
  };
  bool changed = false;

  // Existing prefixes: replace this protocol's routes only where the set
  // actually differs.
  for (auto it = routes_.begin(); it != routes_.end();) {
    auto& slot = it->second;
    auto in = incoming.find(it->first);
    std::vector<const RibRoute*> current;
    for (const RibRoute& r : slot)
      if (matches(r)) current.push_back(&r);
    std::vector<RibRoute>* want = in == incoming.end() ? nullptr : &in->second;
    size_t want_size = want ? want->size() : 0;
    bool same = current.size() == want_size;
    if (same && want) {
      std::vector<bool> used(current.size(), false);
      for (const RibRoute& w : *want) {
        bool found = false;
        for (size_t i = 0; i < current.size(); ++i) {
          if (!used[i] && *current[i] == w) {
            used[i] = true;
            found = true;
            break;
          }
        }
        if (!found) {
          same = false;
          break;
        }
      }
    }
    if (same) {
      if (want) incoming.erase(in);
      ++it;
      continue;
    }
    changed = true;
    slot.erase(std::remove_if(slot.begin(), slot.end(), matches), slot.end());
    if (want) {
      for (RibRoute& w : *want) slot.push_back(std::move(w));
      incoming.erase(in);
    }
    if (slot.empty()) {
      prefix_removed(it->first);
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }

  // Whatever remains in `incoming` targets brand-new prefixes.
  for (auto& [prefix, want] : incoming) {
    prefix_added(prefix);
    auto& slot = routes_[prefix];
    for (RibRoute& w : want) slot.push_back(std::move(w));
    changed = true;
  }
  return changed;
}

std::vector<RibRoute> Rib::select_best(const std::vector<RibRoute>& routes) const {
  if (routes.empty()) return {};
  uint8_t best_distance = 255;
  uint32_t best_metric = UINT32_MAX;
  for (const auto& route : routes) {
    if (route.admin_distance < best_distance ||
        (route.admin_distance == best_distance && route.metric < best_metric)) {
      best_distance = route.admin_distance;
      best_metric = route.metric;
    }
  }
  std::vector<RibRoute> best;
  for (const auto& route : routes)
    if (route.admin_distance == best_distance && route.metric == best_metric)
      best.push_back(route);
  return best;
}

std::vector<RibRoute> Rib::best(const net::Ipv4Prefix& prefix) const {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return {};
  return select_best(it->second);
}

std::vector<RibRoute> Rib::candidates(const net::Ipv4Prefix& prefix) const {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return {};
  return it->second;
}

void Rib::rebuild_trie() const {
  trie_.clear();
  for (const auto& [prefix, slot] : routes_) trie_.insert(prefix, true);
  trie_valid_ = true;
}

std::vector<RibRoute> Rib::longest_match(net::Ipv4Address destination) const {
  if (!trie_valid_) rebuild_trie();
  auto match = trie_.longest_match(destination);
  if (!match) return {};
  return best(match->first);
}

void Rib::for_each_best(
    const std::function<void(const net::Ipv4Prefix&, const std::vector<RibRoute>&)>& visit)
    const {
  for (const auto& [prefix, slot] : routes_) {
    auto best_set = select_best(slot);
    if (!best_set.empty()) visit(prefix, best_set);
  }
}

size_t Rib::route_count() const {
  size_t count = 0;
  for (const auto& [prefix, slot] : routes_) count += slot.size();
  return count;
}

namespace {

void resolve_into(const Rib& rib, const RibRoute& route, int depth,
                  std::vector<ResolvedNextHop>& out) {
  if (depth <= 0) return;  // resolution loop or chain too deep
  if (route.drop) {
    out.push_back(ResolvedNextHop{std::nullopt, "", true, route.push_label});
    return;
  }
  if (route.interface) {
    // Directly resolvable: either attached (connected subnet, no next-hop
    // address) or adjacent (IGP route carrying both).
    out.push_back(ResolvedNextHop{route.next_hop, *route.interface, false, route.push_label});
    return;
  }
  if (!route.next_hop) return;  // malformed: nothing to resolve through
  // Recursive: look up the next hop itself.
  for (const RibRoute& via : rib.longest_match(*route.next_hop)) {
    // Self-referential match (e.g. a BGP route resolving through itself)
    // must not recurse forever; the covering route must be different.
    if (via.prefix == route.prefix && via.protocol == route.protocol &&
        via.next_hop == route.next_hop)
      continue;
    if (via.interface && via.protocol == Protocol::kConnected) {
      // Attached subnet: the original next hop is directly adjacent.
      out.push_back(
          ResolvedNextHop{route.next_hop, *via.interface, false, route.push_label});
    } else {
      size_t before = out.size();
      resolve_into(rib, via, depth - 1, out);
      // Labels from the outer route win (TE-over-IGP); copy onto new hops.
      if (route.push_label) {
        for (size_t i = before; i < out.size(); ++i)
          if (!out[i].push_label) out[i].push_label = route.push_label;
      }
    }
  }
}

}  // namespace

std::vector<ResolvedNextHop> resolve(const Rib& rib, const RibRoute& route, int max_depth) {
  std::vector<ResolvedNextHop> out;
  resolve_into(rib, route, max_depth, out);
  // Deduplicate (multiple candidate paths can resolve identically).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

aft::Aft compile_fib(const Rib& rib) {
  aft::Aft fib;
  // Deduplicate next hops across entries.
  std::map<ResolvedNextHop, uint64_t> next_hop_index;
  std::map<std::vector<uint64_t>, uint64_t> group_index;

  // Memoized recursive resolution. A route with neither interface nor drop
  // resolves purely as a function of (next hop, pushed label) — the prefix
  // only matters through resolve_into's self-referential guard, which can
  // fire only when the route's own prefix covers its next hop. Full-table
  // workloads resolve thousands of BGP prefixes through a handful of next
  // hops, so this collapses the dominant compile cost.
  std::map<std::pair<net::Ipv4Address, std::optional<uint32_t>>,
           std::vector<ResolvedNextHop>>
      recursive_memo;
  std::vector<ResolvedNextHop> scratch;
  auto memo_key = [](const RibRoute& route)
      -> std::optional<std::pair<net::Ipv4Address, std::optional<uint32_t>>> {
    bool memoizable = route.next_hop && !route.interface && !route.drop &&
                      !route.prefix.contains(*route.next_hop);
    if (!memoizable) return std::nullopt;
    return std::make_pair(*route.next_hop, route.push_label);
  };
  auto resolve_route = [&](const RibRoute& route) -> const std::vector<ResolvedNextHop>& {
    auto key = memo_key(route);
    if (!key) return scratch = resolve(rib, route);
    auto it = recursive_memo.find(*key);
    if (it == recursive_memo.end())
      it = recursive_memo.emplace(*key, resolve(rib, route)).first;
    return it->second;
  };

  // Second-level memo: (next hop, label) straight to the group id (0 =
  // resolves to nothing). A full-feed table maps thousands of single-path
  // BGP prefixes through a handful of next hops; once one such prefix has
  // been compiled, its siblings skip the per-hop dedup entirely. Pure
  // shortcut: a hit means the identical resolved set was already interned,
  // so the slow path would have created no new next hops or groups — the
  // emitted Aft (indices included) is identical either way.
  std::map<std::pair<net::Ipv4Address, std::optional<uint32_t>>, uint64_t> group_memo;

  rib.for_each_best([&](const net::Ipv4Prefix& prefix, const std::vector<RibRoute>& best) {
    std::optional<std::pair<net::Ipv4Address, std::optional<uint32_t>>> fast_key;
    if (best.size() == 1) {
      fast_key = memo_key(best.front());
      if (fast_key) {
        auto it = group_memo.find(*fast_key);
        if (it != group_memo.end()) {
          if (it->second == 0) return;  // memoized as unresolvable
          aft::Ipv4Entry entry;
          entry.prefix = prefix;
          entry.next_hop_group = it->second;
          entry.origin_protocol = protocol_name(best.front().protocol);
          entry.metric = best.front().metric;
          fib.set_ipv4_entry(std::move(entry));
          return;
        }
      }
    }

    std::set<ResolvedNextHop> resolved;
    for (const RibRoute& route : best)
      for (const ResolvedNextHop& hop : resolve_route(route))
        resolved.insert(hop);
    if (resolved.empty()) {  // unresolvable: not programmed
      if (fast_key) group_memo.emplace(*fast_key, 0);
      return;
    }

    std::vector<uint64_t> indices;
    for (const ResolvedNextHop& hop : resolved) {
      auto it = next_hop_index.find(hop);
      if (it == next_hop_index.end()) {
        aft::NextHop nh;
        nh.ip_address = hop.next_hop;
        if (!hop.interface.empty()) nh.interface = hop.interface;
        nh.drop = hop.drop;
        if (hop.push_label) {
          nh.label_op = aft::LabelOp::kPush;
          nh.label = *hop.push_label;
        }
        it = next_hop_index.emplace(hop, fib.add_next_hop(nh)).first;
      }
      indices.push_back(it->second);
    }
    std::sort(indices.begin(), indices.end());

    auto group_it = group_index.find(indices);
    if (group_it == group_index.end()) {
      std::vector<std::pair<uint64_t, uint64_t>> weighted;
      for (uint64_t index : indices) weighted.emplace_back(index, 1);
      group_it = group_index.emplace(indices, fib.add_group(std::move(weighted))).first;
    }
    if (fast_key) group_memo.emplace(*fast_key, group_it->second);

    aft::Ipv4Entry entry;
    entry.prefix = prefix;
    entry.next_hop_group = group_it->second;
    entry.origin_protocol = protocol_name(best.front().protocol);
    entry.metric = best.front().metric;
    fib.set_ipv4_entry(std::move(entry));
  });
  return fib;
}

}  // namespace mfv::rib
