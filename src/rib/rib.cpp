#include "rib/rib.hpp"

#include <algorithm>
#include <set>

namespace mfv::rib {

std::string protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kConnected: return "CONNECTED";
    case Protocol::kLocal: return "LOCAL";
    case Protocol::kStatic: return "STATIC";
    case Protocol::kGribi: return "GRIBI";
    case Protocol::kOspf: return "OSPF";
    case Protocol::kIsis: return "ISIS";
    case Protocol::kBgp: return "BGP";
    case Protocol::kIbgp: return "IBGP";
    case Protocol::kTe: return "TE";
  }
  return "UNKNOWN";
}

uint8_t default_admin_distance(Protocol protocol) {
  switch (protocol) {
    case Protocol::kConnected: return 0;
    case Protocol::kLocal: return 0;
    case Protocol::kStatic: return 1;
    case Protocol::kGribi: return 5;
    case Protocol::kTe: return 2;
    case Protocol::kBgp: return 20;
    case Protocol::kOspf: return 110;
    case Protocol::kIsis: return 115;
    case Protocol::kIbgp: return 200;
  }
  return 255;
}

bool Rib::add(RibRoute route) {
  auto& slot = routes_[route.prefix];
  std::vector<RibRoute> before = select_best(slot);
  bool replaced = false;
  for (auto& existing : slot) {
    if (existing.same_slot(route)) {
      existing = route;
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    slot.push_back(std::move(route));
    trie_valid_ = false;
  }
  return select_best(slot) != before;
}

bool Rib::remove(const RibRoute& route) {
  auto it = routes_.find(route.prefix);
  if (it == routes_.end()) return false;
  auto& slot = it->second;
  std::vector<RibRoute> before = select_best(slot);
  auto removed = std::remove_if(slot.begin(), slot.end(),
                                [&](const RibRoute& r) { return r.same_slot(route); });
  if (removed == slot.end()) return false;
  slot.erase(removed, slot.end());
  bool changed;
  if (slot.empty()) {
    routes_.erase(it);
    trie_valid_ = false;
    changed = !before.empty();
  } else {
    changed = select_best(slot) != before;
  }
  return changed;
}

size_t Rib::clear_protocol(Protocol protocol, const std::string& source) {
  size_t removed = 0;
  for (auto it = routes_.begin(); it != routes_.end();) {
    auto& slot = it->second;
    size_t before = slot.size();
    slot.erase(std::remove_if(slot.begin(), slot.end(),
                              [&](const RibRoute& r) {
                                return r.protocol == protocol &&
                                       (source.empty() || r.source == source);
                              }),
               slot.end());
    removed += before - slot.size();
    if (slot.empty()) {
      it = routes_.erase(it);
      trie_valid_ = false;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<RibRoute> Rib::select_best(const std::vector<RibRoute>& routes) const {
  if (routes.empty()) return {};
  uint8_t best_distance = 255;
  uint32_t best_metric = UINT32_MAX;
  for (const auto& route : routes) {
    if (route.admin_distance < best_distance ||
        (route.admin_distance == best_distance && route.metric < best_metric)) {
      best_distance = route.admin_distance;
      best_metric = route.metric;
    }
  }
  std::vector<RibRoute> best;
  for (const auto& route : routes)
    if (route.admin_distance == best_distance && route.metric == best_metric)
      best.push_back(route);
  return best;
}

std::vector<RibRoute> Rib::best(const net::Ipv4Prefix& prefix) const {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return {};
  return select_best(it->second);
}

std::vector<RibRoute> Rib::candidates(const net::Ipv4Prefix& prefix) const {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return {};
  return it->second;
}

void Rib::rebuild_trie() const {
  trie_.clear();
  for (const auto& [prefix, slot] : routes_) trie_.insert(prefix, true);
  trie_valid_ = true;
}

std::vector<RibRoute> Rib::longest_match(net::Ipv4Address destination) const {
  if (!trie_valid_) rebuild_trie();
  auto match = trie_.longest_match(destination);
  if (!match) return {};
  return best(match->first);
}

void Rib::for_each_best(
    const std::function<void(const net::Ipv4Prefix&, const std::vector<RibRoute>&)>& visit)
    const {
  for (const auto& [prefix, slot] : routes_) {
    auto best_set = select_best(slot);
    if (!best_set.empty()) visit(prefix, best_set);
  }
}

size_t Rib::route_count() const {
  size_t count = 0;
  for (const auto& [prefix, slot] : routes_) count += slot.size();
  return count;
}

namespace {

void resolve_into(const Rib& rib, const RibRoute& route, int depth,
                  std::vector<ResolvedNextHop>& out) {
  if (depth <= 0) return;  // resolution loop or chain too deep
  if (route.drop) {
    out.push_back(ResolvedNextHop{std::nullopt, "", true, route.push_label});
    return;
  }
  if (route.interface) {
    // Directly resolvable: either attached (connected subnet, no next-hop
    // address) or adjacent (IGP route carrying both).
    out.push_back(ResolvedNextHop{route.next_hop, *route.interface, false, route.push_label});
    return;
  }
  if (!route.next_hop) return;  // malformed: nothing to resolve through
  // Recursive: look up the next hop itself.
  for (const RibRoute& via : rib.longest_match(*route.next_hop)) {
    // Self-referential match (e.g. a BGP route resolving through itself)
    // must not recurse forever; the covering route must be different.
    if (via.prefix == route.prefix && via.protocol == route.protocol &&
        via.next_hop == route.next_hop)
      continue;
    if (via.interface && via.protocol == Protocol::kConnected) {
      // Attached subnet: the original next hop is directly adjacent.
      out.push_back(
          ResolvedNextHop{route.next_hop, *via.interface, false, route.push_label});
    } else {
      size_t before = out.size();
      resolve_into(rib, via, depth - 1, out);
      // Labels from the outer route win (TE-over-IGP); copy onto new hops.
      if (route.push_label) {
        for (size_t i = before; i < out.size(); ++i)
          if (!out[i].push_label) out[i].push_label = route.push_label;
      }
    }
  }
}

}  // namespace

std::vector<ResolvedNextHop> resolve(const Rib& rib, const RibRoute& route, int max_depth) {
  std::vector<ResolvedNextHop> out;
  resolve_into(rib, route, max_depth, out);
  // Deduplicate (multiple candidate paths can resolve identically).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

aft::Aft compile_fib(const Rib& rib) {
  aft::Aft fib;
  // Deduplicate next hops across entries.
  std::map<ResolvedNextHop, uint64_t> next_hop_index;
  std::map<std::vector<uint64_t>, uint64_t> group_index;

  rib.for_each_best([&](const net::Ipv4Prefix& prefix, const std::vector<RibRoute>& best) {
    std::set<ResolvedNextHop> resolved;
    for (const RibRoute& route : best)
      for (const ResolvedNextHop& hop : resolve(rib, route))
        resolved.insert(hop);
    if (resolved.empty()) return;  // unresolvable: not programmed

    std::vector<uint64_t> indices;
    for (const ResolvedNextHop& hop : resolved) {
      auto it = next_hop_index.find(hop);
      if (it == next_hop_index.end()) {
        aft::NextHop nh;
        nh.ip_address = hop.next_hop;
        if (!hop.interface.empty()) nh.interface = hop.interface;
        nh.drop = hop.drop;
        if (hop.push_label) {
          nh.label_op = aft::LabelOp::kPush;
          nh.label = *hop.push_label;
        }
        it = next_hop_index.emplace(hop, fib.add_next_hop(nh)).first;
      }
      indices.push_back(it->second);
    }
    std::sort(indices.begin(), indices.end());

    auto group_it = group_index.find(indices);
    if (group_it == group_index.end()) {
      std::vector<std::pair<uint64_t, uint64_t>> weighted;
      for (uint64_t index : indices) weighted.emplace_back(index, 1);
      group_it = group_index.emplace(indices, fib.add_group(std::move(weighted))).first;
    }

    aft::Ipv4Entry entry;
    entry.prefix = prefix;
    entry.next_hop_group = group_it->second;
    entry.origin_protocol = protocol_name(best.front().protocol);
    entry.metric = best.front().metric;
    fib.set_ipv4_entry(std::move(entry));
  });
  return fib;
}

}  // namespace mfv::rib
