// Routing Information Base shared by all protocol engines on a virtual
// router.
//
// Each protocol installs candidate routes; the RIB selects the best
// route(s) per prefix by (administrative distance, metric), keeping ties
// as an ECMP set. `compile_fib` then performs recursive next-hop
// resolution and emits the OpenConfig-shaped AFT that the gNMI layer
// exports — i.e. this file is where "converged control plane state"
// becomes "dataplane forwarding state".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aft/aft.hpp"
#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"
#include "net/types.hpp"

namespace mfv::rib {

enum class Protocol : uint8_t {
  kConnected,
  kLocal,    // the interface's own /32
  kStatic,
  kGribi,   // programmatically injected (gRIBI-style API)
  kOspf,
  kIsis,
  kBgp,      // eBGP-learned
  kIbgp,     // iBGP-learned
  kTe,       // RSVP-TE tunnel route
};

std::string protocol_name(Protocol protocol);

/// Default administrative distances (EOS-like).
uint8_t default_admin_distance(Protocol protocol);

struct RibRoute {
  net::Ipv4Prefix prefix;
  Protocol protocol = Protocol::kConnected;
  uint8_t admin_distance = 0;
  uint32_t metric = 0;
  /// Next-hop address; may require recursive resolution (e.g. BGP routes
  /// whose next hop is a remote loopback reached via IS-IS).
  std::optional<net::Ipv4Address> next_hop;
  /// Egress interface; set for connected/IGP routes, absent for recursive.
  std::optional<net::InterfaceName> interface;
  bool drop = false;
  /// MPLS label pushed when forwarding via this route (TE tunnels).
  std::optional<uint32_t> push_label;
  /// Provenance for CLI output and targeted withdrawal (peer address,
  /// IGP instance, tunnel name...).
  std::string source;

  bool operator==(const RibRoute&) const = default;

  /// Identity for add/replace: two routes with equal key describe the same
  /// RIB slot and the newer one replaces the older.
  bool same_slot(const RibRoute& other) const {
    return prefix == other.prefix && protocol == other.protocol && source == other.source &&
           next_hop == other.next_hop && interface == other.interface;
  }
};

class Rib {
 public:
  Rib() = default;
  // Copying resets the lazily built presence trie instead of cloning it:
  // the trie is a pure cache over `routes_` and rebuilds on first LPM.
  // This is what makes a RIB (and hence a whole router) forkable for the
  // scenario engine. Moves keep the trie (node ownership transfers).
  Rib(const Rib& other) : routes_(other.routes_) {}
  Rib& operator=(const Rib& other) {
    if (this != &other) {
      routes_ = other.routes_;
      trie_.clear();
      trie_valid_ = false;
    }
    return *this;
  }
  Rib(Rib&&) = default;
  Rib& operator=(Rib&&) = default;

  /// Inserts or replaces (by slot identity). Returns true if the best-route
  /// set for the prefix changed.
  bool add(RibRoute route);

  /// Removes the route occupying the same slot. Returns true if the
  /// best-route set changed.
  bool remove(const RibRoute& route);

  /// Drops every route of `protocol` (optionally only those from `source`).
  /// Returns the number removed.
  size_t clear_protocol(Protocol protocol, const std::string& source = "");

  /// Replaces every route of (`protocol`, `source`) with `fresh`, as if by
  /// clear_protocol followed by add() of each route in order — but slots
  /// whose route set is already identical are left untouched (the presence
  /// trie survives when the prefix set is stable). Returns true only when
  /// something actually changed, giving SPF-style full reinstalls a precise
  /// signal for notify_rib_changed().
  bool replace_protocol(Protocol protocol, const std::string& source,
                        std::vector<RibRoute> fresh);

  /// Best route set (ECMP) for an exact prefix; empty if none.
  std::vector<RibRoute> best(const net::Ipv4Prefix& prefix) const;

  /// All candidate routes for an exact prefix (for CLI display).
  std::vector<RibRoute> candidates(const net::Ipv4Prefix& prefix) const;

  /// Longest-prefix match returning the best set of the covering prefix.
  std::vector<RibRoute> longest_match(net::Ipv4Address destination) const;

  /// Visits the best set of every prefix.
  void for_each_best(
      const std::function<void(const net::Ipv4Prefix&, const std::vector<RibRoute>&)>& visit)
      const;

  size_t prefix_count() const { return routes_.size(); }
  size_t route_count() const;

 private:
  std::vector<RibRoute> select_best(const std::vector<RibRoute>& routes) const;
  void rebuild_trie() const;
  /// Incremental trie upkeep on slot creation/removal: a valid trie stays
  /// valid across mutations (full rebuilds happen only after a copy).
  void prefix_added(const net::Ipv4Prefix& prefix);
  void prefix_removed(const net::Ipv4Prefix& prefix);

  std::map<net::Ipv4Prefix, std::vector<RibRoute>> routes_;
  mutable net::PrefixTrie<bool> trie_;  // presence trie for LPM
  mutable bool trie_valid_ = false;
};

/// One fully resolved forwarding action.
struct ResolvedNextHop {
  std::optional<net::Ipv4Address> next_hop;  // adjacent address; absent if attached
  net::InterfaceName interface;
  bool drop = false;
  std::optional<uint32_t> push_label;

  auto operator<=>(const ResolvedNextHop&) const = default;
};

/// Recursively resolves a route's next hop(s) against the RIB until routes
/// with explicit egress interfaces are reached. Returns empty if the next
/// hop is unresolvable (route stays out of the FIB).
std::vector<ResolvedNextHop> resolve(const Rib& rib, const RibRoute& route, int max_depth = 16);

/// Compiles the RIB into an AFT: best routes, recursive resolution,
/// ECMP groups, deduplicated next hops.
aft::Aft compile_fib(const Rib& rib);

}  // namespace mfv::rib
