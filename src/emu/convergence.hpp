// Black-box convergence detection, as the paper does it (§5): "We detect
// convergence to be complete once we observe the dataplane to stabilize at
// all routers."
//
// Unlike EventKernel::run_until_idle (which exploits the simulator's global
// view that no events remain), the ConvergenceMonitor only watches the
// dataplane through the same interface an external observer has — periodic
// gNMI-style polls of every device's FIB — and declares convergence after
// the dataplane has been stable everywhere for a hold window. This is the
// method a real deployment must use, and the two agree in tests.
#pragma once

#include <map>

#include "emu/emulation.hpp"
#include "util/time.hpp"

namespace mfv::emu {

struct ConvergenceMonitorOptions {
  /// Poll period for the dataplane dumps.
  util::Duration poll_interval = util::Duration::seconds(5);
  /// The dataplane must be unchanged across this window to be "stable".
  util::Duration hold_window = util::Duration::seconds(15);
  /// Give up after this much virtual time.
  util::Duration timeout = util::Duration::minutes(120);
};

struct ConvergenceReport {
  bool converged = false;
  /// Virtual time at which the monitor declared convergence (end of the
  /// hold window).
  util::TimePoint declared_at;
  /// Virtual time of the last dataplane change the monitor observed.
  util::TimePoint last_change_seen;
  int polls = 0;
};

/// Drives the emulation forward in poll-interval steps, snapshotting FIB
/// versions, until every router's dataplane has been stable for the hold
/// window (or timeout). Returns the report; the emulation is left at the
/// declaration time.
ConvergenceReport monitor_convergence(Emulation& emulation,
                                      const ConvergenceMonitorOptions& options = {});

}  // namespace mfv::emu
