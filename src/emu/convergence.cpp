#include "emu/convergence.hpp"

namespace mfv::emu {

ConvergenceReport monitor_convergence(Emulation& emulation,
                                      const ConvergenceMonitorOptions& options) {
  ConvergenceReport report;
  util::TimePoint start = emulation.kernel().now();
  util::TimePoint deadline = start + options.timeout;

  std::map<net::NodeName, uint64_t> last_versions;
  util::TimePoint stable_since = start;
  bool have_baseline = false;

  while (emulation.kernel().now() < deadline) {
    emulation.kernel().run_for(options.poll_interval);
    ++report.polls;

    // Poll: the observable is each device's current FIB content; we use
    // the version counter as a digest of the dump.
    std::map<net::NodeName, uint64_t> versions;
    for (const net::NodeName& node : emulation.node_names()) {
      const vrouter::VirtualRouter* router = emulation.router(node);
      versions[node] = router->fib_version();
    }

    util::TimePoint now = emulation.kernel().now();
    if (!have_baseline || versions != last_versions) {
      last_versions = std::move(versions);
      stable_since = now;
      report.last_change_seen = now;
      have_baseline = true;
      continue;
    }
    if (now - stable_since >= options.hold_window) {
      report.converged = true;
      report.declared_at = now;
      return report;
    }
  }
  report.declared_at = emulation.kernel().now();
  return report;
}

}  // namespace mfv::emu
