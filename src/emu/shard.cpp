#include "emu/shard.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

namespace mfv::emu {

namespace {

/// Thread-local pointer to the shard context executing on this thread,
/// keyed by the owning emulation so concurrent sharded runs (scenario
/// sweeps on a thread pool) stay isolated.
struct ShardTlsSlot {
  const void* tag = nullptr;
  ShardContext* ctx = nullptr;
};
thread_local ShardTlsSlot g_shard_tls;

constexpr uint64_t kNoEvents = std::numeric_limits<uint64_t>::max();

struct KeyLater {
  bool operator()(const KernelEvent& a, const KernelEvent& b) const {
    return b.key < a.key;  // min-heap on the event key
  }
};

void push_heap_event(std::vector<KernelEvent>& heap, KernelEvent event) {
  heap.push_back(std::move(event));
  std::push_heap(heap.begin(), heap.end(), KeyLater{});
}

}  // namespace

ShardContext* current_shard_context(const void* tag) {
  return (tag != nullptr && g_shard_tls.tag == tag) ? g_shard_tls.ctx : nullptr;
}

SpinBarrier::SpinBarrier(uint32_t parties)
    : parties_(parties),
      // With fewer cores than parties someone is always descheduled, so
      // long spins only steal the core the straggler needs.
      spin_limit_(std::thread::hardware_concurrency() >= parties ? 4096 : 64) {}

// ---------------------------------------------------------------------------
// Partition planning

ShardPlan plan_shards(const ShardPlanInputs& inputs) {
  ShardPlan plan;
  plan.shard_of.assign(inputs.actor_count, 0);
  uint32_t shards = inputs.requested_shards;
  if (shards > inputs.routers.size()) shards = static_cast<uint32_t>(inputs.routers.size());
  if (shards == 0) shards = 1;
  plan.shards = shards;

  // Router index in the deterministic (name-sorted) ordering; -1 for
  // non-partitionable actors (environment, external peers).
  std::vector<int64_t> order_index(inputs.actor_count, -1);
  for (size_t i = 0; i < inputs.routers.size(); ++i)
    order_index[inputs.routers[i]] = static_cast<int64_t>(i);

  std::vector<std::vector<ActorId>> adjacency(inputs.routers.size());
  for (const ShardPlanInputs::Edge& edge : inputs.edges) {
    if (edge.a >= inputs.actor_count || edge.b >= inputs.actor_count) continue;
    int64_t ia = order_index[edge.a];
    int64_t ib = order_index[edge.b];
    if (ia < 0 || ib < 0) continue;
    adjacency[static_cast<size_t>(ia)].push_back(edge.b);
    adjacency[static_cast<size_t>(ib)].push_back(edge.a);
  }
  for (std::vector<ActorId>& neighbors : adjacency)
    std::sort(neighbors.begin(), neighbors.end(),
              [&](ActorId x, ActorId y) { return order_index[x] < order_index[y]; });

  // BFS over the link graph, restarting per component, gives an order in
  // which neighborhoods are contiguous; chunking it into balanced blocks
  // keeps most links shard-internal (ring/chord WANs split into arcs).
  std::vector<ActorId> bfs_order;
  bfs_order.reserve(inputs.routers.size());
  std::vector<bool> visited(inputs.routers.size(), false);
  for (size_t seed = 0; seed < inputs.routers.size(); ++seed) {
    if (visited[seed]) continue;
    visited[seed] = true;
    std::vector<size_t> queue{seed};
    for (size_t head = 0; head < queue.size(); ++head) {
      size_t current = queue[head];
      bfs_order.push_back(inputs.routers[current]);
      for (ActorId neighbor : adjacency[current]) {
        size_t index = static_cast<size_t>(order_index[neighbor]);
        if (!visited[index]) {
          visited[index] = true;
          queue.push_back(index);
        }
      }
    }
  }

  size_t block = bfs_order.size() / shards;
  size_t remainder = bfs_order.size() % shards;
  size_t position = 0;
  for (uint32_t shard = 0; shard < shards; ++shard) {
    size_t size = block + (shard < remainder ? 1 : 0);
    for (size_t i = 0; i < size; ++i) plan.shard_of[bfs_order[position++]] = shard;
  }

  // Explicit router placements override the BFS blocks; affinity actors
  // (external peers) then follow their routers, unless themselves pinned.
  for (const auto& [actor, shard] : inputs.overrides)
    if (actor < inputs.actor_count && order_index[actor] >= 0)
      plan.shard_of[actor] = shard % shards;
  for (const auto& [follower, anchor] : inputs.affinities)
    if (follower < inputs.actor_count && anchor < inputs.actor_count)
      plan.shard_of[follower] = plan.shard_of[anchor];
  for (const auto& [actor, shard] : inputs.overrides)
    if (actor < inputs.actor_count && order_index[actor] < 0)
      plan.shard_of[actor] = shard % shards;

  int64_t min_cross = std::numeric_limits<int64_t>::max();
  for (const ShardPlanInputs::Edge& edge : inputs.edges) {
    if (edge.a >= inputs.actor_count || edge.b >= inputs.actor_count) continue;
    if (plan.shard_of[edge.a] == plan.shard_of[edge.b]) continue;
    ++plan.cross_shard_links;
    min_cross = std::min(min_cross, edge.latency_micros);
  }
  plan.lookahead_micros = inputs.addressed_latency_micros;
  if (min_cross != std::numeric_limits<int64_t>::max())
    plan.lookahead_micros = std::min(plan.lookahead_micros, min_cross);
  return plan;
}

// ---------------------------------------------------------------------------
// Sharded executor

class ShardedExecutor {
 public:
  explicit ShardedExecutor(ShardRunInputs inputs)
      : inputs_(std::move(inputs)),
        shards_(inputs_.plan.shards),
        lookahead_(util::Duration::micros(inputs_.plan.lookahead_micros)),
        seqs_(std::move(inputs_.actor_seqs)),
        barrier_(inputs_.plan.shards),
        lanes_(inputs_.plan.shards),
        mail_(static_cast<size_t>(inputs_.plan.shards) * inputs_.plan.shards) {
    if (seqs_.size() < inputs_.plan.shard_of.size())
      seqs_.resize(inputs_.plan.shard_of.size(), 0);
    for (uint32_t shard = 0; shard < shards_; ++shard) {
      lanes_[shard].ctx.executor_ = this;
      lanes_[shard].ctx.shard_ = shard;
      lanes_[shard].ctx.now = inputs_.start_now;
      lanes_[shard].last_when = inputs_.start_now;
      if (shard < inputs_.channel_busy.size())
        lanes_[shard].ctx.channel_busy = std::move(inputs_.channel_busy[shard]);
    }
    for (KernelEvent& event : inputs_.initial_events)
      push_heap_event(lanes_[shard_for(event.owner)].heap, std::move(event));
    inputs_.initial_events.clear();
  }

  ShardRunResult run() {
    std::vector<std::thread> workers;
    workers.reserve(shards_ - 1);
    for (uint32_t shard = 1; shard < shards_; ++shard)
      workers.emplace_back([this, shard] { worker(shard); });
    worker(0);  // the calling thread doubles as shard 0
    for (std::thread& thread : workers) thread.join();

    ShardRunResult result;
    result.drained = !capped_;
    result.final_now = inputs_.start_now;
    result.epochs = epochs_;
    result.actor_seqs = std::move(seqs_);
    for (uint32_t shard = 0; shard < shards_; ++shard) {
      Lane& lane = lanes_[shard];
      result.executed += lane.executed;
      result.delivered += lane.ctx.delivered;
      result.dropped += lane.ctx.dropped;
      result.shard_events.push_back(lane.executed);
      result.shard_barrier_stall_us.push_back(lane.stall_ns / 1000);
      result.final_now = std::max(result.final_now, lane.last_when);
      result.channel_busy.push_back(std::move(lane.ctx.channel_busy));
      for (KernelEvent& event : lane.heap) result.leftovers.push_back(std::move(event));
      lane.heap.clear();
    }
    return result;
  }

  /// Called from ShardContext::schedule on a worker thread. The emitter's
  /// sequence slot is written only by the shard that owns the emitter, so
  /// the shared counter vector is race-free without atomics.
  void schedule_from(uint32_t from_shard, util::TimePoint when, ActorId emitter,
                     ActorId owner, util::SmallFn fn) {
    KernelEvent event{EventKey{when, emitter, seqs_[emitter]++}, owner, DeliveryTag{},
                      std::move(fn)};
    uint32_t to_shard = shard_for(owner);
    if (to_shard == from_shard)
      push_heap_event(lanes_[from_shard].heap, std::move(event));
    else
      mail_[mail_slot(from_shard, to_shard)].push_back(std::move(event));
  }

 private:
  struct alignas(64) Lane {
    ShardContext ctx;
    std::vector<KernelEvent> heap;
    uint64_t executed = 0;  // cumulative; published at the decide barrier
    uint64_t published_min = kNoEvents;
    util::TimePoint last_when;
    int64_t stall_ns = 0;
  };

  uint32_t shard_for(ActorId actor) const {
    return actor < inputs_.plan.shard_of.size() ? inputs_.plan.shard_of[actor] : 0;
  }
  size_t mail_slot(uint32_t from, uint32_t to) const {
    return static_cast<size_t>(from) * shards_ + to;
  }

  /// Runs exclusively in the last arriver of the decide barrier: picks the
  /// next window [global_min, global_min + Δ) or declares termination.
  void decide() {
    uint64_t total_executed = 0;
    uint64_t global_min = kNoEvents;
    for (const Lane& lane : lanes_) {
      total_executed += lane.executed;
      global_min = std::min(global_min, lane.published_min);
    }
    if (global_min == kNoEvents || total_executed >= inputs_.max_events) {
      done_ = true;
      capped_ = global_min != kNoEvents;
      return;
    }
    ++epochs_;
    remaining_ = inputs_.max_events - total_executed;
    window_end_ = util::TimePoint(static_cast<int64_t>(global_min)) + lookahead_;
  }

  template <typename OnLast>
  void arrive(Lane& lane, OnLast&& on_last) {
    auto start = std::chrono::steady_clock::now();
    barrier_.arrive_and_wait(std::forward<OnLast>(on_last));
    lane.stall_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  }

  void worker(uint32_t shard) {
    ShardTlsSlot saved = g_shard_tls;
    g_shard_tls = {inputs_.context_tag, &lanes_[shard].ctx};
    Lane& lane = lanes_[shard];
    while (true) {
      lane.published_min =
          lane.heap.empty()
              ? kNoEvents
              : static_cast<uint64_t>(lane.heap.front().key.when.count_micros());
      arrive(lane, [this] { decide(); });
      if (done_) break;

      // Execute phase: everything strictly inside the window, bounded by
      // the remaining event budget so runaway zero-delay loops terminate.
      util::TimePoint window_end = window_end_;
      uint64_t budget = remaining_;
      uint64_t ran = 0;
      while (!lane.heap.empty() && lane.heap.front().key.when < window_end &&
             ran < budget) {
        std::pop_heap(lane.heap.begin(), lane.heap.end(), KeyLater{});
        KernelEvent event = std::move(lane.heap.back());
        lane.heap.pop_back();
        lane.ctx.now = event.key.when;
        lane.last_when = event.key.when;
        ++ran;
        event.fn();
      }
      lane.executed += ran;

      // Phase separator: every outbox is fully written before anyone
      // drains, then drained boxes are empty before anyone writes again.
      arrive(lane, [] {});
      for (uint32_t source = 0; source < shards_; ++source) {
        std::vector<KernelEvent>& box = mail_[mail_slot(source, shard)];
        for (KernelEvent& event : box) push_heap_event(lane.heap, std::move(event));
        box.clear();
      }
    }
    g_shard_tls = saved;
  }

  ShardRunInputs inputs_;
  const uint32_t shards_;
  const util::Duration lookahead_;
  std::vector<uint64_t> seqs_;
  SpinBarrier barrier_;
  std::vector<Lane> lanes_;
  /// mail_[from * shards + to]: written by `from` while executing, drained
  /// by `to` after the phase barrier. Plain vectors; the barrier's
  /// happens-before edge is the synchronization.
  std::vector<std::vector<KernelEvent>> mail_;

  // Epoch coordination, written only by the decide() completion (which
  // runs exclusively between all-arrived and release).
  util::TimePoint window_end_;
  uint64_t remaining_ = 0;
  uint64_t epochs_ = 0;
  bool done_ = false;
  bool capped_ = false;
};

void ShardContext::schedule(util::TimePoint when, ActorId emitter, ActorId owner,
                            util::SmallFn fn) {
  if (when < now) when = now;
  executor_->schedule_from(shard_, when, emitter, owner, std::move(fn));
}

ShardRunResult run_sharded_events(ShardRunInputs inputs) {
  ShardedExecutor executor(std::move(inputs));
  return executor.run();
}

}  // namespace mfv::emu
