#include "emu/topology.hpp"

namespace mfv::emu {

const NodeSpec* Topology::find_node(const net::NodeName& name) const {
  for (const NodeSpec& node : nodes)
    if (node.name == name) return &node;
  return nullptr;
}

util::Json Topology::to_json() const {
  using util::Json;
  Json j = Json::object();
  Json nodes_json = Json::array();
  for (const NodeSpec& node : nodes) {
    Json n = Json::object();
    n["name"] = node.name;
    n["vendor"] = config::vendor_name(node.vendor);
    n["config"] = node.config_text;
    nodes_json.push_back(std::move(n));
  }
  j["nodes"] = std::move(nodes_json);

  Json links_json = Json::array();
  for (const LinkSpec& link : links) {
    Json l = Json::object();
    l["a"] = link.a.to_string();
    l["b"] = link.b.to_string();
    l["latency-us"] = link.latency_micros;
    links_json.push_back(std::move(l));
  }
  j["links"] = std::move(links_json);

  Json peers_json = Json::array();
  for (const ExternalPeerSpec& peer : external_peers) {
    Json p = Json::object();
    p["name"] = peer.name;
    p["attach-node"] = peer.attach_node;
    p["address"] = peer.address.to_string();
    p["as-number"] = peer.as_number;
    Json routes = Json::array();
    for (const proto::BgpRoute& route : peer.routes) {
      Json r = Json::object();
      r["prefix"] = route.prefix.to_string();
      Json as_path = Json::array();
      for (net::AsNumber asn : route.attributes.as_path) as_path.push_back(asn);
      r["as-path"] = std::move(as_path);
      r["med"] = route.attributes.med;
      routes.push_back(std::move(r));
    }
    p["routes"] = std::move(routes);
    peers_json.push_back(std::move(p));
  }
  j["external-peers"] = std::move(peers_json);
  return j;
}

namespace {

util::Result<net::PortRef> parse_port(const std::string& text) {
  size_t colon = text.find(':');
  if (colon == std::string::npos)
    return util::invalid_argument("port must be node:interface, got '" + text + "'");
  return net::PortRef{text.substr(0, colon), text.substr(colon + 1)};
}

}  // namespace

util::Result<Topology> Topology::from_json(const util::Json& json) {
  if (!json.is_object()) return util::invalid_argument("topology must be an object");
  Topology topology;

  if (const util::Json* nodes = json.find("nodes"); nodes && nodes->is_array()) {
    for (const util::Json& n : nodes->as_array()) {
      NodeSpec node;
      const util::Json* name = n.find("name");
      if (name == nullptr) return util::invalid_argument("node missing name");
      node.name = name->as_string();
      if (const util::Json* vendor = n.find("vendor")) {
        if (vendor->as_string() == "vjun") node.vendor = config::Vendor::kVjun;
        else if (vendor->as_string() == "ceos") node.vendor = config::Vendor::kCeos;
        else return util::invalid_argument("unknown vendor '" + vendor->as_string() + "'");
      }
      if (const util::Json* config_text = n.find("config"))
        node.config_text = config_text->as_string();
      topology.nodes.push_back(std::move(node));
    }
  }

  if (const util::Json* links = json.find("links"); links && links->is_array()) {
    for (const util::Json& l : links->as_array()) {
      LinkSpec link;
      const util::Json* a = l.find("a");
      const util::Json* b = l.find("b");
      if (a == nullptr || b == nullptr)
        return util::invalid_argument("link missing endpoint");
      auto port_a = parse_port(a->as_string());
      if (!port_a.ok()) return port_a.status();
      auto port_b = parse_port(b->as_string());
      if (!port_b.ok()) return port_b.status();
      link.a = *port_a;
      link.b = *port_b;
      if (const util::Json* latency = l.find("latency-us"))
        link.latency_micros = latency->as_int();
      topology.links.push_back(std::move(link));
    }
  }

  if (const util::Json* peers = json.find("external-peers"); peers && peers->is_array()) {
    for (const util::Json& p : peers->as_array()) {
      ExternalPeerSpec peer;
      if (const util::Json* name = p.find("name")) peer.name = name->as_string();
      const util::Json* attach = p.find("attach-node");
      const util::Json* address = p.find("address");
      const util::Json* as_number = p.find("as-number");
      if (attach == nullptr || address == nullptr || as_number == nullptr)
        return util::invalid_argument("external peer missing attach-node/address/as-number");
      peer.attach_node = attach->as_string();
      auto parsed = net::Ipv4Address::parse(address->as_string());
      if (!parsed) return util::invalid_argument("bad external peer address");
      peer.address = *parsed;
      peer.as_number = static_cast<net::AsNumber>(as_number->as_int());
      if (const util::Json* routes = p.find("routes"); routes && routes->is_array()) {
        for (const util::Json& r : routes->as_array()) {
          proto::BgpRoute route;
          const util::Json* prefix = r.find("prefix");
          if (prefix == nullptr) return util::invalid_argument("peer route missing prefix");
          auto parsed_prefix = net::Ipv4Prefix::parse(prefix->as_string());
          if (!parsed_prefix) return util::invalid_argument("bad peer route prefix");
          route.prefix = *parsed_prefix;
          route.attributes.next_hop = peer.address;
          route.attributes.as_path = {peer.as_number};
          if (const util::Json* as_path = r.find("as-path"); as_path && as_path->is_array()) {
            route.attributes.as_path.clear();
            for (const util::Json& asn : as_path->as_array())
              route.attributes.as_path.push_back(static_cast<net::AsNumber>(asn.as_int()));
          }
          if (const util::Json* med = r.find("med"))
            route.attributes.med = static_cast<uint32_t>(med->as_int());
          peer.routes.push_back(std::move(route));
        }
      }
      topology.external_peers.push_back(std::move(peer));
    }
  }
  return topology;
}

util::Result<Topology> Topology::from_json_text(std::string_view text) {
  auto json = util::Json::parse(text);
  if (!json) return util::invalid_argument("topology JSON syntax error");
  return from_json(*json);
}

}  // namespace mfv::emu
