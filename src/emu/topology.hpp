// Topology specification: the emulation analogue of a KNE topology file.
//
// Describes nodes (each carrying its native-dialect configuration text),
// links between interface endpoints, and external BGP peers whose
// advertisements are injected as context — the same three inputs Batfish
// takes (configs, layer-1 topology, announcement set; §4.1 of the paper).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "config/device_config.hpp"
#include "net/types.hpp"
#include "proto/messages.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace mfv::emu {

struct NodeSpec {
  net::NodeName name;
  config::Vendor vendor = config::Vendor::kCeos;
  std::string config_text;  // native-dialect configuration
};

struct LinkSpec {
  net::PortRef a;
  net::PortRef b;
  /// One-way propagation + processing delay.
  int64_t latency_micros = 1000;
};

/// External BGP peer: attaches at an address on a subnet of `attach_node`,
/// speaks eBGP, and injects `routes` (the "BGP advertisements" context
/// input).
struct ExternalPeerSpec {
  std::string name;
  net::NodeName attach_node;
  net::Ipv4Address address;
  net::AsNumber as_number = 0;
  std::vector<proto::BgpRoute> routes;
};

struct Topology {
  std::vector<NodeSpec> nodes;
  std::vector<LinkSpec> links;
  std::vector<ExternalPeerSpec> external_peers;

  const NodeSpec* find_node(const net::NodeName& name) const;

  util::Json to_json() const;
  static util::Result<Topology> from_json(const util::Json& json);
  static util::Result<Topology> from_json_text(std::string_view text);
};

}  // namespace mfv::emu
